#ifndef SAGED_ML_DECISION_TREE_H_
#define SAGED_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "ml/classifier.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Hyperparameters shared by trees and the ensembles built on them.
struct TreeOptions {
  int max_depth = 10;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Number of features considered per split; <= 0 means all features.
  int max_features = -1;
};

/// CART decision tree supporting gini (classification) and variance
/// (regression) splits. Leaf values are the positive-class fraction /
/// target mean; gradient boosting rewrites them via SetLeafValue.
class DecisionTree {
 public:
  enum class Task { kClassification, kRegression };

  DecisionTree(Task task, TreeOptions options, uint64_t seed = 42)
      : task_(task), options_(options), rng_(seed) {}

  /// Fits on rows `sample` of `x` (all rows when `sample` is null).
  /// y holds 0/1 for classification, targets for regression.
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const std::vector<size_t>* sample = nullptr);

  /// Leaf value for one row (P(dirty) or predicted target).
  double PredictOne(std::span<const double> row) const;
  std::vector<double> Predict(const Matrix& x) const;

  /// Index (into the node array) of the leaf a row lands in.
  int ApplyOne(std::span<const double> row) const;

  /// Overwrites a leaf's value (Newton step in gradient boosting).
  void SetLeafValue(int node_index, double value);

  size_t NumNodes() const { return nodes_.size(); }
  bool IsLeaf(int node_index) const { return nodes_[node_index].feature < 0; }

  /// Total impurity decrease attributed to each feature (unnormalized).
  std::vector<double> FeatureImportances(size_t n_features) const;

  /// Persists / restores the fitted tree (knowledge-base serialization).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  struct Node {
    int feature = -1;     // -1 marks a leaf
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;   // leaf payload
    double gain = 0.0;    // impurity decrease at this split
    size_t n_samples = 0;
  };

  int BuildNode(const Matrix& x, const std::vector<double>& y,
                std::vector<size_t>& idx, size_t begin, size_t end, int depth);

  Task task_;
  TreeOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  size_t n_features_ = 0;
};

/// BinaryClassifier adapter for a single tree.
class DecisionTreeClassifier : public BinaryClassifier {
 public:
  explicit DecisionTreeClassifier(TreeOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<DecisionTreeClassifier>(options_, seed_);
  }

 private:
  TreeOptions options_;
  uint64_t seed_;
  std::unique_ptr<DecisionTree> tree_;
};

/// Regressor adapter for a single tree (used by imputers).
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  TreeOptions options_;
  uint64_t seed_;
  std::unique_ptr<DecisionTree> tree_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_DECISION_TREE_H_
