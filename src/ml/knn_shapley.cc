#include "ml/knn_shapley.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace saged::ml {

std::vector<double> KnnShapley(const Matrix& train_x,
                               const std::vector<int>& train_y,
                               const Matrix& val_x,
                               const std::vector<int>& val_y, size_t k) {
  const size_t n = train_x.rows();
  SAGED_CHECK(train_y.size() == n) << "train label mismatch";
  SAGED_CHECK(val_y.size() == val_x.rows()) << "val label mismatch";
  std::vector<double> shapley(n, 0.0);
  if (n == 0 || val_x.rows() == 0) return shapley;
  k = std::max<size_t>(1, std::min(k, n));

  std::vector<std::pair<double, size_t>> order(n);
  std::vector<double> s(n);
  for (size_t v = 0; v < val_x.rows(); ++v) {
    for (size_t i = 0; i < n; ++i) {
      order[i] = {EuclideanDistance(val_x.Row(v), train_x.Row(i)), i};
    }
    std::sort(order.begin(), order.end());
    int yv = val_y[v];

    auto match = [&](size_t rank) {
      return train_y[order[rank].second] == yv ? 1.0 : 0.0;
    };

    s[n - 1] = match(n - 1) / static_cast<double>(n);
    for (size_t rank = n - 1; rank-- > 0;) {
      double diff = match(rank) - match(rank + 1);
      double coeff = static_cast<double>(std::min(k, rank + 1)) /
                     (static_cast<double>(k) * static_cast<double>(rank + 1));
      s[rank] = s[rank + 1] + diff * coeff;
    }
    for (size_t rank = 0; rank < n; ++rank) {
      shapley[order[rank].second] += s[rank];
    }
  }
  for (auto& v : shapley) v /= static_cast<double>(val_x.rows());
  return shapley;
}

}  // namespace saged::ml
