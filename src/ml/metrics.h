#ifndef SAGED_ML_METRICS_H_
#define SAGED_ML_METRICS_H_

#include <cstddef>
#include <vector>

namespace saged::ml {

/// Binary classification confusion counts (positive class = 1).
struct BinaryConfusion {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  size_t tn = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
};

/// Builds the confusion matrix for 0/1 labels.
BinaryConfusion Confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted);

/// Multi-class accuracy.
double Accuracy(const std::vector<int>& truth, const std::vector<int>& predicted);

/// Macro-averaged F1 over the classes present in `truth`.
double MacroF1(const std::vector<int>& truth, const std::vector<int>& predicted);

/// Regression metrics.
double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& predicted);
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted);
double R2Score(const std::vector<double>& truth,
               const std::vector<double>& predicted);

}  // namespace saged::ml

#endif  // SAGED_ML_METRICS_H_
