#ifndef SAGED_ML_GAUSSIAN_MIXTURE_H_
#define SAGED_ML_GAUSSIAN_MIXTURE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace saged::ml {

/// One-dimensional Gaussian mixture fitted by EM. The dBoost baseline uses
/// it to model numeric columns and flag low-likelihood cells.
class GaussianMixture1D {
 public:
  explicit GaussianMixture1D(size_t k = 2, size_t max_iters = 100,
                             uint64_t seed = 42)
      : k_(k), max_iters_(max_iters), seed_(seed) {}

  Status Fit(const std::vector<double>& values);

  /// Mixture probability density at `v`.
  double Pdf(double v) const;

  /// Log-likelihood per value.
  std::vector<double> ScoreSamples(const std::vector<double>& values) const;

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  size_t k_;
  size_t max_iters_;
  uint64_t seed_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
  std::vector<double> weights_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_GAUSSIAN_MIXTURE_H_
