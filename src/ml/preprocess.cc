#include "ml/preprocess.h"

#include <algorithm>
#include <numeric>

namespace saged::ml {

void StandardScaler::Fit(const Matrix& x) {
  means_ = x.ColumnMeans();
  stddevs_ = x.ColumnStdDevs();
}

Matrix StandardScaler::Transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      double sd = c < stddevs_.size() ? stddevs_[c] : 1.0;
      double mean = c < means_.size() ? means_[c] : 0.0;
      out.At(r, c) = sd > 1e-12 ? (x.At(r, c) - mean) / sd : x.At(r, c) - mean;
    }
  }
  return out;
}

void MinMaxScaler::Fit(const Matrix& x) {
  mins_.assign(x.cols(), 0.0);
  maxs_.assign(x.cols(), 1.0);
  if (x.rows() == 0) return;
  for (size_t c = 0; c < x.cols(); ++c) {
    double lo = x.At(0, c);
    double hi = x.At(0, c);
    for (size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x.At(r, c));
      hi = std::max(hi, x.At(r, c));
    }
    mins_[c] = lo;
    maxs_[c] = hi;
  }
}

Matrix MinMaxScaler::Transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      double range = maxs_[c] - mins_[c];
      out.At(r, c) =
          range > 1e-12 ? (x.At(r, c) - mins_[c]) / range : 0.0;
    }
  }
  return out;
}

int LabelEncoder::FitOne(const std::string& value) {
  auto it = mapping_.find(value);
  if (it != mapping_.end()) return it->second;
  int id = static_cast<int>(mapping_.size());
  mapping_.emplace(value, id);
  return id;
}

void LabelEncoder::Fit(const std::vector<std::string>& values) {
  for (const auto& v : values) FitOne(v);
}

int LabelEncoder::Transform(const std::string& value) const {
  auto it = mapping_.find(value);
  return it == mapping_.end() ? 0 : it->second;
}

SplitIndices TrainTestSplit(size_t n, double test_fraction, Rng& rng) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng.Shuffle(idx);
  size_t test_n = static_cast<size_t>(static_cast<double>(n) * test_fraction);
  SplitIndices out;
  out.test.assign(idx.begin(), idx.begin() + static_cast<long>(test_n));
  out.train.assign(idx.begin() + static_cast<long>(test_n), idx.end());
  return out;
}

}  // namespace saged::ml
