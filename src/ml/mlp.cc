#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.h"
#include "common/rng.h"

namespace saged::ml {

namespace {

void SoftmaxRow(std::span<double> row) {
  double mx = *std::max_element(row.begin(), row.end());
  double sum = 0.0;
  for (auto& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (auto& v : row) v /= sum;
}

}  // namespace

Status Mlp::Fit(const Matrix& x, const std::vector<double>& y) {
  Matrix ym(y.size(), 1);
  for (size_t i = 0; i < y.size(); ++i) ym.At(i, 0) = y[i];
  return Fit(x, ym);
}

Status Mlp::Fit(const Matrix& x, const Matrix& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.rows() != x.rows()) return Status::InvalidArgument("target row mismatch");
  if (y.cols() != options_.n_outputs) {
    return Status::InvalidArgument("target width != n_outputs");
  }

  Matrix xs = scaler_.FitTransform(x);
  const size_t n = xs.rows();

  // Layer sizes: input -> hidden... -> output.
  std::vector<size_t> sizes;
  sizes.push_back(xs.cols());
  for (size_t h : options_.hidden) sizes.push_back(h);
  sizes.push_back(options_.n_outputs);

  Rng rng(seed_);
  layers_.clear();
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.w = Matrix(sizes[l], sizes[l + 1]);
    double scale = std::sqrt(2.0 / static_cast<double>(sizes[l]));  // He init
    for (auto& v : layer.w.mutable_data()) v = rng.Normal(0.0, scale);
    layer.b.assign(sizes[l + 1], 0.0);
    layers_.push_back(std::move(layer));
  }

  // Adam state.
  struct AdamState {
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };
  std::vector<AdamState> adam(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    adam[l].mw = Matrix(layers_[l].w.rows(), layers_[l].w.cols());
    adam[l].vw = Matrix(layers_[l].w.rows(), layers_[l].w.cols());
    adam[l].mb.assign(layers_[l].b.size(), 0.0);
    adam[l].vb.assign(layers_[l].b.size(), 0.0);
  }
  const double beta1 = 0.9;
  const double beta2 = 0.999;
  const double eps = 1e-8;
  size_t step = 0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const size_t batch = std::max<size_t>(1, options_.batch_size);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t start = 0; start < n; start += batch) {
      size_t end = std::min(start + batch, n);
      std::vector<size_t> rows(order.begin() + static_cast<long>(start),
                               order.begin() + static_cast<long>(end));
      Matrix xb = xs.SelectRows(rows);
      Matrix yb = y.SelectRows(rows);
      const size_t m = xb.rows();

      // Forward pass, caching post-activation outputs per layer.
      std::vector<Matrix> acts;  // acts[0] = input, acts[l+1] = layer l output
      Matrix out = Forward(xb, &acts);

      // Output delta: for all three tasks the gradient of loss w.r.t. the
      // pre-activation output reduces to (prediction - target) / m.
      Matrix delta(m, options_.n_outputs);
      for (size_t r = 0; r < m; ++r) {
        for (size_t c = 0; c < options_.n_outputs; ++c) {
          delta.At(r, c) = (out.At(r, c) - yb.At(r, c)) / static_cast<double>(m);
        }
      }

      // Backward through layers.
      for (size_t li = layers_.size(); li-- > 0;) {
        Layer& layer = layers_[li];
        const Matrix& input = acts[li];

        // Gradients.
        Matrix gw(layer.w.rows(), layer.w.cols());
        std::vector<double> gb(layer.b.size(), 0.0);
        for (size_t r = 0; r < m; ++r) {
          for (size_t j = 0; j < layer.w.cols(); ++j) {
            double d = delta.At(r, j);
            gb[j] += d;
            for (size_t i = 0; i < layer.w.rows(); ++i) {
              gw.At(i, j) += input.At(r, i) * d;
            }
          }
        }
        if (options_.l2 > 0.0) {
          for (size_t i = 0; i < gw.rows(); ++i) {
            for (size_t j = 0; j < gw.cols(); ++j) {
              gw.At(i, j) += options_.l2 * layer.w.At(i, j);
            }
          }
        }

        // Delta for the previous layer (through ReLU).
        if (li > 0) {
          Matrix prev_delta(m, layer.w.rows());
          for (size_t r = 0; r < m; ++r) {
            for (size_t i = 0; i < layer.w.rows(); ++i) {
              double acc = 0.0;
              for (size_t j = 0; j < layer.w.cols(); ++j) {
                acc += delta.At(r, j) * layer.w.At(i, j);
              }
              // ReLU derivative on the cached activation.
              prev_delta.At(r, i) = acts[li].At(r, i) > 0.0 ? acc : 0.0;
            }
          }
          delta = std::move(prev_delta);
        }

        // Adam update.
        ++step;
        double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
        double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
        AdamState& st = adam[li];
        for (size_t i = 0; i < layer.w.rows(); ++i) {
          for (size_t j = 0; j < layer.w.cols(); ++j) {
            double g = gw.At(i, j);
            st.mw.At(i, j) = beta1 * st.mw.At(i, j) + (1 - beta1) * g;
            st.vw.At(i, j) = beta2 * st.vw.At(i, j) + (1 - beta2) * g * g;
            double mhat = st.mw.At(i, j) / bc1;
            double vhat = st.vw.At(i, j) / bc2;
            layer.w.At(i, j) -=
                options_.learning_rate * mhat / (std::sqrt(vhat) + eps);
          }
        }
        for (size_t j = 0; j < layer.b.size(); ++j) {
          double g = gb[j];
          st.mb[j] = beta1 * st.mb[j] + (1 - beta1) * g;
          st.vb[j] = beta2 * st.vb[j] + (1 - beta2) * g * g;
          layer.b[j] -=
              options_.learning_rate * (st.mb[j] / bc1) /
              (std::sqrt(st.vb[j] / bc2) + eps);
        }
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Matrix Mlp::Forward(const Matrix& x, std::vector<Matrix>* activations) const {
  Matrix cur = x;
  if (activations) {
    activations->clear();
    activations->push_back(cur);
  }
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    Matrix next(cur.rows(), layer.w.cols());
    for (size_t r = 0; r < cur.rows(); ++r) {
      for (size_t j = 0; j < layer.w.cols(); ++j) {
        double acc = layer.b[j];
        for (size_t i = 0; i < layer.w.rows(); ++i) {
          acc += cur.At(r, i) * layer.w.At(i, j);
        }
        next.At(r, j) = acc;
      }
    }
    bool is_output = li + 1 == layers_.size();
    if (!is_output) {
      for (auto& v : next.mutable_data()) v = std::max(v, 0.0);  // ReLU
    } else {
      switch (options_.task) {
        case MlpTask::kRegression:
          break;
        case MlpTask::kBinary:
          for (auto& v : next.mutable_data()) v = 1.0 / (1.0 + std::exp(-v));
          break;
        case MlpTask::kMulticlass:
          for (size_t r = 0; r < next.rows(); ++r) SoftmaxRow(next.Row(r));
          break;
      }
    }
    cur = std::move(next);
    if (activations) activations->push_back(cur);
  }
  return cur;
}

Matrix Mlp::Predict(const Matrix& x) const {
  SAGED_CHECK(fitted_) << "MLP not fitted";
  Matrix xs = scaler_.Transform(x);
  return Forward(xs, nullptr);
}

std::vector<int> Mlp::PredictClasses(const Matrix& x) const {
  Matrix out = Predict(x);
  std::vector<int> classes(out.rows());
  for (size_t r = 0; r < out.rows(); ++r) {
    if (options_.task == MlpTask::kBinary) {
      classes[r] = out.At(r, 0) >= 0.5 ? 1 : 0;
    } else {
      auto row = out.Row(r);
      classes[r] = static_cast<int>(
          std::max_element(row.begin(), row.end()) - row.begin());
    }
  }
  return classes;
}

Status MlpClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  net_ = std::make_unique<Mlp>(options_, seed_);
  std::vector<double> yd(y.begin(), y.end());
  return net_->Fit(x, yd);
}

std::vector<double> MlpClassifier::PredictProba(const Matrix& x) const {
  SAGED_CHECK(net_ != nullptr) << "classifier not fitted";
  Matrix out = net_->Predict(x);
  std::vector<double> proba(out.rows());
  for (size_t r = 0; r < out.rows(); ++r) proba[r] = out.At(r, 0);
  return proba;
}

}  // namespace saged::ml
