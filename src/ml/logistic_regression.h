#ifndef SAGED_ML_LOGISTIC_REGRESSION_H_
#define SAGED_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "ml/classifier.h"

namespace saged::ml {

/// L2-regularized logistic regression trained by full-batch gradient
/// descent with a constant learning rate. Cheap linear baseline learner.
struct LogisticOptions {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  size_t epochs = 200;
  /// Balance classes by weighting the minority class up (useful when only a
  /// handful of dirty cells are labeled).
  bool class_weight_balanced = true;
};

class LogisticRegression : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticOptions options = {})
      : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<LogisticRegression>(options_);
  }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Persists / restores the fitted model (including the folded-in scaler).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  LogisticOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Feature scaling folded into the model so callers need not pre-scale.
  std::vector<double> means_;
  std::vector<double> inv_std_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_LOGISTIC_REGRESSION_H_
