#include "ml/agglomerative.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "common/contracts.h"

namespace saged::ml {

Status Agglomerative::Fit(const Matrix& x) {
  n_ = x.rows();
  merges_.clear();
  if (n_ == 0) return Status::InvalidArgument("empty matrix");
  if (n_ == 1) return Status::OK();

  // Working distance matrix between active clusters. Entry ids: slot i holds
  // cluster `cluster_id[i]`; UPGMA updates via Lance-Williams.
  const size_t n = n_;
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = EuclideanDistance(x.Row(i), x.Row(j));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<bool> active(n, true);
  std::vector<size_t> cluster_id(n);
  std::iota(cluster_id.begin(), cluster_id.end(), 0);
  std::vector<double> size(n, 1.0);
  size_t next_id = n;

  // Nearest-neighbor chain. UPGMA is reducible, so chain merges build the
  // same dendrogram as greedy global-minimum merges.
  std::vector<size_t> chain;
  chain.reserve(n);
  size_t remaining = n;

  auto nearest = [&](size_t i) {
    double best = std::numeric_limits<double>::max();
    size_t best_j = i;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !active[j]) continue;
      double d = dist[i * n + j];
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    return std::make_pair(best_j, best);
  };

  while (remaining > 1) {
    if (chain.empty()) {
      for (size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    while (true) {
      size_t top = chain.back();
      auto [nn, d] = nearest(top);
      if (chain.size() >= 2 && nn == chain[chain.size() - 2]) {
        // Reciprocal nearest neighbors: merge top and nn.
        size_t a = top;
        size_t b = nn;
        chain.pop_back();
        chain.pop_back();
        merges_.push_back({cluster_id[a], cluster_id[b], d});
        // Merge b into a (slot a becomes the new cluster).
        double sa = size[a];
        double sb = size[b];
        for (size_t j = 0; j < n; ++j) {
          if (!active[j] || j == a || j == b) continue;
          double dj = (sa * dist[a * n + j] + sb * dist[b * n + j]) / (sa + sb);
          dist[a * n + j] = dj;
          dist[j * n + a] = dj;
        }
        active[b] = false;
        size[a] = sa + sb;
        cluster_id[a] = next_id++;
        --remaining;
        break;
      }
      chain.push_back(nn);
    }
  }
  return Status::OK();
}

std::vector<size_t> Agglomerative::Cut(size_t k) const {
  SAGED_CHECK(n_ > 0) << "not fitted";
  k = std::clamp<size_t>(k, 1, n_);
  // Apply the first n - k merges (they are recorded in height order for
  // reducible linkages up to chain reordering; sort defensively).
  std::vector<Merge> ordered = merges_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Merge& a, const Merge& b) {
                     return a.height < b.height;
                   });
  // Union-find over dendrogram node ids.
  size_t total_ids = n_ + merges_.size();
  std::vector<size_t> parent(total_ids);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };

  // Rebuild node ids in the same order Fit assigned them: the i-th merge in
  // merges_ created node n_ + i. Apply the first (n - k) merges by height.
  std::vector<size_t> merge_node(merges_.size());
  for (size_t i = 0; i < merges_.size(); ++i) merge_node[i] = n_ + i;

  size_t to_apply = n_ - k;
  // Map each Merge back to its creation index to know its node id.
  // `ordered` holds copies; match by (a, b, height) against merges_ in order.
  std::vector<bool> used(merges_.size(), false);
  size_t applied = 0;
  for (const auto& m : ordered) {
    if (applied >= to_apply) break;
    // Find this merge's creation index.
    size_t idx = 0;
    for (size_t i = 0; i < merges_.size(); ++i) {
      if (!used[i] && merges_[i].a == m.a && merges_[i].b == m.b) {
        idx = i;
        used[i] = true;
        break;
      }
    }
    size_t node = merge_node[idx];
    parent[find(m.a)] = find(node);
    parent[find(m.b)] = find(node);
    ++applied;
  }

  // Compact root ids into [0, k).
  std::vector<size_t> labels(n_);
  std::vector<long> root_to_label(total_ids, -1);
  size_t next_label = 0;
  for (size_t i = 0; i < n_; ++i) {
    size_t r = find(i);
    if (root_to_label[r] < 0) {
      root_to_label[r] = static_cast<long>(next_label++);
    }
    labels[i] = static_cast<size_t>(root_to_label[r]);
  }
  return labels;
}

}  // namespace saged::ml
