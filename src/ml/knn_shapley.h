#ifndef SAGED_ML_KNN_SHAPLEY_H_
#define SAGED_ML_KNN_SHAPLEY_H_

#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace saged::ml {

/// Exact data-Shapley values for a KNN classifier (Jia et al., VLDB 2019).
/// Returns one value per *training* point measuring its contribution to
/// classifying the validation set; SAGED's KNN-Shapley label-augmentation
/// method ranks candidate pseudo-labeled cells by this value.
///
/// For each validation point, training points sorted by distance get values
/// via the backward recursion
///   s_(N) = 1[y_(N) = y_val] / N
///   s_(i) = s_(i+1) + (1[y_(i)=y_val] - 1[y_(i+1)=y_val]) / k * min(k,i+1)/(i+1)
/// averaged over the validation set.
std::vector<double> KnnShapley(const Matrix& train_x,
                               const std::vector<int>& train_y,
                               const Matrix& val_x,
                               const std::vector<int>& val_y, size_t k);

}  // namespace saged::ml

#endif  // SAGED_ML_KNN_SHAPLEY_H_
