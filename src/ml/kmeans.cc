#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"
#include "common/rng.h"

namespace saged::ml {

Status KMeans::Fit(const Matrix& x) {
  if (x.rows() == 0) return Status::InvalidArgument("empty matrix");
  k_ = std::min(k_, x.rows());
  if (k_ == 0) return Status::InvalidArgument("k must be positive");
  Rng rng(seed_);
  const size_t n = x.rows();
  const size_t d = x.cols();

  // k-means++ seeding.
  centroids_ = Matrix(k_, d);
  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  size_t first = static_cast<size_t>(rng.UniformInt(n));
  std::copy(x.Row(first).begin(), x.Row(first).end(), centroids_.Row(0).begin());
  for (size_t c = 1; c < k_; ++c) {
    for (size_t i = 0; i < n; ++i) {
      double dd = EuclideanDistance(x.Row(i), centroids_.Row(c - 1));
      dist2[i] = std::min(dist2[i], dd * dd);
    }
    size_t pick = rng.Weighted(dist2);
    std::copy(x.Row(pick).begin(), x.Row(pick).end(), centroids_.Row(c).begin());
  }

  labels_.assign(n, 0);
  std::vector<double> counts(k_);
  Matrix sums(k_, d);
  for (size_t iter = 0; iter < max_iters_; ++iter) {
    bool changed = false;
    inertia_ = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      size_t best_c = 0;
      for (size_t c = 0; c < k_; ++c) {
        double dd = EuclideanDistance(x.Row(i), centroids_.Row(c));
        if (dd < best) {
          best = dd;
          best_c = c;
        }
      }
      if (labels_[i] != best_c) {
        labels_[i] = best_c;
        changed = true;
      }
      inertia_ += best * best;
    }
    if (!changed && iter > 0) break;

    std::fill(counts.begin(), counts.end(), 0.0);
    std::fill(sums.mutable_data().begin(), sums.mutable_data().end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      counts[labels_[i]] += 1.0;
      auto row = x.Row(i);
      auto dst = sums.Row(labels_[i]);
      for (size_t j = 0; j < d; ++j) dst[j] += row[j];
    }
    for (size_t c = 0; c < k_; ++c) {
      if (counts[c] > 0.0) {
        auto src = sums.Row(c);
        auto dst = centroids_.Row(c);
        for (size_t j = 0; j < d; ++j) dst[j] = src[j] / counts[c];
      } else {
        // Re-seed an empty cluster at a random point.
        size_t pick = static_cast<size_t>(rng.UniformInt(n));
        std::copy(x.Row(pick).begin(), x.Row(pick).end(),
                  centroids_.Row(c).begin());
      }
    }
  }
  return Status::OK();
}

std::vector<size_t> KMeans::Predict(const Matrix& x) const {
  SAGED_CHECK(centroids_.rows() > 0) << "kmeans not fitted";
  std::vector<size_t> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    double best = std::numeric_limits<double>::max();
    size_t best_c = 0;
    for (size_t c = 0; c < centroids_.rows(); ++c) {
      double dd = EuclideanDistance(x.Row(i), centroids_.Row(c));
      if (dd < best) {
        best = dd;
        best_c = c;
      }
    }
    out[i] = best_c;
  }
  return out;
}

}  // namespace saged::ml
