#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/contracts.h"
#include "common/rng.h"

namespace saged::ml {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

Status GradientBoostingClassifier::Fit(const Matrix& x,
                                       const std::vector<int>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) return Status::InvalidArgument("label size mismatch");
  trees_.clear();

  const size_t n = x.rows();
  double pos = 0.0;
  for (int v : y) pos += v;
  double p0 = std::clamp(pos / static_cast<double>(n), 1e-4, 1.0 - 1e-4);
  base_score_ = std::log(p0 / (1.0 - p0));

  std::vector<double> raw(n, base_score_);
  std::vector<double> residual(n);
  Rng rng(seed_);

  for (size_t round = 0; round < options_.n_rounds; ++round) {
    // Negative gradient of logistic loss: y - sigmoid(raw).
    for (size_t i = 0; i < n; ++i) {
      residual[i] = static_cast<double>(y[i]) - Sigmoid(raw[i]);
    }

    std::vector<size_t> sample;
    if (options_.subsample < 1.0) {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(options_.subsample * static_cast<double>(n)));
      sample = rng.SampleWithoutReplacement(n, k);
    } else {
      sample.resize(n);
      std::iota(sample.begin(), sample.end(), 0);
    }

    auto tree = std::make_unique<DecisionTree>(DecisionTree::Task::kRegression,
                                               options_.tree, rng.Next());
    SAGED_RETURN_NOT_OK(tree->Fit(x, residual, &sample));

    // Newton step per leaf: sum(residual) / sum(p (1 - p)).
    std::unordered_map<int, std::pair<double, double>> leaf_stats;
    for (size_t i : sample) {
      int leaf = tree->ApplyOne(x.Row(i));
      double p = Sigmoid(raw[i]);
      auto& stats = leaf_stats[leaf];
      stats.first += residual[i];
      stats.second += p * (1.0 - p);
    }
    for (const auto& [leaf, stats] : leaf_stats) {
      double denom = std::max(stats.second, 1e-8);
      tree->SetLeafValue(leaf, stats.first / denom);
    }

    for (size_t i = 0; i < n; ++i) {
      raw[i] += options_.learning_rate * tree->PredictOne(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

void GradientBoostingClassifier::Save(BinaryWriter* writer) const {
  writer->WriteF64(options_.learning_rate);
  writer->WriteF64(base_score_);
  writer->WriteU64(trees_.size());
  for (const auto& tree : trees_) tree->Save(writer);
}

Status GradientBoostingClassifier::Load(BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(options_.learning_rate, reader->ReadF64());
  SAGED_ASSIGN_OR_RETURN(base_score_, reader->ReadF64());
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 1 << 20) return Status::IoError("corrupt booster");
  trees_.clear();
  for (uint64_t t = 0; t < n; ++t) {
    auto tree = std::make_unique<DecisionTree>(DecisionTree::Task::kRegression,
                                               TreeOptions{}, 0);
    SAGED_RETURN_NOT_OK(tree->Load(reader));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoostingClassifier::RawScore(std::span<const double> row) const {
  double score = base_score_;
  for (const auto& tree : trees_) {
    score += options_.learning_rate * tree->PredictOne(row);
  }
  return score;
}

std::vector<double> GradientBoostingClassifier::PredictProba(
    const Matrix& x) const {
  SAGED_CHECK(!trees_.empty()) << "booster not fitted";
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = Sigmoid(RawScore(x.Row(r)));
  return out;
}

}  // namespace saged::ml
