#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/rng.h"

namespace saged::ml {

namespace {

/// Average path length of an unsuccessful BST search over n nodes (the
/// normalizer c(n) from the isolation-forest paper).
double AveragePathLength(double n) {
  if (n <= 1.0) return 0.0;
  const double euler = 0.5772156649;
  return 2.0 * (std::log(n - 1.0) + euler) - 2.0 * (n - 1.0) / n;
}

}  // namespace

Status IsolationForest::Fit(const Matrix& x) {
  if (x.rows() == 0) return Status::InvalidArgument("empty matrix");
  trees_.clear();
  Rng rng(seed_);
  const size_t sample_n = std::min(options_.subsample, x.rows());
  const int height_limit =
      static_cast<int>(std::ceil(std::log2(std::max<double>(2.0, double(sample_n)))));
  avg_path_norm_ = AveragePathLength(static_cast<double>(sample_n));
  if (avg_path_norm_ <= 0.0) avg_path_norm_ = 1.0;

  for (size_t t = 0; t < options_.n_trees; ++t) {
    Tree tree;
    auto sample = rng.SampleWithoutReplacement(x.rows(), sample_n);

    // Iterative construction with an explicit stack of (index range, depth,
    // node slot).
    struct Frame {
      size_t begin;
      size_t end;
      int depth;
      int slot;
    };
    std::vector<size_t> idx = sample;
    tree.nodes.emplace_back();
    std::vector<Frame> stack{{0, idx.size(), 0, 0}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      Node& node = tree.nodes[static_cast<size_t>(f.slot)];
      size_t n = f.end - f.begin;
      node.size = n;
      if (n <= 1 || f.depth >= height_limit) continue;  // leaf

      // Pick a feature with spread.
      size_t feature = 0;
      double lo = 0.0;
      double hi = 0.0;
      bool found = false;
      for (int attempt = 0; attempt < 8 && !found; ++attempt) {
        feature = static_cast<size_t>(rng.UniformInt(x.cols()));
        lo = hi = x.At(idx[f.begin], feature);
        for (size_t i = f.begin + 1; i < f.end; ++i) {
          double v = x.At(idx[i], feature);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        found = hi > lo;
      }
      if (!found) continue;  // constant region -> leaf

      double split = rng.Uniform(lo, hi);
      size_t mid = f.begin;
      for (size_t i = f.begin; i < f.end; ++i) {
        if (x.At(idx[i], feature) < split) {
          std::swap(idx[i], idx[mid]);
          ++mid;
        }
      }
      if (mid == f.begin || mid == f.end) continue;

      // Allocate children first: emplace_back may reallocate and would
      // dangle any reference held across it.
      int left = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      int right = static_cast<int>(tree.nodes.size());
      tree.nodes.emplace_back();
      Node& parent = tree.nodes[static_cast<size_t>(f.slot)];
      parent.feature = static_cast<int>(feature);
      parent.split = split;
      parent.left = left;
      parent.right = right;
      stack.push_back({f.begin, mid, f.depth + 1, left});
      stack.push_back({mid, f.end, f.depth + 1, right});
    }
    trees_.push_back(std::move(tree));
  }

  // Threshold at the contamination quantile of training scores.
  auto scores = Score(x);
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  double q = std::clamp(1.0 - options_.contamination, 0.0, 1.0);
  size_t pos = std::min(sorted.size() - 1,
                        static_cast<size_t>(q * static_cast<double>(sorted.size())));
  threshold_ = sorted[pos];
  return Status::OK();
}

double IsolationForest::PathLength(const Tree& tree,
                                   std::span<const double> row) const {
  int node = 0;
  double depth = 0.0;
  while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
    const Node& nd = tree.nodes[static_cast<size_t>(node)];
    node = row[static_cast<size_t>(nd.feature)] < nd.split ? nd.left : nd.right;
    depth += 1.0;
  }
  // Leaves holding multiple points contribute the expected extra depth.
  depth += AveragePathLength(
      static_cast<double>(tree.nodes[static_cast<size_t>(node)].size));
  return depth;
}

std::vector<double> IsolationForest::Score(const Matrix& x) const {
  SAGED_CHECK(!trees_.empty()) << "forest not fitted";
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    double mean_path = 0.0;
    for (const auto& tree : trees_) mean_path += PathLength(tree, x.Row(r));
    mean_path /= static_cast<double>(trees_.size());
    out[r] = std::pow(2.0, -mean_path / avg_path_norm_);
  }
  return out;
}

std::vector<int> IsolationForest::Predict(const Matrix& x) const {
  auto scores = Score(x);
  std::vector<int> out(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] > threshold_ ? 1 : 0;
  }
  return out;
}

}  // namespace saged::ml
