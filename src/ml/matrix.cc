#include "ml/matrix.h"

#include <cmath>

#include "common/contracts.h"

namespace saged::ml {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) m.AppendRow(r);
  return m;
}

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) cols_ = row.size();
  SAGED_CHECK_EQ(row.size(), cols_) << "appended row width must match";
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    auto src = Row(rows[i]);
    std::copy(src.begin(), src.end(), out.Row(i).begin());
  }
  return out;
}

Matrix Matrix::SelectCols(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      out.At(r, i) = At(r, cols[i]);
    }
  }
  return out;
}

Matrix Matrix::ConcatCols(const Matrix& other) const {
  SAGED_CHECK_EQ(rows_, other.rows_) << "row mismatch in ConcatCols";
  Matrix out(rows_, cols_ + other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    auto a = Row(r);
    auto b = other.Row(r);
    auto dst = out.Row(r);
    std::copy(a.begin(), a.end(), dst.begin());
    std::copy(b.begin(), b.end(), dst.begin() + static_cast<long>(cols_));
  }
  return out;
}

std::vector<double> Matrix::ColumnMeans() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) means[c] += At(r, c);
  }
  for (auto& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::ColumnStdDevs() const {
  std::vector<double> sd(cols_, 0.0);
  if (rows_ == 0) return sd;
  auto means = ColumnMeans();
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      double d = At(r, c) - means[c];
      sd[c] += d * d;
    }
  }
  for (auto& v : sd) v = std::sqrt(v / static_cast<double>(rows_));
  return sd;
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b) {
  SAGED_DCHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  SAGED_DCHECK_EQ(a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace saged::ml
