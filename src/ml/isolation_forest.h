#ifndef SAGED_ML_ISOLATION_FOREST_H_
#define SAGED_ML_ISOLATION_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Isolation-forest hyperparameters.
struct IsolationForestOptions {
  size_t n_trees = 64;
  size_t subsample = 256;
  /// Expected anomaly fraction used to derive the score threshold.
  double contamination = 0.1;
};

/// Isolation forest anomaly detector (Liu et al. 2008): random axis-aligned
/// splits isolate outliers in short paths. Backs the "IF" baseline of the
/// paper's outlier-detector group.
class IsolationForest {
 public:
  using Options = IsolationForestOptions;

  explicit IsolationForest(Options options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x);

  /// Anomaly score in (0, 1]; higher = more anomalous.
  std::vector<double> Score(const Matrix& x) const;

  /// 1 = anomaly, thresholded at the contamination quantile of the
  /// training scores.
  std::vector<int> Predict(const Matrix& x) const;

  double threshold() const { return threshold_; }

 private:
  struct Node {
    int feature = -1;  // -1 = leaf
    double split = 0.0;
    int left = -1;
    int right = -1;
    size_t size = 0;  // samples reaching a leaf
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  double PathLength(const Tree& tree, std::span<const double> row) const;

  Options options_;
  uint64_t seed_;
  std::vector<Tree> trees_;
  double avg_path_norm_ = 1.0;
  double threshold_ = 0.5;
};

}  // namespace saged::ml

#endif  // SAGED_ML_ISOLATION_FOREST_H_
