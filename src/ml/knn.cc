#include "ml/knn.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace saged::ml {

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) return Status::InvalidArgument("label size mismatch");
  train_x_ = x;
  train_y_ = y;
  return Status::OK();
}

std::vector<double> KnnClassifier::PredictProba(const Matrix& x) const {
  SAGED_CHECK(train_x_.rows() > 0) << "knn not fitted";
  const size_t k = std::min(k_, train_x_.rows());
  std::vector<double> out(x.rows());
  std::vector<std::pair<double, size_t>> dists(train_x_.rows());
  for (size_t q = 0; q < x.rows(); ++q) {
    for (size_t i = 0; i < train_x_.rows(); ++i) {
      dists[i] = {EuclideanDistance(x.Row(q), train_x_.Row(i)), i};
    }
    std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                      dists.end());
    double votes = 0.0;
    for (size_t j = 0; j < k; ++j) votes += train_y_[dists[j].second];
    out[q] = votes / static_cast<double>(k);
  }
  return out;
}

}  // namespace saged::ml
