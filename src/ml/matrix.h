#ifndef SAGED_ML_MATRIX_H_
#define SAGED_ML_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/contracts.h"

namespace saged::ml {

/// Dense row-major matrix of doubles. The feature-matrix currency of every
/// learner in the library; deliberately minimal (no BLAS, no views beyond
/// row spans) since all models are CPU-cache-friendly scans.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists / vectors (rows must agree).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Reshapes in place to rows x cols with every element set to `fill`.
  /// Retains the backing allocation when capacity suffices — the streaming
  /// featurizer Resets one matrix per column, block after block, with zero
  /// steady-state allocation.
  void Reset(size_t rows, size_t cols, double fill = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  // Bounds contracts are debug-only (SAGED_DCHECK): At/Row sit on every
  // learner's innermost loop and must stay a bare index in Release.
  double& At(size_t r, size_t c) {
    SAGED_DCHECK_LT(r, rows_);
    SAGED_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    SAGED_DCHECK_LT(r, rows_);
    SAGED_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> Row(size_t r) {
    SAGED_DCHECK_LT(r, rows_);
    return {&data_[r * cols_], cols_};
  }
  std::span<const double> Row(size_t r) const {
    SAGED_DCHECK_LT(r, rows_);
    return {&data_[r * cols_], cols_};
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Appends one row (must match cols(), or sets cols() when empty).
  void AppendRow(std::span<const double> row);

  /// Copy restricted to the given row indices.
  Matrix SelectRows(const std::vector<size_t>& rows) const;

  /// Copy restricted to the given column indices.
  Matrix SelectCols(const std::vector<size_t>& cols) const;

  /// Horizontal concatenation: [this | other] (row counts must match).
  Matrix ConcatCols(const Matrix& other) const;

  /// Per-column mean / stddev (population).
  std::vector<double> ColumnMeans() const;
  std::vector<double> ColumnStdDevs() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Cosine similarity in [-1, 1]; zero vectors yield 0.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

}  // namespace saged::ml

#endif  // SAGED_ML_MATRIX_H_
