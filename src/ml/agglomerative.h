#ifndef SAGED_ML_AGGLOMERATIVE_H_
#define SAGED_ML_AGGLOMERATIVE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Hierarchical agglomerative clustering with average (UPGMA) linkage,
/// implemented with the nearest-neighbor-chain algorithm (O(n^2) time,
/// O(n^2) memory for the distance matrix). Used by SAGED's
/// clustering-based labeling strategy and by the Raha baseline.
class Agglomerative {
 public:
  /// Builds the full dendrogram over the rows of `x`.
  Status Fit(const Matrix& x);

  /// Cuts the dendrogram into exactly `k` clusters (1 <= k <= n);
  /// returns one label in [0, k) per input row.
  std::vector<size_t> Cut(size_t k) const;

  size_t n() const { return n_; }

  /// Merge record: clusters `a` and `b` (ids; leaves are [0, n), internal
  /// nodes continue upward) merged at `height`.
  struct Merge {
    size_t a;
    size_t b;
    double height;
  };
  const std::vector<Merge>& merges() const { return merges_; }

 private:
  size_t n_ = 0;
  std::vector<Merge> merges_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_AGGLOMERATIVE_H_
