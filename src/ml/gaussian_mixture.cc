#include "ml/gaussian_mixture.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"
#include "common/rng.h"

namespace saged::ml {

namespace {

double NormalPdf(double v, double mean, double sd) {
  double z = (v - mean) / sd;
  return std::exp(-0.5 * z * z) / (sd * std::sqrt(2.0 * M_PI));
}

}  // namespace

Status GaussianMixture1D::Fit(const std::vector<double>& values) {
  if (values.empty()) return Status::InvalidArgument("no values");
  size_t k = std::min(k_, values.size());
  k = std::max<size_t>(k, 1);

  // Initialize means at spread quantiles; common stddev.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  means_.resize(k);
  for (size_t c = 0; c < k; ++c) {
    size_t pos = (sorted.size() - 1) * (2 * c + 1) / (2 * k);
    means_[c] = sorted[pos];
  }
  double mean_all = 0.0;
  for (double v : values) mean_all += v;
  mean_all /= static_cast<double>(values.size());
  double var_all = 0.0;
  for (double v : values) var_all += (v - mean_all) * (v - mean_all);
  var_all /= static_cast<double>(values.size());
  double sd0 = std::max(std::sqrt(var_all), 1e-6);
  stddevs_.assign(k, sd0);
  weights_.assign(k, 1.0 / static_cast<double>(k));

  const size_t n = values.size();
  std::vector<double> resp(n * k);
  double prev_ll = -std::numeric_limits<double>::max();
  for (size_t iter = 0; iter < max_iters_; ++iter) {
    // E-step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (size_t c = 0; c < k; ++c) {
        double p = weights_[c] * NormalPdf(values[i], means_[c], stddevs_[c]);
        resp[i * k + c] = p;
        total += p;
      }
      total = std::max(total, 1e-300);
      for (size_t c = 0; c < k; ++c) resp[i * k + c] /= total;
      ll += std::log(total);
    }
    if (std::abs(ll - prev_ll) < 1e-8 * std::abs(prev_ll) + 1e-12) break;
    prev_ll = ll;

    // M-step.
    for (size_t c = 0; c < k; ++c) {
      double rsum = 0.0;
      double msum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        rsum += resp[i * k + c];
        msum += resp[i * k + c] * values[i];
      }
      rsum = std::max(rsum, 1e-12);
      double mean = msum / rsum;
      double vsum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        double d = values[i] - mean;
        vsum += resp[i * k + c] * d * d;
      }
      means_[c] = mean;
      stddevs_[c] = std::max(std::sqrt(vsum / rsum), 1e-6);
      weights_[c] = rsum / static_cast<double>(n);
    }
  }
  return Status::OK();
}

double GaussianMixture1D::Pdf(double v) const {
  SAGED_CHECK(!means_.empty()) << "gmm not fitted";
  double p = 0.0;
  for (size_t c = 0; c < means_.size(); ++c) {
    p += weights_[c] * NormalPdf(v, means_[c], stddevs_[c]);
  }
  return p;
}

std::vector<double> GaussianMixture1D::ScoreSamples(
    const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = std::log(std::max(Pdf(values[i]), 1e-300));
  }
  return out;
}

}  // namespace saged::ml
