#ifndef SAGED_ML_MLP_H_
#define SAGED_ML_MLP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/matrix.h"
#include "ml/preprocess.h"

namespace saged::ml {

/// What the output layer models.
enum class MlpTask {
  kRegression,  // linear output, MSE loss
  kBinary,      // sigmoid output, logistic loss
  kMulticlass,  // softmax output, cross-entropy loss
};

/// Multilayer perceptron hyperparameters — the knobs the Figure-16 tuner
/// searches over (learning rate, number of hidden layers, units per layer).
struct MlpOptions {
  std::vector<size_t> hidden = {32, 16};
  double learning_rate = 1e-2;
  size_t epochs = 120;
  size_t batch_size = 32;
  double l2 = 1e-5;
  MlpTask task = MlpTask::kBinary;
  /// Output width: 1 for regression/binary, #classes for multiclass.
  size_t n_outputs = 1;
};

/// Fully-connected ReLU network trained with Adam. Inputs are standardized
/// internally. This is the paper's "MLP network" base-model option and the
/// Keras downstream model substitute.
class Mlp {
 public:
  explicit Mlp(MlpOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  /// Trains on targets `y` (rows aligned with `x`; width must equal
  /// n_outputs, with multiclass expecting one-hot rows).
  Status Fit(const Matrix& x, const Matrix& y);

  /// Convenience for 1-D targets.
  Status Fit(const Matrix& x, const std::vector<double>& y);

  /// Network outputs after the task's activation (probabilities for
  /// classification tasks, raw values for regression).
  Matrix Predict(const Matrix& x) const;

  /// Argmax class per row (multiclass) / thresholded label (binary).
  std::vector<int> PredictClasses(const Matrix& x) const;

  const MlpOptions& options() const { return options_; }

 private:
  struct Layer {
    Matrix w;               // in x out
    std::vector<double> b;  // out
  };

  Matrix Forward(const Matrix& x, std::vector<Matrix>* activations) const;

  MlpOptions options_;
  uint64_t seed_;
  std::vector<Layer> layers_;
  StandardScaler scaler_;
  bool fitted_ = false;
};

/// BinaryClassifier adapter so the MLP can serve as a SAGED base or meta
/// model interchangeably with forests and boosting.
class MlpClassifier : public BinaryClassifier {
 public:
  explicit MlpClassifier(MlpOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {
    options_.task = MlpTask::kBinary;
    options_.n_outputs = 1;
  }

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<MlpClassifier>(options_, seed_);
  }

 private:
  MlpOptions options_;
  uint64_t seed_;
  std::unique_ptr<Mlp> net_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_MLP_H_
