#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/contracts.h"

namespace saged::ml {

double BinaryConfusion::Precision() const {
  return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}
double BinaryConfusion::Recall() const {
  return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}
double BinaryConfusion::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}
double BinaryConfusion::Accuracy() const {
  size_t total = tp + fp + fn + tn;
  return total == 0 ? 0.0 : static_cast<double>(tp + tn) / total;
}

BinaryConfusion Confusion(const std::vector<int>& truth,
                          const std::vector<int>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  BinaryConfusion c;
  for (size_t i = 0; i < truth.size(); ++i) {
    bool t = truth[i] != 0;
    bool p = predicted[i] != 0;
    if (t && p) {
      ++c.tp;
    } else if (!t && p) {
      ++c.fp;
    } else if (t && !p) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  if (truth.empty()) return 0.0;
  size_t hit = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hit;
  }
  return static_cast<double>(hit) / truth.size();
}

double MacroF1(const std::vector<int>& truth,
               const std::vector<int>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  std::set<int> classes(truth.begin(), truth.end());
  if (classes.empty()) return 0.0;
  double sum = 0.0;
  for (int cls : classes) {
    size_t tp = 0;
    size_t fp = 0;
    size_t fn = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
      bool t = truth[i] == cls;
      bool p = predicted[i] == cls;
      if (t && p) {
        ++tp;
      } else if (!t && p) {
        ++fp;
      } else if (t && !p) {
        ++fn;
      }
    }
    double prec = (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
    double rec = (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
    sum += (prec + rec) == 0.0 ? 0.0 : 2.0 * prec * rec / (prec + rec);
  }
  return sum / static_cast<double>(classes.size());
}

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return acc / truth.size();
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / truth.size();
}

double R2Score(const std::vector<double>& truth,
               const std::vector<double>& predicted) {
  SAGED_CHECK(truth.size() == predicted.size()) << "length mismatch";
  if (truth.empty()) return 0.0;
  double mean = 0.0;
  for (double v : truth) mean += v;
  mean /= truth.size();
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double dr = truth[i] - predicted[i];
    double dt = truth[i] - mean;
    ss_res += dr * dr;
    ss_tot += dt * dt;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace saged::ml
