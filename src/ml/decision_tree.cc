#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.h"
#include "common/strings.h"

namespace saged::ml {

namespace {

/// Impurity of a node summarized by (sum, sum_sq, count) of targets.
/// For classification (y in {0,1}) this computes gini via the mean p:
/// gini = 2p(1-p); for regression it is the variance. Both are minimized by
/// the same weighted-sum criterion, so one scan serves both tasks.
double Impurity(DecisionTree::Task task, double sum, double sum_sq,
                double count) {
  if (count <= 0.0) return 0.0;
  double mean = sum / count;
  if (task == DecisionTree::Task::kClassification) {
    return 2.0 * mean * (1.0 - mean);
  }
  double var = sum_sq / count - mean * mean;
  return std::max(var, 0.0);
}

}  // namespace

Status DecisionTree::Fit(const Matrix& x, const std::vector<double>& y,
                         const std::vector<size_t>* sample) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) {
    return Status::InvalidArgument(
        StrFormat("y has %zu entries, x has %zu rows", y.size(), x.rows()));
  }
  nodes_.clear();
  n_features_ = x.cols();
  std::vector<size_t> idx;
  if (sample != nullptr) {
    idx = *sample;
  } else {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), 0);
  }
  if (idx.empty()) return Status::InvalidArgument("empty sample");
  BuildNode(x, y, idx, 0, idx.size(), 0);
  return Status::OK();
}

int DecisionTree::BuildNode(const Matrix& x, const std::vector<double>& y,
                            std::vector<size_t>& idx, size_t begin, size_t end,
                            int depth) {
  const size_t n = end - begin;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[idx[i]];
    sum_sq += y[idx[i]] * y[idx[i]];
  }
  const double node_impurity = Impurity(task_, sum, sum_sq, n);

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = sum / static_cast<double>(n);
  nodes_[node_index].n_samples = n;

  bool can_split = depth < options_.max_depth &&
                   n >= options_.min_samples_split && node_impurity > 1e-12;
  if (!can_split) return node_index;

  // Candidate feature subset (random forests pass max_features = sqrt).
  std::vector<size_t> features(n_features_);
  std::iota(features.begin(), features.end(), 0);
  size_t n_try = n_features_;
  if (options_.max_features > 0 &&
      static_cast<size_t>(options_.max_features) < n_features_) {
    n_try = static_cast<size_t>(options_.max_features);
    rng_.Shuffle(features);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  // Scratch: (value, target) pairs sorted per feature.
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(n);

  for (size_t fi = 0; fi < n_try; ++fi) {
    size_t f = features[fi];
    pairs.clear();
    for (size_t i = begin; i < end; ++i) {
      pairs.emplace_back(x.At(idx[i], f), y[idx[i]]);
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.front().first == pairs.back().first) continue;  // constant

    double left_sum = 0.0;
    double left_sq = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += pairs[i].second;
      left_sq += pairs[i].second * pairs[i].second;
      // Only split between distinct feature values.
      if (pairs[i].first == pairs[i + 1].first) continue;
      size_t left_n = i + 1;
      size_t right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double right_sum = sum - left_sum;
      double right_sq = sum_sq - left_sq;
      double weighted =
          (static_cast<double>(left_n) * Impurity(task_, left_sum, left_sq, left_n) +
           static_cast<double>(right_n) *
               Impurity(task_, right_sum, right_sq, right_n)) /
          static_cast<double>(n);
      double gain = node_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (pairs[i].first + pairs[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_index;

  // Partition idx[begin, end) in place around the threshold.
  size_t mid = begin;
  for (size_t i = begin; i < end; ++i) {
    if (x.At(idx[i], static_cast<size_t>(best_feature)) <= best_threshold) {
      std::swap(idx[i], idx[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_index;  // degenerate partition

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].gain = best_gain * static_cast<double>(n);
  int left = BuildNode(x, y, idx, begin, mid, depth + 1);
  int right = BuildNode(x, y, idx, mid, end, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

int DecisionTree::ApplyOne(std::span<const double> row) const {
  SAGED_CHECK(!nodes_.empty()) << "tree not fitted";
  int node = 0;
  while (nodes_[node].feature >= 0) {
    size_t f = static_cast<size_t>(nodes_[node].feature);
    node = row[f] <= nodes_[node].threshold ? nodes_[node].left
                                            : nodes_[node].right;
  }
  return node;
}

double DecisionTree::PredictOne(std::span<const double> row) const {
  return nodes_[ApplyOne(row)].value;
}

std::vector<double> DecisionTree::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = PredictOne(x.Row(r));
  return out;
}

void DecisionTree::SetLeafValue(int node_index, double value) {
  SAGED_CHECK(IsLeaf(node_index)) << "node " << node_index << " is not a leaf";
  nodes_[static_cast<size_t>(node_index)].value = value;
}

void DecisionTree::Save(BinaryWriter* writer) const {
  writer->WriteU8(task_ == Task::kClassification ? 0 : 1);
  writer->WriteU64(n_features_);
  writer->WriteU64(nodes_.size());
  for (const auto& node : nodes_) {
    writer->WriteI32(node.feature);
    writer->WriteF64(node.threshold);
    writer->WriteI32(node.left);
    writer->WriteI32(node.right);
    writer->WriteF64(node.value);
    writer->WriteF64(node.gain);
    writer->WriteU64(node.n_samples);
  }
}

Status DecisionTree::Load(BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(uint8_t task, reader->ReadU8());
  task_ = task == 0 ? Task::kClassification : Task::kRegression;
  SAGED_ASSIGN_OR_RETURN(n_features_, reader->ReadU64());
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > BinaryReader::kMaxLength) return Status::IoError("corrupt tree");
  nodes_.resize(n);
  for (auto& node : nodes_) {
    SAGED_ASSIGN_OR_RETURN(node.feature, reader->ReadI32());
    SAGED_ASSIGN_OR_RETURN(node.threshold, reader->ReadF64());
    SAGED_ASSIGN_OR_RETURN(node.left, reader->ReadI32());
    SAGED_ASSIGN_OR_RETURN(node.right, reader->ReadI32());
    SAGED_ASSIGN_OR_RETURN(node.value, reader->ReadF64());
    SAGED_ASSIGN_OR_RETURN(node.gain, reader->ReadF64());
    SAGED_ASSIGN_OR_RETURN(node.n_samples, reader->ReadU64());
    long long max_index = static_cast<long long>(nodes_.size());
    if (node.left >= max_index || node.right >= max_index) {
      return Status::IoError("corrupt tree: child index out of range");
    }
  }
  return Status::OK();
}

std::vector<double> DecisionTree::FeatureImportances(size_t n_features) const {
  std::vector<double> imp(n_features, 0.0);
  for (const auto& node : nodes_) {
    if (node.feature >= 0 && static_cast<size_t>(node.feature) < n_features) {
      imp[static_cast<size_t>(node.feature)] += node.gain;
    }
  }
  return imp;
}

Status DecisionTreeClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  std::vector<double> yd(y.begin(), y.end());
  tree_ = std::make_unique<DecisionTree>(DecisionTree::Task::kClassification,
                                         options_, seed_);
  return tree_->Fit(x, yd);
}

std::vector<double> DecisionTreeClassifier::PredictProba(const Matrix& x) const {
  SAGED_CHECK(tree_ != nullptr) << "classifier not fitted";
  return tree_->Predict(x);
}

Status DecisionTreeRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  tree_ = std::make_unique<DecisionTree>(DecisionTree::Task::kRegression,
                                         options_, seed_);
  return tree_->Fit(x, y);
}

std::vector<double> DecisionTreeRegressor::Predict(const Matrix& x) const {
  SAGED_CHECK(tree_ != nullptr) << "regressor not fitted";
  return tree_->Predict(x);
}

}  // namespace saged::ml
