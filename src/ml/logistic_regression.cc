#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace saged::ml {

namespace {
double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

Status LogisticRegression::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) return Status::InvalidArgument("label size mismatch");
  const size_t n = x.rows();
  const size_t d = x.cols();

  means_ = x.ColumnMeans();
  auto sd = x.ColumnStdDevs();
  inv_std_.resize(d);
  for (size_t j = 0; j < d; ++j) inv_std_[j] = sd[j] > 1e-12 ? 1.0 / sd[j] : 1.0;

  double pos = 0.0;
  for (int v : y) pos += v;
  double w1 = 1.0;
  double w0 = 1.0;
  if (options_.class_weight_balanced && pos > 0.0 && pos < n) {
    w1 = static_cast<double>(n) / (2.0 * pos);
    w0 = static_cast<double>(n) / (2.0 * (static_cast<double>(n) - pos));
  }

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(d);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      auto row = x.Row(i);
      double z = bias_;
      for (size_t j = 0; j < d; ++j) {
        z += weights_[j] * (row[j] - means_[j]) * inv_std_[j];
      }
      double err = Sigmoid(z) - static_cast<double>(y[i]);
      double w = y[i] ? w1 : w0;
      err *= w;
      for (size_t j = 0; j < d; ++j) {
        grad[j] += err * (row[j] - means_[j]) * inv_std_[j];
      }
      grad_b += err;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_n + options_.l2 * weights_[j];
      weights_[j] -= options_.learning_rate * grad[j];
    }
    bias_ -= options_.learning_rate * grad_b * inv_n;
  }
  return Status::OK();
}

void LogisticRegression::Save(BinaryWriter* writer) const {
  writer->WriteF64Vector(weights_);
  writer->WriteF64(bias_);
  writer->WriteF64Vector(means_);
  writer->WriteF64Vector(inv_std_);
}

Status LogisticRegression::Load(BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(weights_, reader->ReadF64Vector());
  SAGED_ASSIGN_OR_RETURN(bias_, reader->ReadF64());
  SAGED_ASSIGN_OR_RETURN(means_, reader->ReadF64Vector());
  SAGED_ASSIGN_OR_RETURN(inv_std_, reader->ReadF64Vector());
  if (means_.size() != weights_.size() || inv_std_.size() != weights_.size()) {
    return Status::IoError("corrupt logistic model");
  }
  return Status::OK();
}

std::vector<double> LogisticRegression::PredictProba(const Matrix& x) const {
  SAGED_CHECK(!weights_.empty()) << "model not fitted";
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    auto row = x.Row(i);
    double z = bias_;
    for (size_t j = 0; j < weights_.size() && j < row.size(); ++j) {
      z += weights_[j] * (row[j] - means_[j]) * inv_std_[j];
    }
    out[i] = Sigmoid(z);
  }
  return out;
}

}  // namespace saged::ml
