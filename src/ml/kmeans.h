#ifndef SAGED_ML_KMEANS_H_
#define SAGED_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Lloyd's K-Means with k-means++ initialization. Used by SAGED's
/// clustering-based similarity matcher (column signatures -> clusters).
class KMeans {
 public:
  explicit KMeans(size_t k, size_t max_iters = 100, uint64_t seed = 42)
      : k_(k), max_iters_(max_iters), seed_(seed) {}

  /// Fits centroids on the rows of `x`. k is clamped to x.rows().
  Status Fit(const Matrix& x);

  /// Nearest-centroid assignment per row.
  std::vector<size_t> Predict(const Matrix& x) const;

  /// Assignment of the training rows (populated by Fit).
  const std::vector<size_t>& labels() const { return labels_; }

  const Matrix& centroids() const { return centroids_; }
  size_t k() const { return k_; }

  /// Sum of squared distances of training rows to their centroid.
  double inertia() const { return inertia_; }

 private:
  size_t k_;
  size_t max_iters_;
  uint64_t seed_;
  Matrix centroids_;
  std::vector<size_t> labels_;
  double inertia_ = 0.0;
};

}  // namespace saged::ml

#endif  // SAGED_ML_KMEANS_H_
