#ifndef SAGED_ML_KNN_H_
#define SAGED_ML_KNN_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace saged::ml {

/// Brute-force k-nearest-neighbor binary classifier (vote fraction as
/// probability). Small training sets only — distances are exact scans.
class KnnClassifier : public BinaryClassifier {
 public:
  explicit KnnClassifier(size_t k = 5) : k_(k) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<KnnClassifier>(k_);
  }

 private:
  size_t k_;
  Matrix train_x_;
  std::vector<int> train_y_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_KNN_H_
