#ifndef SAGED_ML_RANDOM_FOREST_H_
#define SAGED_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace saged::ml {

/// Bagged ensemble hyperparameters.
struct ForestOptions {
  size_t n_trees = 16;
  TreeOptions tree;
  /// Per-tree bootstrap sample size as a fraction of the training set.
  double subsample = 1.0;
  /// Cap on the absolute per-tree sample (0 = no cap). Keeps base-model
  /// training tractable on the large scalability datasets.
  size_t max_samples = 0;
  /// When true, each split considers sqrt(n_features) features.
  bool sqrt_features = true;
};

/// Random forest classifier: the default base / meta learner in SAGED (the
/// paper names random forests and XGBoost as interchangeable choices).
class RandomForestClassifier : public BinaryClassifier {
 public:
  explicit RandomForestClassifier(ForestOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<RandomForestClassifier>(options_, seed_);
  }

  /// Mean impurity-decrease importances (normalized to sum 1).
  std::vector<double> FeatureImportances() const;

  size_t NumTrees() const { return trees_.size(); }

  /// Persists / restores the fitted forest.
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  ForestOptions options_;
  uint64_t seed_;
  size_t n_features_ = 0;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

/// Random forest regressor (categorical repair imputer backend).
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> Predict(const Matrix& x) const override;

 private:
  ForestOptions options_;
  uint64_t seed_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_RANDOM_FOREST_H_
