#ifndef SAGED_ML_CLASSIFIER_H_
#define SAGED_ML_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Contract shared by every binary learner in the library: base models over
/// column features, meta-classifiers over meta-features, and the learners
/// inside baseline detectors. Labels are 0 (clean) / 1 (dirty).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on the given rows. `y.size()` must equal `x.rows()`.
  virtual Status Fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// P(label == 1) per row. Only valid after a successful Fit.
  virtual std::vector<double> PredictProba(const Matrix& x) const = 0;

  /// Fresh untrained copy carrying the same hyperparameters (prototype
  /// pattern: SAGED instantiates one learner per column from a template).
  virtual std::unique_ptr<BinaryClassifier> Clone() const = 0;

  /// Hard labels at the given probability threshold.
  std::vector<int> Predict(const Matrix& x, double threshold = 0.5) const {
    auto proba = PredictProba(x);
    std::vector<int> out(proba.size());
    for (size_t i = 0; i < proba.size(); ++i) {
      out[i] = proba[i] >= threshold ? 1 : 0;
    }
    return out;
  }
};

/// Regression counterpart (used by the repair imputers and boosting).
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual Status Fit(const Matrix& x, const std::vector<double>& y) = 0;
  virtual std::vector<double> Predict(const Matrix& x) const = 0;
};

}  // namespace saged::ml

#endif  // SAGED_ML_CLASSIFIER_H_
