#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace saged::ml {

namespace {

/// Bootstrap sample of size `target` drawn from [0, n).
std::vector<size_t> Bootstrap(size_t n, size_t target, Rng& rng) {
  std::vector<size_t> idx(target);
  for (auto& v : idx) v = static_cast<size_t>(rng.UniformInt(n));
  return idx;
}

size_t PerTreeSampleSize(const ForestOptions& options, size_t n) {
  size_t target =
      static_cast<size_t>(std::ceil(options.subsample * static_cast<double>(n)));
  target = std::max<size_t>(target, 1);
  if (options.max_samples > 0) target = std::min(target, options.max_samples);
  return target;
}

TreeOptions EffectiveTreeOptions(const ForestOptions& options,
                                 size_t n_features) {
  TreeOptions tree = options.tree;
  if (options.sqrt_features && tree.max_features <= 0) {
    tree.max_features = std::max(
        1, static_cast<int>(std::lround(std::sqrt(double(n_features)))));
  }
  return tree;
}

}  // namespace

Status RandomForestClassifier::Fit(const Matrix& x, const std::vector<int>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) return Status::InvalidArgument("label size mismatch");
  trees_.clear();
  n_features_ = x.cols();
  std::vector<double> yd(y.begin(), y.end());
  Rng rng(seed_);
  TreeOptions tree_opts = EffectiveTreeOptions(options_, x.cols());
  size_t per_tree = PerTreeSampleSize(options_, x.rows());
  for (size_t t = 0; t < options_.n_trees; ++t) {
    auto tree = std::make_unique<DecisionTree>(
        DecisionTree::Task::kClassification, tree_opts, rng.Next());
    auto sample = Bootstrap(x.rows(), per_tree, rng);
    SAGED_RETURN_NOT_OK(tree->Fit(x, yd, &sample));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestClassifier::PredictProba(const Matrix& x) const {
  SAGED_CHECK(!trees_.empty()) << "forest not fitted";
  std::vector<double> proba(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    for (size_t r = 0; r < x.rows(); ++r) {
      proba[r] += tree->PredictOne(x.Row(r));
    }
  }
  for (auto& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

void RandomForestClassifier::Save(BinaryWriter* writer) const {
  writer->WriteU64(n_features_);
  writer->WriteU64(trees_.size());
  for (const auto& tree : trees_) tree->Save(writer);
}

Status RandomForestClassifier::Load(BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(n_features_, reader->ReadU64());
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > 1 << 20) return Status::IoError("corrupt forest");
  trees_.clear();
  for (uint64_t t = 0; t < n; ++t) {
    auto tree = std::make_unique<DecisionTree>(
        DecisionTree::Task::kClassification, TreeOptions{}, 0);
    SAGED_RETURN_NOT_OK(tree->Load(reader));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestClassifier::FeatureImportances() const {
  std::vector<double> imp(n_features_, 0.0);
  for (const auto& tree : trees_) {
    auto t = tree->FeatureImportances(n_features_);
    for (size_t i = 0; i < imp.size(); ++i) imp[i] += t[i];
  }
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

Status RandomForestRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("empty training matrix");
  if (y.size() != x.rows()) return Status::InvalidArgument("label size mismatch");
  trees_.clear();
  Rng rng(seed_);
  TreeOptions tree_opts = EffectiveTreeOptions(options_, x.cols());
  size_t per_tree = PerTreeSampleSize(options_, x.rows());
  for (size_t t = 0; t < options_.n_trees; ++t) {
    auto tree = std::make_unique<DecisionTree>(DecisionTree::Task::kRegression,
                                               tree_opts, rng.Next());
    auto sample = Bootstrap(x.rows(), per_tree, rng);
    SAGED_RETURN_NOT_OK(tree->Fit(x, y, &sample));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestRegressor::Predict(const Matrix& x) const {
  SAGED_CHECK(!trees_.empty()) << "forest not fitted";
  std::vector<double> out(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    for (size_t r = 0; r < x.rows(); ++r) {
      out[r] += tree->PredictOne(x.Row(r));
    }
  }
  for (auto& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

}  // namespace saged::ml
