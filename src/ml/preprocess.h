#ifndef SAGED_ML_PREPROCESS_H_
#define SAGED_ML_PREPROCESS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "ml/matrix.h"

namespace saged::ml {

/// Zero-mean / unit-variance scaling fitted on training data.
class StandardScaler {
 public:
  /// Learns per-column mean and stddev.
  void Fit(const Matrix& x);

  /// Applies the learned transform; constant columns pass through centered.
  Matrix Transform(const Matrix& x) const;

  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// Min-max scaling to [0, 1].
class MinMaxScaler {
 public:
  void Fit(const Matrix& x);
  Matrix Transform(const Matrix& x) const;
  Matrix FitTransform(const Matrix& x) {
    Fit(x);
    return Transform(x);
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Maps arbitrary string categories to dense integer ids (unseen -> new id
/// at transform time when `grow` is allowed, else a reserved id 0).
class LabelEncoder {
 public:
  int FitOne(const std::string& value);
  void Fit(const std::vector<std::string>& values);
  int Transform(const std::string& value) const;
  size_t NumClasses() const { return mapping_.size(); }

 private:
  std::unordered_map<std::string, int> mapping_;
};

/// Shuffled train/test split of [0, n) indices.
struct SplitIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
SplitIndices TrainTestSplit(size_t n, double test_fraction, Rng& rng);

}  // namespace saged::ml

#endif  // SAGED_ML_PREPROCESS_H_
