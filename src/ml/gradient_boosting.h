#ifndef SAGED_ML_GRADIENT_BOOSTING_H_
#define SAGED_ML_GRADIENT_BOOSTING_H_

#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace saged::ml {

/// Gradient-boosted trees hyperparameters (binary logistic loss).
struct BoostingOptions {
  size_t n_rounds = 30;
  double learning_rate = 0.2;
  TreeOptions tree{.max_depth = 4, .min_samples_leaf = 2, .min_samples_split = 4,
                   .max_features = -1};
  /// Stochastic GB: per-round row subsample fraction.
  double subsample = 1.0;
};

/// XGBoost-style gradient boosting with Newton leaf updates on the logistic
/// loss. Stands in for the paper's XGBoost base/meta classifier choice.
class GradientBoostingClassifier : public BinaryClassifier {
 public:
  explicit GradientBoostingClassifier(BoostingOptions options = {},
                                      uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  Status Fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> PredictProba(const Matrix& x) const override;
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<GradientBoostingClassifier>(options_, seed_);
  }

  size_t NumRounds() const { return trees_.size(); }

  /// Persists / restores the fitted ensemble (learning rate included, since
  /// it scales every stored leaf at prediction time).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  double RawScore(std::span<const double> row) const;

  BoostingOptions options_;
  uint64_t seed_;
  double base_score_ = 0.0;  // log-odds prior
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace saged::ml

#endif  // SAGED_ML_GRADIENT_BOOSTING_H_
