#include "core/serialization.h"

#include <fstream>

#include "common/binary_io.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace saged::core {

namespace {

// File layout: magic, version, char space, entry count, entries, and (v2+)
// the extraction-cache hash list.
constexpr uint32_t kMagic = 0x53414745;  // "SAGE"
// v1: no extraction hashes. v2: appends hash count + hashes, so a reloaded
// knowledge base still skips re-extraction of datasets it already ingested.
constexpr uint32_t kVersion = 2;

enum ModelTag : uint8_t {
  kTagRandomForest = 1,
  kTagGradientBoosting = 2,
  kTagLogisticRegression = 3,
};

}  // namespace

Status WriteBaseModel(const ml::BinaryClassifier& model, BinaryWriter* writer) {
  if (const auto* forest =
          dynamic_cast<const ml::RandomForestClassifier*>(&model)) {
    writer->WriteU8(kTagRandomForest);
    forest->Save(writer);
    return writer->status();
  }
  if (const auto* booster =
          dynamic_cast<const ml::GradientBoostingClassifier*>(&model)) {
    writer->WriteU8(kTagGradientBoosting);
    booster->Save(writer);
    return writer->status();
  }
  if (const auto* logistic =
          dynamic_cast<const ml::LogisticRegression*>(&model)) {
    writer->WriteU8(kTagLogisticRegression);
    logistic->Save(writer);
    return writer->status();
  }
  return Status::NotImplemented(
      "only forest / boosting / logistic base models are serializable");
}

Result<std::unique_ptr<ml::BinaryClassifier>> ReadBaseModel(
    BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kTagRandomForest: {
      auto model = std::make_unique<ml::RandomForestClassifier>();
      SAGED_RETURN_NOT_OK(model->Load(reader));
      return std::unique_ptr<ml::BinaryClassifier>(std::move(model));
    }
    case kTagGradientBoosting: {
      auto model = std::make_unique<ml::GradientBoostingClassifier>();
      SAGED_RETURN_NOT_OK(model->Load(reader));
      return std::unique_ptr<ml::BinaryClassifier>(std::move(model));
    }
    case kTagLogisticRegression: {
      auto model = std::make_unique<ml::LogisticRegression>();
      SAGED_RETURN_NOT_OK(model->Load(reader));
      return std::unique_ptr<ml::BinaryClassifier>(std::move(model));
    }
    default:
      return Status::IoError("unknown model tag in knowledge base file");
  }
}

Status WriteKnowledgeBase(const KnowledgeBase& kb, std::ostream* out) {
  BinaryWriter writer(out);
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  kb.char_space().Save(&writer);
  writer.WriteU64(kb.size());
  for (const auto& entry : kb.entries()) {
    writer.WriteString(entry.dataset);
    writer.WriteString(entry.column);
    writer.WriteF64Vector(entry.signature);
    if (entry.model == nullptr) {
      return Status::InvalidArgument("knowledge base entry without a model");
    }
    SAGED_RETURN_NOT_OK(WriteBaseModel(*entry.model, &writer));
  }
  writer.WriteU64(kb.extraction_hashes().size());
  for (uint64_t hash : kb.extraction_hashes()) writer.WriteU64(hash);
  return writer.status();
}

Result<KnowledgeBase> ReadKnowledgeBase(std::istream* in) {
  BinaryReader reader(in);
  SAGED_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) return Status::IoError("not a SAGED knowledge base");
  SAGED_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version < 1 || version > kVersion) {
    return Status::IoError("unsupported knowledge base version");
  }
  KnowledgeBase kb;
  SAGED_RETURN_NOT_OK(kb.mutable_char_space()->Load(&reader));
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
  if (n > BinaryReader::kMaxLength) return Status::IoError("corrupt entry count");
  for (uint64_t i = 0; i < n; ++i) {
    BaseModelEntry entry;
    SAGED_ASSIGN_OR_RETURN(entry.dataset, reader.ReadString());
    SAGED_ASSIGN_OR_RETURN(entry.column, reader.ReadString());
    SAGED_ASSIGN_OR_RETURN(entry.signature, reader.ReadF64Vector());
    SAGED_ASSIGN_OR_RETURN(entry.model, ReadBaseModel(&reader));
    kb.AddEntry(std::move(entry));
  }
  if (version >= 2) {
    SAGED_ASSIGN_OR_RETURN(uint64_t n_hashes, reader.ReadU64());
    if (n_hashes > BinaryReader::kMaxLength) {
      return Status::IoError("corrupt extraction hash count");
    }
    for (uint64_t i = 0; i < n_hashes; ++i) {
      SAGED_ASSIGN_OR_RETURN(uint64_t hash, reader.ReadU64());
      kb.RecordExtraction(hash);
    }
  }
  return kb;
}

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  SAGED_RETURN_NOT_OK(WriteKnowledgeBase(kb, &out));
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ReadKnowledgeBase(&in);
}

}  // namespace saged::core
