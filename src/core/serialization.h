#ifndef SAGED_CORE_SERIALIZATION_H_
#define SAGED_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/binary_io.h"
#include "common/status.h"
#include "core/knowledge_base.h"

namespace saged::core {

/// Knowledge-base persistence: the offline knowledge-extraction phase runs
/// once (possibly on another machine) and its output — the shared character
/// space and every trained base model with its column signature — is saved
/// to a single file the online detector loads later.
///
/// Supported base-model families: random forest, gradient boosting, and
/// logistic regression. MLP base models are rejected with NotImplemented
/// (retrain them instead; they are cheap).
[[nodiscard]] Status SaveKnowledgeBase(const KnowledgeBase& kb,
                                       const std::string& path);
[[nodiscard]] Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path);

/// Stream-level variants (used by the file functions and by tests).
[[nodiscard]] Status WriteKnowledgeBase(const KnowledgeBase& kb,
                                        std::ostream* out);
[[nodiscard]] Result<KnowledgeBase> ReadKnowledgeBase(std::istream* in);

/// Single-model (de)serialization — one tag byte plus the model payload,
/// the exact per-entry encoding of the monolithic format above. Shared
/// with the sharded store (src/kb/shard_store), whose shard files hold
/// these records, so a migrated knowledge base round-trips byte-identical.
[[nodiscard]] Status WriteBaseModel(const ml::BinaryClassifier& model,
                                    BinaryWriter* writer);
[[nodiscard]] Result<std::unique_ptr<ml::BinaryClassifier>> ReadBaseModel(
    BinaryReader* reader);

}  // namespace saged::core

#endif  // SAGED_CORE_SERIALIZATION_H_
