#ifndef SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_
#define SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_

#include "common/status.h"
#include "core/config.h"
#include "core/knowledge_base.h"
#include "data/error_mask.h"
#include "data/table.h"

namespace saged::core {

/// The offline knowledge-extraction phase: for every column of a historical
/// dataset (whose cells carry dirty/clean labels from a prior cleaning
/// effort), featurize the cells, train one binary base classifier, compute
/// the column signature, and store everything in the KnowledgeBase.
class KnowledgeExtractor {
 public:
  explicit KnowledgeExtractor(const SagedConfig& config) : config_(config) {}

  /// Ingests one historical dataset. `labels` marks which cells of `data`
  /// are dirty (from the prior cleaning). Registers the dataset's character
  /// vocabulary into the knowledge base's shared char space, trains a
  /// Word2Vec model on the dataset's tuples, then trains one base model per
  /// column.
  Status AddDataset(const Table& data, const ErrorMask& labels,
                    KnowledgeBase* kb) const;

 private:
  SagedConfig config_;
};

}  // namespace saged::core

#endif  // SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_
