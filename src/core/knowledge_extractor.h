#ifndef SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_
#define SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_

#include "common/executor.h"
#include "common/status.h"
#include "core/config.h"
#include "core/knowledge_base.h"
#include "data/error_mask.h"
#include "data/table.h"

namespace saged::core {

/// The offline knowledge-extraction phase: for every column of a historical
/// dataset (whose cells carry dirty/clean labels from a prior cleaning
/// effort), featurize the cells, train one binary base classifier, compute
/// the column signature, and store everything in the KnowledgeBase.
///
/// The per-column featurize+train loop — embarrassingly parallel — runs on
/// the given executor, capped by `config.extract_threads`. Each column
/// derives its own RNG stream from (config.seed, column index), so the
/// extracted knowledge base is bit-identical at any thread count.
class KnowledgeExtractor {
 public:
  /// `executor` = nullptr uses the process-wide Executor::Shared() pool.
  explicit KnowledgeExtractor(const SagedConfig& config,
                              Executor* executor = nullptr)
      : config_(config),
        executor_(executor != nullptr ? executor : &Executor::Shared()) {}

  /// Ingests one historical dataset. `labels` marks which cells of `data`
  /// are dirty (from the prior cleaning). Registers the dataset's character
  /// vocabulary into the knowledge base's shared char space, trains a
  /// Word2Vec model on the dataset's tuples, then trains one base model per
  /// column.
  ///
  /// When `config.extraction_cache` is set and the knowledge base has
  /// already ingested identical content under an identical extraction
  /// configuration, the whole pass is skipped (counted as
  /// `extract.cache_hits`). The recorded hashes persist through
  /// serialization — both the monolithic v2 file and the sharded v3
  /// store's manifest (src/kb/kb_builder.h) carry them — so the cache is
  /// cross-run: re-extracting an already-ingested corpus against a
  /// reopened knowledge base is a per-dataset no-op.
  Status AddDataset(const Table& data, const ErrorMask& labels,
                    KnowledgeBase* kb) const;

  /// Stable 64-bit fingerprint of everything the extraction output depends
  /// on: the dataset name and cells, the label mask, and the
  /// extraction-relevant config knobs (base model, seed, caps, featurizer
  /// settings). Key of the knowledge base's extraction cache.
  static uint64_t ContentHash(const Table& data, const ErrorMask& labels,
                              const SagedConfig& config);

 private:
  SagedConfig config_;
  Executor* executor_;
};

}  // namespace saged::core

#endif  // SAGED_CORE_KNOWLEDGE_EXTRACTOR_H_
