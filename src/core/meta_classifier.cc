#include "core/meta_classifier.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::core {

Status MetaClassifier::Fit(const ml::Matrix& meta,
                           const std::vector<size_t>& rows,
                           const std::vector<int>& labels) {
  if (rows.empty()) return Status::InvalidArgument("no labeled rows");
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows/labels size mismatch");
  }
  SAGED_TRACE_SPAN("meta_train/fit");
  SAGED_COUNTER_INC("meta_train.fits");
  bool has0 = std::find(labels.begin(), labels.end(), 0) != labels.end();
  bool has1 = std::find(labels.begin(), labels.end(), 1) != labels.end();
  if (!has0 || !has1) {
    SAGED_COUNTER_INC("meta_train.fallbacks");
    // Single-class labels: fall back to base-model voting with a threshold
    // calibrated on the labeled cells.
    fallback_ = true;
    fallback_class_ = has1 ? 1 : 0;
    auto votes = VoteScores(meta.SelectRows(rows));
    if (fallback_class_ == 0) {
      // Every labeled cell is clean: only votes strictly above all of them
      // may be called dirty (but never drop below the nominal 0.5).
      double max_clean = 0.0;
      for (double v : votes) max_clean = std::max(max_clean, v);
      threshold_ = std::max(0.5, max_clean + 1e-9);
    } else {
      // Every labeled cell is dirty: anything voting at least as high as
      // the weakest of them counts as dirty.
      double min_dirty = 1.0;
      for (double v : votes) min_dirty = std::min(min_dirty, v);
      threshold_ = std::min(0.5, min_dirty - 1e-9);
    }
    return Status::OK();
  }
  fallback_ = false;
  SAGED_ASSIGN_OR_RETURN(model_, MakeModel(type_, seed_));
  ml::Matrix train = meta.SelectRows(rows);
  SAGED_RETURN_NOT_OK(model_->Fit(train, labels));

  // Calibrate the decision threshold: sweep the midpoints of the training
  // probabilities and keep the cut with the best training F1 (with so few
  // positives the raw probabilities rarely reach 0.5).
  auto proba = model_->PredictProba(train);
  std::vector<double> candidates = proba;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  double best_f1 = -1.0;
  double best_threshold = 0.5;
  auto eval = [&](double th) {
    size_t tp = 0;
    size_t fp = 0;
    size_t fn = 0;
    for (size_t i = 0; i < proba.size(); ++i) {
      bool pred = proba[i] > th;
      if (labels[i] && pred) {
        ++tp;
      } else if (!labels[i] && pred) {
        ++fp;
      } else if (labels[i] && !pred) {
        ++fn;
      }
    }
    double p = tp + fp ? double(tp) / (tp + fp) : 0.0;
    double r = tp + fn ? double(tp) / (tp + fn) : 0.0;
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  };
  // Candidates ascend, so ties resolve to the lowest qualifying cut — the
  // midpoint just above the highest clean training probability — which
  // favors recall on the unlabeled cells without giving up training
  // precision.
  for (size_t i = 0; i + 1 < candidates.size(); ++i) {
    double th = 0.5 * (candidates[i] + candidates[i + 1]);
    double f1 = eval(th);
    if (f1 > best_f1 + 1e-12) {
      best_f1 = f1;
      best_threshold = th;
    }
  }
  threshold_ = best_threshold;
  return Status::OK();
}

std::vector<double> MetaClassifier::VoteScores(const ml::Matrix& meta) const {
  size_t n_votes =
      vote_cols_ > 0 ? std::min(vote_cols_, meta.cols()) : meta.cols();
  std::vector<double> out(meta.rows(), 0.0);
  for (size_t r = 0; r < meta.rows(); ++r) {
    auto row = meta.Row(r);
    double sum = 0.0;
    for (size_t c = 0; c < n_votes; ++c) sum += row[c];
    out[r] = n_votes == 0 ? 0.0 : sum / static_cast<double>(n_votes);
  }
  return out;
}

std::vector<double> MetaClassifier::PredictProba(const ml::Matrix& meta) const {
  if (fallback_) return VoteScores(meta);
  SAGED_CHECK(model_ != nullptr) << "meta classifier not fitted";
  return model_->PredictProba(meta);
}

std::vector<int> MetaClassifier::Predict(const ml::Matrix& meta) const {
  auto proba = PredictProba(meta);
  std::vector<int> out(proba.size());
  for (size_t i = 0; i < proba.size(); ++i) {
    out[i] = proba[i] > threshold_ ? 1 : 0;
  }
  return out;
}

}  // namespace saged::core
