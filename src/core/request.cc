#include "core/request.h"

#include "common/contracts.h"

namespace saged::core {

DetectionRequest DetectionRequest::ForTable(const Table* table,
                                            OracleFn oracle,
                                            DetectionOptions options) {
  SAGED_CHECK(table != nullptr) << "DetectionRequest::ForTable needs a table";
  DetectionRequest request;
  request.source_ = table;
  request.oracle_ = std::move(oracle);
  request.options_ = options;
  return request;
}

DetectionRequest DetectionRequest::ForCsv(std::string csv_path,
                                          OracleFn oracle,
                                          DetectionOptions options) {
  DetectionRequest request;
  request.source_ = std::move(csv_path);
  request.oracle_ = std::move(oracle);
  request.options_ = options;
  return request;
}

bool DetectionRequest::has_table() const {
  return std::holds_alternative<const Table*>(source_);
}

bool DetectionRequest::has_csv() const {
  return std::holds_alternative<std::string>(source_);
}

const Table& DetectionRequest::table() const {
  SAGED_CHECK(has_table()) << "request source is not an in-memory table";
  return *std::get<const Table*>(source_);
}

const std::string& DetectionRequest::csv_path() const {
  SAGED_CHECK(has_csv()) << "request source is not a CSV path";
  return std::get<std::string>(source_);
}

Status DetectionRequest::Validate() const {
  if (std::holds_alternative<std::monostate>(source_)) {
    return Status::InvalidArgument("detection request carries no data source");
  }
  if (has_csv() && csv_path().empty()) {
    return Status::InvalidArgument("detection request CSV path is empty");
  }
  if (!oracle_) {
    return Status::InvalidArgument("detection request oracle is null");
  }
  if (options_.stream && has_table()) {
    return Status::InvalidArgument(
        "streaming detection requires a CSV source, not an in-memory table");
  }
  if (options_.block_rows == 0) {
    return Status::InvalidArgument("block-rows must be positive");
  }
  if (options_.chunk_bytes == 0) {
    return Status::InvalidArgument("chunk-bytes must be positive");
  }
  return Status::OK();
}

}  // namespace saged::core
