#ifndef SAGED_CORE_REQUEST_H_
#define SAGED_CORE_REQUEST_H_

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/status.h"
#include "core/config.h"
#include "core/labeling.h"
#include "data/table.h"

namespace saged::core {

/// Knobs of one detection run that are properties of the *request*, not of
/// the trained engine: which execution path to take and how to block the
/// out-of-core scan. Every front end (CLI `detect`, the benches, the serve
/// daemon) parses these through the shared registry in core/config_flags.h.
struct DetectionOptions {
  /// Take the out-of-core streaming path (requires a CSV source). Off =
  /// in-memory detection; a CSV source is loaded whole first.
  bool stream = false;
  /// Rows decoded and featurized per streaming block. Smaller blocks lower
  /// the transient working set; predictions are byte-identical at any value.
  size_t block_rows = 50000;
  /// Raw CSV read-buffer size of the streaming path. Exposed so tests can
  /// shrink it to force records across chunk boundaries.
  size_t chunk_bytes = 1 << 20;
};

/// One detection request — the single request-shaped argument of
/// Saged::Run. The data source is a tagged variant (an in-memory table or a
/// CSV path), so a caller cannot pass both or neither: the factories are
/// the only constructors, and the typed accessors SAGED_CHECK the active
/// alternative.
///
/// The request optionally carries a per-request SagedConfig override.
/// Run() never mutates the engine, so concurrent requests with different
/// configs (budget, labeling strategy, thread caps, ...) share one loaded
/// knowledge base — the contract the serve daemon is built on.
class DetectionRequest {
 public:
  /// In-memory source. `table` must outlive the Run() call; the request
  /// does not copy it. Dies (SAGED_CHECK) on a null table.
  static DetectionRequest ForTable(const Table* table, OracleFn oracle,
                                   DetectionOptions options = {});

  /// File source. With options.stream the CSV is scanned out-of-core;
  /// otherwise it is loaded whole and detection runs in memory.
  static DetectionRequest ForCsv(std::string csv_path, OracleFn oracle,
                                 DetectionOptions options = {});

  bool has_table() const;
  bool has_csv() const;

  /// The in-memory source. Dies (SAGED_CHECK) unless has_table().
  const Table& table() const;
  /// The file source. Dies (SAGED_CHECK) unless has_csv().
  const std::string& csv_path() const;

  const OracleFn& oracle() const { return oracle_; }
  const DetectionOptions& options() const { return options_; }
  DetectionOptions& options() { return options_; }

  /// Per-request engine configuration. Unset = the Saged instance's own
  /// config applies. Validated by Run() like any other config.
  void set_config(SagedConfig config) { config_ = std::move(config); }
  const std::optional<SagedConfig>& config() const { return config_; }

  /// Declares the (rows, cols) extent the oracle can answer for — e.g. the
  /// dimensions of the ground-truth mask behind MaskOracle. When set, Run()
  /// rejects a data source of any other shape with InvalidArgument *before
  /// the first oracle call*; without it a too-small mask would be indexed
  /// out of bounds during labeling. Callers that wrap a mask should always
  /// set this.
  void set_oracle_shape(size_t rows, size_t cols) {
    oracle_shape_ = {rows, cols};
  }
  const std::optional<std::pair<size_t, size_t>>& oracle_shape() const {
    return oracle_shape_;
  }

  /// Rejects requests no execution path can serve: a null oracle, an empty
  /// CSV path, streaming from an in-memory table, or zero-sized streaming
  /// blocks / chunks. (A sourceless request is unrepresentable — the
  /// factories are the only constructors.)
  [[nodiscard]] Status Validate() const;

 private:
  DetectionRequest() = default;

  std::variant<std::monostate, const Table*, std::string> source_;
  OracleFn oracle_;
  DetectionOptions options_;
  std::optional<SagedConfig> config_;
  std::optional<std::pair<size_t, size_t>> oracle_shape_;
};

}  // namespace saged::core

#endif  // SAGED_CORE_REQUEST_H_
