#include "core/augmentation.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/telemetry.h"
#include "common/trace.h"
#include "ml/knn_shapley.h"

namespace saged::core {

namespace {

std::vector<size_t> UnlabeledRows(size_t n,
                                  const std::vector<size_t>& labeled_rows) {
  std::unordered_set<size_t> labeled(labeled_rows.begin(), labeled_rows.end());
  std::vector<size_t> out;
  out.reserve(n - labeled.size());
  for (size_t r = 0; r < n; ++r) {
    if (!labeled.count(r)) out.push_back(r);
  }
  return out;
}

std::vector<PseudoLabel> TakeRows(const std::vector<size_t>& rows,
                                  const std::vector<double>& proba,
                                  size_t count) {
  std::vector<PseudoLabel> out;
  out.reserve(std::min(count, rows.size()));
  for (size_t i = 0; i < rows.size() && out.size() < count; ++i) {
    size_t r = rows[i];
    out.emplace_back(r, proba[r] >= 0.5 ? 1 : 0);
  }
  return out;
}

std::vector<PseudoLabel> AugmentColumnImpl(
    AugmentationMethod method, const ml::Matrix& meta_col,
    const std::vector<size_t>& labeled_rows, const std::vector<int>& labeled_y,
    const std::vector<double>& initial_proba, double fraction, Rng& rng) {
  if (method == AugmentationMethod::kNone) return {};
  const size_t n = meta_col.rows();
  auto unlabeled = UnlabeledRows(n, labeled_rows);
  if (unlabeled.empty()) return {};
  size_t target = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(unlabeled.size())));
  target = std::max<size_t>(target, 1);

  switch (method) {
    case AugmentationMethod::kRandom: {
      rng.Shuffle(unlabeled);
      return TakeRows(unlabeled, initial_proba, target);
    }
    case AugmentationMethod::kIterativeRefinement: {
      // Only positively predicted (dirty) cells: high-precision pseudo
      // labels that sharpen the minority class.
      std::vector<size_t> positive;
      for (size_t r : unlabeled) {
        if (initial_proba[r] >= 0.5) positive.push_back(r);
      }
      rng.Shuffle(positive);
      return TakeRows(positive, initial_proba, target);
    }
    case AugmentationMethod::kActiveLearning: {
      // Most uncertain predictions first (the cells that would most change
      // the model).
      std::sort(unlabeled.begin(), unlabeled.end(), [&](size_t a, size_t b) {
        return std::abs(initial_proba[a] - 0.5) <
               std::abs(initial_proba[b] - 0.5);
      });
      return TakeRows(unlabeled, initial_proba, target);
    }
    case AugmentationMethod::kKnnShapley: {
      if (labeled_rows.empty()) return {};
      // Candidates = unlabeled rows with their predicted labels; validation
      // set = the oracle-labeled rows. Keep the top-20% most valuable.
      ml::Matrix cand_x = meta_col.SelectRows(unlabeled);
      std::vector<int> cand_y(unlabeled.size());
      for (size_t i = 0; i < unlabeled.size(); ++i) {
        cand_y[i] = initial_proba[unlabeled[i]] >= 0.5 ? 1 : 0;
      }
      ml::Matrix val_x = meta_col.SelectRows(labeled_rows);
      auto values =
          ml::KnnShapley(cand_x, cand_y, val_x, labeled_y, /*k=*/5);
      // Skip columns where all tuples are equally important (paper rule).
      double lo = *std::min_element(values.begin(), values.end());
      double hi = *std::max_element(values.begin(), values.end());
      if (hi - lo < 1e-12) return {};
      std::vector<size_t> order(unlabeled.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](size_t a, size_t b) { return values[a] > values[b]; });
      std::vector<PseudoLabel> out;
      for (size_t i = 0; i < order.size() && out.size() < target; ++i) {
        size_t r = unlabeled[order[i]];
        out.emplace_back(r, cand_y[order[i]]);
      }
      return out;
    }
    case AugmentationMethod::kNone:
      break;
  }
  return {};
}

}  // namespace

std::vector<PseudoLabel> AugmentColumn(AugmentationMethod method,
                                       const ml::Matrix& meta_col,
                                       const std::vector<size_t>& labeled_rows,
                                       const std::vector<int>& labeled_y,
                                       const std::vector<double>& initial_proba,
                                       double fraction, Rng& rng) {
  SAGED_TRACE_SPAN("augment/column");
  auto out = AugmentColumnImpl(method, meta_col, labeled_rows, labeled_y,
                               initial_proba, fraction, rng);
  if (method != AugmentationMethod::kNone) {
    SAGED_COUNTER_INC("augment.rounds");
    SAGED_COUNTER_ADD("augment.pseudo_labels", out.size());
  }
  return out;
}

}  // namespace saged::core
