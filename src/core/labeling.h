#ifndef SAGED_CORE_LABELING_H_
#define SAGED_CORE_LABELING_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "ml/matrix.h"

namespace saged::core {

/// Answers a label request for one cell: 1 = dirty, 0 = clean. In the
/// evaluation harness this is backed by the ground-truth mask (the paper's
/// simulated oracle); in production it is a human labeler.
using OracleFn = std::function<int(size_t row, size_t col)>;

/// Selects `budget` tuples to be labeled by the oracle, implementing the
/// four strategies of Section 4.1. `meta` holds one meta-feature matrix per
/// dirty column (all with the same row count). `vote_cols` gives, per
/// column, how many leading meta columns are base-model probabilities (the
/// heuristic strategy counts only those; empty means every column is a
/// vote). The active-learning strategy queries the oracle incrementally
/// while selecting; the other strategies never call it.
std::vector<size_t> SelectTuples(const SagedConfig& config,
                                 const std::vector<ml::Matrix>& meta,
                                 const std::vector<size_t>& vote_cols,
                                 size_t budget, const OracleFn& oracle,
                                 Rng& rng);

namespace internal {

/// Individual strategies, exposed for unit testing.
std::vector<size_t> SelectRandom(size_t n_rows, size_t budget, Rng& rng);

/// Rows with the highest count of positive meta-feature values (only the
/// leading `vote_cols[j]` columns of column j are counted; empty = all).
std::vector<size_t> SelectHeuristic(const std::vector<ml::Matrix>& meta,
                                    const std::vector<size_t>& vote_cols,
                                    size_t budget, Rng& rng);

/// Raha-inspired clustering-based sampling: per iteration, agglomerative
/// clusters per column, softmax over unlabeled-cluster coverage.
std::vector<size_t> SelectClustering(const std::vector<ml::Matrix>& meta,
                                     size_t budget, size_t sample_cap,
                                     Rng& rng);

/// ED2-inspired active learning: pick the least-certain column, then its
/// least-certain unlabeled tuple; retrain the column's meta classifier on
/// the oracle's answers each round.
std::vector<size_t> SelectActiveLearning(const SagedConfig& config,
                                         const std::vector<ml::Matrix>& meta,
                                         size_t budget, const OracleFn& oracle,
                                         Rng& rng);

}  // namespace internal
}  // namespace saged::core

#endif  // SAGED_CORE_LABELING_H_
