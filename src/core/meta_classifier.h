#ifndef SAGED_CORE_META_CLASSIFIER_H_
#define SAGED_CORE_META_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "ml/matrix.h"

namespace saged::core {

/// Per-column meta classifier trained on labeled meta-features. When the
/// labeled cells turn out single-class (a real risk with tiny budgets on
/// low-error columns), it degrades to majority voting over the base-model
/// predictions instead of refusing to predict.
class MetaClassifier {
 public:
  /// `vote_cols` bounds the columns used by the majority-vote fallback to
  /// the leading base-model probability block (meta-features may carry
  /// appended cell metadata, which must not be averaged as votes).
  /// 0 means all columns are votes.
  MetaClassifier(ModelType type, uint64_t seed, size_t vote_cols = 0)
      : type_(type), seed_(seed), vote_cols_(vote_cols) {}

  /// `rows` select the labeled meta-feature rows; `labels` align with them.
  Status Fit(const ml::Matrix& meta, const std::vector<size_t>& rows,
             const std::vector<int>& labels);

  /// P(dirty) per row of `meta`.
  std::vector<double> PredictProba(const ml::Matrix& meta) const;

  std::vector<int> Predict(const ml::Matrix& meta) const;

  bool IsFallback() const { return fallback_; }
  double threshold() const { return threshold_; }

 private:
  /// Mean base-model vote per row (the fallback score).
  std::vector<double> VoteScores(const ml::Matrix& meta) const;

  ModelType type_;
  uint64_t seed_;
  size_t vote_cols_;
  std::unique_ptr<ml::BinaryClassifier> model_;
  bool fallback_ = false;
  int fallback_class_ = 0;  // the single observed class
  /// Decision threshold calibrated on the labeled cells. Two biases make a
  /// fixed 0.5 cut wrong: matched base models can be systematically
  /// mis-calibrated for a foreign column (voting "dirty" on everything),
  /// and a meta model trained with one or two positives among twenty labels
  /// rarely pushes any probability past 0.5. Anchoring the boundary to the
  /// labeled cells' scores absorbs both.
  double threshold_ = 0.5;
};

}  // namespace saged::core

#endif  // SAGED_CORE_META_CLASSIFIER_H_
