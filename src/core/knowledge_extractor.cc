#include "core/knowledge_extractor.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "features/featurizer.h"
#include "features/signature.h"
#include "text/tokenizer.h"

namespace saged::core {

Status KnowledgeExtractor::AddDataset(const Table& data,
                                      const ErrorMask& labels,
                                      KnowledgeBase* kb) const {
  if (data.NumRows() == 0 || data.NumCols() == 0) {
    return Status::InvalidArgument("empty historical dataset");
  }
  if (labels.rows() != data.NumRows() || labels.cols() != data.NumCols()) {
    return Status::InvalidArgument(
        StrFormat("label mask shape (%zux%zu) != table shape (%zux%zu)",
                  labels.rows(), labels.cols(), data.NumRows(),
                  data.NumCols()));
  }

  SAGED_TRACE_SPAN("extract");
  SAGED_COUNTER_INC("extract.datasets");

  // 1. Register this dataset's characters into the shared char space so the
  //    zero-padded TF-IDF slots cover its vocabulary.
  {
    SAGED_TRACE_SPAN("extract/register_chars");
    for (const auto& column : data.columns()) {
      features::ColumnFeaturizer::RegisterChars(column,
                                                kb->mutable_char_space());
    }
  }

  // 2. Train the dataset-level Word2Vec model (each tuple is a document).
  std::vector<std::vector<std::string>> documents;
  documents.reserve(data.NumRows());
  for (size_t r = 0; r < data.NumRows(); ++r) {
    documents.push_back(text::TupleTokens(data.Row(r)));
  }
  text::Word2Vec w2v(config_.w2v, config_.seed);
  {
    SAGED_TRACE_SPAN("extract/train_w2v");
    SAGED_RETURN_NOT_OK(w2v.Train(documents));
  }

  // 3. One base model per column.
  SAGED_TRACE_SPAN("extract/base_models");
  Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  features::FeatureToggles toggles{config_.use_metadata_features,
                                   config_.use_w2v_features,
                                   config_.use_tfidf_features};
  features::ColumnFeaturizer featurizer(&w2v, &kb->char_space(), toggles);
  for (size_t j = 0; j < data.NumCols(); ++j) {
    const Column& column = data.column(j);
    SAGED_ASSIGN_OR_RETURN(ml::Matrix features, featurizer.Featurize(column));
    std::vector<int> y = labels.ColumnLabels(j);

    // Cap the training set; keep every dirty cell (they are the rare class
    // that carries the error-pattern knowledge) and subsample the clean
    // ones.
    if (features.rows() > config_.base_model_sample_cap) {
      std::vector<size_t> dirty_rows;
      std::vector<size_t> clean_rows;
      for (size_t r = 0; r < y.size(); ++r) {
        (y[r] ? dirty_rows : clean_rows).push_back(r);
      }
      size_t clean_target =
          config_.base_model_sample_cap > dirty_rows.size()
              ? config_.base_model_sample_cap - dirty_rows.size()
              : config_.base_model_sample_cap / 2;
      rng.Shuffle(clean_rows);
      clean_rows.resize(std::min(clean_rows.size(), clean_target));
      std::vector<size_t> keep = dirty_rows;
      keep.insert(keep.end(), clean_rows.begin(), clean_rows.end());
      std::sort(keep.begin(), keep.end());
      features = features.SelectRows(keep);
      std::vector<int> y_sub;
      y_sub.reserve(keep.size());
      for (size_t r : keep) y_sub.push_back(y[r]);
      y = std::move(y_sub);
    }

    // A column whose labels are single-class cannot train a discriminative
    // model; skip it (its knowledge is vacuous).
    bool has_dirty = std::find(y.begin(), y.end(), 1) != y.end();
    bool has_clean = std::find(y.begin(), y.end(), 0) != y.end();
    if (!has_dirty || !has_clean) {
      SAGED_LOG(Debug) << "skipping single-class historical column "
                       << data.name() << "." << column.name();
      SAGED_COUNTER_INC("extract.columns_skipped");
      continue;
    }

    auto model = MakeModel(config_.base_model, rng.Next());
    if (model == nullptr) return Status::InvalidArgument("bad base model type");
    StopWatch fit_watch;
    SAGED_RETURN_NOT_OK(model->Fit(features, y));
    SAGED_HISTOGRAM_OBSERVE("extract.base_model_fit_ms", fit_watch.Millis());
    SAGED_COUNTER_INC("extract.base_models");

    BaseModelEntry entry;
    entry.dataset = data.name();
    entry.column = column.name();
    entry.signature = features::ColumnSignature(column);
    entry.model = std::move(model);
    kb->AddEntry(std::move(entry));
  }
  return Status::OK();
}

}  // namespace saged::core
