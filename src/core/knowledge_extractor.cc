#include "core/knowledge_extractor.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/contracts.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "features/featurizer.h"
#include "features/kernels.h"
#include "features/signature.h"
#include "text/tokenizer.h"

namespace saged::core {

namespace {

// FNV-1a, the repo's only content-hash use; collisions would merely cause a
// spurious cache hit between two datasets a user deliberately ingested with
// identical config, so 64 bits is plenty.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t value) { HashBytes(h, &value, 8); }

void HashF64(uint64_t* h, double value) { HashBytes(h, &value, 8); }

void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

/// Derives the column-local RNG seed. Mixing the column index through an
/// odd multiplier before folding it into the user seed keeps the streams
/// distinct per column while staying independent of execution order — the
/// root of the bit-identical-at-any-thread-count guarantee.
uint64_t ColumnSeed(uint64_t seed, size_t column) {
  return seed ^ 0x9e3779b97f4a7c15ULL ^
         (0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(column) + 1));
}

}  // namespace

uint64_t KnowledgeExtractor::ContentHash(const Table& data,
                                         const ErrorMask& labels,
                                         const SagedConfig& config) {
  uint64_t h = kFnvOffset;
  HashString(&h, data.name());
  HashU64(&h, data.NumRows());
  HashU64(&h, data.NumCols());
  for (const auto& column : data.columns()) {
    HashString(&h, column.name());
    for (const auto& cell : column.values()) HashString(&h, cell);
  }
  for (size_t c = 0; c < labels.cols(); ++c) {
    for (size_t r = 0; r < labels.rows(); ++r) {
      HashU64(&h, labels.IsDirty(r, c) ? 1 : 0);
    }
  }
  // Every knob the extraction output depends on (thread counts excluded:
  // they do not change the result).
  HashU64(&h, static_cast<uint64_t>(config.base_model));
  HashU64(&h, config.base_model_sample_cap);
  HashU64(&h, config.char_slots);
  HashU64(&h, config.use_metadata_features);
  HashU64(&h, config.use_w2v_features);
  HashU64(&h, config.use_tfidf_features);
  HashU64(&h, config.w2v.dim);
  HashU64(&h, config.w2v.window);
  HashU64(&h, config.w2v.negative);
  HashU64(&h, config.w2v.epochs);
  HashF64(&h, config.w2v.learning_rate);
  HashU64(&h, config.w2v.min_count);
  HashU64(&h, config.w2v.max_documents);
  HashU64(&h, config.seed);
  return h;
}

Status KnowledgeExtractor::AddDataset(const Table& data,
                                      const ErrorMask& labels,
                                      KnowledgeBase* kb) const {
  if (data.NumRows() == 0 || data.NumCols() == 0) {
    return Status::InvalidArgument("empty historical dataset");
  }
  if (labels.rows() != data.NumRows() || labels.cols() != data.NumCols()) {
    return Status::InvalidArgument(
        StrFormat("label mask shape (%zux%zu) != table shape (%zux%zu)",
                  labels.rows(), labels.cols(), data.NumRows(),
                  data.NumCols()));
  }
  SAGED_RETURN_NOT_OK(config_.Validate());

  SAGED_TRACE_SPAN("extract");

  uint64_t content_hash = 0;
  if (config_.extraction_cache) {
    SAGED_TRACE_SPAN("extract/content_hash");
    content_hash = ContentHash(data, labels, config_);
    if (kb->HasExtraction(content_hash)) {
      SAGED_COUNTER_INC("extract.cache_hits");
      SAGED_LOG(Debug) << "extraction cache hit for " << data.name()
                       << "; skipping featurization and training";
      return Status::OK();
    }
    SAGED_COUNTER_INC("extract.cache_misses");
  }

  SAGED_COUNTER_INC("extract.datasets");

  // 1. Register this dataset's characters into the shared char space so the
  //    zero-padded TF-IDF slots cover its vocabulary.
  {
    SAGED_TRACE_SPAN("extract/register_chars");
    for (const auto& column : data.columns()) {
      features::ColumnFeaturizer::RegisterChars(column,
                                                kb->mutable_char_space());
    }
  }

  // 2. Train the dataset-level Word2Vec model (each tuple is a document).
  std::vector<std::vector<std::string>> documents;
  documents.reserve(data.NumRows());
  for (size_t r = 0; r < data.NumRows(); ++r) {
    documents.push_back(text::TupleTokens(data.Row(r)));
  }
  text::Word2Vec w2v(config_.w2v, config_.seed);
  {
    SAGED_TRACE_SPAN("extract/train_w2v");
    SAGED_RETURN_NOT_OK(w2v.Train(documents));
  }

  // 3. One base model per column, fanned out over the shared executor.
  //    Each column owns an RNG derived from (seed, column index) and writes
  //    into its own slot, then slots are appended in column order — the
  //    knowledge base comes out bit-identical at any thread count.
  SAGED_TRACE_SPAN("extract/base_models");
  features::kernels::SetSimdEnabled(config_.featurize_simd);
  features::ColumnFeaturizer featurizer(&w2v, &kb->char_space(),
                                        MakeFeaturizeOptions(config_));
  // The paper's knowledge-extraction contract: every column — historical or
  // dirty — featurizes into the same zero-padded width, or base models and
  // meta-features silently stop lining up (detection quality collapses
  // without an error). Enforced per column below.
  const size_t expected_width =
      features::ColumnFeaturizer::FeatureWidth(config_.w2v.dim,
                                               kb->char_space());
  const size_t cols = data.NumCols();
  std::vector<std::optional<BaseModelEntry>> slots(cols);
  std::vector<Status> column_status(cols);
  auto train_column = [&](size_t j) {
    const Column& column = data.column(j);
    Rng rng(ColumnSeed(config_.seed, j));
    Result<ml::Matrix> features = [&] {
      SAGED_TRACE_SPAN("extract/featurize");
      return featurizer.Featurize(column);
    }();
    if (!features.ok()) {
      column_status[j] = features.status();
      return;
    }
    SAGED_CHECK_EQ(features->cols(), expected_width)
        << "featurization width drifted for " << data.name() << "."
        << column.name();
    SAGED_CHECK_EQ(features->rows(), column.values().size())
        << "featurizer must emit one row per cell of " << data.name() << "."
        << column.name();
    std::vector<int> y = labels.ColumnLabels(j);

    // Cap the training set; keep every dirty cell (they are the rare class
    // that carries the error-pattern knowledge) and subsample the clean
    // ones.
    if (features->rows() > config_.base_model_sample_cap) {
      std::vector<size_t> dirty_rows;
      std::vector<size_t> clean_rows;
      for (size_t r = 0; r < y.size(); ++r) {
        (y[r] ? dirty_rows : clean_rows).push_back(r);
      }
      size_t clean_target =
          config_.base_model_sample_cap > dirty_rows.size()
              ? config_.base_model_sample_cap - dirty_rows.size()
              : config_.base_model_sample_cap / 2;
      rng.Shuffle(clean_rows);
      clean_rows.resize(std::min(clean_rows.size(), clean_target));
      std::vector<size_t> keep = dirty_rows;
      keep.insert(keep.end(), clean_rows.begin(), clean_rows.end());
      std::sort(keep.begin(), keep.end());
      *features = features->SelectRows(keep);
      std::vector<int> y_sub;
      y_sub.reserve(keep.size());
      for (size_t r : keep) y_sub.push_back(y[r]);
      y = std::move(y_sub);
    }

    // A column whose labels are single-class cannot train a discriminative
    // model; skip it (its knowledge is vacuous).
    bool has_dirty = std::find(y.begin(), y.end(), 1) != y.end();
    bool has_clean = std::find(y.begin(), y.end(), 0) != y.end();
    if (!has_dirty || !has_clean) {
      SAGED_LOG(Debug) << "skipping single-class historical column "
                       << data.name() << "." << column.name();
      SAGED_COUNTER_INC("extract.columns_skipped");
      return;
    }

    auto model = MakeModel(config_.base_model, rng.Next());
    if (!model.ok()) {
      column_status[j] = model.status();
      return;
    }
    StopWatch fit_watch;
    {
      SAGED_TRACE_SPAN("extract/fit");
      column_status[j] = (*model)->Fit(*features, y);
    }
    if (!column_status[j].ok()) return;
    SAGED_HISTOGRAM_OBSERVE("extract.base_model_fit_ms", fit_watch.Millis());
    SAGED_COUNTER_INC("extract.base_models");

    BaseModelEntry entry;
    entry.dataset = data.name();
    entry.column = column.name();
    entry.signature = features::ColumnSignature(column);
    entry.model = std::move(model).value();
    slots[j] = std::move(entry);
  };
  executor_->ParallelFor(cols, train_column, config_.extract_threads);
  for (const auto& status : column_status) {
    SAGED_RETURN_NOT_OK(status);
  }
  for (auto& slot : slots) {
    if (slot.has_value()) kb->AddEntry(std::move(slot).value());
  }
  if (config_.extraction_cache) kb->RecordExtraction(content_hash);
  return Status::OK();
}

}  // namespace saged::core
