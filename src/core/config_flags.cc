#include "core/config_flags.h"

#include <cerrno>
#include <cstdlib>

#include "common/strings.h"

namespace saged::core {

namespace {

Result<uint64_t> ParseCount(const std::string& name,
                            const std::string& value) {
  errno = 0;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("--%s expects a non-negative integer, got '%s'",
                  name.c_str(), value.c_str()));
  }
  return parsed;
}

Result<double> ParseReal(const std::string& name, const std::string& value) {
  auto parsed = ParseDouble(value);
  if (!parsed.has_value()) {
    return Status::InvalidArgument(StrFormat(
        "--%s expects a number, got '%s'", name.c_str(), value.c_str()));
  }
  return *parsed;
}

Result<bool> ParseBool(const std::string& name, const std::string& value) {
  std::string v = ToLower(value);
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return Status::InvalidArgument(StrFormat(
      "--%s expects on/off, got '%s'", name.c_str(), value.c_str()));
}

Result<ModelType> ParseModelType(const std::string& name,
                                 const std::string& value) {
  for (ModelType type :
       {ModelType::kRandomForest, ModelType::kGradientBoosting,
        ModelType::kLogisticRegression, ModelType::kMlp}) {
    if (value == ModelTypeName(type)) return type;
  }
  return Status::InvalidArgument(StrFormat(
      "--%s: unknown model type '%s'", name.c_str(), value.c_str()));
}

}  // namespace

const std::vector<ConfigFlag>& SagedConfigFlags() {
  static const auto& flags = *new std::vector<ConfigFlag>{
      {"budget", "oracle labeling budget in tuples"},
      {"seed", "RNG seed for every phase"},
      {"extract-threads",
       "offline featurize+train parallelism (0 = hardware, 1 = sequential)"},
      {"detect-threads",
       "online per-column parallelism (0 = hardware, 1 = sequential)"},
      {"cache", "extraction cache on/off (skip re-adding unchanged history)"},
      {"similarity", "matcher: cosine | clustering | indexed"},
      {"cosine-threshold", "cosine matcher similarity cutoff in [0, 1]"},
      {"signature-clusters", "clustering matcher K-Means cluster count"},
      {"max-models", "upper bound on matched base models per column"},
      {"index-probes",
       "indexed matcher: signature-index buckets probed per query (0 = auto)"},
      {"index-buckets",
       "signature-index / shard bucket count when building a store (0 = auto)"},
      {"kb-cache-shards",
       "lazily-loaded store: max shards resident at once (0 = unbounded)"},
      {"labeling",
       "tuple selection: random | heuristic | clustering | active_learning"},
      {"augmentation",
       "label augmentation: none | random | iterative_refinement | "
       "active_learning | knn_shapley"},
      {"augmentation-fraction", "share of cells pseudo-labeled in [0, 1]"},
      {"base-model", "base classifier family (random_forest | ...)"},
      {"meta-model", "meta classifier family (random_forest | ...)"},
      {"char-slots", "TF-IDF slots in the shared char space"},
      {"w2v-dim", "Word2Vec embedding width"},
      {"w2v-epochs", "Word2Vec training epochs"},
      {"featurize-mode",
       "featurization hot path: scalar | dict | auto (byte-identical output)"},
      {"featurize-dict-ratio",
       "auto mode's dictionary cutoff on the column distinct ratio in [0, 1]"},
      {"featurize-simd",
       "SSE/NEON char-class kernels on/off (parity-tested, identical output)"},
  };
  return flags;
}

bool IsSagedConfigFlag(const std::string& name) {
  for (const auto& flag : SagedConfigFlags()) {
    if (name == flag.name) return true;
  }
  return false;
}

Status ApplySagedFlag(const std::string& name, const std::string& value,
                      SagedConfig* config) {
  if (name == "budget") {
    SAGED_ASSIGN_OR_RETURN(config->labeling_budget, ParseCount(name, value));
  } else if (name == "seed") {
    SAGED_ASSIGN_OR_RETURN(config->seed, ParseCount(name, value));
  } else if (name == "extract-threads") {
    SAGED_ASSIGN_OR_RETURN(config->extract_threads, ParseCount(name, value));
  } else if (name == "detect-threads") {
    SAGED_ASSIGN_OR_RETURN(config->detect_threads, ParseCount(name, value));
  } else if (name == "cache") {
    SAGED_ASSIGN_OR_RETURN(config->extraction_cache, ParseBool(name, value));
  } else if (name == "similarity") {
    bool found = false;
    for (SimilarityMethod method :
         {SimilarityMethod::kCosine, SimilarityMethod::kClustering,
          SimilarityMethod::kIndexed}) {
      if (value == SimilarityMethodName(method)) {
        config->similarity = method;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("--similarity: unknown method '%s'", value.c_str()));
    }
  } else if (name == "cosine-threshold") {
    SAGED_ASSIGN_OR_RETURN(config->cosine_threshold, ParseReal(name, value));
  } else if (name == "signature-clusters") {
    SAGED_ASSIGN_OR_RETURN(config->n_signature_clusters,
                           ParseCount(name, value));
  } else if (name == "max-models") {
    SAGED_ASSIGN_OR_RETURN(config->max_models_per_column,
                           ParseCount(name, value));
  } else if (name == "index-probes") {
    SAGED_ASSIGN_OR_RETURN(config->index_probes, ParseCount(name, value));
  } else if (name == "index-buckets") {
    SAGED_ASSIGN_OR_RETURN(config->index_buckets, ParseCount(name, value));
  } else if (name == "kb-cache-shards") {
    SAGED_ASSIGN_OR_RETURN(config->kb_cache_shards, ParseCount(name, value));
  } else if (name == "labeling") {
    bool found = false;
    for (LabelingStrategy strategy :
         {LabelingStrategy::kRandom, LabelingStrategy::kHeuristic,
          LabelingStrategy::kClustering, LabelingStrategy::kActiveLearning}) {
      if (value == LabelingStrategyName(strategy)) {
        config->labeling = strategy;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("--labeling: unknown strategy '%s'", value.c_str()));
    }
  } else if (name == "augmentation") {
    bool found = false;
    for (AugmentationMethod method :
         {AugmentationMethod::kNone, AugmentationMethod::kRandom,
          AugmentationMethod::kIterativeRefinement,
          AugmentationMethod::kActiveLearning,
          AugmentationMethod::kKnnShapley}) {
      if (value == AugmentationMethodName(method)) {
        config->augmentation = method;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("--augmentation: unknown method '%s'", value.c_str()));
    }
  } else if (name == "augmentation-fraction") {
    SAGED_ASSIGN_OR_RETURN(config->augmentation_fraction,
                           ParseReal(name, value));
  } else if (name == "base-model") {
    SAGED_ASSIGN_OR_RETURN(config->base_model, ParseModelType(name, value));
  } else if (name == "meta-model") {
    SAGED_ASSIGN_OR_RETURN(config->meta_model, ParseModelType(name, value));
  } else if (name == "char-slots") {
    SAGED_ASSIGN_OR_RETURN(config->char_slots, ParseCount(name, value));
  } else if (name == "w2v-dim") {
    SAGED_ASSIGN_OR_RETURN(config->w2v.dim, ParseCount(name, value));
  } else if (name == "w2v-epochs") {
    SAGED_ASSIGN_OR_RETURN(config->w2v.epochs, ParseCount(name, value));
  } else if (name == "featurize-mode") {
    bool found = false;
    for (features::FeaturizeMode mode :
         {features::FeaturizeMode::kScalar, features::FeaturizeMode::kDict,
          features::FeaturizeMode::kAuto}) {
      if (value == FeaturizeModeName(mode)) {
        config->featurize_mode = mode;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrFormat("--featurize-mode: unknown mode '%s'", value.c_str()));
    }
  } else if (name == "featurize-dict-ratio") {
    SAGED_ASSIGN_OR_RETURN(config->featurize_dict_ratio,
                           ParseReal(name, value));
  } else if (name == "featurize-simd") {
    SAGED_ASSIGN_OR_RETURN(config->featurize_simd, ParseBool(name, value));
  } else {
    return Status::NotFound(
        StrFormat("unknown config flag '%s'", name.c_str()));
  }
  return Status::OK();
}

Status ApplySagedFlagList(const std::string& list, SagedConfig* config) {
  if (list.empty()) return Status::OK();
  for (const auto& item : Split(list, ',')) {
    if (Trim(item).empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("flag list entry '%s' is not name=value", item.c_str()));
    }
    SAGED_RETURN_NOT_OK(ApplySagedFlag(std::string(Trim(item.substr(0, eq))),
                                       std::string(Trim(item.substr(eq + 1))),
                                       config));
  }
  return Status::OK();
}

const std::vector<ConfigFlag>& SagedDetectionFlags() {
  static const auto& flags = *new std::vector<ConfigFlag>{
      {"stream", "detect out-of-core from the CSV (two streaming passes)"},
      {"block-rows", "rows per streaming block (default 50000)"},
      {"chunk-bytes", "raw CSV read-buffer bytes of the streaming path"},
  };
  return flags;
}

bool IsSagedDetectionFlag(const std::string& name) {
  for (const auto& flag : SagedDetectionFlags()) {
    if (name == flag.name) return true;
  }
  return false;
}

bool IsSagedPresenceFlag(const std::string& name) {
  // "warm" is saged_serve's pin-all-models switch — not a config knob, but
  // the shared CLI parser needs to know it takes no value.
  return name == "stream" || name == "warm";
}

Status ApplySagedDetectionFlag(const std::string& name,
                               const std::string& value,
                               DetectionOptions* options) {
  if (name == "stream") {
    // Presence on a command line arrives as the empty string.
    if (value.empty()) {
      options->stream = true;
    } else {
      SAGED_ASSIGN_OR_RETURN(options->stream, ParseBool(name, value));
    }
  } else if (name == "block-rows") {
    SAGED_ASSIGN_OR_RETURN(options->block_rows, ParseCount(name, value));
  } else if (name == "chunk-bytes") {
    SAGED_ASSIGN_OR_RETURN(options->chunk_bytes, ParseCount(name, value));
  } else {
    return Status::NotFound(
        StrFormat("unknown detection flag '%s'", name.c_str()));
  }
  return Status::OK();
}

const std::vector<ConfigFlag>& SagedToolFlags() {
  static const auto& flags = *new std::vector<ConfigFlag>{
      {"out-dir", "directory for output artifacts (created if missing)"},
      {"telemetry-out", "write the telemetry JSON dump to this path"},
      {"trace-out", "write a Chrome trace-event JSON file to this path"},
      {"runs-dir", "run-ledger directory (default 'runs'; 'none' disables)"},
  };
  return flags;
}

bool IsSagedToolFlag(const std::string& name) {
  for (const auto& flag : SagedToolFlags()) {
    if (name == flag.name) return true;
  }
  return false;
}

}  // namespace saged::core
