#ifndef SAGED_CORE_MATCHER_H_
#define SAGED_CORE_MATCHER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/knowledge_base.h"

namespace saged::core {

/// Selects the relevant base pre-trained models B_rel for one dirty column,
/// given its signature (Section 3.1).
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Indices into kb.entries() whose historical columns are similar enough
  /// to the dirty column. Never empty for a non-empty knowledge base: when
  /// nothing clears the bar, the single most similar entry is returned so
  /// detection can proceed (documented fallback).
  virtual std::vector<size_t> Match(
      const std::vector<double>& signature) const = 0;
};

/// Sentinel threshold below any cosine similarity: SelectRelevant keeps
/// every candidate (the cluster matcher's "inherit the whole cluster").
inline constexpr double kNoMatchThreshold = -2.0;

/// Shared B_rel selection over an explicit candidate set. Every matcher —
/// the cosine scan, the cluster matcher's cap, and the kb/ signature
/// index — funnels through this, so index-vs-scan parity is well-defined:
///   1. candidates with similarity >= threshold survive, in candidate
///      order;
///   2. when none survives (and candidates is non-empty), the single most
///      similar candidate is kept — ties broken toward the lowest index —
///      so detection can proceed (the documented fallback);
///   3. a survivor set larger than max_models is truncated under the
///      deterministic (similarity descending, index ascending) key.
/// Records the match.* telemetry for the final selection.
std::vector<size_t> SelectRelevant(const KnowledgeBase& kb,
                                   const std::vector<double>& signature,
                                   std::vector<size_t> candidates,
                                   double threshold, size_t max_models);

/// SelectRelevant with the similarities already computed: sims[i] must be
/// bit-identical to CosineSimilarity(entries[candidates[i]].signature,
/// signature). The kb/ signature index computes them from its packed
/// bucket-major signature copy (contiguous scan instead of a pointer-chase
/// per candidate); since the copies are exact, selection — and therefore
/// every downstream mask byte — matches the scan path.
std::vector<size_t> SelectRelevant(const KnowledgeBase& kb,
                                   const std::vector<double>& signature,
                                   std::vector<size_t> candidates,
                                   std::vector<double> sims, double threshold,
                                   size_t max_models);

/// Cosine-similarity matcher: every entry with sim >= threshold joins B_rel.
class CosineMatcher : public Matcher {
 public:
  CosineMatcher(const KnowledgeBase* kb, double threshold, size_t max_models);
  std::vector<size_t> Match(const std::vector<double>& signature) const override;

 private:
  const KnowledgeBase* kb_;
  double threshold_;
  size_t max_models_;
};

/// K-Means matcher: historical column signatures are clustered offline; a
/// dirty column is assigned to its nearest cluster and inherits that
/// cluster's base models (Figure 4).
class ClusterMatcher : public Matcher {
 public:
  /// Fits K-Means over the knowledge base's signatures.
  static Result<std::unique_ptr<ClusterMatcher>> Create(
      const KnowledgeBase* kb, size_t n_clusters, size_t max_models,
      uint64_t seed);

  std::vector<size_t> Match(const std::vector<double>& signature) const override;

 private:
  ClusterMatcher(const KnowledgeBase* kb, size_t max_models)
      : kb_(kb), max_models_(max_models) {}

  const KnowledgeBase* kb_;
  size_t max_models_;
  ml::Matrix centroids_;
  std::vector<std::vector<size_t>> cluster_members_;
};

/// Builds the matcher selected by `config`. `similarity = kIndexed`
/// requires an index-bearing knowledge base (one whose matcher factory was
/// installed by kb::AttachIndex or a kb::ShardStore); the factory then
/// builds the bucket-probing matcher, and everything else about matching
/// semantics stays as documented on SelectRelevant.
Result<std::unique_ptr<Matcher>> MakeMatcher(const SagedConfig& config,
                                             const KnowledgeBase* kb);

}  // namespace saged::core

#endif  // SAGED_CORE_MATCHER_H_
