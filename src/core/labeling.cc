#include "core/labeling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "ml/agglomerative.h"

namespace saged::core {

namespace internal {

std::vector<size_t> SelectRandom(size_t n_rows, size_t budget, Rng& rng) {
  return rng.SampleWithoutReplacement(n_rows, budget);
}

std::vector<size_t> SelectHeuristic(const std::vector<ml::Matrix>& meta,
                                    const std::vector<size_t>& vote_cols,
                                    size_t budget, Rng& rng) {
  if (meta.empty()) return {};
  const size_t n = meta[0].rows();
  // Count positive meta-feature values per tuple across all columns; break
  // ties randomly so equal-count tuples are not biased by index order.
  std::vector<std::pair<double, size_t>> scored(n);
  for (size_t r = 0; r < n; ++r) {
    double ones = 0.0;
    for (size_t j = 0; j < meta.size(); ++j) {
      auto row = meta[j].Row(r);
      size_t votes = j < vote_cols.size() && vote_cols[j] > 0
                         ? std::min(vote_cols[j], row.size())
                         : row.size();
      for (size_t c = 0; c < votes; ++c) ones += row[c];
    }
    scored[r] = {ones + 1e-6 * rng.Uniform(), r};
  }
  size_t k = std::min(budget, n);
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), std::greater<>());
  std::vector<size_t> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = scored[i].second;
  return out;
}

std::vector<size_t> SelectClustering(const std::vector<ml::Matrix>& meta,
                                     size_t budget, size_t sample_cap,
                                     Rng& rng) {
  if (meta.empty()) return {};
  const size_t n = meta[0].rows();
  budget = std::min(budget, n);

  // Quadratic dendrograms: work on a row subsample when the dataset is big.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  if (n > sample_cap) {
    pool = rng.SampleWithoutReplacement(n, sample_cap);
    std::sort(pool.begin(), pool.end());
  }
  const size_t p = pool.size();

  // One dendrogram per column over the pooled rows, built once; each
  // iteration cuts it into a growing number of clusters.
  std::vector<ml::Agglomerative> dendrograms(meta.size());
  for (size_t j = 0; j < meta.size(); ++j) {
    ml::Matrix sub = meta[j].SelectRows(pool);
    if (!dendrograms[j].Fit(sub).ok()) return SelectRandom(n, budget, rng);
  }

  std::vector<size_t> selected;
  std::unordered_set<size_t> selected_pool_idx;
  for (size_t iter = 0; iter < budget; ++iter) {
    size_t k = std::min<size_t>(2 + iter, p);
    // Score per pooled row: number of columns whose cluster contains no
    // labeled row yet; softmax-sample a tuple from that distribution.
    std::vector<std::vector<size_t>> labels(meta.size());
    for (size_t j = 0; j < meta.size(); ++j) labels[j] = dendrograms[j].Cut(k);

    std::vector<double> score(p, 0.0);
    for (size_t j = 0; j < meta.size(); ++j) {
      std::vector<char> cluster_labeled(k, 0);
      for (size_t idx : selected_pool_idx) cluster_labeled[labels[j][idx]] = 1;
      for (size_t i = 0; i < p; ++i) {
        if (!cluster_labeled[labels[j][i]]) score[i] += 1.0;
      }
    }
    for (size_t idx : selected_pool_idx) score[idx] = -1e9;  // already taken

    // Softmax over coverage scores.
    double mx = *std::max_element(score.begin(), score.end());
    std::vector<double> probs(p);
    for (size_t i = 0; i < p; ++i) {
      probs[i] = score[i] < -1e8 ? 0.0 : std::exp(score[i] - mx);
    }
    size_t pick = rng.Weighted(probs);
    if (selected_pool_idx.count(pick)) {
      // Degenerate distribution; fall back to any unselected row.
      for (size_t i = 0; i < p; ++i) {
        if (!selected_pool_idx.count(i)) {
          pick = i;
          break;
        }
      }
    }
    selected_pool_idx.insert(pick);
    selected.push_back(pool[pick]);
    if (selected_pool_idx.size() >= p) break;
  }
  return selected;
}

std::vector<size_t> SelectActiveLearning(const SagedConfig& config,
                                         const std::vector<ml::Matrix>& meta,
                                         size_t budget, const OracleFn& oracle,
                                         Rng& rng) {
  if (meta.empty()) return {};
  const size_t n = meta[0].rows();
  budget = std::min(budget, n);
  const size_t n_cols = meta.size();

  // Bootstrap with two random tuples so every column has some labels.
  std::vector<size_t> selected = SelectRandom(n, std::min<size_t>(2, budget), rng);
  std::unordered_set<size_t> taken(selected.begin(), selected.end());

  // Per-column oracle answers for selected tuples.
  std::vector<std::vector<int>> y(n_cols);
  auto record = [&](size_t row) {
    for (size_t j = 0; j < n_cols; ++j) {
      y[j].push_back(oracle(row, j));
    }
  };
  for (size_t row : selected) record(row);

  while (selected.size() < budget) {
    // Train a quick per-column classifier and measure certainty.
    double worst_certainty = 2.0;
    size_t worst_col = 0;
    std::vector<double> worst_proba;
    for (size_t j = 0; j < n_cols; ++j) {
      bool has0 = std::find(y[j].begin(), y[j].end(), 0) != y[j].end();
      bool has1 = std::find(y[j].begin(), y[j].end(), 1) != y[j].end();
      std::vector<double> proba;
      if (has0 && has1) {
        auto model = MakeModel(ModelType::kLogisticRegression, config.seed);
        ml::Matrix train = meta[j].SelectRows(selected);
        if (model.ok() && (*model)->Fit(train, y[j]).ok()) {
          proba = (*model)->PredictProba(meta[j]);
        }
      }
      if (proba.empty()) {
        // Untrainable column: treat as maximally uncertain.
        proba.assign(n, 0.5);
      }
      double certainty = 0.0;
      for (double v : proba) certainty += std::abs(v - 0.5) * 2.0;
      certainty /= static_cast<double>(n);
      if (certainty < worst_certainty) {
        worst_certainty = certainty;
        worst_col = j;
        worst_proba = std::move(proba);
      }
    }

    // Least certain unlabeled tuple within the chosen column.
    double best_u = -1.0;
    size_t pick = 0;
    bool found = false;
    for (size_t r = 0; r < n; ++r) {
      if (taken.count(r)) continue;
      double u = 1.0 - std::abs(worst_proba[r] - 0.5) * 2.0;
      u += 1e-7 * rng.Uniform();  // random tie-break
      if (u > best_u) {
        best_u = u;
        pick = r;
        found = true;
      }
    }
    (void)worst_col;
    if (!found) break;
    taken.insert(pick);
    selected.push_back(pick);
    record(pick);
  }
  return selected;
}

}  // namespace internal

std::vector<size_t> SelectTuples(const SagedConfig& config,
                                 const std::vector<ml::Matrix>& meta,
                                 const std::vector<size_t>& vote_cols,
                                 size_t budget, const OracleFn& oracle,
                                 Rng& rng) {
  if (meta.empty() || meta[0].rows() == 0 || budget == 0) return {};
  SAGED_TRACE_SPAN("label/select_tuples");
  SAGED_COUNTER_ADD("label.budget_spent", std::min(budget, meta[0].rows()));
  const size_t n = meta[0].rows();
  switch (config.labeling) {
    case LabelingStrategy::kRandom:
      return internal::SelectRandom(n, budget, rng);
    case LabelingStrategy::kHeuristic:
      return internal::SelectHeuristic(meta, vote_cols, budget, rng);
    case LabelingStrategy::kClustering:
      return internal::SelectClustering(meta, budget,
                                        config.clustering_sample_cap, rng);
    case LabelingStrategy::kActiveLearning:
      return internal::SelectActiveLearning(config, meta, budget, oracle, rng);
  }
  return internal::SelectRandom(n, budget, rng);
}

}  // namespace saged::core
