#ifndef SAGED_CORE_DETECTOR_H_
#define SAGED_CORE_DETECTOR_H_

#include <string>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "core/knowledge_base.h"
#include "core/labeling.h"
#include "core/request.h"
#include "data/error_mask.h"
#include "data/table.h"
#include "ml/matrix.h"

namespace saged::core {

/// Post-hoc interpretability for one column (the paper's Discussion point 3:
/// "why was this cell flagged?"): which historical columns' models voted,
/// how the per-column classifier decided, and where its cut sits.
struct ColumnDiagnostics {
  std::string column;
  /// "dataset.column" provenance of each matched base model, most similar
  /// first.
  std::vector<std::string> matched_sources;
  /// True when too few label classes were available and the column degraded
  /// to calibrated base-model voting.
  bool used_fallback = false;
  /// The calibrated decision threshold actually applied.
  double threshold = 0.5;
  /// Dirty cells predicted in this column.
  size_t flagged_cells = 0;
};

/// Outcome of one online detection run.
struct DetectionResult {
  /// Predicted dirty cells.
  ErrorMask mask;
  /// Wall-clock seconds of the online phase (the paper's detection time).
  double seconds = 0.0;
  /// Tuples the oracle actually labeled.
  size_t labeled_tuples = 0;
  /// |B_rel| per dirty column (diagnostics for the similarity experiments).
  std::vector<size_t> matched_models;
  /// Per-column explanation of how the decision was made.
  std::vector<ColumnDiagnostics> diagnostics;
};

/// The SAGED tool (paper Figure 2): offline knowledge extraction via
/// AddHistoricalDataset, then online detection via Run.
///
///   core::Saged saged(config);
///   saged.AddHistoricalDataset(adult.dirty, adult.mask);
///   saged.AddHistoricalDataset(movies.dirty, movies.mask);
///   auto result = saged.Run(
///       core::DetectionRequest::ForTable(&beers.dirty,
///                                        MaskOracle(beers.mask)));
///
/// Run is the single online entry point: the in-memory and streaming paths,
/// the CLI, the benches, and the serve daemon all funnel through one
/// request-shaped signature (core/request.h). Detect / DetectStream remain
/// as thin conveniences that build the request for you.
class Saged {
 public:
  /// `executor` = nullptr uses the process-wide Executor::Shared() pool;
  /// pass a dedicated pool to isolate this instance's work. Both phases
  /// (extraction and detection) run on the same executor; the
  /// `extract_threads` / `detect_threads` knobs cap each phase's
  /// parallelism without resizing the pool.
  ///
  /// Config validation is deferred to the entry points (constructors cannot
  /// return a Status): AddHistoricalDataset and Detect reject an invalid
  /// config via SagedConfig::Validate() before doing any work.
  explicit Saged(SagedConfig config = {}, Executor* executor = nullptr);

  const SagedConfig& config() const { return config_; }
  const KnowledgeBase& knowledge_base() const { return kb_; }
  /// Mutable access for callers that manage lazy model residency (e.g. the
  /// serve daemon pinning every model up front via AcquireModels).
  KnowledgeBase* mutable_knowledge_base() { return &kb_; }
  Executor& executor() const { return *executor_; }

  /// Replaces the knowledge base wholesale — e.g. with one restored from
  /// disk via core::LoadKnowledgeBase, skipping re-extraction.
  void SetKnowledgeBase(KnowledgeBase kb) { kb_ = std::move(kb); }

  /// Offline phase: ingest one pre-cleaned historical dataset (its data and
  /// the dirty/clean cell labels from the prior cleaning effort).
  Status AddHistoricalDataset(const Table& data, const ErrorMask& labels);

  /// Online phase, unified entry point: validates the request, resolves the
  /// effective config (the request's override or this instance's), and
  /// dispatches on the request's source and options —
  ///   table source                  -> in-memory detection
  ///   CSV source, options.stream    -> out-of-core streaming detection
  ///   CSV source, !options.stream   -> load the CSV whole, then in-memory
  ///
  /// Run never mutates the engine: concurrent Run calls on one instance are
  /// safe (and how the serve daemon amortizes one knowledge base across
  /// clients), provided no AddHistoricalDataset / SetKnowledgeBase runs
  /// concurrently.
  Result<DetectionResult> Run(const DetectionRequest& request);

  /// Convenience wrapper: in-memory detection on `dirty`, asking `oracle`
  /// for at most `config.labeling_budget` tuple labels.
  Result<DetectionResult> Detect(const Table& dirty, const OracleFn& oracle);

  /// Convenience wrapper for the out-of-core path: detects errors in the
  /// CSV file at `csv_path` without ever materializing the table
  /// (options.stream is implied). Two streaming passes: the first freezes
  /// per-column statistics and the Word2Vec corpus reservoir, the second
  /// featurizes and runs base-model inference one block at a time; only the
  /// narrow per-column meta-feature matrices (rows x (|B_rel| + metadata))
  /// stay resident. Produces a mask byte-identical to Detect on the loaded
  /// table, for any block_rows / chunk_bytes / detect_threads, when the
  /// table has at most `w2v.max_documents` rows; above that both paths
  /// still agree with each other bit-for-bit (the shared reservoir decides
  /// the corpus). Oracle row indices refer to the file's data rows in order.
  Result<DetectionResult> DetectStream(const std::string& csv_path,
                                       const OracleFn& oracle,
                                       const DetectionOptions& options = {});

 private:
  /// The in-memory online path (spans under "detect"). `dirty` is the
  /// request's table or the CSV source loaded whole.
  Result<DetectionResult> DetectInMemory(const SagedConfig& config,
                                         const DetectionRequest& request,
                                         const Table& dirty);

  /// The streaming online path (spans under "detect_stream").
  Result<DetectionResult> DetectStreamed(const SagedConfig& config,
                                         const DetectionRequest& request);

  /// The request's declared oracle shape against the data's actual shape;
  /// both paths call this before the first oracle query, so a mismatched
  /// ground-truth mask is a typed error instead of out-of-bounds labeling
  /// reads.
  static Status CheckOracleShape(const DetectionRequest& request, size_t rows,
                                 size_t cols);

  /// Steps shared verbatim by both online paths once the per-column
  /// meta-feature matrices exist: tuple selection, oracle labeling, meta
  /// classifier training, final cell predictions. Consumes `rng` in a fixed
  /// order — the byte-identity contract between Detect and DetectStream.
  Status FinishDetection(const SagedConfig& config,
                         const std::vector<ml::Matrix>& meta,
                         const std::vector<size_t>& vote_cols,
                         const OracleFn& oracle, Rng& rng,
                         DetectionResult* result);

  SagedConfig config_;
  KnowledgeBase kb_;
  Executor* executor_;
};

/// Oracle backed by a ground-truth mask (the evaluation harness's simulated
/// user). The mask must outlive the returned function.
OracleFn MaskOracle(const ErrorMask& truth);

}  // namespace saged::core

#endif  // SAGED_CORE_DETECTOR_H_
