#include "core/knowledge_base.h"

#include <unordered_set>

namespace saged::core {

size_t KnowledgeBase::NumDatasets() const {
  std::unordered_set<std::string> names;
  for (const auto& e : entries_) names.insert(e.dataset);
  return names.size();
}

ml::Matrix KnowledgeBase::SignatureMatrix() const {
  ml::Matrix out;
  for (const auto& e : entries_) out.AppendRow(e.signature);
  return out;
}

}  // namespace saged::core
