#include "core/knowledge_base.h"

#include <algorithm>
#include <unordered_set>

namespace saged::core {

bool KnowledgeBase::HasExtraction(uint64_t content_hash) const {
  return std::find(extraction_hashes_.begin(), extraction_hashes_.end(),
                   content_hash) != extraction_hashes_.end();
}

void KnowledgeBase::RecordExtraction(uint64_t content_hash) {
  if (!HasExtraction(content_hash)) extraction_hashes_.push_back(content_hash);
}

size_t KnowledgeBase::NumDatasets() const {
  std::unordered_set<std::string> names;
  for (const auto& e : entries_) names.insert(e.dataset);
  return names.size();
}

ml::Matrix KnowledgeBase::SignatureMatrix() const {
  ml::Matrix out;
  for (const auto& e : entries_) out.AppendRow(e.signature);
  return out;
}

Result<ModelLease> KnowledgeBase::AcquireModels(
    const std::vector<size_t>& indices) {
  if (model_provider_ == nullptr) return ModelLease();
  return model_provider_(this, indices);
}

}  // namespace saged::core
