#include "core/detector.h"

#include <algorithm>
#include <span>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/augmentation.h"
#include "core/knowledge_extractor.h"
#include "core/matcher.h"
#include "core/meta_classifier.h"
#include "core/meta_features.h"
#include "data/csv.h"
#include "features/featurizer.h"
#include "features/frozen_stats.h"
#include "features/kernels.h"
#include "features/metadata_profiler.h"
#include "features/signature.h"
#include "text/tokenizer.h"

namespace saged::core {

namespace {

/// Salt of the detection-phase RNG stream (decoupled from extraction).
constexpr uint64_t kDetectRngSalt = 0xD1B54A32D192ED03ULL;

/// Salt of the Word2Vec corpus reservoir. Both online paths build the
/// corpus through a DocumentReservoir seeded with this, so the sampled
/// documents depend only on the row stream — never on blocking.
constexpr uint64_t kReservoirSalt = 0x9E3779B97F4A7C15ULL;

}  // namespace

Saged::Saged(SagedConfig config, Executor* executor)
    : config_(std::move(config)),
      kb_(config_.char_slots),
      executor_(executor != nullptr ? executor : &Executor::Shared()) {}

Status Saged::AddHistoricalDataset(const Table& data, const ErrorMask& labels) {
  KnowledgeExtractor extractor(config_, executor_);
  return extractor.AddDataset(data, labels, &kb_);
}

OracleFn MaskOracle(const ErrorMask& truth) {
  return [&truth](size_t row, size_t col) {
    return truth.IsDirty(row, col) ? 1 : 0;
  };
}

Result<DetectionResult> Saged::Run(const DetectionRequest& request) {
  SAGED_RETURN_NOT_OK(request.Validate());
  const SagedConfig& config =
      request.config().has_value() ? *request.config() : config_;
  SAGED_RETURN_NOT_OK(config.Validate());
  if (kb_.empty()) {
    return Status::InvalidArgument(
        "knowledge base is empty; call AddHistoricalDataset first");
  }
  if (request.has_csv()) {
    if (request.options().stream) {
      return DetectStreamed(config, request);
    }
    SAGED_ASSIGN_OR_RETURN(Table table, ReadCsv(request.csv_path()));
    return DetectInMemory(config, request, table);
  }
  return DetectInMemory(config, request, request.table());
}

Status Saged::CheckOracleShape(const DetectionRequest& request, size_t rows,
                               size_t cols) {
  if (!request.oracle_shape().has_value()) return Status::OK();
  const auto& [oracle_rows, oracle_cols] = *request.oracle_shape();
  if (oracle_rows != rows || oracle_cols != cols) {
    return Status::InvalidArgument(
        "oracle shape " + std::to_string(oracle_rows) + "x" +
        std::to_string(oracle_cols) + " does not match the data's " +
        std::to_string(rows) + "x" + std::to_string(cols));
  }
  return Status::OK();
}

Result<DetectionResult> Saged::Detect(const Table& dirty,
                                      const OracleFn& oracle) {
  return Run(DetectionRequest::ForTable(&dirty, oracle));
}

Result<DetectionResult> Saged::DetectStream(const std::string& csv_path,
                                            const OracleFn& oracle,
                                            const DetectionOptions& options) {
  DetectionOptions streamed = options;
  streamed.stream = true;
  return Run(DetectionRequest::ForCsv(csv_path, oracle, streamed));
}

Result<DetectionResult> Saged::DetectInMemory(const SagedConfig& config,
                                              const DetectionRequest& request,
                                              const Table& dirty) {
  if (dirty.NumRows() == 0 || dirty.NumCols() == 0) {
    return Status::InvalidArgument("empty dirty table");
  }
  SAGED_RETURN_NOT_OK(
      CheckOracleShape(request, dirty.NumRows(), dirty.NumCols()));
  const OracleFn& oracle = request.oracle();

  StopWatch watch;
  SAGED_TRACE_SPAN("detect");
  SAGED_COUNTER_INC("detect.runs");
  features::kernels::SetSimdEnabled(config.featurize_simd);
  Rng rng(config.seed ^ kDetectRngSalt);
  const size_t rows = dirty.NumRows();
  const size_t cols = dirty.NumCols();
  SAGED_COUNTER_ADD("detect.cells", rows * cols);

  // 1. Matcher over the knowledge base (lines 1-4 of Figure 3).
  SAGED_ASSIGN_OR_RETURN(auto matcher, [&] {
    SAGED_TRACE_SPAN("detect/match/build_matcher");
    return MakeMatcher(config, &kb_);
  }());

  // 2. Dataset-level Word2Vec for the dirty data's feature extraction. The
  //    corpus goes through the same seeded reservoir as the streaming path
  //    (the identity for tables within the document cap).
  text::DocumentReservoir reservoir(config.w2v.max_documents,
                                    config.seed ^ kReservoirSalt);
  for (size_t r = 0; r < rows; ++r) {
    reservoir.Add(text::TupleTokens(dirty.Row(r)));
  }
  text::Word2Vec w2v(config.w2v, config.seed);
  {
    SAGED_TRACE_SPAN("detect/featurize/train_w2v");
    SAGED_RETURN_NOT_OK(w2v.Train(reservoir.Take()));
  }

  // 3. Per column: featurize (lines 5-10), run B_rel to build meta-features
  //    (lines 11-13). Column feature matrices are transient; only the narrow
  //    meta-features stay resident.
  DetectionResult result{ErrorMask(rows, cols), 0.0, 0, {}, {}};
  result.diagnostics.resize(cols);
  features::ColumnFeaturizer featurizer(&w2v, &kb_.char_space(),
                                        MakeFeaturizeOptions(config));
  std::vector<ml::Matrix> meta(cols);
  std::vector<size_t> vote_cols(cols, 0);  // model-probability block widths
  {
    // Columns are independent here (matching, featurization, base-model
    // inference touch only immutable shared state), so fan them out over
    // the shared executor. Results land in per-column slots: bit-identical
    // to the sequential order.
    std::vector<Status> column_status(cols);
    auto process_column = [&](size_t j) {
      std::vector<size_t> models;
      {
        SAGED_TRACE_SPAN("detect/match");
        auto signature = features::ColumnSignature(dirty.column(j));
        models = matcher->Match(signature);
      }
      // Pin the matched base models for this column's inference. On a
      // lazily-backed knowledge base (kb::ShardStore) this hydrates the
      // missing shards; concurrent columns share the store's internal
      // synchronization. In-memory knowledge bases return a null lease.
      Result<ModelLease> lease = kb_.AcquireModels(models);
      if (!lease.ok()) {
        column_status[j] = lease.status();
        return;
      }
      result.diagnostics[j].column = dirty.column(j).name();
      for (size_t m : models) {
        result.diagnostics[j].matched_sources.push_back(
            kb_.entries()[m].dataset + "." + kb_.entries()[m].column);
      }
      Result<ml::Matrix> features = [&] {
        SAGED_TRACE_SPAN("detect/featurize");
        return featurizer.Featurize(dirty.column(j));
      }();
      if (!features.ok()) {
        column_status[j] = features.status();
        return;  // every other column still gets a verdict
      }
      size_t metadata_cols = config.meta_include_cell_metadata
                                 ? features::MetadataProfiler::kWidth
                                 : 0;
      auto meta_j = [&] {
        SAGED_TRACE_SPAN("detect/meta_features");
        // Nested fan-out: when fewer columns than workers are in flight,
        // the matched base models' inference overlaps too.
        return BuildMetaFeatures(*features, kb_, models, metadata_cols,
                                 executor_, config.detect_threads);
      }();
      if (!meta_j.ok()) {
        column_status[j] = meta_j.status();
        return;
      }
      meta[j] = std::move(meta_j).value();
      vote_cols[j] = models.size();
    };
    executor_->ParallelFor(cols, process_column, config.detect_threads);
    for (const auto& status : column_status) {
      SAGED_RETURN_NOT_OK(status);
    }
    for (size_t j = 0; j < cols; ++j) {
      result.matched_models.push_back(result.diagnostics[j].matched_sources.size());
    }
  }
  SAGED_GAUGE_SAMPLE_RSS("detect.rss_bytes");

  SAGED_RETURN_NOT_OK(
      FinishDetection(config, meta, vote_cols, oracle, rng, &result));
  result.seconds = watch.Seconds();
  return result;
}

Result<DetectionResult> Saged::DetectStreamed(const SagedConfig& config,
                                              const DetectionRequest& request) {
  const std::string& csv_path = request.csv_path();
  const OracleFn& oracle = request.oracle();
  const DetectionOptions& options = request.options();
  StopWatch watch;
  SAGED_TRACE_SPAN("detect_stream");
  SAGED_COUNTER_INC("detect.runs");
  SAGED_COUNTER_INC("detect.stream_runs");
  features::kernels::SetSimdEnabled(config.featurize_simd);
  Rng rng(config.seed ^ kDetectRngSalt);

  // Pass 1 (streaming): freeze per-column statistics and fill the Word2Vec
  // corpus reservoir. Nothing but the accumulators outlives a block.
  std::vector<features::ColumnStatsBuilder> builders;
  text::DocumentReservoir reservoir(config.w2v.max_documents,
                                    config.seed ^ kReservoirSalt);
  std::vector<std::string> names;
  size_t rows = 0;
  size_t cols = 0;
  {
    SAGED_TRACE_SPAN("detect_stream/scan_stats");
    CsvBlockReader reader(csv_path, options.block_rows, {},
                          options.chunk_bytes);
    SAGED_RETURN_NOT_OK(reader.Open());
    names = reader.column_names();
    cols = names.size();
    if (cols == 0) return Status::InvalidArgument("empty dirty table");
    builders.resize(cols);
    CsvBlock block;
    std::vector<Cell> row_cells(cols);
    while (true) {
      SAGED_ASSIGN_OR_RETURN(bool more, reader.Next(&block));
      if (!more) break;
      for (size_t j = 0; j < cols; ++j) {
        for (const auto& cell : block.columns[j]) builders[j].Observe(cell);
      }
      for (size_t i = 0; i < block.rows(); ++i) {
        for (size_t j = 0; j < cols; ++j) row_cells[j] = block.columns[j][i];
        reservoir.Add(text::TupleTokens(row_cells));
      }
      SAGED_COUNTER_ADD("detect.stream_blocks", 1);
      SAGED_GAUGE_SAMPLE_RSS("detect.rss_bytes");
    }
    rows = reader.rows_read();
  }
  if (rows == 0) return Status::InvalidArgument("empty dirty table");
  // Pass 1 fixed the data's shape; bounce a mismatched oracle now, before
  // the expensive second pass and before labeling ever queries it.
  SAGED_RETURN_NOT_OK(CheckOracleShape(request, rows, cols));
  SAGED_COUNTER_ADD("detect.cells", rows * cols);

  std::vector<features::FrozenColumnStats> stats;
  stats.reserve(cols);
  for (auto& builder : builders) {
    SAGED_ASSIGN_OR_RETURN(auto frozen, builder.Finalize());
    stats.push_back(std::move(frozen));
  }
  builders.clear();

  text::Word2Vec w2v(config.w2v, config.seed);
  {
    SAGED_TRACE_SPAN("detect/featurize/train_w2v");
    SAGED_RETURN_NOT_OK(w2v.Train(reservoir.Take()));
  }

  // Match against the knowledge base and size the resident per-column
  // meta-feature matrices (rows x (|B_rel| + metadata)) — the only
  // full-table allocation of this path.
  SAGED_ASSIGN_OR_RETURN(auto matcher, [&] {
    SAGED_TRACE_SPAN("detect/match/build_matcher");
    return MakeMatcher(config, &kb_);
  }());
  DetectionResult result{ErrorMask(rows, cols), 0.0, 0, {}, {}};
  result.diagnostics.resize(cols);
  const size_t metadata_cols = config.meta_include_cell_metadata
                                   ? features::MetadataProfiler::kWidth
                                   : 0;
  std::vector<std::vector<size_t>> models(cols);
  std::vector<ml::Matrix> meta(cols);
  std::vector<size_t> vote_cols(cols, 0);
  {
    SAGED_TRACE_SPAN("detect/match");
    for (size_t j = 0; j < cols; ++j) {
      models[j] = matcher->Match(stats[j].signature);
      result.diagnostics[j].column = names[j];
      for (size_t m : models[j]) {
        result.diagnostics[j].matched_sources.push_back(
            kb_.entries()[m].dataset + "." + kb_.entries()[m].column);
      }
      vote_cols[j] = models[j].size();
      meta[j] = ml::Matrix(rows, models[j].size() + metadata_cols);
      result.matched_models.push_back(models[j].size());
    }
  }

  // Pin every matched base model across pass 2 in one acquisition (a
  // lazily-backed knowledge base hydrates all needed shards in parallel
  // here; an in-memory one hands back a null lease). Held until the
  // function returns so block-level inference never sees an evicted model.
  ModelLease model_lease;
  {
    std::vector<size_t> all_models;
    for (size_t j = 0; j < cols; ++j) {
      all_models.insert(all_models.end(), models[j].begin(), models[j].end());
    }
    std::sort(all_models.begin(), all_models.end());
    all_models.erase(std::unique(all_models.begin(), all_models.end()),
                     all_models.end());
    SAGED_ASSIGN_OR_RETURN(model_lease, kb_.AcquireModels(all_models));
  }

  // Pass 2 (streaming): featurize each block under the frozen stats and run
  // base-model inference straight into the resident meta matrices. Rows are
  // independent in both stages, so the filled matrices are bit-identical to
  // one whole-column pass.
  {
    SAGED_TRACE_SPAN("detect_stream/block_infer");
    features::ColumnFeaturizer featurizer(&w2v, &kb_.char_space(),
                                          MakeFeaturizeOptions(config));
    // Per-column featurization scratch, reused block after block (arena
    // discipline): blocks are sequential and columns are parallel within a
    // block, so slot j is only ever touched by column j's task.
    std::vector<features::FeatureArena> arenas(cols);
    std::vector<ml::Matrix> feature_scratch(cols);
    CsvBlockReader reader(csv_path, options.block_rows, {},
                          options.chunk_bytes);
    SAGED_RETURN_NOT_OK(reader.Open());
    if (reader.column_names() != names) {
      return Status::IoError("'" + csv_path + "' changed between passes");
    }
    CsvBlock block;
    size_t block_index = 0;
    while (true) {
      SAGED_ASSIGN_OR_RETURN(bool more, reader.Next(&block));
      if (!more) break;
      // The block index rides on the trace event (args.id), so streaming
      // block overlap and stragglers are attributable in the Chrome trace.
      SAGED_TRACE_SPAN_ARG("detect_stream/block", block_index++);
      if (block.first_row + block.rows() > rows) {
        return Status::IoError("'" + csv_path + "' changed between passes");
      }
      std::vector<Status> column_status(cols);
      auto process_column = [&](size_t j) {
        Status featurized = [&] {
          SAGED_TRACE_SPAN("detect/featurize");
          return featurizer.FeaturizeFrozenInto(
              stats[j], std::span<const Cell>(block.columns[j]),
              &feature_scratch[j], &arenas[j]);
        }();
        if (!featurized.ok()) {
          column_status[j] = featurized;
          return;
        }
        SAGED_TRACE_SPAN("detect/meta_features");
        column_status[j] = BuildMetaFeaturesInto(
            feature_scratch[j], kb_, models[j], metadata_cols, &meta[j],
            block.first_row, executor_, config.detect_threads);
      };
      executor_->ParallelFor(cols, process_column, config.detect_threads);
      for (const auto& status : column_status) {
        SAGED_RETURN_NOT_OK(status);
      }
      SAGED_GAUGE_SAMPLE_RSS("detect.rss_bytes");
    }
    if (reader.rows_read() != rows) {
      return Status::IoError("'" + csv_path + "' changed between passes");
    }
  }

  SAGED_RETURN_NOT_OK(
      FinishDetection(config, meta, vote_cols, oracle, rng, &result));
  result.seconds = watch.Seconds();
  return result;
}

Status Saged::FinishDetection(const SagedConfig& config,
                              const std::vector<ml::Matrix>& meta,
                              const std::vector<size_t>& vote_cols,
                              const OracleFn& oracle, Rng& rng,
                              DetectionResult* result) {
  const size_t rows = result->mask.rows();
  const size_t cols = result->mask.cols();

  // 4. Tuple selection for labeling (Section 4.1).
  std::vector<size_t> labeled_rows;
  {
    SAGED_TRACE_SPAN("detect/label");
    labeled_rows = SelectTuples(config, meta, vote_cols,
                                config.labeling_budget, oracle, rng);
  }
  if (labeled_rows.empty()) {
    return Status::InvalidArgument("labeling budget too small");
  }
  result->labeled_tuples = labeled_rows.size();

  // 5. Per-column oracle labels for the selected tuples.
  std::vector<std::vector<int>> labels(cols);
  {
    SAGED_TRACE_SPAN("detect/label/oracle");
    for (size_t j = 0; j < cols; ++j) {
      labels[j].reserve(labeled_rows.size());
      for (size_t r : labeled_rows) labels[j].push_back(oracle(r, j));
    }
    SAGED_COUNTER_ADD("detect.oracle_labels", labeled_rows.size() * cols);
  }

  // 6. Meta classifier per column, optional label augmentation (Section
  //    4.2), final cell predictions.
  for (size_t j = 0; j < cols; ++j) {
    MetaClassifier initial(config.meta_model, rng.Next(), vote_cols[j]);
    {
      SAGED_TRACE_SPAN("detect/meta_train");
      SAGED_RETURN_NOT_OK(initial.Fit(meta[j], labeled_rows, labels[j]));
    }

    std::vector<size_t> train_rows = labeled_rows;
    std::vector<int> train_y = labels[j];
    {
      // The span is opened even when augmentation is off so the timing
      // tree always carries a detect/augment row (at ~zero cost).
      SAGED_TRACE_SPAN("detect/augment");
      if (config.augmentation != AugmentationMethod::kNone) {
        auto proba = initial.PredictProba(meta[j]);
        auto pseudo = AugmentColumn(config.augmentation, meta[j],
                                    labeled_rows, labels[j], proba,
                                    config.augmentation_fraction, rng);
        for (const auto& [row, label] : pseudo) {
          train_rows.push_back(row);
          train_y.push_back(label);
        }
      }
    }

    MetaClassifier final_model(config.meta_model, rng.Next(), vote_cols[j]);
    const MetaClassifier* predictor = &initial;
    if (train_rows.size() != labeled_rows.size()) {
      SAGED_TRACE_SPAN("detect/meta_train");
      SAGED_RETURN_NOT_OK(final_model.Fit(meta[j], train_rows, train_y));
      predictor = &final_model;
    }
    SAGED_TRACE_SPAN("detect/classify");
    auto preds = predictor->Predict(meta[j]);
    size_t flagged = 0;
    for (size_t r = 0; r < rows; ++r) {
      if (preds[r]) {
        result->mask.Set(r, j);
        ++flagged;
      }
    }
    SAGED_COUNTER_ADD("detect.cells_flagged", flagged);
    result->diagnostics[j].used_fallback = predictor->IsFallback();
    result->diagnostics[j].threshold = predictor->threshold();
    result->diagnostics[j].flagged_cells = flagged;
  }
  return Status::OK();
}

}  // namespace saged::core
