#ifndef SAGED_CORE_META_FEATURES_H_
#define SAGED_CORE_META_FEATURES_H_

#include <vector>

#include "common/executor.h"
#include "common/status.h"
#include "core/knowledge_base.h"
#include "ml/matrix.h"

namespace saged::core {

/// Runs the matched base models B_rel over one dirty column's padded
/// feature matrix, producing the meta-features F_meta: one prediction
/// column per matched model (rows x |B_rel|), optionally followed by the
/// cell's metadata block. Predictions are the base models' dirty-class
/// probabilities — the soft form of the paper's prediction vectors; the
/// heuristic labeling strategy's "count of positive values" becomes a sum
/// of probabilities, preserving its ranking.
///
/// `metadata_cols` appends that many leading columns of `features` (the
/// metadata profile) after the model predictions, implementing the paper's
/// "combination of the pre-trained models B_rel and the padded feature
/// vectors F_dirty": the meta classifier then sees both the experts' votes
/// and the cell's own statistics, which covers error types absent from the
/// historical inventory.
///
/// A non-null `executor` overlaps the matched models' inference (each model
/// fills its own prediction column, so the output is order-independent);
/// `max_parallelism` has ParallelFor semantics (0 = whole pool). Safe to
/// call from inside an executor task — the nested loop help-drains.
Result<ml::Matrix> BuildMetaFeatures(const ml::Matrix& features,
                                     const KnowledgeBase& kb,
                                     const std::vector<size_t>& model_indices,
                                     size_t metadata_cols = 0,
                                     Executor* executor = nullptr,
                                     size_t max_parallelism = 0);

/// Block form of BuildMetaFeatures for the streaming detector: writes the
/// meta-features of `features` (one block of a column's rows) into rows
/// [row_offset, row_offset + features.rows()) of the preallocated `out`
/// matrix, which spans the whole column. Base-model inference is per-row
/// independent, so filling `out` block by block produces a matrix
/// bit-identical to one whole-column BuildMetaFeatures call.
Status BuildMetaFeaturesInto(const ml::Matrix& features,
                             const KnowledgeBase& kb,
                             const std::vector<size_t>& model_indices,
                             size_t metadata_cols, ml::Matrix* out,
                             size_t row_offset, Executor* executor = nullptr,
                             size_t max_parallelism = 0);

}  // namespace saged::core

#endif  // SAGED_CORE_META_FEATURES_H_
