#include "core/config.h"

#include "common/strings.h"
#include "data/content_hash.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace saged::core {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kRandomForest:
      return "random_forest";
    case ModelType::kGradientBoosting:
      return "gradient_boosting";
    case ModelType::kLogisticRegression:
      return "logistic_regression";
    case ModelType::kMlp:
      return "mlp";
  }
  return "?";
}

const char* SimilarityMethodName(SimilarityMethod method) {
  switch (method) {
    case SimilarityMethod::kCosine:
      return "cosine";
    case SimilarityMethod::kClustering:
      return "clustering";
    case SimilarityMethod::kIndexed:
      return "indexed";
  }
  return "?";
}

const char* LabelingStrategyName(LabelingStrategy strategy) {
  switch (strategy) {
    case LabelingStrategy::kRandom:
      return "random";
    case LabelingStrategy::kHeuristic:
      return "heuristic";
    case LabelingStrategy::kClustering:
      return "clustering";
    case LabelingStrategy::kActiveLearning:
      return "active_learning";
  }
  return "?";
}

const char* AugmentationMethodName(AugmentationMethod method) {
  switch (method) {
    case AugmentationMethod::kNone:
      return "none";
    case AugmentationMethod::kRandom:
      return "random";
    case AugmentationMethod::kIterativeRefinement:
      return "iterative_refinement";
    case AugmentationMethod::kActiveLearning:
      return "active_learning";
    case AugmentationMethod::kKnnShapley:
      return "knn_shapley";
  }
  return "?";
}

const char* FeaturizeModeName(features::FeaturizeMode mode) {
  switch (mode) {
    case features::FeaturizeMode::kScalar:
      return "scalar";
    case features::FeaturizeMode::kDict:
      return "dict";
    case features::FeaturizeMode::kAuto:
      return "auto";
  }
  return "?";
}

Status SagedConfig::Validate() const {
  if (cosine_threshold < 0.0 || cosine_threshold > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "cosine_threshold must be in [0, 1], got %g", cosine_threshold));
  }
  if (n_signature_clusters == 0) {
    return Status::InvalidArgument("n_signature_clusters must be > 0");
  }
  if (max_models_per_column == 0) {
    return Status::InvalidArgument("max_models_per_column must be > 0");
  }
  if (labeling_budget == 0) {
    return Status::InvalidArgument("labeling_budget must be > 0");
  }
  if (augmentation_fraction < 0.0 || augmentation_fraction > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "augmentation_fraction must be in [0, 1], got %g",
        augmentation_fraction));
  }
  if (clustering_sample_cap == 0) {
    return Status::InvalidArgument("clustering_sample_cap must be > 0");
  }
  if (base_model_sample_cap == 0) {
    return Status::InvalidArgument("base_model_sample_cap must be > 0");
  }
  if (char_slots == 0) {
    return Status::InvalidArgument("char_slots must be > 0");
  }
  if (w2v.dim == 0) {
    return Status::InvalidArgument("w2v.dim must be > 0");
  }
  if (featurize_dict_ratio < 0.0 || featurize_dict_ratio > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "featurize_dict_ratio must be in [0, 1], got %g",
        featurize_dict_ratio));
  }
  return Status::OK();
}

uint64_t ConfigContentHash(const SagedConfig& config) {
  Fnv1a h;
  auto u64 = [&h](uint64_t v) { h.Update(v); };
  auto f64 = [&h](double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h.Update(bits);
  };
  u64(static_cast<uint64_t>(config.similarity));
  f64(config.cosine_threshold);
  u64(config.n_signature_clusters);
  u64(config.max_models_per_column);
  u64(config.index_probes);
  u64(config.index_buckets);
  u64(config.kb_cache_shards);
  u64(static_cast<uint64_t>(config.labeling));
  u64(config.labeling_budget);
  u64(static_cast<uint64_t>(config.augmentation));
  f64(config.augmentation_fraction);
  u64(config.clustering_sample_cap);
  u64(static_cast<uint64_t>(config.base_model));
  u64(static_cast<uint64_t>(config.meta_model));
  u64(config.meta_include_cell_metadata);
  u64(config.base_model_sample_cap);
  u64(config.w2v.dim);
  u64(config.w2v.window);
  u64(config.w2v.negative);
  u64(config.w2v.epochs);
  f64(config.w2v.learning_rate);
  u64(config.w2v.min_count);
  u64(config.w2v.max_documents);
  u64(config.char_slots);
  u64(config.use_metadata_features);
  u64(config.use_w2v_features);
  u64(config.use_tfidf_features);
  u64(static_cast<uint64_t>(config.featurize_mode));
  f64(config.featurize_dict_ratio);
  u64(config.featurize_simd);
  u64(config.detect_threads);
  u64(config.extract_threads);
  u64(config.extraction_cache);
  u64(config.seed);
  return h.Digest();
}

features::FeaturizeOptions MakeFeaturizeOptions(const SagedConfig& config) {
  features::FeaturizeOptions options;
  options.toggles = {config.use_metadata_features, config.use_w2v_features,
                     config.use_tfidf_features};
  options.mode = config.featurize_mode;
  options.dict_max_distinct_ratio = config.featurize_dict_ratio;
  return options;
}

Result<std::unique_ptr<ml::BinaryClassifier>> MakeModel(ModelType type,
                                                        uint64_t seed) {
  switch (type) {
    case ModelType::kRandomForest: {
      ml::ForestOptions opts;
      opts.n_trees = 24;
      opts.tree.max_depth = 10;
      opts.max_samples = 4000;
      return std::unique_ptr<ml::BinaryClassifier>(
          std::make_unique<ml::RandomForestClassifier>(opts, seed));
    }
    case ModelType::kGradientBoosting: {
      ml::BoostingOptions opts;
      opts.n_rounds = 25;
      opts.learning_rate = 0.25;
      opts.tree.max_depth = 3;
      return std::unique_ptr<ml::BinaryClassifier>(
          std::make_unique<ml::GradientBoostingClassifier>(opts, seed));
    }
    case ModelType::kLogisticRegression:
      return std::unique_ptr<ml::BinaryClassifier>(
          std::make_unique<ml::LogisticRegression>());
    case ModelType::kMlp: {
      ml::MlpOptions opts;
      opts.hidden = {32};
      opts.epochs = 60;
      return std::unique_ptr<ml::BinaryClassifier>(
          std::make_unique<ml::MlpClassifier>(opts, seed));
    }
  }
  return Status::InvalidArgument("unknown model type");
}

}  // namespace saged::core
