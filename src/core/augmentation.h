#ifndef SAGED_CORE_AUGMENTATION_H_
#define SAGED_CORE_AUGMENTATION_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "ml/matrix.h"

namespace saged::core {

/// A pseudo-labeled cell produced by augmentation: (row, label).
using PseudoLabel = std::pair<size_t, int>;

/// Section 4.2's label augmentation: expands one column's training set with
/// predictions of the initial meta classifier.
///
/// `meta_col`       meta-features of the column (all rows).
/// `labeled_rows`   rows already labeled by the oracle.
/// `initial_proba`  initial meta-classifier probabilities for every row.
/// `labeled_y`      oracle labels aligned with `labeled_rows` (used by the
///                  KNN-Shapley method as its validation set).
/// `fraction`       share of unlabeled rows to pseudo-label (paper uses 20%).
std::vector<PseudoLabel> AugmentColumn(AugmentationMethod method,
                                       const ml::Matrix& meta_col,
                                       const std::vector<size_t>& labeled_rows,
                                       const std::vector<int>& labeled_y,
                                       const std::vector<double>& initial_proba,
                                       double fraction, Rng& rng);

}  // namespace saged::core

#endif  // SAGED_CORE_AUGMENTATION_H_
