#include "core/meta_features.h"

#include "common/contracts.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::core {

Status BuildMetaFeaturesInto(const ml::Matrix& features,
                             const KnowledgeBase& kb,
                             const std::vector<size_t>& model_indices,
                             size_t metadata_cols, ml::Matrix* out,
                             size_t row_offset, Executor* executor,
                             size_t max_parallelism) {
  if (model_indices.empty()) {
    return Status::InvalidArgument("no base models matched");
  }
  if (metadata_cols > features.cols()) {
    return Status::InvalidArgument("metadata_cols exceeds feature width");
  }
  for (size_t idx : model_indices) {
    if (idx >= kb.size()) {
      return Status::OutOfRange("base model index out of range");
    }
  }
  const size_t n_models = model_indices.size();
  if (out->cols() != n_models + metadata_cols) {
    return Status::InvalidArgument("meta matrix width mismatch");
  }
  if (row_offset + features.rows() > out->rows()) {
    return Status::OutOfRange("meta block exceeds output rows");
  }
  SAGED_TRACE_SPAN("meta_features/build");
  SAGED_COUNTER_ADD("meta_features.base_model_invocations", n_models);
  auto run_model = [&](size_t m) {
    StopWatch watch;
    auto proba = kb.entries()[model_indices[m]].model->PredictProba(features);
    SAGED_HISTOGRAM_OBSERVE("meta_features.inference_ms", watch.Millis());
    // A base model that emits the wrong number of scores would smear
    // another model's column; that is a broken classifier, not bad data.
    SAGED_CHECK_EQ(proba.size(), features.rows())
        << "base model " << model_indices[m]
        << " returned a wrong-length probability vector";
    for (size_t r = 0; r < features.rows(); ++r) {
      // Model m owns column m: no write overlap.
      out->At(row_offset + r, m) = proba[r];
    }
  };
  if (executor != nullptr) {
    executor->ParallelFor(n_models, run_model, max_parallelism);
  } else {
    for (size_t m = 0; m < n_models; ++m) run_model(m);
  }
  for (size_t r = 0; r < features.rows(); ++r) {
    for (size_t c = 0; c < metadata_cols; ++c) {
      out->At(row_offset + r, n_models + c) = features.At(r, c);
    }
  }
  return Status::OK();
}

Result<ml::Matrix> BuildMetaFeatures(const ml::Matrix& features,
                                     const KnowledgeBase& kb,
                                     const std::vector<size_t>& model_indices,
                                     size_t metadata_cols, Executor* executor,
                                     size_t max_parallelism) {
  ml::Matrix meta(features.rows(),
                  model_indices.empty() ? 0
                                        : model_indices.size() + metadata_cols);
  SAGED_RETURN_NOT_OK(BuildMetaFeaturesInto(features, kb, model_indices,
                                            metadata_cols, &meta, 0, executor,
                                            max_parallelism));
  SAGED_CHECK_EQ(meta.cols(), model_indices.size() + metadata_cols)
      << "meta-feature width must be |B_rel| plus the metadata block";
  return meta;
}

}  // namespace saged::core
