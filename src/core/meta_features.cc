#include "core/meta_features.h"

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::core {

Result<ml::Matrix> BuildMetaFeatures(const ml::Matrix& features,
                                     const KnowledgeBase& kb,
                                     const std::vector<size_t>& model_indices,
                                     size_t metadata_cols) {
  if (model_indices.empty()) {
    return Status::InvalidArgument("no base models matched");
  }
  if (metadata_cols > features.cols()) {
    return Status::InvalidArgument("metadata_cols exceeds feature width");
  }
  const size_t n_models = model_indices.size();
  SAGED_TRACE_SPAN("meta_features/build");
  SAGED_COUNTER_ADD("meta_features.base_model_invocations", n_models);
  ml::Matrix meta(features.rows(), n_models + metadata_cols);
  for (size_t m = 0; m < n_models; ++m) {
    size_t idx = model_indices[m];
    if (idx >= kb.size()) {
      return Status::OutOfRange("base model index out of range");
    }
    StopWatch watch;
    auto proba = kb.entries()[idx].model->PredictProba(features);
    SAGED_HISTOGRAM_OBSERVE("meta_features.inference_ms", watch.Millis());
    for (size_t r = 0; r < features.rows(); ++r) {
      meta.At(r, m) = proba[r];
    }
  }
  for (size_t r = 0; r < features.rows(); ++r) {
    for (size_t c = 0; c < metadata_cols; ++c) {
      meta.At(r, n_models + c) = features.At(r, c);
    }
  }
  return meta;
}

}  // namespace saged::core
