#include "core/matcher.h"

#include <algorithm>
#include <limits>

#include "common/telemetry.h"
#include "ml/kmeans.h"

namespace saged::core {

namespace {

/// Records the similarity of each selected base model (the paper's Figure 7
/// quantity) plus match-set size; only runs when telemetry is enabled.
void RecordMatchTelemetry(const KnowledgeBase& kb,
                          const std::vector<double>& signature,
                          const std::vector<size_t>& selected) {
  if (!telemetry::Enabled()) return;
  SAGED_COUNTER_INC("match.calls");
  SAGED_COUNTER_ADD("match.models_matched", selected.size());
  for (size_t i : selected) {
    SAGED_HISTOGRAM_OBSERVE(
        "match.similarity",
        ml::CosineSimilarity(kb.entries()[i].signature, signature));
  }
}

/// Keeps the `max_models` most similar entries when a candidate set is too
/// large; similarity-descending order is preserved.
std::vector<size_t> CapBySimilarity(const KnowledgeBase& kb,
                                    const std::vector<double>& signature,
                                    std::vector<size_t> candidates,
                                    size_t max_models) {
  if (candidates.size() <= max_models) return candidates;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](size_t a, size_t b) {
                     return ml::CosineSimilarity(kb.entries()[a].signature,
                                                 signature) >
                            ml::CosineSimilarity(kb.entries()[b].signature,
                                                 signature);
                   });
  candidates.resize(max_models);
  return candidates;
}

size_t MostSimilarEntry(const KnowledgeBase& kb,
                        const std::vector<double>& signature) {
  size_t best = 0;
  double best_sim = -2.0;
  for (size_t i = 0; i < kb.size(); ++i) {
    double sim = ml::CosineSimilarity(kb.entries()[i].signature, signature);
    if (sim > best_sim) {
      best_sim = sim;
      best = i;
    }
  }
  return best;
}

}  // namespace

CosineMatcher::CosineMatcher(const KnowledgeBase* kb, double threshold,
                             size_t max_models)
    : kb_(kb), threshold_(threshold), max_models_(max_models) {}

std::vector<size_t> CosineMatcher::Match(
    const std::vector<double>& signature) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < kb_->size(); ++i) {
    double sim = ml::CosineSimilarity(kb_->entries()[i].signature, signature);
    if (sim >= threshold_) out.push_back(i);
  }
  if (out.empty() && !kb_->empty()) {
    out.push_back(MostSimilarEntry(*kb_, signature));
  }
  out = CapBySimilarity(*kb_, signature, std::move(out), max_models_);
  RecordMatchTelemetry(*kb_, signature, out);
  return out;
}

Result<std::unique_ptr<ClusterMatcher>> ClusterMatcher::Create(
    const KnowledgeBase* kb, size_t n_clusters, size_t max_models,
    uint64_t seed) {
  if (kb->empty()) return Status::InvalidArgument("empty knowledge base");
  auto matcher =
      std::unique_ptr<ClusterMatcher>(new ClusterMatcher(kb, max_models));
  ml::KMeans kmeans(std::min(n_clusters, kb->size()), 100, seed);
  SAGED_RETURN_NOT_OK(kmeans.Fit(kb->SignatureMatrix()));
  matcher->centroids_ = kmeans.centroids();
  matcher->cluster_members_.assign(kmeans.k(), {});
  for (size_t i = 0; i < kb->size(); ++i) {
    matcher->cluster_members_[kmeans.labels()[i]].push_back(i);
  }
  return matcher;
}

std::vector<size_t> ClusterMatcher::Match(
    const std::vector<double>& signature) const {
  // Nearest centroid.
  size_t best_c = 0;
  double best = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double d = ml::EuclideanDistance(centroids_.Row(c), signature);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  std::vector<size_t> out = cluster_members_[best_c];
  if (out.empty() && !kb_->empty()) {
    out.push_back(MostSimilarEntry(*kb_, signature));
  }
  out = CapBySimilarity(*kb_, signature, std::move(out), max_models_);
  RecordMatchTelemetry(*kb_, signature, out);
  return out;
}

Result<std::unique_ptr<Matcher>> MakeMatcher(const SagedConfig& config,
                                             const KnowledgeBase* kb) {
  if (kb->empty()) {
    return Status::InvalidArgument(
        "knowledge base is empty; run knowledge extraction first");
  }
  switch (config.similarity) {
    case SimilarityMethod::kCosine:
      return std::unique_ptr<Matcher>(std::make_unique<CosineMatcher>(
          kb, config.cosine_threshold, config.max_models_per_column));
    case SimilarityMethod::kClustering: {
      SAGED_ASSIGN_OR_RETURN(
          auto matcher,
          ClusterMatcher::Create(kb, config.n_signature_clusters,
                                 config.max_models_per_column, config.seed));
      return std::unique_ptr<Matcher>(std::move(matcher));
    }
  }
  return Status::InvalidArgument("unknown similarity method");
}

}  // namespace saged::core
