#include "core/matcher.h"

#include <algorithm>
#include <limits>

#include "common/contracts.h"
#include "common/telemetry.h"
#include "ml/kmeans.h"

namespace saged::core {

namespace {

/// Records the similarity of each selected base model (the paper's Figure 7
/// quantity) plus match-set size; only runs when telemetry is enabled.
void RecordMatchTelemetry(const KnowledgeBase& kb,
                          const std::vector<double>& signature,
                          const std::vector<size_t>& selected) {
  if (!telemetry::Enabled()) return;
  SAGED_COUNTER_INC("match.calls");
  SAGED_COUNTER_ADD("match.models_matched", selected.size());
  for (size_t i : selected) {
    SAGED_HISTOGRAM_OBSERVE(
        "match.similarity",
        ml::CosineSimilarity(kb.entries()[i].signature, signature));
  }
}

size_t MostSimilarEntry(const KnowledgeBase& kb,
                        const std::vector<double>& signature) {
  size_t best = 0;
  double best_sim = -2.0;
  for (size_t i = 0; i < kb.size(); ++i) {
    double sim = ml::CosineSimilarity(kb.entries()[i].signature, signature);
    if (sim > best_sim) {
      best_sim = sim;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::vector<size_t> SelectRelevant(const KnowledgeBase& kb,
                                   const std::vector<double>& signature,
                                   std::vector<size_t> candidates,
                                   double threshold, size_t max_models) {
  // One similarity per candidate; every later step reuses these values, so
  // equal-similarity ordering cannot drift between steps.
  std::vector<double> sims(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    sims[i] =
        ml::CosineSimilarity(kb.entries()[candidates[i]].signature, signature);
  }
  return SelectRelevant(kb, signature, std::move(candidates), std::move(sims),
                        threshold, max_models);
}

std::vector<size_t> SelectRelevant(const KnowledgeBase& kb,
                                   const std::vector<double>& signature,
                                   std::vector<size_t> candidates,
                                   std::vector<double> sims, double threshold,
                                   size_t max_models) {
  SAGED_DCHECK(sims.size() == candidates.size());
  std::vector<size_t> out;
  std::vector<double> out_sims;
  out.reserve(candidates.size());
  out_sims.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (sims[i] >= threshold) {
      out.push_back(candidates[i]);
      out_sims.push_back(sims[i]);
    }
  }
  if (out.empty() && !candidates.empty()) {
    // Fallback: the single most similar candidate, lowest index on ties.
    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (sims[i] > sims[best] ||
          (sims[i] == sims[best] && candidates[i] < candidates[best])) {
        best = i;
      }
    }
    out.push_back(candidates[best]);
    out_sims.push_back(sims[best]);
  }
  if (out.size() > max_models) {
    // Deterministic (similarity desc, index asc) key — NOT a stable sort
    // over whatever order the candidates arrived in, so a bucket-probing
    // matcher and the full scan truncate ties identically. The key is a
    // total order (index breaks every tie), so partial_sort of the top
    // max_models yields the same selection as a full sort at O(S) instead
    // of O(S log S) — on near-duplicate inventories the survivor set is
    // large and this truncation, not the similarity scan, dominates.
    std::vector<size_t> order(out.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(), order.begin() + max_models, order.end(),
                      [&](size_t a, size_t b) {
                        if (out_sims[a] != out_sims[b]) {
                          return out_sims[a] > out_sims[b];
                        }
                        return out[a] < out[b];
                      });
    std::vector<size_t> capped(max_models);
    for (size_t i = 0; i < max_models; ++i) capped[i] = out[order[i]];
    out = std::move(capped);
  }
  RecordMatchTelemetry(kb, signature, out);
  return out;
}

CosineMatcher::CosineMatcher(const KnowledgeBase* kb, double threshold,
                             size_t max_models)
    : kb_(kb), threshold_(threshold), max_models_(max_models) {}

std::vector<size_t> CosineMatcher::Match(
    const std::vector<double>& signature) const {
  std::vector<size_t> all(kb_->size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return SelectRelevant(*kb_, signature, std::move(all), threshold_,
                        max_models_);
}

Result<std::unique_ptr<ClusterMatcher>> ClusterMatcher::Create(
    const KnowledgeBase* kb, size_t n_clusters, size_t max_models,
    uint64_t seed) {
  if (kb->empty()) return Status::InvalidArgument("empty knowledge base");
  auto matcher =
      std::unique_ptr<ClusterMatcher>(new ClusterMatcher(kb, max_models));
  ml::KMeans kmeans(std::min(n_clusters, kb->size()), 100, seed);
  SAGED_RETURN_NOT_OK(kmeans.Fit(kb->SignatureMatrix()));
  matcher->centroids_ = kmeans.centroids();
  matcher->cluster_members_.assign(kmeans.k(), {});
  for (size_t i = 0; i < kb->size(); ++i) {
    matcher->cluster_members_[kmeans.labels()[i]].push_back(i);
  }
  return matcher;
}

std::vector<size_t> ClusterMatcher::Match(
    const std::vector<double>& signature) const {
  // Nearest centroid.
  size_t best_c = 0;
  double best = std::numeric_limits<double>::max();
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    double d = ml::EuclideanDistance(centroids_.Row(c), signature);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  std::vector<size_t> out = cluster_members_[best_c];
  if (out.empty() && !kb_->empty()) {
    out.push_back(MostSimilarEntry(*kb_, signature));
  }
  // The cluster inherits wholesale (no threshold), then the shared cap.
  return SelectRelevant(*kb_, signature, std::move(out), kNoMatchThreshold,
                        max_models_);
}

Result<std::unique_ptr<Matcher>> MakeMatcher(const SagedConfig& config,
                                             const KnowledgeBase* kb) {
  if (kb->empty()) {
    return Status::InvalidArgument(
        "knowledge base is empty; run knowledge extraction first");
  }
  switch (config.similarity) {
    case SimilarityMethod::kCosine:
      return std::unique_ptr<Matcher>(std::make_unique<CosineMatcher>(
          kb, config.cosine_threshold, config.max_models_per_column));
    case SimilarityMethod::kClustering: {
      SAGED_ASSIGN_OR_RETURN(
          auto matcher,
          ClusterMatcher::Create(kb, config.n_signature_clusters,
                                 config.max_models_per_column, config.seed));
      return std::unique_ptr<Matcher>(std::move(matcher));
    }
    case SimilarityMethod::kIndexed: {
      if (kb->matcher_factory() == nullptr) {
        return Status::InvalidArgument(
            "similarity=indexed needs an index-bearing knowledge base: open "
            "a sharded store (kb::ShardStore) or attach a signature index "
            "(kb::AttachIndex / `saged kb build-index`) first");
      }
      return kb->matcher_factory()(config, kb);
    }
  }
  return Status::InvalidArgument("unknown similarity method");
}

}  // namespace saged::core
