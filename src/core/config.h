#ifndef SAGED_CORE_CONFIG_H_
#define SAGED_CORE_CONFIG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "features/featurizer.h"
#include "ml/classifier.h"
#include "text/word2vec.h"

namespace saged::core {

/// Learner families the paper names for base and meta classifiers.
enum class ModelType {
  kRandomForest,
  kGradientBoosting,
  kLogisticRegression,
  kMlp,
};

/// Section 3.1's two similarity measures, plus the bucket-probing variant
/// of the cosine measure served by the src/kb/ signature index (identical
/// selection semantics, sub-linear candidate generation).
enum class SimilarityMethod {
  kCosine,
  kClustering,
  kIndexed,
};

/// Section 4.1's tuple-selection strategies.
enum class LabelingStrategy {
  kRandom,
  kHeuristic,
  kClustering,
  kActiveLearning,
};

/// Section 4.2's label-augmentation methods (kNone = paper's chosen default).
enum class AugmentationMethod {
  kNone,
  kRandom,
  kIterativeRefinement,
  kActiveLearning,
  kKnnShapley,
};

const char* ModelTypeName(ModelType type);
const char* SimilarityMethodName(SimilarityMethod method);
const char* LabelingStrategyName(LabelingStrategy strategy);
const char* AugmentationMethodName(AugmentationMethod method);
const char* FeaturizeModeName(features::FeaturizeMode mode);

/// Every knob of SAGED. Defaults follow the configuration the paper settles
/// on after its ablation study: clustering similarity, random sampling,
/// no augmentation, 20-tuple budget.
struct SagedConfig {
  // --- similarity / matching ---
  SimilarityMethod similarity = SimilarityMethod::kClustering;
  /// Cosine matcher: minimum signature similarity for a base model to join
  /// B_rel.
  double cosine_threshold = 0.85;
  /// Clustering matcher: number of K-Means clusters over historical columns.
  size_t n_signature_clusters = 8;
  /// Upper bound on |B_rel| per dirty column (keeps meta-features narrow).
  size_t max_models_per_column = 8;

  // --- knowledge-base scale (src/kb: signature index + sharded store) ---
  /// Indexed matcher: signature-index buckets probed per query. 0 = auto
  /// (SignatureIndex::AutoProbes); >= the index's bucket count degrades to
  /// the exact scan (byte-identical to similarity=cosine).
  size_t index_probes = 0;
  /// Signature-index / shard bucket count used when building a store
  /// (kb_builder, `saged kb build-index`). 0 = auto (~sqrt(entries)).
  size_t index_buckets = 0;
  /// Model-cache capacity of a lazily-loaded sharded store: at most this
  /// many shards stay resident (whole shards evict LRU-first once no
  /// detection pins them). 0 = unbounded.
  size_t kb_cache_shards = 0;

  // --- semi-supervised learning ---
  /// The paper settles on random sampling; on our synthetic substrate the
  /// same ablation (Figure 8 bench) favors clustering-based sampling at
  /// small budgets, so that is the default here. See EXPERIMENTS.md.
  LabelingStrategy labeling = LabelingStrategy::kClustering;
  /// Number of tuples the oracle labels.
  size_t labeling_budget = 20;
  AugmentationMethod augmentation = AugmentationMethod::kNone;
  /// Fraction of meta-classifier predictions folded back as pseudo-labels.
  double augmentation_fraction = 0.2;
  /// Row cap for the clustering-based sampler's dendrograms (agglomerative
  /// clustering is quadratic; sampling preserves the strategy's behaviour).
  size_t clustering_sample_cap = 300;

  // --- learners ---
  ModelType base_model = ModelType::kRandomForest;
  ModelType meta_model = ModelType::kRandomForest;
  /// Append the cell's metadata block to the base-model predictions when
  /// forming meta-features (the paper's "combination of the pre-trained
  /// models and the padded feature vectors").
  bool meta_include_cell_metadata = true;
  /// Cell cap per base-model training set (historical columns can have
  /// hundreds of thousands of cells; the classifiers saturate well before).
  size_t base_model_sample_cap = 20000;

  // --- featurization ---
  text::Word2VecOptions w2v;
  /// TF-IDF slots in the shared zero-padded character space.
  size_t char_slots = 64;
  /// Feature-family ablation switches (all on by default).
  bool use_metadata_features = true;
  bool use_w2v_features = true;
  bool use_tfidf_features = true;

  /// Featurization hot-path selection: scalar (per-cell), dict (per distinct
  /// value, gathered through a column dictionary), or auto (dict when the
  /// column's distinct ratio is at most `featurize_dict_ratio`). All modes
  /// produce byte-identical feature matrices — this knob trades work, never
  /// results.
  features::FeaturizeMode featurize_mode = features::FeaturizeMode::kAuto;
  /// Auto-mode dictionary cutoff on the column distinct ratio.
  double featurize_dict_ratio = 0.5;
  /// Use SSE/NEON kernels for the batched char-class counts when the build
  /// has them (parity-tested byte-identical to the scalar references).
  bool featurize_simd = true;

  /// Worker threads for the per-column detection stage (featurization +
  /// base-model inference dominate the online phase and are embarrassingly
  /// parallel across columns). 0 = one thread per hardware core, 1 =
  /// sequential. Results are bit-identical regardless of the setting.
  size_t detect_threads = 0;

  /// Worker threads for the offline per-column featurize+train loop of
  /// knowledge extraction. Same semantics as `detect_threads`: 0 = one per
  /// hardware core, 1 = sequential, and the extracted knowledge base is
  /// bit-identical regardless (per-column seed derivation).
  size_t extract_threads = 0;

  /// When set, AddHistoricalDataset skips featurization and training for a
  /// dataset whose content (data + labels + extraction-relevant knobs)
  /// hash-matches one this knowledge base already ingested. Hits and misses
  /// are exported as `extract.cache_hits` / `extract.cache_misses`.
  bool extraction_cache = true;

  uint64_t seed = 42;

  /// Rejects out-of-range knobs with a descriptive InvalidArgument status.
  /// Every public entry point that consumes a config (Saged, the CLI, the
  /// benches' flag helper) funnels through this instead of re-checking
  /// individual knobs.
  [[nodiscard]] Status Validate() const;
};

/// The features-layer view of the featurization knobs: toggles, hot-path
/// mode, and the auto-mode dictionary cutoff, in one struct the
/// ColumnFeaturizer constructor takes.
features::FeaturizeOptions MakeFeaturizeOptions(const SagedConfig& config);

/// Instantiates an untrained classifier of the given family; an enum value
/// outside the known families yields InvalidArgument (never nullptr).
[[nodiscard]] Result<std::unique_ptr<ml::BinaryClassifier>> MakeModel(
    ModelType type, uint64_t seed);

/// Stable FNV-1a digest over every knob of `config`, for run-ledger
/// provenance: two runs with equal hashes executed under identical
/// configuration. Unlike KnowledgeExtractor::ContentHash this includes the
/// knobs that do not change results (thread counts), because the ledger
/// also explains *performance* differences.
uint64_t ConfigContentHash(const SagedConfig& config);

}  // namespace saged::core

#endif  // SAGED_CORE_CONFIG_H_
