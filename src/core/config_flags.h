#ifndef SAGED_CORE_CONFIG_FLAGS_H_
#define SAGED_CORE_CONFIG_FLAGS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/request.h"

namespace saged::core {

/// One registered SagedConfig knob, addressable as `--name value` on the
/// CLI or `name=value` in a flag list.
struct ConfigFlag {
  const char* name;
  const char* help;
};

/// The single registry of config knobs shared by `tools/saged_cli` and the
/// bench harness — a new knob registered here is immediately settable from
/// both. (Previously each front end parsed its own subset.)
const std::vector<ConfigFlag>& SagedConfigFlags();

/// True when `name` names a registered config knob.
bool IsSagedConfigFlag(const std::string& name);

/// Applies one knob to `config`. Unknown names yield NotFound (so callers
/// can fall through to their own flags); unparseable values yield
/// InvalidArgument. Range checking is SagedConfig::Validate()'s job —
/// callers validate once after applying everything.
Status ApplySagedFlag(const std::string& name, const std::string& value,
                      SagedConfig* config);

/// Applies a comma-separated `name=value,...` list (e.g. the benches'
/// SAGED_CONFIG_FLAGS environment override). Empty input is a no-op.
Status ApplySagedFlagList(const std::string& list, SagedConfig* config);

/// Per-request detection knobs (DetectionOptions fields). Every front end
/// that builds a DetectionRequest — the CLI `detect` subcommand, the serve
/// daemon's request decoder, the benches — parses these spellings:
///   --stream       take the out-of-core streaming path (presence flag)
///   --block-rows   rows per streaming block
///   --chunk-bytes  raw CSV read-buffer size of the streaming path
const std::vector<ConfigFlag>& SagedDetectionFlags();

/// True when `name` names a registered detection-option flag.
bool IsSagedDetectionFlag(const std::string& name);

/// True when `name` is a detection-option flag that takes no value on a
/// command line (`--stream` alone means stream=on). In a `name=value` flag
/// list it still accepts an explicit value.
bool IsSagedPresenceFlag(const std::string& name);

/// Applies one detection-option knob to `options`. Unknown names yield
/// NotFound; unparseable values yield InvalidArgument. Range checking is
/// DetectionRequest::Validate()'s job.
Status ApplySagedDetectionFlag(const std::string& name,
                               const std::string& value,
                               DetectionOptions* options);

/// Output / observability flags shared by every front end. These are NOT
/// SagedConfig knobs — they steer where a run writes its artifacts:
///   --out-dir        directory for BENCH_*.json and other outputs
///   --telemetry-out  telemetry DumpJson destination
///   --trace-out      Chrome trace-event JSON destination
///   --runs-dir       run-ledger directory ("none" disables the ledger)
/// Registered here so saged_cli and the bench harness accept the same
/// spellings and a new front end cannot invent divergent ones.
const std::vector<ConfigFlag>& SagedToolFlags();

/// True when `name` names a registered tool flag.
bool IsSagedToolFlag(const std::string& name);

}  // namespace saged::core

#endif  // SAGED_CORE_CONFIG_FLAGS_H_
