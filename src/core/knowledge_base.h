#ifndef SAGED_CORE_KNOWLEDGE_BASE_H_
#define SAGED_CORE_KNOWLEDGE_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "features/char_space.h"
#include "ml/classifier.h"
#include "ml/matrix.h"

namespace saged::core {

/// One pre-trained base model B_kj and the signature of the historical
/// column it was trained on.
struct BaseModelEntry {
  std::string dataset;
  std::string column;
  std::vector<double> signature;
  std::unique_ptr<ml::BinaryClassifier> model;
};

/// Outcome of the knowledge extraction phase: the base-model zoo plus the
/// shared character space that fixes the zero-padded feature width for every
/// later featurization.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(size_t char_slots = 64) : char_space_(char_slots) {}

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  const features::CharSpace& char_space() const { return char_space_; }
  features::CharSpace* mutable_char_space() { return &char_space_; }

  void AddEntry(BaseModelEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<BaseModelEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Extraction cache: content hashes of every (data, labels, config)
  /// combination this knowledge base has ingested. AddDataset consults it
  /// to skip featurization+training when re-adding unchanged history; the
  /// hashes persist through serialization so a reloaded knowledge base
  /// still recognizes its sources.
  bool HasExtraction(uint64_t content_hash) const;
  void RecordExtraction(uint64_t content_hash);
  const std::vector<uint64_t>& extraction_hashes() const {
    return extraction_hashes_;
  }

  /// Number of distinct historical datasets contributing entries.
  size_t NumDatasets() const;

  /// Stacked signatures (entries x kSignatureWidth), matcher input.
  ml::Matrix SignatureMatrix() const;

 private:
  features::CharSpace char_space_;
  std::vector<BaseModelEntry> entries_;
  /// Ingestion order (deterministic, so serialized bytes are stable).
  std::vector<uint64_t> extraction_hashes_;
};

}  // namespace saged::core

#endif  // SAGED_CORE_KNOWLEDGE_BASE_H_
