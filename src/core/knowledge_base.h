#ifndef SAGED_CORE_KNOWLEDGE_BASE_H_
#define SAGED_CORE_KNOWLEDGE_BASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "features/char_space.h"
#include "ml/classifier.h"
#include "ml/matrix.h"

namespace saged::core {

class Matcher;
struct SagedConfig;
class KnowledgeBase;

/// One pre-trained base model B_kj and the signature of the historical
/// column it was trained on. In a lazily-backed knowledge base (see
/// src/kb/shard_store.h) `model` may be nullptr until the owning store
/// hydrates the entry's shard; the metadata fields are always resident.
struct BaseModelEntry {
  std::string dataset;
  std::string column;
  std::vector<double> signature;
  std::unique_ptr<ml::BinaryClassifier> model;
};

/// RAII pin on a set of lazily-loaded base models: while any lease covering
/// an entry is alive, the backing store keeps that entry's model resident
/// (and never evicts its shard). Releasing the last lease makes the models
/// evictable again. For fully-resident knowledge bases the lease is null
/// and means nothing.
using ModelLease = std::shared_ptr<void>;

/// Hook a backing store installs to hydrate models on demand. Receives the
/// knowledge base being hydrated (passed fresh on every call, so moving the
/// KnowledgeBase never strands the store with a stale pointer) and the
/// entry indices about to be used.
using ModelProvider =
    std::function<Result<ModelLease>(KnowledgeBase*, const std::vector<size_t>&)>;

/// Hook a backing store installs so MakeMatcher(similarity=indexed) can
/// build a matcher over the store's signature index.
using MatcherFactory = std::function<Result<std::unique_ptr<Matcher>>(
    const SagedConfig&, const KnowledgeBase*)>;

/// Outcome of the knowledge extraction phase: the base-model zoo plus the
/// shared character space that fixes the zero-padded feature width for every
/// later featurization.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(size_t char_slots = 64) : char_space_(char_slots) {}

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  const features::CharSpace& char_space() const { return char_space_; }
  features::CharSpace* mutable_char_space() { return &char_space_; }

  void AddEntry(BaseModelEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<BaseModelEntry>& entries() const { return entries_; }
  /// Mutable access for backing stores that hydrate / evict entry models.
  BaseModelEntry* mutable_entry(size_t i) { return &entries_[i]; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Extraction cache: content hashes of every (data, labels, config)
  /// combination this knowledge base has ingested. AddDataset consults it
  /// to skip featurization+training when re-adding unchanged history; the
  /// hashes persist through serialization so a reloaded knowledge base
  /// still recognizes its sources.
  bool HasExtraction(uint64_t content_hash) const;
  void RecordExtraction(uint64_t content_hash);
  const std::vector<uint64_t>& extraction_hashes() const {
    return extraction_hashes_;
  }

  /// Number of distinct historical datasets contributing entries.
  size_t NumDatasets() const;

  /// Stacked signatures (entries x kSignatureWidth), matcher input.
  ml::Matrix SignatureMatrix() const;

  /// Ensures the models behind `indices` are resident and pins them for the
  /// lifetime of the returned lease. On a plain in-memory knowledge base
  /// (no provider installed) this is a no-op returning a null lease —
  /// models are always resident. Callers must hold the lease across every
  /// read of the covered entries' `model` pointers, and a lease must not
  /// outlive this knowledge base.
  ///
  /// Thread-safe against concurrent AcquireModels calls (the provider
  /// serializes hydration/eviction internally), which is how concurrent
  /// detection requests share one lazily-backed knowledge base.
  [[nodiscard]] Result<ModelLease> AcquireModels(
      const std::vector<size_t>& indices);

  /// Installs the lazy-model hook (see src/kb/shard_store.h). The provider
  /// must outlive this knowledge base.
  void SetModelProvider(ModelProvider provider) {
    model_provider_ = std::move(provider);
  }
  bool has_model_provider() const { return model_provider_ != nullptr; }

  /// Installs the matcher hook consumed by MakeMatcher when
  /// config.similarity == kIndexed. The factory (and whatever index it
  /// captures) must outlive this knowledge base.
  void SetMatcherFactory(MatcherFactory factory) {
    matcher_factory_ = std::move(factory);
  }
  const MatcherFactory& matcher_factory() const { return matcher_factory_; }

 private:
  features::CharSpace char_space_;
  std::vector<BaseModelEntry> entries_;
  /// Ingestion order (deterministic, so serialized bytes are stable).
  std::vector<uint64_t> extraction_hashes_;
  ModelProvider model_provider_;
  MatcherFactory matcher_factory_;
};

}  // namespace saged::core

#endif  // SAGED_CORE_KNOWLEDGE_BASE_H_
