#ifndef SAGED_DATAGEN_RULES_H_
#define SAGED_DATAGEN_RULES_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/table.h"

namespace saged::datagen {

/// Functional dependency lhs -> rhs over column indices.
struct FdRule {
  size_t lhs;
  size_t rhs;
};

/// Syntactic pattern constraint on a column. `kind` selects a built-in
/// validator (regex engines are overkill for the shapes we need).
enum class PatternKind {
  kPhone,     // ddd-ddd-dddd
  kDateIso,   // YYYY-MM-DD
  kEmail,     // token@token.token
  kNumeric,   // parses as a number
  kZip,       // 5 digits
  kNonEmpty,  // not a missing token
};

struct PatternRule {
  size_t col;
  PatternKind kind;
};

/// Numeric domain constraint: value must lie within [lo, hi].
struct RangeRule {
  size_t col;
  double lo;
  double hi;
};

/// Cleaning signals a data engineer would hand to NADEEF / HoloClean for
/// one dataset. Produced by the dataset generators (the generators know
/// which constraints their clean data satisfies).
struct RuleSet {
  std::vector<FdRule> fds;
  std::vector<PatternRule> patterns;
  std::vector<RangeRule> ranges;
  std::vector<size_t> not_null_cols;
};

/// True when `value` satisfies the pattern.
bool MatchesPattern(PatternKind kind, const std::string& value);

/// Rows violating FD `rule` in `table` (every row of any lhs group that maps
/// to more than one rhs value).
std::vector<size_t> FdViolations(const Table& table, const FdRule& rule);

/// Per-column value dictionaries for the KATARA baseline; an empty set
/// means the column's domain is open (KATARA skips it).
using KataraDomains = std::vector<std::unordered_set<std::string>>;

}  // namespace saged::datagen

#endif  // SAGED_DATAGEN_RULES_H_
