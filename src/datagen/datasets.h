#ifndef SAGED_DATAGEN_DATASETS_H_
#define SAGED_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/error_mask.h"
#include "data/table.h"
#include "datagen/error_injector.h"
#include "datagen/rules.h"

namespace saged::datagen {

/// Shape of one evaluation dataset, mirroring the paper's Table 1.
struct DatasetSpec {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  double error_rate = 0.0;
  std::vector<ErrorType> error_types;
};

/// A fully materialized evaluation dataset: the synthetic clean table, its
/// corrupted counterpart, the exact ground-truth mask, and the cleaning
/// signals the rule-based / KB-based baselines consume.
struct Dataset {
  DatasetSpec spec;
  Table clean;
  Table dirty;
  ErrorMask mask;
  RuleSet rules;
  KataraDomains domains;
};

/// Generation overrides (paper defaults when left at the sentinel values).
struct MakeOptions {
  uint64_t seed = 7;
  /// 0 keeps the paper's row count. The scalability / robustness sweeps and
  /// the unit tests shrink datasets through this.
  size_t rows = 0;
  /// Negative keeps the paper's error rate (Figure 13 overrides it).
  double error_rate = -1.0;
  /// Outlier magnitude in column stddevs (Figure 14 sweeps it).
  double outlier_degree = 4.0;
};

/// Names of the 14 Table-1 datasets ("adult", "movies", "beers", "bikes",
/// "hospital", "rayyan", "flights", "restaurants", "soccer", "tax",
/// "breast_cancer", "smart_factory", "nasa", "soil_moisture").
const std::vector<std::string>& AllDatasetNames();

/// Paper Table-1 shape for one dataset.
Result<DatasetSpec> GetDatasetSpec(const std::string& name);

/// Generates a dataset (clean + dirty + mask + rules + domains).
Result<Dataset> MakeDataset(const std::string& name,
                            const MakeOptions& options = {});

/// Mass production for knowledge-base scale work (`saged generate
/// --corpus N`, bench_kb_scale): an unbounded family of small datasets,
/// each a deterministic function of (index, seed) alone. Column archetypes
/// (3-5 per dataset) and error classes are drawn per-index from a fixed
/// pool, so a thousand-dataset corpus exercises heterogeneous signatures
/// without a thousand blueprints. Content hashes are pinned by golden
/// tests — changing any generator here is a format break.
struct CorpusOptions {
  uint64_t seed = 7;
  size_t rows = 48;
  double error_rate = 0.08;
  /// 0 draws every cell fresh from its column generator (the original
  /// corpus profile). > 0 pre-generates that many values per column and
  /// draws cells from the pool — a high-repetition profile (distinct ratio
  /// ~ value_pool / rows) modeling real tables' repeated values; the
  /// dictionary-featurization bench sweep and its golden digests use it.
  size_t value_pool = 0;
};

/// "corpus-000042" — the name MakeCorpusDataset(42, ...) produces.
std::string CorpusDatasetName(size_t index);

Result<Dataset> MakeCorpusDataset(size_t index,
                                  const CorpusOptions& options = {});

}  // namespace saged::datagen

#endif  // SAGED_DATAGEN_DATASETS_H_
