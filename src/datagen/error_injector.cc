#include "datagen/error_injector.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/strings.h"
#include "data/value.h"

namespace saged::datagen {

const char* ErrorTypeName(ErrorType type) {
  switch (type) {
    case ErrorType::kMissingValue:
      return "missing_value";
    case ErrorType::kTypo:
      return "typo";
    case ErrorType::kOutlier:
      return "outlier";
    case ErrorType::kFormatting:
      return "formatting";
    case ErrorType::kRuleViolation:
      return "rule_violation";
  }
  return "?";
}

std::string ErrorInjector::MakeMissing() {
  static const char* kSpellings[] = {"", "NULL", "NA", "?"};
  return kSpellings[rng_.UniformInt(uint64_t{4})];
}

std::string ErrorInjector::MakeTypo(const std::string& value) {
  if (value.empty()) return "x";
  std::string out = value;
  // Keyboard slips on numbers hit neighbouring digits; inserting letters
  // like 'e' would turn "63093" into a parseable 6.3e94 — an error class no
  // real keyboard produces.
  static const char kText[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  static const char kDigits[] = "0123456789";
  const bool numeric = IsNumeric(value);
  const char* alphabet = numeric ? kDigits : kText;
  const size_t alphabet_n = numeric ? sizeof(kDigits) - 1 : sizeof(kText) - 1;
  const char filler = numeric ? '0' : 'x';
  switch (rng_.UniformInt(uint64_t{4})) {
    case 0: {  // substitute
      size_t pos = rng_.UniformInt(out.size());
      out[pos] = alphabet[rng_.UniformInt(alphabet_n)];
      break;
    }
    case 1: {  // insert
      size_t pos = rng_.UniformInt(out.size() + 1);
      out.insert(out.begin() + static_cast<long>(pos),
                 alphabet[rng_.UniformInt(alphabet_n)]);
      break;
    }
    case 2: {  // delete
      size_t pos = rng_.UniformInt(out.size());
      out.erase(out.begin() + static_cast<long>(pos));
      if (out.empty()) out = std::string(1, filler);
      break;
    }
    default: {  // transpose adjacent
      if (out.size() >= 2) {
        size_t pos = rng_.UniformInt(out.size() - 1);
        std::swap(out[pos], out[pos + 1]);
      } else {
        out += alphabet[rng_.UniformInt(alphabet_n)];
      }
      break;
    }
  }
  if (out == value) {
    out += alphabet[rng_.UniformInt(alphabet_n)];
  }
  if (out == value) out += filler;  // guarantee the cell actually changed
  return out;
}

std::string ErrorInjector::MakeOutlier(const std::string& value,
                                       double column_mean, double column_std) {
  auto num = CellAsNumber(value);
  if (!num) return MakeTypo(value);
  double sd = column_std > 1e-9 ? column_std : std::max(1.0, std::abs(*num));
  double sign = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
  double magnitude = spec_.outlier_degree * (1.0 + rng_.Uniform());
  double out = column_mean + sign * magnitude * sd;
  bool integral = value.find('.') == std::string::npos;
  if (integral) return StrFormat("%lld", static_cast<long long>(std::llround(out)));
  return StrFormat("%.2f", out);
}

std::string ErrorInjector::MakeFormatting(const std::string& value) {
  if (value.empty()) return " ";
  std::string out = value;
  switch (rng_.UniformInt(uint64_t{4})) {
    case 0:  // swap separators (the paper's 555/345/6789 example)
      for (auto& c : out) {
        if (c == '-') {
          c = '/';
        } else if (c == '/') {
          c = '-';
        } else if (c == ' ') {
          c = '_';
        }
      }
      if (out == value) out = " " + value;  // no separators: fall through
      break;
    case 1:  // case mangling
      for (auto& c : out) {
        c = std::isupper(static_cast<unsigned char>(c))
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      if (out == value) out = value + " ";
      break;
    case 2:  // stray whitespace
      out = " " + value + " ";
      break;
    default:  // numeric reformatting / prefix symbol
      if (IsNumeric(value)) {
        out = value + ".000";
      } else {
        out = "\"" + value + "\"";
      }
      break;
  }
  return out;
}

Result<ErrorInjector::Output> ErrorInjector::Inject(const Table& clean,
                                                    const RuleSet* rules) {
  const size_t rows = clean.NumRows();
  const size_t cols = clean.NumCols();
  if (rows == 0 || cols == 0) return Status::InvalidArgument("empty table");
  if (spec_.error_rate < 0.0 || spec_.error_rate > 1.0) {
    return Status::InvalidArgument("error_rate must be in [0, 1]");
  }
  if (spec_.types.empty()) return Status::InvalidArgument("no error types");

  Output out{clean, ErrorMask(rows, cols)};
  out.dirty.set_name(clean.name() + "_dirty");

  // Column numeric stats for outliers (from the clean data).
  std::vector<double> means(cols, 0.0);
  std::vector<double> stds(cols, 0.0);
  std::vector<bool> numeric_col(cols, false);
  for (size_t j = 0; j < cols; ++j) {
    double sum = 0.0;
    double sq = 0.0;
    size_t n = 0;
    for (const auto& v : clean.column(j).values()) {
      if (auto num = CellAsNumber(v)) {
        sum += *num;
        sq += *num * *num;
        ++n;
      }
    }
    if (n >= rows / 2 && n > 0) {
      numeric_col[j] = true;
      means[j] = sum / static_cast<double>(n);
      stds[j] = std::sqrt(std::max(0.0, sq / static_cast<double>(n) -
                                            means[j] * means[j]));
    }
  }

  // FD support: value pools per rhs column for rule violations.
  std::vector<const FdRule*> usable_fds;
  if (rules != nullptr) {
    for (const auto& fd : rules->fds) usable_fds.push_back(&fd);
  }

  const size_t target =
      static_cast<size_t>(spec_.error_rate * static_cast<double>(rows * cols));
  auto cells = rng_.SampleWithoutReplacement(rows * cols, target);

  for (size_t flat : cells) {
    size_t r = flat / cols;
    size_t j = flat % cols;
    const std::string& original = clean.cell(r, j);

    // Pick an applicable error type for this cell.
    ErrorType type = spec_.types[rng_.UniformInt(spec_.types.size())];
    if (type == ErrorType::kOutlier && !numeric_col[j]) {
      type = ErrorType::kTypo;
    }
    if (type == ErrorType::kRuleViolation) {
      // Need an FD whose rhs is this column; otherwise degrade to a typo
      // (still an inconsistency w.r.t. the clean value).
      const FdRule* fd = nullptr;
      for (const auto* cand : usable_fds) {
        if (cand->rhs == j) {
          fd = cand;
          break;
        }
      }
      if (fd == nullptr) {
        type = ErrorType::kTypo;
      } else {
        // Replace rhs with the rhs of a row holding a different lhs value,
        // breaking lhs -> rhs while keeping the value in-domain.
        std::string replacement = original;
        for (int attempt = 0; attempt < 16; ++attempt) {
          size_t other = rng_.UniformInt(rows);
          if (clean.cell(other, fd->lhs) != clean.cell(r, fd->lhs) &&
              clean.cell(other, fd->rhs) != original) {
            replacement = clean.cell(other, fd->rhs);
            break;
          }
        }
        if (replacement == original) {
          type = ErrorType::kTypo;
        } else {
          out.dirty.set_cell(r, j, replacement);
          out.mask.Set(r, j);
          continue;
        }
      }
    }

    std::string corrupted;
    switch (type) {
      case ErrorType::kMissingValue:
        corrupted = MakeMissing();
        break;
      case ErrorType::kTypo:
        corrupted = MakeTypo(original);
        break;
      case ErrorType::kOutlier:
        corrupted = MakeOutlier(original, means[j], stds[j]);
        break;
      case ErrorType::kFormatting:
        corrupted = MakeFormatting(original);
        break;
      case ErrorType::kRuleViolation:
        corrupted = MakeTypo(original);  // handled above; defensive
        break;
    }
    if (corrupted == original) corrupted = MakeTypo(original);
    out.dirty.set_cell(r, j, corrupted);
    out.mask.Set(r, j);
  }
  return out;
}

}  // namespace saged::datagen
