#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "common/strings.h"
#include "datagen/synth.h"

namespace saged::datagen {

namespace {

using RowGenerator = std::function<std::vector<std::string>(Rng&)>;

/// Everything needed to materialize one dataset: its Table-1 shape, column
/// names, a correlated row generator (FDs hold by construction), the rule
/// set satisfied by the clean data, and closed-domain dictionaries.
struct Blueprint {
  DatasetSpec spec;
  std::vector<std::string> column_names;
  RowGenerator row_gen;
  RuleSet rules;
  KataraDomains domains;
};

std::string SynthTime(Rng& rng) {
  return StrFormat("%02d:%02d", int(rng.UniformInt(0, 23)),
                   int(rng.UniformInt(0, 59)));
}

std::unordered_set<std::string> SetOf(const std::vector<std::string>& v) {
  return {v.begin(), v.end()};
}

// ---------------------------------------------------------------------------
// Category banks.
// ---------------------------------------------------------------------------

const std::vector<std::string> kWorkclass = {
    "Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
    "Local-gov", "State-gov", "Without-pay"};
const std::vector<std::string> kEducation = {
    "Bachelors", "Some-college", "11th",      "HS-grad",  "Prof-school",
    "Assoc-acdm", "Assoc-voc",   "9th",       "7th-8th",  "12th",
    "Masters",    "1st-4th",     "10th",      "Doctorate", "5th-6th",
    "Preschool"};
const std::vector<std::string> kMarital = {
    "Married-civ-spouse", "Divorced", "Never-married", "Separated",
    "Widowed", "Married-spouse-absent"};
const std::vector<std::string> kOccupation = {
    "Tech-support",     "Craft-repair",   "Other-service", "Sales",
    "Exec-managerial",  "Prof-specialty", "Handlers-cleaners",
    "Machine-op-inspct", "Adm-clerical",  "Farming-fishing",
    "Transport-moving", "Priv-house-serv", "Protective-serv"};
const std::vector<std::string> kRelationship = {
    "Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
    "Unmarried"};
const std::vector<std::string> kRace = {
    "White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"};
const std::vector<std::string> kSex = {"Male", "Female"};
const std::vector<std::string> kIncome = {"<=50K", ">50K"};
const std::vector<std::string> kGenres = {
    "Drama", "Comedy", "Action", "Thriller", "Romance", "Horror",
    "Documentary", "Animation", "Crime", "Adventure", "Sci-Fi", "Fantasy"};
const std::vector<std::string> kLanguages = {
    "English", "French", "German", "Spanish", "Italian", "Japanese",
    "Korean", "Mandarin", "Hindi", "Portuguese"};
const std::vector<std::string> kStudios = {
    "Warner Bros", "Universal", "Paramount", "Columbia", "Disney",
    "Lionsgate", "MGM", "New Line", "DreamWorks", "Fox"};
const std::vector<std::string> kBeerStyles = {
    "American IPA", "American Pale Ale", "Stout", "Porter", "Pilsner",
    "Hefeweizen", "Saison", "Amber Ale", "Brown Ale", "Lager", "Witbier",
    "Double IPA", "Kolsch", "Cider"};
const std::vector<std::string> kStates = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID",
    "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS",
    "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK",
    "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY"};
const std::vector<std::string> kOunces = {"12.0", "16.0", "19.2", "24.0",
                                          "32.0"};
const std::vector<std::string> kAvailability = {
    "Year-round", "Seasonal", "Limited", "Rotating"};
const std::vector<std::string> kSeasons = {"spring", "summer", "fall",
                                           "winter"};
const std::vector<std::string> kHospitalTypes = {
    "Acute Care Hospitals", "Critical Access Hospitals", "Childrens"};
const std::vector<std::string> kHospitalOwners = {
    "Government - State", "Government - Federal", "Proprietary",
    "Voluntary non-profit - Private", "Voluntary non-profit - Church"};
const std::vector<std::string> kConditions = {
    "Heart Attack", "Heart Failure", "Pneumonia", "Surgical Infection",
    "Stroke", "Sepsis"};
const std::vector<std::string> kYesNo = {"Yes", "No"};
const std::vector<std::string> kCuisines = {
    "Italian", "Mexican", "Chinese", "Japanese", "Indian", "Thai",
    "American", "French", "Greek", "Korean", "Vietnamese", "Spanish"};
const std::vector<std::string> kPriceRange = {"$", "$$", "$$$", "$$$$"};
const std::vector<std::string> kJournals = {
    "Lancet", "Nature Medicine", "BMJ", "JAMA", "NEJM", "PLOS One",
    "Cochrane Reviews", "Annals of Surgery", "Chest", "Circulation"};
const std::vector<std::string> kTeams = {
    "FC Bavaria",     "Red Star United",  "Atletico Norte", "River Plate FC",
    "Sporting Lisbon", "Olympic Marseille", "Ajax City",     "Celtic Rangers",
    "Dynamo East",    "Juventus Alba",    "Inter Nord",     "Real Oeste",
    "Borussia West",  "Racing Club Sud",  "United Albion",  "Crystal Forest"};
const std::vector<std::string> kLeagues = {
    "Premier League", "La Liga", "Bundesliga", "Serie A", "Ligue 1",
    "Eredivisie", "Primeira Liga", "Super League"};
const std::vector<std::string> kFactoryModes = {"normal", "degraded",
                                                "maintenance", "setup"};

// ---------------------------------------------------------------------------
// Deterministic FD derivations (stable maps keyed by bank index / value).
// ---------------------------------------------------------------------------

size_t StableHash(const std::string& s) {
  size_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ZipForCity(const std::string& city) {
  return StrFormat("%05zu", 10000 + StableHash(city) % 89990);
}

std::string CountyForCity(const std::string& city) {
  return StrFormat("%s County", city.c_str());
}

std::string StateForCity(const std::string& city) {
  return kStates[StableHash(city) % kStates.size()];
}

std::string LeagueForTeam(const std::string& team) {
  return kLeagues[StableHash(team) % kLeagues.size()];
}

std::string RateForState(const std::string& state) {
  return StrFormat("%.2f", 2.0 + double(StableHash(state) % 700) / 100.0);
}

int EducationNum(const std::string& education) {
  auto it = std::find(kEducation.begin(), kEducation.end(), education);
  return static_cast<int>(it - kEducation.begin()) + 1;
}

std::string SeasonForMonth(int month) {
  return kSeasons[((month % 12) / 3) % 4];
}

// ---------------------------------------------------------------------------
// Blueprints, one per Table-1 dataset.
// ---------------------------------------------------------------------------

Blueprint AdultBlueprint() {
  Blueprint bp;
  bp.spec = {"adult", 45223, 15, 0.09,
             {ErrorType::kRuleViolation, ErrorType::kOutlier}};
  bp.column_names = {"id",           "name",        "age",
                     "workclass",    "education",   "education_num",
                     "marital",      "occupation",  "relationship",
                     "race",         "sex",         "hours_per_week",
                     "capital_gain", "country",     "income"};
  bp.row_gen = [](Rng& rng) {
    std::string education = SynthCategory(rng, kEducation);
    return std::vector<std::string>{
        SynthId(rng, "P", 6),
        SynthFullName(rng),
        SynthInt(rng, 17, 90),
        SynthCategory(rng, kWorkclass),
        education,
        StrFormat("%d", EducationNum(education)),
        SynthCategory(rng, kMarital),
        SynthCategory(rng, kOccupation),
        SynthCategory(rng, kRelationship),
        SynthCategory(rng, kRace),
        SynthCategory(rng, kSex),
        SynthInt(rng, 1, 99),
        rng.Bernoulli(0.1) ? SynthInt(rng, 1000, 99999) : "0",
        SynthCountry(rng),
        SynthCategory(rng, kIncome)};
  };
  bp.rules.fds = {{4, 5}};  // education -> education_num
  bp.rules.ranges = {{2, 17.0, 90.0}, {11, 1.0, 99.0}};
  bp.rules.patterns = {{2, PatternKind::kNumeric},
                       {11, PatternKind::kNumeric}};
  bp.domains.assign(15, {});
  bp.domains[3] = SetOf(kWorkclass);
  bp.domains[4] = SetOf(kEducation);
  bp.domains[6] = SetOf(kMarital);
  bp.domains[7] = SetOf(kOccupation);
  bp.domains[8] = SetOf(kRelationship);
  bp.domains[9] = SetOf(kRace);
  bp.domains[10] = SetOf(kSex);
  bp.domains[13] = SetOf(CountryBank());
  bp.domains[14] = SetOf(kIncome);
  return bp;
}

Blueprint MoviesBlueprint() {
  Blueprint bp;
  bp.spec = {"movies", 7390, 17, 0.06,
             {ErrorType::kMissingValue, ErrorType::kFormatting}};
  bp.column_names = {"id",       "title",        "year",      "genre",
                     "director", "duration",     "rating",    "votes",
                     "language", "country",      "release",   "budget",
                     "gross",    "studio",       "lead",      "support",
                     "summary"};
  bp.row_gen = [](Rng& rng) {
    return std::vector<std::string>{
        SynthId(rng, "tt", 7),
        SynthText(rng, 2 + rng.UniformInt(uint64_t{3})),
        SynthInt(rng, 1950, 2023),
        SynthCategory(rng, kGenres),
        SynthFullName(rng),
        SynthInt(rng, 60, 210),
        SynthReal(rng, 6.5, 1.2, 1),
        SynthInt(rng, 100, 2000000),
        SynthCategory(rng, kLanguages),
        SynthCountry(rng),
        SynthDate(rng, 1950, 2023),
        SynthInt(rng, 100000, 200000000),
        SynthInt(rng, 50000, 900000000),
        SynthCategory(rng, kStudios),
        SynthFullName(rng),
        SynthFullName(rng),
        SynthText(rng, 6)};
  };
  bp.rules.patterns = {{10, PatternKind::kDateIso},
                       {2, PatternKind::kNumeric},
                       {6, PatternKind::kNumeric}};
  bp.rules.not_null_cols = {1, 2, 10};
  bp.domains.assign(17, {});
  bp.domains[3] = SetOf(kGenres);
  bp.domains[8] = SetOf(kLanguages);
  bp.domains[9] = SetOf(CountryBank());
  bp.domains[13] = SetOf(kStudios);
  return bp;
}

Blueprint BeersBlueprint() {
  Blueprint bp;
  bp.spec = {"beers", 2410, 11, 0.16,
             {ErrorType::kMissingValue, ErrorType::kRuleViolation,
              ErrorType::kTypo}};
  bp.column_names = {"id",      "beer_name",   "style",  "abv",
                     "ibu",     "brewery_id",  "brewery", "city",
                     "state",   "ounces",      "availability"};
  bp.row_gen = [](Rng& rng) {
    // Small brewery pool so brewery_id -> brewery is a meaningful FD.
    size_t brewery_idx = rng.UniformInt(uint64_t{60});
    std::string brewery_id = StrFormat("BRW%03zu", brewery_idx);
    std::string brewery =
        StrFormat("%s Brewing", LastNameBank()[brewery_idx % LastNameBank().size()].c_str());
    std::string city = SynthCity(rng);
    // Style drives abv/ibu so the Figure-16 downstream model (predict the
    // style) has signal to learn.
    size_t style_idx = rng.UniformInt(kBeerStyles.size());
    double abv_mean = 4.0 + 0.5 * static_cast<double>(style_idx);
    double ibu_mean = 12.0 + 9.0 * static_cast<double>(style_idx);
    return std::vector<std::string>{
        SynthId(rng, "B", 5),
        SynthText(rng, 2),
        kBeerStyles[style_idx],
        SynthReal(rng, abv_mean, 0.25, 1),
        StrFormat("%d", std::max(1, static_cast<int>(
                            std::lround(rng.Normal(ibu_mean, 4.0))))),
        brewery_id,
        brewery,
        city,
        StateForCity(city),
        SynthCategory(rng, kOunces),
        SynthCategory(rng, kAvailability)};
  };
  bp.rules.fds = {{5, 6}, {7, 8}};  // brewery_id -> brewery, city -> state
  bp.rules.patterns = {{3, PatternKind::kNumeric}, {4, PatternKind::kNumeric}};
  bp.rules.ranges = {{3, 0.0, 15.0}, {4, 0.0, 150.0}};
  bp.rules.not_null_cols = {1, 2, 6};
  bp.domains.assign(11, {});
  bp.domains[2] = SetOf(kBeerStyles);
  bp.domains[7] = SetOf(CityBank());
  bp.domains[8] = SetOf(kStates);
  bp.domains[9] = SetOf(kOunces);
  bp.domains[10] = SetOf(kAvailability);
  return bp;
}

Blueprint BikesBlueprint() {
  Blueprint bp;
  bp.spec = {"bikes", 17378, 16, 0.10,
             {ErrorType::kOutlier, ErrorType::kRuleViolation}};
  bp.column_names = {"instant", "date",    "season",    "yr",
                     "mnth",    "holiday", "weekday",   "workingday",
                     "weather", "temp",    "atemp",     "hum",
                     "windspeed", "casual", "registered", "cnt"};
  bp.row_gen = [](Rng& rng) {
    int month = static_cast<int>(rng.UniformInt(1, 12));
    int casual = static_cast<int>(rng.UniformInt(0, 300));
    int registered = static_cast<int>(rng.UniformInt(20, 900));
    return std::vector<std::string>{
        SynthId(rng, "", 5),
        StrFormat("%04d-%02d-%02d", int(rng.UniformInt(2011, 2012)), month,
                  int(rng.UniformInt(1, 28))),
        SeasonForMonth(month - 1),
        SynthInt(rng, 0, 1),
        StrFormat("%d", month),
        rng.Bernoulli(0.03) ? "1" : "0",
        SynthInt(rng, 0, 6),
        rng.Bernoulli(0.68) ? "1" : "0",
        SynthInt(rng, 1, 4),
        SynthReal(rng, 0.5, 0.19, 3),
        SynthReal(rng, 0.47, 0.17, 3),
        SynthReal(rng, 0.63, 0.14, 3),
        SynthReal(rng, 0.19, 0.08, 3),
        StrFormat("%d", casual),
        StrFormat("%d", registered),
        StrFormat("%d", casual + registered)};
  };
  bp.rules.fds = {{4, 2}};  // mnth -> season
  bp.rules.ranges = {{9, -0.2, 1.2}, {11, 0.0, 1.0}, {12, 0.0, 1.0},
                     {8, 1.0, 4.0}};
  bp.rules.patterns = {{1, PatternKind::kDateIso},
                       {9, PatternKind::kNumeric},
                       {15, PatternKind::kNumeric}};
  bp.domains.assign(16, {});
  bp.domains[2] = SetOf(kSeasons);
  return bp;
}

Blueprint HospitalBlueprint() {
  Blueprint bp;
  bp.spec = {"hospital", 1000, 20, 0.03,
             {ErrorType::kTypo, ErrorType::kRuleViolation,
              ErrorType::kFormatting}};
  bp.column_names = {"provider_id", "name",        "address1",  "address2",
                     "address3",    "city",        "state",     "zip",
                     "county",      "phone",       "type",      "owner",
                     "emergency",   "condition",   "measure_code",
                     "measure_name", "score",      "sample",    "stateavg",
                     "region"};
  // The real Hospital benchmark is highly repetitive: ~50 providers each
  // appear on ~20 measure rows, so a typo produces a rare variant of an
  // otherwise repeated value. Providers and measures are drawn from fixed
  // pools with per-entity deterministic attributes to reproduce that
  // structure.
  bp.row_gen = [](Rng& rng) {
    size_t provider_idx = rng.UniformInt(uint64_t{50});
    Rng prov(provider_idx + 101);  // deterministic provider attributes
    std::string provider_id = StrFormat("%05zu", 10000 + provider_idx);
    std::string name = StrFormat(
        "%s memorial hospital", ToLower(SynthLastName(prov)).c_str());
    std::string address = StrFormat("%d %s street",
                                    int(prov.UniformInt(1, 9999)),
                                    ToLower(SynthLastName(prov)).c_str());
    std::string city = SynthCity(prov);
    std::string state = StateForCity(city);
    std::string phone = SynthPhone(prov);
    std::string type = kHospitalTypes[prov.UniformInt(kHospitalTypes.size())];
    std::string owner =
        kHospitalOwners[prov.UniformInt(kHospitalOwners.size())];
    std::string emergency = kYesNo[prov.UniformInt(uint64_t{2})];

    size_t measure_idx = rng.UniformInt(uint64_t{20});
    Rng meas(measure_idx + 201);
    std::string measure_code = StrFormat("AMI-%zu", measure_idx);
    std::string measure_name =
        StrFormat("%s measure %zu",
                  WordBank()[measure_idx % WordBank().size()].c_str(),
                  measure_idx);
    std::string condition = kConditions[meas.UniformInt(kConditions.size())];
    std::string stateavg = StrFormat("%s_AMI-%zu", state.c_str(), measure_idx);
    return std::vector<std::string>{
        provider_id,
        name,
        address,
        "",
        "",
        city,
        state,
        ZipForCity(city),
        CountyForCity(city),
        phone,
        type,
        owner,
        emergency,
        condition,
        measure_code,
        measure_name,
        SynthInt(rng, 1, 100),
        SynthInt(rng, 10, 900),
        stateavg,
        StrFormat("Region %zu", StableHash(state) % 10)};
  };
  bp.rules.fds = {{5, 7}, {5, 8}, {14, 15}, {6, 19}, {0, 1}, {0, 9}};
  bp.rules.patterns = {{9, PatternKind::kPhone},
                       {7, PatternKind::kZip},
                       {16, PatternKind::kNumeric}};
  bp.rules.ranges = {{16, 0.0, 100.0}};
  bp.domains.assign(20, {});
  bp.domains[5] = SetOf(CityBank());
  bp.domains[6] = SetOf(kStates);
  bp.domains[10] = SetOf(kHospitalTypes);
  bp.domains[11] = SetOf(kHospitalOwners);
  bp.domains[12] = SetOf(kYesNo);
  bp.domains[13] = SetOf(kConditions);
  return bp;
}

Blueprint RayyanBlueprint() {
  Blueprint bp;
  bp.spec = {"rayyan", 1000, 11, 0.09,
             {ErrorType::kMissingValue, ErrorType::kTypo,
              ErrorType::kRuleViolation}};
  bp.column_names = {"article_id", "title",  "authors", "journal",
                     "issn",       "volume", "issue",   "pages",
                     "year",       "language", "abstract"};
  bp.row_gen = [](Rng& rng) {
    std::string journal = SynthCategory(rng, kJournals);
    std::string issn = StrFormat("%04zu-%04zu", StableHash(journal) % 9000 + 1000,
                                 StableHash(journal + "x") % 9000 + 1000);
    int page_lo = static_cast<int>(rng.UniformInt(1, 900));
    return std::vector<std::string>{
        SynthId(rng, "A", 6),
        SynthText(rng, 5),
        StrFormat("%s and %s", SynthFullName(rng).c_str(),
                  SynthFullName(rng).c_str()),
        journal,
        issn,
        SynthInt(rng, 1, 120),
        SynthInt(rng, 1, 12),
        StrFormat("%d-%d", page_lo, page_lo + int(rng.UniformInt(2, 30))),
        SynthInt(rng, 1980, 2023),
        SynthCategory(rng, kLanguages),
        SynthText(rng, 8)};
  };
  bp.rules.fds = {{3, 4}};  // journal -> issn
  bp.rules.patterns = {{8, PatternKind::kNumeric}};
  bp.rules.ranges = {{8, 1900.0, 2024.0}};
  bp.rules.not_null_cols = {1, 3};
  bp.domains.assign(11, {});
  bp.domains[3] = SetOf(kJournals);
  bp.domains[9] = SetOf(kLanguages);
  return bp;
}

Blueprint FlightsBlueprint() {
  Blueprint bp;
  bp.spec = {"flights", 2376, 7, 0.30,
             {ErrorType::kMissingValue, ErrorType::kTypo,
              ErrorType::kRuleViolation}};
  bp.column_names = {"tuple_id",      "source",       "flight",
                     "sched_dep_time", "act_dep_time", "sched_arr_time",
                     "act_arr_time"};
  static const std::vector<std::string> kSources = {
      "aa", "flightview", "flightaware", "orbitz", "travelocity", "flylc"};
  bp.row_gen = [](Rng& rng) {
    // Flight number determines scheduled times (the dataset's core FD).
    size_t flight_idx = rng.UniformInt(uint64_t{120});
    std::string flight = StrFormat("AA-%zu-%s", 1000 + flight_idx,
                                   kStates[flight_idx % kStates.size()].c_str());
    Rng fd_rng(flight_idx + 1);  // deterministic per flight
    std::string sched_dep = SynthTime(fd_rng);
    std::string sched_arr = SynthTime(fd_rng);
    return std::vector<std::string>{
        SynthId(rng, "F", 6),
        kSources[rng.UniformInt(kSources.size())],
        flight,
        sched_dep,
        SynthTime(rng),
        sched_arr,
        SynthTime(rng)};
  };
  bp.rules.fds = {{2, 3}, {2, 5}};  // flight -> scheduled times
  bp.rules.not_null_cols = {2, 3, 5};
  bp.domains.assign(7, {});
  bp.domains[1] = SetOf(kSources);
  return bp;
}

Blueprint RestaurantsBlueprint() {
  Blueprint bp;
  bp.spec = {"restaurants", 28788, 16, 0.15,
             {ErrorType::kOutlier, ErrorType::kMissingValue}};
  bp.column_names = {"id",     "name",      "address", "city",
                     "phone",  "cuisine",   "class",   "review",
                     "stars",  "category",  "state",   "zip",
                     "website", "hours",    "price",   "delivery"};
  bp.row_gen = [](Rng& rng) {
    std::string city = SynthCity(rng);
    std::string last = SynthLastName(rng);
    return std::vector<std::string>{
        SynthId(rng, "R", 6),
        StrFormat("%s's %s", last.c_str(),
                  kCuisines[rng.UniformInt(kCuisines.size())].c_str()),
        StrFormat("%d %s ave", int(rng.UniformInt(1, 9999)),
                  ToLower(SynthLastName(rng)).c_str()),
        city,
        SynthPhone(rng),
        SynthCategory(rng, kCuisines),
        SynthInt(rng, 1, 5),
        SynthReal(rng, 3.6, 0.8, 1),
        SynthReal(rng, 3.5, 1.0, 1),
        SynthCategory(rng, kCuisines),
        StateForCity(city),
        ZipForCity(city),
        StrFormat("www.%s%d.com", ToLower(last).c_str(),
                  int(rng.UniformInt(1, 99))),
        StrFormat("%d:00-%d:00", int(rng.UniformInt(6, 11)),
                  int(rng.UniformInt(20, 23))),
        SynthCategory(rng, kPriceRange),
        SynthCategory(rng, kYesNo)};
  };
  bp.rules.fds = {{3, 10}, {3, 11}};
  bp.rules.patterns = {{4, PatternKind::kPhone}, {11, PatternKind::kZip},
                       {8, PatternKind::kNumeric}};
  bp.rules.ranges = {{8, 0.0, 5.0}, {7, 0.0, 5.0}};
  bp.domains.assign(16, {});
  bp.domains[3] = SetOf(CityBank());
  bp.domains[5] = SetOf(kCuisines);
  bp.domains[9] = SetOf(kCuisines);
  bp.domains[10] = SetOf(kStates);
  bp.domains[14] = SetOf(kPriceRange);
  bp.domains[15] = SetOf(kYesNo);
  return bp;
}

Blueprint SoccerBlueprint() {
  Blueprint bp;
  bp.spec = {"soccer", 200000, 10, 0.27,
             {ErrorType::kMissingValue, ErrorType::kOutlier,
              ErrorType::kRuleViolation}};
  bp.column_names = {"player_id", "name",   "birthday", "height",
                     "weight",    "team",   "league",   "season",
                     "rating",    "goals"};
  bp.row_gen = [](Rng& rng) {
    std::string team = SynthCategory(rng, kTeams);
    return std::vector<std::string>{
        SynthId(rng, "PL", 6),
        SynthFullName(rng),
        SynthDate(rng, 1975, 2004),
        SynthReal(rng, 181.0, 6.5, 1),
        SynthReal(rng, 76.0, 7.5, 1),
        team,
        LeagueForTeam(team),
        StrFormat("%d/%d", int(rng.UniformInt(2008, 2015)),
                  int(rng.UniformInt(2008, 2015))),
        SynthReal(rng, 68.0, 9.0, 1),
        SynthInt(rng, 0, 40)};
  };
  bp.rules.fds = {{5, 6}};  // team -> league
  bp.rules.patterns = {{2, PatternKind::kDateIso},
                       {3, PatternKind::kNumeric},
                       {4, PatternKind::kNumeric}};
  bp.rules.ranges = {{3, 150.0, 215.0}, {4, 45.0, 120.0}, {8, 30.0, 100.0}};
  bp.domains.assign(10, {});
  bp.domains[5] = SetOf(kTeams);
  bp.domains[6] = SetOf(kLeagues);
  return bp;
}

Blueprint TaxBlueprint() {
  Blueprint bp;
  bp.spec = {"tax", 200000, 15, 0.04,
             {ErrorType::kTypo, ErrorType::kFormatting,
              ErrorType::kRuleViolation}};
  bp.column_names = {"tuple_id", "f_name",  "l_name", "gender",
                     "area_code", "phone",  "city",   "state",
                     "zip",       "marital", "has_child", "salary",
                     "rate",      "single_exemp", "married_exemp"};
  bp.row_gen = [](Rng& rng) {
    std::string city = SynthCity(rng);
    std::string state = StateForCity(city);
    return std::vector<std::string>{
        SynthId(rng, "T", 7),
        SynthFirstName(rng),
        SynthLastName(rng),
        SynthCategory(rng, kSex),
        SynthInt(rng, 200, 999),
        SynthPhone(rng),
        city,
        state,
        ZipForCity(city),
        SynthCategory(rng, {"S", "M"}),
        SynthCategory(rng, kYesNo),
        SynthInt(rng, 18000, 250000),
        RateForState(state),
        SynthInt(rng, 0, 9000),
        SynthInt(rng, 0, 18000)};
  };
  bp.rules.fds = {{6, 8}, {7, 12}};  // city -> zip, state -> rate
  bp.rules.patterns = {{5, PatternKind::kPhone},
                       {8, PatternKind::kZip},
                       {11, PatternKind::kNumeric}};
  bp.rules.ranges = {{11, 0.0, 1000000.0}};
  bp.domains.assign(15, {});
  bp.domains[1] = SetOf(FirstNameBank());
  bp.domains[2] = SetOf(LastNameBank());
  bp.domains[3] = SetOf(kSex);
  bp.domains[6] = SetOf(CityBank());
  bp.domains[7] = SetOf(kStates);
  bp.domains[10] = SetOf(kYesNo);
  return bp;
}

Blueprint BreastCancerBlueprint() {
  Blueprint bp;
  bp.spec = {"breast_cancer", 700, 12, 0.40,
             {ErrorType::kMissingValue, ErrorType::kTypo,
              ErrorType::kOutlier}};
  bp.column_names = {"id",            "clump_thickness", "size_uniformity",
                     "shape_uniformity", "adhesion",     "epithelial_size",
                     "bare_nuclei",   "bland_chromatin", "normal_nucleoli",
                     "mitoses",       "class",           "biopsy_date"};
  bp.row_gen = [](Rng& rng) {
    bool malignant = rng.Bernoulli(0.35);
    auto feature = [&](double benign_mean, double malignant_mean) {
      double mean = malignant ? malignant_mean : benign_mean;
      int v = static_cast<int>(std::lround(rng.Normal(mean, 1.8)));
      return StrFormat("%d", std::clamp(v, 1, 10));
    };
    return std::vector<std::string>{
        SynthId(rng, "", 7),
        feature(3, 7), feature(2, 7), feature(2, 7), feature(2, 6),
        feature(2, 5), feature(2, 8), feature(2, 6), feature(2, 6),
        feature(1, 3),
        malignant ? "4" : "2",
        SynthDate(rng, 1989, 1992)};
  };
  bp.rules.patterns = {{1, PatternKind::kNumeric}, {9, PatternKind::kNumeric},
                       {11, PatternKind::kDateIso}};
  bp.rules.ranges = {{1, 1.0, 10.0}, {2, 1.0, 10.0}, {3, 1.0, 10.0},
                     {4, 1.0, 10.0}, {5, 1.0, 10.0}, {6, 1.0, 10.0},
                     {7, 1.0, 10.0}, {8, 1.0, 10.0}, {9, 1.0, 10.0}};
  bp.domains.assign(12, {});
  bp.domains[10] = SetOf({"2", "4"});
  return bp;
}

Blueprint SmartFactoryBlueprint() {
  Blueprint bp;
  bp.spec = {"smart_factory", 23645, 19, 0.83,
             {ErrorType::kMissingValue, ErrorType::kOutlier}};
  bp.column_names = {"ts", "mode", "label"};
  for (size_t s = 0; s < 16; ++s) {
    bp.column_names.push_back(StrFormat("sensor_%02zu", s));
  }
  bp.row_gen = [](Rng& rng) {
    // The label is a regime driven by a latent operating point that also
    // shifts the sensors, so the Figure-16 classifier has signal to learn.
    int regime = static_cast<int>(rng.UniformInt(0, 3));
    std::vector<std::string> row;
    row.reserve(19);
    row.push_back(SynthId(rng, "TS", 7));
    row.push_back(kFactoryModes[static_cast<size_t>(regime)]);
    row.push_back(StrFormat("%d", regime));
    for (size_t s = 0; s < 16; ++s) {
      double mean = 10.0 + 12.0 * static_cast<double>(s) +
                    3.5 * static_cast<double>(regime) *
                        (s % 3 == 0 ? 1.0 : -0.5);
      double sd = 1.0 + 0.4 * static_cast<double>(s);
      row.push_back(SynthReal(rng, mean, sd, 3));
    }
    return row;
  };
  for (size_t s = 0; s < 16; ++s) {
    double mean = 10.0 + 12.0 * static_cast<double>(s);
    double sd = 1.0 + 0.4 * static_cast<double>(s);
    // Slack covers the regime-dependent mean shift (up to ~10.5).
    bp.rules.ranges.push_back({3 + s, mean - 5 * sd - 12, mean + 5 * sd + 12});
    bp.rules.patterns.push_back({3 + s, PatternKind::kNumeric});
  }
  bp.domains.assign(19, {});
  bp.domains[1] = SetOf(kFactoryModes);
  bp.domains[2] = SetOf({"0", "1", "2", "3"});
  return bp;
}

Blueprint NasaBlueprint() {
  Blueprint bp;
  bp.spec = {"nasa", 1504, 6, 0.13,
             {ErrorType::kMissingValue, ErrorType::kOutlier,
              ErrorType::kTypo}};
  bp.column_names = {"frequency", "angle_of_attack", "chord_length",
                     "velocity",  "displacement",    "sound_pressure"};
  bp.row_gen = [](Rng& rng) {
    double freq = std::exp(rng.Uniform(5.3, 9.9));
    double angle = rng.Uniform(0.0, 22.0);
    double chord = rng.Uniform(0.025, 0.30);
    double velocity = rng.Uniform(31.0, 71.0);
    double disp = rng.Uniform(0.0004, 0.058);
    // Airfoil self-noise style response surface.
    double pressure = 126.0 - 3.2 * std::log(freq / 800.0) - 0.35 * angle +
                      12.0 * chord + 0.06 * velocity + rng.Normal(0.0, 1.5);
    return std::vector<std::string>{
        StrFormat("%.0f", freq),
        StrFormat("%.1f", angle),
        StrFormat("%.4f", chord),
        StrFormat("%.1f", velocity),
        StrFormat("%.6f", disp),
        StrFormat("%.3f", pressure)};
  };
  for (size_t j = 0; j < 6; ++j) {
    bp.rules.patterns.push_back({j, PatternKind::kNumeric});
  }
  bp.rules.ranges = {{1, 0.0, 25.0}, {3, 25.0, 80.0}, {5, 90.0, 160.0}};
  bp.domains.assign(6, {});
  return bp;
}

Blueprint SoilMoistureBlueprint() {
  Blueprint bp;
  bp.spec = {"soil_moisture", 679, 129, 0.30,
             {ErrorType::kMissingValue, ErrorType::kOutlier}};
  bp.column_names = {"datetime"};
  for (size_t s = 0; s < 128; ++s) {
    bp.column_names.push_back(StrFormat("moisture_%03zu", s));
  }
  bp.row_gen = [](Rng& rng) {
    std::vector<std::string> row;
    row.reserve(129);
    row.push_back(SynthDate(rng, 2016, 2018) + " " + SynthTime(rng));
    for (size_t s = 0; s < 128; ++s) {
      double mean = 18.0 + 0.2 * static_cast<double>(s % 40);
      row.push_back(SynthReal(rng, mean, 2.2, 3));
    }
    return row;
  };
  for (size_t s = 1; s < 129; ++s) {
    bp.rules.ranges.push_back({s, 0.0, 60.0});
    bp.rules.patterns.push_back({s, PatternKind::kNumeric});
  }
  bp.domains.assign(129, {});
  return bp;
}

Blueprint MakeBlueprint(const std::string& name) {
  if (name == "adult") return AdultBlueprint();
  if (name == "movies") return MoviesBlueprint();
  if (name == "beers") return BeersBlueprint();
  if (name == "bikes") return BikesBlueprint();
  if (name == "hospital") return HospitalBlueprint();
  if (name == "rayyan") return RayyanBlueprint();
  if (name == "flights") return FlightsBlueprint();
  if (name == "restaurants") return RestaurantsBlueprint();
  if (name == "soccer") return SoccerBlueprint();
  if (name == "tax") return TaxBlueprint();
  if (name == "breast_cancer") return BreastCancerBlueprint();
  if (name == "smart_factory") return SmartFactoryBlueprint();
  if (name == "nasa") return NasaBlueprint();
  if (name == "soil_moisture") return SoilMoistureBlueprint();
  return Blueprint{};
}

}  // namespace

const std::vector<std::string>& AllDatasetNames() {
  static const auto& names = *new std::vector<std::string>{
      "adult",       "movies",       "beers",         "bikes",
      "hospital",    "rayyan",       "flights",       "restaurants",
      "soccer",      "tax",          "breast_cancer", "smart_factory",
      "nasa",        "soil_moisture"};
  return names;
}

Result<DatasetSpec> GetDatasetSpec(const std::string& name) {
  Blueprint bp = MakeBlueprint(name);
  if (bp.spec.name.empty()) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  return bp.spec;
}

Result<Dataset> MakeDataset(const std::string& name,
                            const MakeOptions& options) {
  Blueprint bp = MakeBlueprint(name);
  if (bp.spec.name.empty()) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }

  Dataset ds;
  ds.spec = bp.spec;
  if (options.rows > 0) ds.spec.rows = options.rows;
  if (options.error_rate >= 0.0) ds.spec.error_rate = options.error_rate;

  Rng rng(options.seed ^ StableHash(name));
  std::vector<std::vector<Cell>> columns(bp.column_names.size());
  for (auto& c : columns) c.reserve(ds.spec.rows);
  for (size_t r = 0; r < ds.spec.rows; ++r) {
    auto row = bp.row_gen(rng);
    if (row.size() != columns.size()) {
      return Status::RuntimeError("blueprint row width mismatch for " + name);
    }
    for (size_t j = 0; j < row.size(); ++j) {
      columns[j].push_back(std::move(row[j]));
    }
  }
  ds.clean = Table(name);
  for (size_t j = 0; j < columns.size(); ++j) {
    SAGED_RETURN_NOT_OK(
        ds.clean.AddColumn(Column(bp.column_names[j], std::move(columns[j]))));
  }

  InjectionSpec inj;
  inj.error_rate = ds.spec.error_rate;
  inj.types = ds.spec.error_types;
  inj.outlier_degree = options.outlier_degree;
  ErrorInjector injector(inj, rng.Next());
  SAGED_ASSIGN_OR_RETURN(auto injected, injector.Inject(ds.clean, &bp.rules));
  ds.dirty = std::move(injected.dirty);
  ds.mask = std::move(injected.mask);
  ds.rules = std::move(bp.rules);
  ds.domains = std::move(bp.domains);
  return ds;
}

std::string CorpusDatasetName(size_t index) {
  return StrFormat("corpus-%06zu", index);
}

Result<Dataset> MakeCorpusDataset(size_t index, const CorpusOptions& options) {
  static const std::vector<std::string> kStatus = {"active", "inactive",
                                                   "pending", "closed",
                                                   "archived"};
  static const std::vector<std::string> kTier = {"bronze", "silver", "gold",
                                                 "platinum"};
  using ColGen = std::function<std::string(Rng&)>;
  static const std::vector<std::pair<std::string, ColGen>> kKinds = {
      {"record_id", [](Rng& r) { return SynthId(r, "R", 6); }},
      {"name", [](Rng& r) { return SynthFullName(r); }},
      {"city", [](Rng& r) { return SynthCity(r); }},
      {"phone", [](Rng& r) { return SynthPhone(r); }},
      {"email", [](Rng& r) { return SynthEmail(r); }},
      {"signup_date", [](Rng& r) { return SynthDate(r); }},
      {"status", [](Rng& r) { return SynthCategory(r, kStatus); }},
      {"tier", [](Rng& r) { return SynthCategory(r, kTier); }},
      {"count", [](Rng& r) { return SynthInt(r, 0, 5000); }},
      {"score", [](Rng& r) { return SynthReal(r, 50.0, 12.0); }},
      {"ratio", [](Rng& r) { return SynthPercent(r, 0.0, 100.0); }},
      {"zip", [](Rng& r) { return SynthZip(r); }},
      {"notes", [](Rng& r) { return SynthText(r, 3); }},
  };
  static const std::vector<ErrorType> kCorpusErrors = {
      ErrorType::kMissingValue, ErrorType::kTypo, ErrorType::kFormatting,
      ErrorType::kOutlier};

  if (options.rows == 0) {
    return Status::InvalidArgument("corpus datasets need rows > 0");
  }
  std::string name = CorpusDatasetName(index);
  Rng rng(options.seed ^ StableHash(name));

  // Per-index column mix: 3-5 distinct archetypes, sampled without
  // replacement (partial Fisher-Yates so unused pool order is irrelevant).
  size_t n_cols = 3 + rng.UniformInt(uint64_t{3});
  std::vector<size_t> pool(kKinds.size());
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  for (size_t i = 0; i < n_cols; ++i) {
    size_t j = i + rng.UniformInt(uint64_t{pool.size() - i});
    std::swap(pool[i], pool[j]);
  }

  Dataset ds;
  ds.spec.name = name;
  ds.spec.rows = options.rows;
  ds.spec.cols = n_cols;
  ds.spec.error_rate = options.error_rate;
  size_t first_error = rng.UniformInt(uint64_t{kCorpusErrors.size()});
  size_t second_error =
      (first_error + 1 + rng.UniformInt(uint64_t{kCorpusErrors.size() - 1})) %
      kCorpusErrors.size();
  ds.spec.error_types = {kCorpusErrors[first_error],
                         kCorpusErrors[second_error]};

  std::vector<std::vector<Cell>> columns(n_cols);
  for (auto& c : columns) c.reserve(options.rows);
  if (options.value_pool == 0) {
    for (size_t r = 0; r < options.rows; ++r) {
      for (size_t j = 0; j < n_cols; ++j) {
        columns[j].push_back(kKinds[pool[j]].second(rng));
      }
    }
  } else {
    // High-repetition profile: per-column pools drawn first (column-major,
    // so adding draws never perturbs the pools), then every cell sampled
    // from its column's pool. The value_pool == 0 branch above is the
    // original byte stream — its golden digests must never move.
    std::vector<std::vector<std::string>> pools(n_cols);
    for (size_t j = 0; j < n_cols; ++j) {
      pools[j].reserve(options.value_pool);
      for (size_t k = 0; k < options.value_pool; ++k) {
        pools[j].push_back(kKinds[pool[j]].second(rng));
      }
    }
    for (size_t r = 0; r < options.rows; ++r) {
      for (size_t j = 0; j < n_cols; ++j) {
        columns[j].push_back(
            pools[j][rng.UniformInt(uint64_t{options.value_pool})]);
      }
    }
  }
  ds.clean = Table(name);
  for (size_t j = 0; j < n_cols; ++j) {
    SAGED_RETURN_NOT_OK(ds.clean.AddColumn(
        Column(kKinds[pool[j]].first, std::move(columns[j]))));
  }

  InjectionSpec inj;
  inj.error_rate = ds.spec.error_rate;
  inj.types = ds.spec.error_types;
  ErrorInjector injector(inj, rng.Next());
  SAGED_ASSIGN_OR_RETURN(auto injected, injector.Inject(ds.clean, nullptr));
  ds.dirty = std::move(injected.dirty);
  ds.mask = std::move(injected.mask);
  ds.domains.assign(n_cols, {});
  return ds;
}

}  // namespace saged::datagen
