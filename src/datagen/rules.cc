#include "datagen/rules.h"

#include <cctype>
#include <unordered_map>

#include "common/strings.h"
#include "data/value.h"

namespace saged::datagen {

namespace {

bool IsDigits(std::string_view s, size_t n) {
  if (s.size() != n) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsPhone(const std::string& v) {
  auto parts = Split(v, '-');
  return parts.size() == 3 && IsDigits(parts[0], 3) && IsDigits(parts[1], 3) &&
         IsDigits(parts[2], 4);
}

bool IsIsoDate(const std::string& v) {
  auto parts = Split(v, '-');
  return parts.size() == 3 && IsDigits(parts[0], 4) && IsDigits(parts[1], 2) &&
         IsDigits(parts[2], 2);
}

bool IsEmail(const std::string& v) {
  size_t at = v.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= v.size()) return false;
  size_t dot = v.find('.', at);
  return dot != std::string::npos && dot + 1 < v.size() &&
         v.find('@', at + 1) == std::string::npos &&
         v.find(' ') == std::string::npos;
}

}  // namespace

bool MatchesPattern(PatternKind kind, const std::string& value) {
  switch (kind) {
    case PatternKind::kPhone:
      return IsPhone(value);
    case PatternKind::kDateIso:
      return IsIsoDate(value);
    case PatternKind::kEmail:
      return IsEmail(value);
    case PatternKind::kNumeric:
      return IsNumeric(value);
    case PatternKind::kZip:
      return IsDigits(value, 5);
    case PatternKind::kNonEmpty:
      return !IsMissingToken(value);
  }
  return true;
}

std::vector<size_t> FdViolations(const Table& table, const FdRule& rule) {
  // Group rows by lhs value; a group with >1 distinct rhs is in violation.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    groups[table.cell(r, rule.lhs)].push_back(r);
  }
  std::vector<size_t> out;
  for (const auto& [lhs, rows] : groups) {
    if (rows.size() < 2) continue;
    std::unordered_map<std::string, size_t> rhs_counts;
    for (size_t r : rows) ++rhs_counts[table.cell(r, rule.rhs)];
    if (rhs_counts.size() < 2) continue;
    // Flag rows whose rhs is not the majority value of the group (the
    // minority values are the likely errors).
    std::string majority;
    size_t best = 0;
    for (const auto& [v, c] : rhs_counts) {
      if (c > best) {
        best = c;
        majority = v;
      }
    }
    for (size_t r : rows) {
      if (table.cell(r, rule.rhs) != majority) out.push_back(r);
    }
  }
  return out;
}

}  // namespace saged::datagen
