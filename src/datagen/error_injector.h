#ifndef SAGED_DATAGEN_ERROR_INJECTOR_H_
#define SAGED_DATAGEN_ERROR_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/error_mask.h"
#include "data/table.h"
#include "datagen/rules.h"

namespace saged::datagen {

/// The five error classes of Table 1: missing values (MV), typos (TP),
/// outliers (OT), formatting issues (FI), and rule violations (RV).
enum class ErrorType {
  kMissingValue,
  kTypo,
  kOutlier,
  kFormatting,
  kRuleViolation,
};

const char* ErrorTypeName(ErrorType type);

/// Controls corruption of a clean table.
struct InjectionSpec {
  /// Target fraction of *cells* corrupted (Table 1's error rate).
  double error_rate = 0.1;
  /// Error classes to draw from (uniformly per corrupted cell, subject to
  /// applicability: outliers need numeric cells, rule violations need FDs).
  std::vector<ErrorType> types = {ErrorType::kMissingValue, ErrorType::kTypo};
  /// Outlier magnitude in column standard deviations (Figure 14's knob).
  double outlier_degree = 4.0;
};

/// Applies `spec` to a copy of `clean`, returning the dirty table and the
/// exact ground-truth mask. FD rules (when provided) enable rule-violation
/// errors that actually break the dataset's dependencies.
class ErrorInjector {
 public:
  ErrorInjector(InjectionSpec spec, uint64_t seed)
      : spec_(std::move(spec)), rng_(seed) {}

  struct Output {
    Table dirty;
    ErrorMask mask;
  };

  Result<Output> Inject(const Table& clean, const RuleSet* rules = nullptr);

  /// Individual corruption primitives (exposed for tests).
  std::string MakeMissing();
  std::string MakeTypo(const std::string& value);
  std::string MakeOutlier(const std::string& value, double column_mean,
                          double column_std);
  std::string MakeFormatting(const std::string& value);

 private:
  InjectionSpec spec_;
  Rng rng_;
};

}  // namespace saged::datagen

#endif  // SAGED_DATAGEN_ERROR_INJECTOR_H_
