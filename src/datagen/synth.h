#ifndef SAGED_DATAGEN_SYNTH_H_
#define SAGED_DATAGEN_SYNTH_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace saged::datagen {

/// Value synthesizers used to build the clean versions of the evaluation
/// datasets. Each mimics the textual shape of the corresponding real-world
/// attribute (names, phones, emails, dates, cities, categories, sensor
/// readings) so the featurizer sees realistic character and token
/// distributions.

/// Static domain banks (also exported to the KATARA knowledge base).
const std::vector<std::string>& FirstNameBank();
const std::vector<std::string>& LastNameBank();
const std::vector<std::string>& CityBank();
const std::vector<std::string>& CountryBank();
const std::vector<std::string>& WordBank();

std::string SynthFirstName(Rng& rng);
std::string SynthLastName(Rng& rng);
std::string SynthFullName(Rng& rng);
std::string SynthCity(Rng& rng);
std::string SynthCountry(Rng& rng);

/// "555-123-4567"
std::string SynthPhone(Rng& rng);

/// "jsmith42@example.com" derived from a name.
std::string SynthEmail(Rng& rng);

/// ISO date "YYYY-MM-DD" within [year_lo, year_hi].
std::string SynthDate(Rng& rng, int year_lo = 2000, int year_hi = 2023);

/// Uniform choice from a category bank.
std::string SynthCategory(Rng& rng, const std::vector<std::string>& choices);

/// Integer in [lo, hi] as text.
std::string SynthInt(Rng& rng, int64_t lo, int64_t hi);

/// Normal(mean, sd) rounded to `decimals` places as text.
std::string SynthReal(Rng& rng, double mean, double sd, int decimals = 2);

/// `n_words` words drawn from the word bank, space-separated.
std::string SynthText(Rng& rng, size_t n_words);

/// Zero-padded identifier, e.g. prefix="EMP", width=5 -> "EMP00042".
std::string SynthId(Rng& rng, const std::string& prefix, int width);

/// "12.3%" style percentage.
std::string SynthPercent(Rng& rng, double lo, double hi);

/// US-style zip code "64832".
std::string SynthZip(Rng& rng);

}  // namespace saged::datagen

#endif  // SAGED_DATAGEN_SYNTH_H_
