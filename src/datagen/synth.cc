#include "datagen/synth.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace saged::datagen {

const std::vector<std::string>& FirstNameBank() {
  static const auto& bank = *new std::vector<std::string>{
      "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
      "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
      "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
      "Lisa", "Matthew", "Nancy", "Anthony", "Betty", "Mark", "Margaret",
      "Donald", "Sandra", "Steven", "Ashley", "Paul", "Kimberly", "Andrew",
      "Emily", "Joshua", "Donna", "Kenneth", "Michelle", "Kevin", "Carol",
      "Brian", "Amanda", "George", "Dorothy", "Edward", "Melissa", "Ronald",
      "Deborah", "Timothy", "Stephanie", "Jason", "Rebecca", "Jeffrey",
      "Sharon", "Ryan", "Laura", "Jacob", "Cynthia", "Gary", "Kathleen",
      "Nicholas", "Amy"};
  return bank;
}

const std::vector<std::string>& LastNameBank() {
  static const auto& bank = *new std::vector<std::string>{
      "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
      "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
      "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
      "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
      "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
      "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
      "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
      "Carter", "Roberts"};
  return bank;
}

const std::vector<std::string>& CityBank() {
  static const auto& bank = *new std::vector<std::string>{
      "New York", "Los Angeles", "Chicago", "Houston", "Phoenix",
      "Philadelphia", "San Antonio", "San Diego", "Dallas", "San Jose",
      "Austin", "Jacksonville", "Fort Worth", "Columbus", "Charlotte",
      "Indianapolis", "Seattle", "Denver", "Boston", "Nashville", "Detroit",
      "Portland", "Memphis", "Louisville", "Baltimore", "Milwaukee",
      "Albuquerque", "Tucson", "Fresno", "Sacramento", "Atlanta",
      "Kansas City", "Miami", "Raleigh", "Omaha", "Oakland", "Minneapolis",
      "Tampa", "Arlington", "Berlin", "Munich", "Hamburg", "Frankfurt",
      "Stuttgart", "Darmstadt", "Cologne", "Dresden", "Leipzig"};
  return bank;
}

const std::vector<std::string>& CountryBank() {
  static const auto& bank = *new std::vector<std::string>{
      "USA", "Germany", "France", "Spain", "Italy", "England", "Brazil",
      "Argentina", "Japan", "Canada", "Mexico", "Netherlands", "Belgium",
      "Portugal", "Sweden", "Norway", "Denmark", "Poland", "Austria",
      "Switzerland"};
  return bank;
}

const std::vector<std::string>& WordBank() {
  static const auto& bank = *new std::vector<std::string>{
      "analysis",  "system",   "model",    "quality",  "process",  "service",
      "project",   "market",   "research", "product",  "review",   "study",
      "impact",    "design",   "energy",   "control",  "network",  "signal",
      "factory",   "sensor",   "medical",  "clinical", "patient",  "trial",
      "flight",    "airline",  "arrival",  "schedule", "delayed",  "weather",
      "hospital",  "record",   "measure",  "survey",   "report",   "annual",
      "global",    "regional", "customer", "account",  "balance",  "payment",
      "insurance", "policy",   "premium",  "claim",    "vehicle",  "engine",
      "velocity",  "pressure", "moisture", "humidity", "orbital",  "asteroid"};
  return bank;
}

std::string SynthFirstName(Rng& rng) {
  return FirstNameBank()[rng.UniformInt(FirstNameBank().size())];
}

std::string SynthLastName(Rng& rng) {
  return LastNameBank()[rng.UniformInt(LastNameBank().size())];
}

std::string SynthFullName(Rng& rng) {
  return SynthFirstName(rng) + " " + SynthLastName(rng);
}

std::string SynthCity(Rng& rng) {
  return CityBank()[rng.UniformInt(CityBank().size())];
}

std::string SynthCountry(Rng& rng) {
  return CountryBank()[rng.UniformInt(CountryBank().size())];
}

std::string SynthPhone(Rng& rng) {
  return StrFormat("%03d-%03d-%04d", int(rng.UniformInt(200, 999)),
                   int(rng.UniformInt(100, 999)),
                   int(rng.UniformInt(0, 9999)));
}

std::string SynthEmail(Rng& rng) {
  std::string first = ToLower(SynthFirstName(rng));
  std::string last = ToLower(SynthLastName(rng));
  static const char* kDomains[] = {"example.com", "mail.org", "corp.net",
                                   "web.de"};
  return StrFormat("%c%s%d@%s", first[0], last.c_str(),
                   int(rng.UniformInt(1, 99)),
                   kDomains[rng.UniformInt(4)]);
}

std::string SynthDate(Rng& rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng.UniformInt(year_lo, year_hi));
  int month = static_cast<int>(rng.UniformInt(1, 12));
  int day = static_cast<int>(rng.UniformInt(1, 28));
  return StrFormat("%04d-%02d-%02d", year, month, day);
}

std::string SynthCategory(Rng& rng, const std::vector<std::string>& choices) {
  return choices[rng.UniformInt(choices.size())];
}

std::string SynthInt(Rng& rng, int64_t lo, int64_t hi) {
  return StrFormat("%lld",
                   static_cast<long long>(rng.UniformInt(lo, hi)));
}

std::string SynthReal(Rng& rng, double mean, double sd, int decimals) {
  double v = rng.Normal(mean, sd);
  return StrFormat("%.*f", decimals, v);
}

std::string SynthText(Rng& rng, size_t n_words) {
  std::vector<std::string> words;
  words.reserve(n_words);
  for (size_t i = 0; i < n_words; ++i) {
    words.push_back(WordBank()[rng.UniformInt(WordBank().size())]);
  }
  return Join(words, " ");
}

std::string SynthId(Rng& rng, const std::string& prefix, int width) {
  long long maxv = 1;
  for (int i = 0; i < width; ++i) maxv *= 10;
  return StrFormat("%s%0*lld", prefix.c_str(), width,
                   static_cast<long long>(rng.UniformInt(int64_t{0}, maxv - 1)));
}

std::string SynthPercent(Rng& rng, double lo, double hi) {
  return StrFormat("%.1f%%", rng.Uniform(lo, hi));
}

std::string SynthZip(Rng& rng) {
  return StrFormat("%05d", int(rng.UniformInt(10000, 99999)));
}

}  // namespace saged::datagen
