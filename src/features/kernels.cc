#include "features/kernels.h"

#include <atomic>
#include <cctype>
#include <cstring>

namespace saged::features::kernels {

namespace {

constexpr uint8_t kAlphaBit = 1;
constexpr uint8_t kDigitBit = 2;
constexpr uint8_t kPunctBit = 4;

/// 256-entry class-bitmask table, built once from the same <cctype>
/// predicates the scalar reference (and common/strings.h) uses, so the
/// table walk is equal to the reference by construction even if the C
/// library's character classes ever differ from the ASCII ranges.
const uint8_t* ClassTable() {
  static const uint8_t* table = [] {
    static uint8_t t[256];
    for (int c = 0; c < 256; ++c) {
      uint8_t bits = 0;
      if (std::isalpha(c) != 0) bits |= kAlphaBit;
      if (std::isdigit(c) != 0) bits |= kDigitBit;
      if (std::ispunct(c) != 0) bits |= kPunctBit;
      t[c] = bits;
    }
    return t;
  }();
  return table;
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

CharClassCounts CountCharClassesScalar(std::string_view bytes) {
  CharClassCounts counts;
  for (char raw : bytes) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isalpha(c) != 0) ++counts.alpha;
    if (std::isdigit(c) != 0) ++counts.digit;
    if (std::ispunct(c) != 0) ++counts.punct;
  }
  return counts;
}

CharClassCounts CountCharClasses(std::string_view bytes) {
#if defined(SAGED_FEATURES_HAVE_SIMD)
  if (SimdFlag().load(std::memory_order_relaxed)) {
    return CountCharClassesSimd(bytes);
  }
#endif
  const uint8_t* table = ClassTable();
  CharClassCounts counts;
  for (char raw : bytes) {
    uint8_t bits = table[static_cast<unsigned char>(raw)];
    counts.alpha += bits & kAlphaBit;
    counts.digit += (bits >> 1) & 1u;
    counts.punct += (bits >> 2) & 1u;
  }
  return counts;
}

void ByteHistogramScalar(std::string_view bytes, uint32_t* counts) {
  for (char raw : bytes) ++counts[static_cast<unsigned char>(raw)];
}

void ByteHistogram(std::string_view bytes, uint32_t* counts) {
  // Histograms do not vectorize (scatter increments), but breaking the
  // loop-carried increment dependency by handling four bytes per iteration
  // keeps the store pipeline busy on typical short cells.
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ++counts[p[i]];
    ++counts[p[i + 1]];
    ++counts[p[i + 2]];
    ++counts[p[i + 3]];
  }
  for (; i < n; ++i) ++counts[p[i]];
}

uint64_t HashValueScalar(std::string_view bytes) {
  // FNV-1a over little-endian 8-byte groups, tail bytes assembled
  // explicitly — the same group values HashValue() loads with memcpy, so
  // the two agree on every platform this repo targets (little-endian).
  uint64_t h = kFnvOffset;
  size_t i = 0;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t group = 0;
    for (size_t b = 0; b < 8; ++b) {
      group |= static_cast<uint64_t>(p[i + b]) << (8 * b);
    }
    h = (h ^ group) * kFnvPrime;
  }
  if (i < bytes.size()) {
    uint64_t group = 0;
    for (size_t b = 0; i + b < bytes.size(); ++b) {
      group |= static_cast<uint64_t>(p[i + b]) << (8 * b);
    }
    // Fold the tail length in so "a" and "a\0" group-collide less.
    group |= static_cast<uint64_t>(bytes.size() - i) << 56;
    h = (h ^ group) * kFnvPrime;
  }
  return h;
}

uint64_t HashValue(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  size_t i = 0;
  const char* p = bytes.data();
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t group;
    std::memcpy(&group, p + i, sizeof(group));
    h = (h ^ group) * kFnvPrime;
  }
  if (i < bytes.size()) {
    uint64_t group = 0;
    std::memcpy(&group, p + i, bytes.size() - i);
    group |= static_cast<uint64_t>(bytes.size() - i) << 56;
    h = (h ^ group) * kFnvPrime;
  }
  return h;
}

bool SimdAvailable() {
#if defined(SAGED_FEATURES_HAVE_SIMD)
  return true;
#else
  return false;
#endif
}

void SetSimdEnabled(bool enabled) {
  SimdFlag().store(enabled, std::memory_order_relaxed);
}

bool SimdEnabled() {
  return SimdAvailable() && SimdFlag().load(std::memory_order_relaxed);
}

}  // namespace saged::features::kernels
