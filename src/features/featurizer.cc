#include "features/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "features/kernels.h"
#include "features/metadata_profiler.h"

namespace saged::features {

size_t ColumnFeaturizer::FeatureWidth(size_t w2v_dim, const CharSpace& space) {
  return MetadataProfiler::kWidth + w2v_dim + space.capacity();
}

void ColumnFeaturizer::RegisterChars(const Column& column, CharSpace* space) {
  text::CharTfidf tfidf;
  if (!tfidf.Fit(column.values()).ok()) return;
  space->Register(tfidf.vocabulary());
}

ColumnFeaturizer::TfidfPlan ColumnFeaturizer::BuildTfidfPlan(
    const text::CharTfidf& tfidf, FeatureArena* arena) const {
  TfidfPlan plan;
  plan.tfidf = &tfidf;
  const auto& vocab = tfidf.vocabulary();
  arena->idf_.resize(vocab.size());
  arena->slots_.resize(vocab.size());
  for (size_t v = 0; v < vocab.size(); ++v) {
    // Exactly CharTfidf::TransformCell's idf expression, hoisted out of the
    // per-cell loop: same operands, same operation order, same double.
    arena->idf_[v] =
        std::log2(static_cast<double>(tfidf.NumDocs()) /
                  (static_cast<double>(tfidf.DocFrequency(vocab[v])) + 1.0));
    arena->slots_[v] = space_->SlotFor(vocab[v]);
  }
  plan.idf = arena->idf_;
  plan.slots = arena->slots_;
  return plan;
}

void ColumnFeaturizer::FeaturizeCell(const MetadataProfiler& profiler,
                                     const TfidfPlan& plan,
                                     std::string_view cell,
                                     std::span<double> row) const {
  const size_t meta_w = MetadataProfiler::kWidth;
  const size_t w2v_dim = w2v_->dim();

  if (options_.toggles.metadata) {
    profiler.CellFeaturesInto(cell, row.subspan(0, meta_w));
  }

  if (options_.toggles.word2vec) {
    w2v_->EmbedValueInto(cell, row.subspan(meta_w, w2v_dim));
  }

  if (options_.toggles.tfidf && !cell.empty() && plan.tfidf->NumDocs() > 0) {
    // TF-IDF into shared slots; unregistered characters accumulate in the
    // overflow slot (zero-padding of Figure 5 for everything else). One
    // batched histogram per cell replaces the per-vocab-char scans; the tf
    // and idf arithmetic matches CharTfidf::TransformCell term for term.
    uint32_t counts[256] = {0};
    kernels::ByteHistogram(cell, counts);
    const auto& vocab = plan.tfidf->vocabulary();
    const double inv_len = 1.0 / static_cast<double>(cell.size());
    double* tfidf_block = row.data() + meta_w + w2v_dim;
    for (size_t v = 0; v < vocab.size(); ++v) {
      uint32_t count = counts[vocab[v]];
      if (count == 0) continue;
      double tf = static_cast<double>(count) * inv_len;
      tfidf_block[plan.slots[v]] += tf * plan.idf[v];
    }
  }
}

Status ColumnFeaturizer::FeaturizeCells(const MetadataProfiler& profiler,
                                        const text::CharTfidf& tfidf,
                                        std::span<const Cell> cells,
                                        double distinct_ratio, ml::Matrix* out,
                                        FeatureArena* arena) const {
  const size_t width = FeatureWidth(w2v_->dim(), *space_);
  out->Reset(cells.size(), width);
  SAGED_COUNTER_ADD("featurize.cells", cells.size());

  FeatureArena local;
  if (arena == nullptr) arena = &local;
  const TfidfPlan plan = BuildTfidfPlan(tfidf, arena);

  FeaturizeMode mode = options_.mode;
  if (mode == FeaturizeMode::kAuto) {
    // Decide from the column-level ratio (frozen before any block work), so
    // every block of a column takes the same path regardless of blocking.
    mode = distinct_ratio <= options_.dict_max_distinct_ratio
               ? FeaturizeMode::kDict
               : FeaturizeMode::kScalar;
  }

  if (mode == FeaturizeMode::kScalar) {
    for (size_t i = 0; i < cells.size(); ++i) {
      FeaturizeCell(profiler, plan, cells[i], out->Row(i));
    }
    return Status::OK();
  }

  // Dictionary path: profile each distinct value exactly once, then gather
  // rows through the code vector. Byte-identical to the scalar loop because
  // FeaturizeCell is a pure function of (cell bytes, frozen column stats).
  ColumnDictionary& dict = arena->dict_;
  {
    SAGED_TRACE_SPAN("featurize/encode");
    dict.Encode(cells);
  }
  SAGED_COUNTER_ADD("featurize.dict_cells", cells.size());
  SAGED_COUNTER_ADD("featurize.dict_hits", cells.size() - dict.size());
  SAGED_HISTOGRAM_OBSERVE("featurize.distinct_ratio", dict.distinct_ratio());

  ml::Matrix& dict_rows = arena->dict_rows_;
  {
    SAGED_TRACE_SPAN("featurize/dict_profile");
    dict_rows.Reset(dict.size(), width);
    for (size_t d = 0; d < dict.size(); ++d) {
      FeaturizeCell(profiler, plan, dict.value(static_cast<uint32_t>(d)),
                    dict_rows.Row(d));
    }
  }
  {
    SAGED_TRACE_SPAN("featurize/gather");
    const auto& codes = dict.codes();
    for (size_t i = 0; i < cells.size(); ++i) {
      std::span<const double> src = dict_rows.Row(codes[i]);
      std::copy(src.begin(), src.end(), out->Row(i).begin());
    }
  }
  return Status::OK();
}

Result<ml::Matrix> ColumnFeaturizer::Featurize(const Column& column) const {
  if (column.empty()) return Status::InvalidArgument("empty column");
  SAGED_TRACE_SPAN("featurize/column");
  StopWatch watch;

  MetadataProfiler profiler;
  SAGED_RETURN_NOT_OK(profiler.Fit(column));
  text::CharTfidf tfidf;
  SAGED_RETURN_NOT_OK(tfidf.Fit(column.values()));

  ml::Matrix out;
  SAGED_RETURN_NOT_OK(FeaturizeCells(profiler, tfidf, column.values(),
                                     profiler.profile().distinct_ratio, &out,
                                     nullptr));
  SAGED_HISTOGRAM_OBSERVE("featurize.column_ms", watch.Millis());
  return out;
}

Result<ml::Matrix> ColumnFeaturizer::FeaturizeFrozen(
    const FrozenColumnStats& stats, std::span<const Cell> cells) const {
  ml::Matrix out;
  SAGED_RETURN_NOT_OK(FeaturizeFrozenInto(stats, cells, &out, nullptr));
  return out;
}

Status ColumnFeaturizer::FeaturizeFrozenInto(const FrozenColumnStats& stats,
                                             std::span<const Cell> cells,
                                             ml::Matrix* out,
                                             FeatureArena* arena) const {
  if (stats.rows() == 0) return Status::InvalidArgument("unfitted stats");
  SAGED_TRACE_SPAN("featurize/block");
  StopWatch watch;

  SAGED_RETURN_NOT_OK(FeaturizeCells(stats.profiler, stats.tfidf, cells,
                                     stats.profiler.profile().distinct_ratio,
                                     out, arena));
  SAGED_HISTOGRAM_OBSERVE("featurize.block_ms", watch.Millis());
  return Status::OK();
}

}  // namespace saged::features
