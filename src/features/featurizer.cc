#include "features/featurizer.h"

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "features/metadata_profiler.h"

namespace saged::features {

size_t ColumnFeaturizer::FeatureWidth(size_t w2v_dim, const CharSpace& space) {
  return MetadataProfiler::kWidth + w2v_dim + space.capacity();
}

void ColumnFeaturizer::RegisterChars(const Column& column, CharSpace* space) {
  text::CharTfidf tfidf;
  if (!tfidf.Fit(column.values()).ok()) return;
  space->Register(tfidf.vocabulary());
}

void ColumnFeaturizer::FeaturizeCell(const MetadataProfiler& profiler,
                                     const text::CharTfidf& tfidf,
                                     const Cell& cell,
                                     std::span<double> row) const {
  const size_t meta_w = MetadataProfiler::kWidth;
  const size_t w2v_dim = w2v_->dim();

  if (toggles_.metadata) {
    auto meta = profiler.CellFeatures(cell);
    std::copy(meta.begin(), meta.end(), row.begin());
  }

  if (toggles_.word2vec) {
    auto emb = w2v_->EmbedValue(cell);
    std::copy(emb.begin(), emb.end(), row.begin() + static_cast<long>(meta_w));
  }

  if (toggles_.tfidf) {
    // TF-IDF into shared slots; unregistered characters accumulate in the
    // overflow slot (zero-padding of Figure 5 for everything else).
    auto weights = tfidf.TransformCell(cell);
    const auto& vocab = tfidf.vocabulary();
    for (size_t v = 0; v < vocab.size(); ++v) {
      if (weights[v] == 0.0) continue;
      size_t slot = space_->SlotFor(vocab[v]);
      row[meta_w + w2v_dim + slot] += weights[v];
    }
  }
}

Result<ml::Matrix> ColumnFeaturizer::Featurize(const Column& column) const {
  if (column.empty()) return Status::InvalidArgument("empty column");
  SAGED_TRACE_SPAN("featurize/column");
  StopWatch watch;
  SAGED_COUNTER_ADD("featurize.cells", column.size());

  MetadataProfiler profiler;
  SAGED_RETURN_NOT_OK(profiler.Fit(column));
  text::CharTfidf tfidf;
  SAGED_RETURN_NOT_OK(tfidf.Fit(column.values()));

  const size_t width = FeatureWidth(w2v_->dim(), *space_);
  ml::Matrix out(column.size(), width);
  for (size_t i = 0; i < column.size(); ++i) {
    FeaturizeCell(profiler, tfidf, column[i], out.Row(i));
  }
  SAGED_HISTOGRAM_OBSERVE("featurize.column_ms", watch.Millis());
  return out;
}

Result<ml::Matrix> ColumnFeaturizer::FeaturizeFrozen(
    const FrozenColumnStats& stats, std::span<const Cell> cells) const {
  if (stats.rows() == 0) return Status::InvalidArgument("unfitted stats");
  SAGED_TRACE_SPAN("featurize/block");
  StopWatch watch;
  SAGED_COUNTER_ADD("featurize.cells", cells.size());

  const size_t width = FeatureWidth(w2v_->dim(), *space_);
  ml::Matrix out(cells.size(), width);
  for (size_t i = 0; i < cells.size(); ++i) {
    FeaturizeCell(stats.profiler, stats.tfidf, cells[i], out.Row(i));
  }
  SAGED_HISTOGRAM_OBSERVE("featurize.block_ms", watch.Millis());
  return out;
}

}  // namespace saged::features
