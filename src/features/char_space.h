#ifndef SAGED_FEATURES_CHAR_SPACE_H_
#define SAGED_FEATURES_CHAR_SPACE_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/binary_io.h"

namespace saged::features {

/// Shared character -> feature-slot registry implementing the paper's
/// zero-padding scheme (Figure 5): the TF-IDF feature space is the union of
/// the character sets of all historical columns, and a column simply leaves
/// absent characters at zero.
///
/// Slots are assigned first-come during knowledge extraction. Characters
/// first seen at detection time (absent from every historical dataset) fall
/// into a single reserved overflow slot so dirty-data feature vectors keep
/// the width the base models were trained with.
class CharSpace {
 public:
  /// `capacity` counts assignable slots plus the reserved overflow slot.
  explicit CharSpace(size_t capacity = 64);

  /// Registers every character of `chars`, in order, until slots run out.
  void Register(const std::vector<unsigned char>& chars);

  /// Total feature width contributed by TF-IDF (== capacity).
  size_t capacity() const { return capacity_; }

  /// Number of distinct registered characters.
  size_t NumRegistered() const { return registered_; }

  /// Slot of `c`, or the overflow slot when unregistered.
  size_t SlotFor(unsigned char c) const {
    int s = slots_[c];
    return s >= 0 ? static_cast<size_t>(s) : capacity_ - 1;
  }

  bool IsRegistered(unsigned char c) const { return slots_[c] >= 0; }

  /// Persists / restores the slot assignment (knowledge-base file format).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  size_t capacity_;
  size_t registered_ = 0;
  std::array<int, 256> slots_;
};

}  // namespace saged::features

#endif  // SAGED_FEATURES_CHAR_SPACE_H_
