#include "features/frozen_stats.h"

#include <utility>

#include "data/value.h"
#include "features/signature.h"

namespace saged::features {

void ColumnStatsBuilder::Observe(std::string_view cell) {
  ++n_;
  profiler_.Observe(cell);
  tfidf_.Observe(cell);
  ValueKind kind = ClassifyValue(cell);
  if (kind == ValueKind::kMissing) return;
  ++non_missing_;
  if (kind == ValueKind::kInteger || kind == ValueKind::kReal) ++numeric_;
  if (kind == ValueKind::kDate) ++date_;
}

Result<FrozenColumnStats> ColumnStatsBuilder::Finalize() {
  SAGED_RETURN_NOT_OK(profiler_.Finalize());
  FrozenColumnStats stats;
  stats.type = InferTypeFromCounts(numeric_, date_, non_missing_, n_,
                                   profiler_.value_counts().size());
  stats.signature = SignatureFromStats(stats.type, profiler_.profile());
  stats.profiler = std::move(profiler_);
  stats.tfidf = std::move(tfidf_);
  return stats;
}

}  // namespace saged::features
