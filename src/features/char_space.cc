#include "features/char_space.h"

#include <algorithm>

#include "common/logging.h"

namespace saged::features {

CharSpace::CharSpace(size_t capacity) : capacity_(std::max<size_t>(capacity, 2)) {
  slots_.fill(-1);
}

void CharSpace::Register(const std::vector<unsigned char>& chars) {
  for (unsigned char c : chars) {
    if (slots_[c] >= 0) continue;
    if (registered_ + 1 >= capacity_) return;  // keep the overflow slot free
    slots_[c] = static_cast<int>(registered_++);
  }
}

void CharSpace::Save(BinaryWriter* writer) const {
  writer->WriteU64(capacity_);
  writer->WriteU64(registered_);
  for (int slot : slots_) writer->WriteI32(slot);
}

Status CharSpace::Load(BinaryReader* reader) {
  SAGED_ASSIGN_OR_RETURN(capacity_, reader->ReadU64());
  SAGED_ASSIGN_OR_RETURN(registered_, reader->ReadU64());
  if (capacity_ < 2 || registered_ >= capacity_) {
    return Status::IoError("corrupt char space header");
  }
  for (auto& slot : slots_) {
    SAGED_ASSIGN_OR_RETURN(slot, reader->ReadI32());
    if (slot >= static_cast<int>(capacity_)) {
      return Status::IoError("corrupt char space slot");
    }
  }
  return Status::OK();
}

}  // namespace saged::features
