#ifndef SAGED_FEATURES_FROZEN_STATS_H_
#define SAGED_FEATURES_FROZEN_STATS_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "features/metadata_profiler.h"
#include "text/tfidf.h"

namespace saged::features {

/// Pass-1 product of the streaming detection path: every piece of column
/// state that whole-table featurization derives from a global fit — metadata
/// profile with value counts, per-column TF-IDF corpus statistics, inferred
/// type, matcher signature — frozen after one streaming scan. Under a frozen
/// stats object, featurizing a row block is a pure per-cell function, so
/// block-wise featurization concatenates to exactly the whole-table matrix.
struct FrozenColumnStats {
  MetadataProfiler profiler;
  text::CharTfidf tfidf;
  ColumnType type = ColumnType::kText;
  std::vector<double> signature;  // kSignatureWidth, matcher input

  size_t rows() const { return profiler.observed(); }
};

/// Accumulates FrozenColumnStats from cells streamed in row order. The
/// statistics are bit-identical (floating-point accumulation order included)
/// to fitting on the materialized column, because MetadataProfiler::Fit and
/// CharTfidf::Fit are themselves loops over the same Observe calls.
class ColumnStatsBuilder {
 public:
  void Observe(std::string_view cell);

  size_t observed() const { return n_; }

  /// Freezes the accumulated statistics. Errors on zero observed cells.
  /// The builder is spent afterwards.
  Result<FrozenColumnStats> Finalize();

 private:
  MetadataProfiler profiler_;
  text::CharTfidf tfidf_;
  size_t numeric_ = 0;
  size_t date_ = 0;
  size_t non_missing_ = 0;
  size_t n_ = 0;
};

}  // namespace saged::features

#endif  // SAGED_FEATURES_FROZEN_STATS_H_
