#include "features/dictionary.h"

#include "common/contracts.h"
#include "features/kernels.h"

namespace saged::features {

namespace {

/// Smallest power of two >= n (and >= 16, so tiny blocks probe cheaply).
size_t TableCapacity(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

void ColumnDictionary::Encode(std::span<const Cell> cells) {
  values_.clear();
  codes_.clear();
  codes_.reserve(cells.size());

  // Rebuild the probe table at <= 50% load for the worst case (all cells
  // distinct); assign() keeps the backing allocation across blocks.
  size_t cap = TableCapacity(cells.size() * 2);
  table_.assign(cap, Slot{});
  mask_ = cap - 1;

  for (const Cell& cell : cells) {
    codes_.push_back(Intern(cell, kernels::HashValue(cell)));
  }
}

uint32_t ColumnDictionary::Intern(std::string_view value, uint64_t hash) {
  size_t i = hash & mask_;
  while (true) {
    Slot& slot = table_[i];
    if (slot.code == kEmptySlot) {
      SAGED_DCHECK_LT(values_.size(), size_t{kEmptySlot});
      auto code = static_cast<uint32_t>(values_.size());
      values_.push_back(value);
      slot.hash = hash;
      slot.code = code;
      return code;
    }
    if (slot.hash == hash && values_[slot.code] == value) {
      return slot.code;
    }
    i = (i + 1) & mask_;
  }
}

double ColumnDictionary::distinct_ratio() const {
  if (codes_.empty()) return 1.0;
  return static_cast<double>(values_.size()) /
         static_cast<double>(codes_.size());
}

}  // namespace saged::features
