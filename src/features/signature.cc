#include "features/signature.h"

#include <algorithm>

#include "features/metadata_profiler.h"

namespace saged::features {

std::vector<double> ColumnSignature(const Column& column) {
  std::vector<double> sig(kSignatureWidth, 0.0);
  if (column.empty()) return sig;

  switch (column.InferType()) {
    case ColumnType::kNumeric:
      sig[0] = 1.0;
      break;
    case ColumnType::kCategorical:
      sig[1] = 1.0;
      break;
    case ColumnType::kText:
      sig[2] = 1.0;
      break;
    case ColumnType::kDate:
      sig[3] = 1.0;
      break;
  }

  ColumnProfile p = ProfileColumn(column);
  sig[4] = p.missing_fraction;
  sig[5] = p.distinct_ratio;
  sig[6] = p.numeric_fraction;
  sig[7] = std::min(p.mean_length / 32.0, 1.0);
  sig[8] = std::min(p.std_length / 16.0, 1.0);
  sig[9] = p.mean_alpha;
  sig[10] = p.mean_digit;
  sig[11] = p.mean_punct;
  return sig;
}

}  // namespace saged::features
