#include "features/signature.h"

#include <algorithm>

namespace saged::features {

std::vector<double> SignatureFromStats(ColumnType type,
                                       const ColumnProfile& profile) {
  std::vector<double> sig(kSignatureWidth, 0.0);
  switch (type) {
    case ColumnType::kNumeric:
      sig[0] = 1.0;
      break;
    case ColumnType::kCategorical:
      sig[1] = 1.0;
      break;
    case ColumnType::kText:
      sig[2] = 1.0;
      break;
    case ColumnType::kDate:
      sig[3] = 1.0;
      break;
  }
  sig[4] = profile.missing_fraction;
  sig[5] = profile.distinct_ratio;
  sig[6] = profile.numeric_fraction;
  sig[7] = std::min(profile.mean_length / 32.0, 1.0);
  sig[8] = std::min(profile.std_length / 16.0, 1.0);
  sig[9] = profile.mean_alpha;
  sig[10] = profile.mean_digit;
  sig[11] = profile.mean_punct;
  return sig;
}

std::vector<double> ColumnSignature(const Column& column) {
  if (column.empty()) return std::vector<double>(kSignatureWidth, 0.0);
  return SignatureFromStats(column.InferType(), ProfileColumn(column));
}

}  // namespace saged::features
