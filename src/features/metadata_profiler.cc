#include "features/metadata_profiler.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "data/value.h"
#include "features/kernels.h"

namespace saged::features {

Status MetadataProfiler::Fit(const Column& column) {
  counts_.clear();
  n_ = 0;
  len_sum_ = len_sq_ = alpha_sum_ = digit_sum_ = punct_sum_ = 0.0;
  num_sum_ = num_sq_ = 0.0;
  missing_ = numeric_n_ = 0;
  max_length_ = 1.0;
  for (const auto& cell : column.values()) Observe(cell);
  return Finalize();
}

void MetadataProfiler::Observe(std::string_view cell) {
  ++n_;
  ++counts_[std::string(cell)];
  double len = static_cast<double>(cell.size());
  len_sum_ += len;
  len_sq_ += len * len;
  max_length_ = std::max(max_length_, len);
  if (!cell.empty()) {
    // One batched char-class pass; each fraction divides the same integer
    // count by the same length double as common/strings' per-class scans,
    // so the sums stay bit-identical to the historical three-scan form.
    kernels::CharClassCounts cc = kernels::CountCharClasses(cell);
    alpha_sum_ += static_cast<double>(cc.alpha) / len;
    digit_sum_ += static_cast<double>(cc.digit) / len;
    punct_sum_ += static_cast<double>(cc.punct) / len;
  }
  if (IsMissingToken(cell)) ++missing_;
  if (auto v = CellAsNumber(cell)) {
    ++numeric_n_;
    num_sum_ += *v;
    num_sq_ += *v * *v;
  }
}

Status MetadataProfiler::Finalize() {
  if (n_ == 0) return Status::InvalidArgument("empty column");
  double inv_n = 1.0 / static_cast<double>(n_);
  profile_.missing_fraction = static_cast<double>(missing_) * inv_n;
  profile_.distinct_ratio = static_cast<double>(counts_.size()) * inv_n;
  profile_.numeric_fraction = static_cast<double>(numeric_n_) * inv_n;
  profile_.mean_length = len_sum_ * inv_n;
  profile_.std_length = std::sqrt(std::max(
      0.0, len_sq_ * inv_n - profile_.mean_length * profile_.mean_length));
  profile_.mean_alpha = alpha_sum_ * inv_n;
  profile_.mean_digit = digit_sum_ * inv_n;
  profile_.mean_punct = punct_sum_ * inv_n;
  if (numeric_n_ > 0) {
    profile_.numeric_mean = num_sum_ / static_cast<double>(numeric_n_);
    profile_.numeric_std = std::sqrt(std::max(
        0.0, num_sq_ / static_cast<double>(numeric_n_) -
                 profile_.numeric_mean * profile_.numeric_mean));
  }
  return Status::OK();
}

std::vector<double> MetadataProfiler::CellFeatures(std::string_view cell) const {
  std::vector<double> f(kWidth, 0.0);
  CellFeaturesInto(cell, f);
  return f;
}

void MetadataProfiler::CellFeaturesInto(std::string_view cell,
                                        std::span<double> f) const {
  std::string key(cell);  // SSO keeps short cells allocation-free
  auto it = counts_.find(key);
  size_t count = it == counts_.end() ? 0 : it->second;
  f[0] = static_cast<double>(count) / static_cast<double>(std::max<size_t>(n_, 1));
  f[1] = IsMissingToken(cell) ? 1.0 : 0.0;
  f[2] = static_cast<double>(cell.size()) / max_length_;
  if (cell.empty()) {
    f[3] = f[4] = f[5] = 0.0;
  } else {
    kernels::CharClassCounts cc = kernels::CountCharClasses(cell);
    double size = static_cast<double>(cell.size());
    f[3] = static_cast<double>(cc.alpha) / size;
    f[4] = static_cast<double>(cc.digit) / size;
    f[5] = static_cast<double>(cc.punct) / size;
  }
  f[6] = count == 1 ? 1.0 : 0.0;
  f[7] = 0.0;
  if (auto v = CellAsNumber(cell)) {
    double sd = profile_.numeric_std > 1e-12 ? profile_.numeric_std : 1.0;
    f[7] = std::min(std::abs(*v - profile_.numeric_mean) / sd, 10.0);
  }
}

ColumnProfile ProfileColumn(const Column& column) {
  MetadataProfiler profiler;
  if (!profiler.Fit(column).ok()) return {};
  return profiler.profile();
}

}  // namespace saged::features
