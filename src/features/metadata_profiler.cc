#include "features/metadata_profiler.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "data/value.h"

namespace saged::features {

Status MetadataProfiler::Fit(const Column& column) {
  counts_.clear();
  n_ = 0;
  len_sum_ = len_sq_ = alpha_sum_ = digit_sum_ = punct_sum_ = 0.0;
  num_sum_ = num_sq_ = 0.0;
  missing_ = numeric_n_ = 0;
  max_length_ = 1.0;
  for (const auto& cell : column.values()) Observe(cell);
  return Finalize();
}

void MetadataProfiler::Observe(std::string_view cell) {
  ++n_;
  ++counts_[std::string(cell)];
  double len = static_cast<double>(cell.size());
  len_sum_ += len;
  len_sq_ += len * len;
  max_length_ = std::max(max_length_, len);
  alpha_sum_ += AlphaFraction(cell);
  digit_sum_ += DigitFraction(cell);
  punct_sum_ += PunctFraction(cell);
  if (IsMissingToken(cell)) ++missing_;
  if (auto v = CellAsNumber(cell)) {
    ++numeric_n_;
    num_sum_ += *v;
    num_sq_ += *v * *v;
  }
}

Status MetadataProfiler::Finalize() {
  if (n_ == 0) return Status::InvalidArgument("empty column");
  double inv_n = 1.0 / static_cast<double>(n_);
  profile_.missing_fraction = static_cast<double>(missing_) * inv_n;
  profile_.distinct_ratio = static_cast<double>(counts_.size()) * inv_n;
  profile_.numeric_fraction = static_cast<double>(numeric_n_) * inv_n;
  profile_.mean_length = len_sum_ * inv_n;
  profile_.std_length = std::sqrt(std::max(
      0.0, len_sq_ * inv_n - profile_.mean_length * profile_.mean_length));
  profile_.mean_alpha = alpha_sum_ * inv_n;
  profile_.mean_digit = digit_sum_ * inv_n;
  profile_.mean_punct = punct_sum_ * inv_n;
  if (numeric_n_ > 0) {
    profile_.numeric_mean = num_sum_ / static_cast<double>(numeric_n_);
    profile_.numeric_std = std::sqrt(std::max(
        0.0, num_sq_ / static_cast<double>(numeric_n_) -
                 profile_.numeric_mean * profile_.numeric_mean));
  }
  return Status::OK();
}

std::vector<double> MetadataProfiler::CellFeatures(std::string_view cell) const {
  std::vector<double> f(kWidth, 0.0);
  std::string key(cell);
  auto it = counts_.find(key);
  size_t count = it == counts_.end() ? 0 : it->second;
  f[0] = static_cast<double>(count) / static_cast<double>(std::max<size_t>(n_, 1));
  f[1] = IsMissingToken(cell) ? 1.0 : 0.0;
  f[2] = static_cast<double>(cell.size()) / max_length_;
  f[3] = AlphaFraction(cell);
  f[4] = DigitFraction(cell);
  f[5] = PunctFraction(cell);
  f[6] = count == 1 ? 1.0 : 0.0;
  if (auto v = CellAsNumber(cell)) {
    double sd = profile_.numeric_std > 1e-12 ? profile_.numeric_std : 1.0;
    f[7] = std::min(std::abs(*v - profile_.numeric_mean) / sd, 10.0);
  }
  return f;
}

ColumnProfile ProfileColumn(const Column& column) {
  MetadataProfiler profiler;
  if (!profiler.Fit(column).ok()) return {};
  return profiler.profile();
}

}  // namespace saged::features
