#ifndef SAGED_FEATURES_FEATURIZER_H_
#define SAGED_FEATURES_FEATURIZER_H_

#include <span>

#include "common/status.h"
#include "data/column.h"
#include "features/char_space.h"
#include "features/frozen_stats.h"
#include "ml/matrix.h"
#include "text/tfidf.h"
#include "text/word2vec.h"

namespace saged::features {

/// Ablation switches: a disabled family's block stays present but zeroed,
/// keeping the feature width (and therefore base-model compatibility)
/// constant.
struct FeatureToggles {
  bool metadata = true;
  bool word2vec = true;
  bool tfidf = true;
};

/// The automatic featurization module: maps every cell of a column to the
/// concatenation [metadata | Word2Vec embedding | char TF-IDF], zero-padded
/// into the shared CharSpace so all columns (historical and dirty) share one
/// feature width.
class ColumnFeaturizer {
 public:
  ColumnFeaturizer(const text::Word2Vec* w2v, const CharSpace* space,
                   FeatureToggles toggles = {})
      : w2v_(w2v), space_(space), toggles_(toggles) {}

  /// Total feature width for the given embedding dim and char space.
  static size_t FeatureWidth(size_t w2v_dim, const CharSpace& space);

  /// Featurizes a whole column: one row per cell. The TF-IDF statistics
  /// (document frequencies) are fitted on this column, per the paper's
  /// per-column corpus definition.
  Result<ml::Matrix> Featurize(const Column& column) const;

  /// Featurizes a contiguous slice of a column's cells under statistics
  /// frozen from a prior pass over the whole column. Row i of the result is
  /// bit-identical to row (slice offset + i) of Featurize on the full
  /// column, because both call the same per-cell kernel and the frozen
  /// stats match a whole-column fit — this is the block independence the
  /// streaming detector relies on.
  Result<ml::Matrix> FeaturizeFrozen(const FrozenColumnStats& stats,
                                     std::span<const Cell> cells) const;

  /// Registers the column's characters into a (mutable) char space; called
  /// during knowledge extraction before any Featurize.
  static void RegisterChars(const Column& column, CharSpace* space);

 private:
  void FeaturizeCell(const MetadataProfiler& profiler,
                     const text::CharTfidf& tfidf, const Cell& cell,
                     std::span<double> row) const;

  const text::Word2Vec* w2v_;
  const CharSpace* space_;
  FeatureToggles toggles_;
};

}  // namespace saged::features

#endif  // SAGED_FEATURES_FEATURIZER_H_
