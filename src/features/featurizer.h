#ifndef SAGED_FEATURES_FEATURIZER_H_
#define SAGED_FEATURES_FEATURIZER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "features/char_space.h"
#include "features/dictionary.h"
#include "features/frozen_stats.h"
#include "ml/matrix.h"
#include "text/tfidf.h"
#include "text/word2vec.h"

namespace saged::features {

/// Ablation switches: a disabled family's block stays present but zeroed,
/// keeping the feature width (and therefore base-model compatibility)
/// constant.
struct FeatureToggles {
  bool metadata = true;
  bool word2vec = true;
  bool tfidf = true;
};

/// Which per-cell featurization path runs. All three are byte-identical in
/// output (the dictionary path computes each distinct value's row with the
/// same scalar arithmetic and gathers copies); they differ only in work:
///   kScalar  one full profile + TF-IDF + embedding per cell
///   kDict    one per *distinct* value, gathered through the code vector
///   kAuto    kDict when the column's distinct ratio is at most
///            `dict_max_distinct_ratio`, else kScalar
enum class FeaturizeMode {
  kScalar,
  kDict,
  kAuto,
};

/// Featurization knobs threaded from SagedConfig (core/config.h keeps the
/// user-facing flags; this struct is the features-layer view of them).
struct FeaturizeOptions {
  FeatureToggles toggles;
  FeaturizeMode mode = FeaturizeMode::kAuto;
  /// kAuto's dictionary cutoff: columns whose distinct ratio exceeds this
  /// take the scalar path (encoding all-distinct columns buys nothing).
  double dict_max_distinct_ratio = 0.5;
};

/// Reusable featurization scratch (arena discipline): the dictionary, the
/// per-dictionary feature matrix, and the TF-IDF plan buffers keep their
/// allocations across calls, so the streaming path featurizes block after
/// block with zero steady-state allocation beyond matrix fills. One arena
/// per (column, caller) — the arena is NOT thread-safe; concurrent columns
/// each use their own.
class FeatureArena {
 private:
  friend class ColumnFeaturizer;
  ColumnDictionary dict_;
  ml::Matrix dict_rows_;        // one featurized row per distinct value
  std::vector<double> idf_;     // per-vocab-char TF-IDF idf term
  std::vector<size_t> slots_;   // per-vocab-char CharSpace slot
};

/// The automatic featurization module: maps every cell of a column to the
/// concatenation [metadata | Word2Vec embedding | char TF-IDF], zero-padded
/// into the shared CharSpace so all columns (historical and dirty) share one
/// feature width.
class ColumnFeaturizer {
 public:
  ColumnFeaturizer(const text::Word2Vec* w2v, const CharSpace* space,
                   FeatureToggles toggles)
      : w2v_(w2v), space_(space) {
    options_.toggles = toggles;
  }

  explicit ColumnFeaturizer(const text::Word2Vec* w2v, const CharSpace* space,
                            FeaturizeOptions options = {})
      : w2v_(w2v), space_(space), options_(options) {}

  /// Total feature width for the given embedding dim and char space.
  static size_t FeatureWidth(size_t w2v_dim, const CharSpace& space);

  /// Featurizes a whole column: one row per cell. The TF-IDF statistics
  /// (document frequencies) are fitted on this column, per the paper's
  /// per-column corpus definition.
  Result<ml::Matrix> Featurize(const Column& column) const;

  /// Featurizes a contiguous slice of a column's cells under statistics
  /// frozen from a prior pass over the whole column. Row i of the result is
  /// bit-identical to row (slice offset + i) of Featurize on the full
  /// column, because both call the same per-cell kernel (or gather its
  /// output through a dictionary) and the frozen stats match a whole-column
  /// fit — this is the block independence the streaming detector relies on.
  Result<ml::Matrix> FeaturizeFrozen(const FrozenColumnStats& stats,
                                     std::span<const Cell> cells) const;

  /// Arena form of FeaturizeFrozen: writes into `out` (resized in place,
  /// capacity retained) and keeps dictionary/plan scratch in `arena`. The
  /// streaming detector calls this block after block with one (matrix,
  /// arena) pair per column. `arena` may be null (scratch is then local).
  Status FeaturizeFrozenInto(const FrozenColumnStats& stats,
                             std::span<const Cell> cells, ml::Matrix* out,
                             FeatureArena* arena) const;

  /// Registers the column's characters into a (mutable) char space; called
  /// during knowledge extraction before any Featurize.
  static void RegisterChars(const Column& column, CharSpace* space);

 private:
  /// Per-column TF-IDF gather plan: vocab character -> (idf term, CharSpace
  /// slot), precomputed once per column so the per-cell loop is a histogram
  /// walk with no log2 / slot lookups.
  struct TfidfPlan {
    const text::CharTfidf* tfidf = nullptr;
    std::span<const double> idf;
    std::span<const size_t> slots;
  };

  TfidfPlan BuildTfidfPlan(const text::CharTfidf& tfidf,
                           FeatureArena* arena) const;

  /// The shared block kernel behind Featurize / FeaturizeFrozen*: picks the
  /// scalar or dictionary path (kAuto decides from `distinct_ratio`, the
  /// column-level ratio, so every block of a column takes the same path).
  Status FeaturizeCells(const MetadataProfiler& profiler,
                        const text::CharTfidf& tfidf,
                        std::span<const Cell> cells, double distinct_ratio,
                        ml::Matrix* out, FeatureArena* arena) const;

  void FeaturizeCell(const MetadataProfiler& profiler, const TfidfPlan& plan,
                     std::string_view cell, std::span<double> row) const;

  const text::Word2Vec* w2v_;
  const CharSpace* space_;
  FeaturizeOptions options_;
};

}  // namespace saged::features

#endif  // SAGED_FEATURES_FEATURIZER_H_
