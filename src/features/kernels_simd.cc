// SSE2 / NEON specializations of the featurization kernels. Everything in
// this compilation unit follows the repo's SIMD contract (lint rule
// `no-unverified-simd`): each function has a named `*Scalar` reference
// sibling in kernels.cc, and a parity test fixture asserts byte-identical
// results over adversarial inputs. Only integer counting lives here —
// floating-point math stays in the shared scalar code, which is what keeps
// the dictionary/SIMD featurization path byte-identical to the scalar one.

#include "features/kernels.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

#if defined(SAGED_FEATURES_HAVE_SIMD)

namespace saged::features::kernels {

namespace {

/// Tail bytes (< one vector width) under the same ASCII class definition
/// the vector compares implement. The "C" locale <cctype> classes the
/// scalar reference uses coincide with these ranges; the parity tests
/// sweep all 256 byte values to prove it on the build host.
inline void CountTail(const unsigned char* p, size_t n,
                      CharClassCounts* counts) {
  for (size_t i = 0; i < n; ++i) {
    unsigned char c = p[i];
    bool digit = c >= '0' && c <= '9';
    bool alpha = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
    bool printable = c >= 0x21 && c <= 0x7e;
    counts->alpha += alpha ? 1u : 0u;
    counts->digit += digit ? 1u : 0u;
    counts->punct += (printable && !alpha && !digit) ? 1u : 0u;
  }
}

}  // namespace

#if defined(__SSE2__)

CharClassCounts CountCharClassesSimd(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  CharClassCounts counts;

  const __m128i zero = _mm_setzero_si128();
  const __m128i one = _mm_set1_epi8(1);
  // Unsigned range check via SSE2 min/max: lo <= x <= hi  <=>
  // max(x, lo) == x  &&  min(x, hi) == x.
  auto in_range = [](__m128i v, unsigned char lo, unsigned char hi) {
    __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, _mm_set1_epi8(static_cast<char>(lo))), v);
    __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(static_cast<char>(hi))), v);
    return _mm_and_si128(ge, le);
  };

  __m128i alpha_acc = zero;
  __m128i digit_acc = zero;
  __m128i punct_acc = zero;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    __m128i digit = in_range(v, '0', '9');
    __m128i alpha = _mm_or_si128(in_range(v, 'A', 'Z'), in_range(v, 'a', 'z'));
    __m128i printable = in_range(v, 0x21, 0x7e);
    __m128i punct =
        _mm_andnot_si128(_mm_or_si128(alpha, digit), printable);
    // 0xFF masks -> per-lane 1s -> horizontal sums of 8-byte halves.
    alpha_acc = _mm_add_epi64(alpha_acc,
                              _mm_sad_epu8(_mm_and_si128(alpha, one), zero));
    digit_acc = _mm_add_epi64(digit_acc,
                              _mm_sad_epu8(_mm_and_si128(digit, one), zero));
    punct_acc = _mm_add_epi64(punct_acc,
                              _mm_sad_epu8(_mm_and_si128(punct, one), zero));
  }
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), alpha_acc);
  counts.alpha = static_cast<uint32_t>(lanes[0] + lanes[1]);
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), digit_acc);
  counts.digit = static_cast<uint32_t>(lanes[0] + lanes[1]);
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), punct_acc);
  counts.punct = static_cast<uint32_t>(lanes[0] + lanes[1]);

  CountTail(p + i, n - i, &counts);
  return counts;
}

#elif defined(__ARM_NEON)

CharClassCounts CountCharClassesSimd(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  CharClassCounts counts;

  const uint8x16_t one = vdupq_n_u8(1);
  auto in_range = [](uint8x16_t v, unsigned char lo, unsigned char hi) {
    return vandq_u8(vcgeq_u8(v, vdupq_n_u8(lo)), vcleq_u8(v, vdupq_n_u8(hi)));
  };

  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(p + i);
    uint8x16_t digit = in_range(v, '0', '9');
    uint8x16_t alpha =
        vorrq_u8(in_range(v, 'A', 'Z'), in_range(v, 'a', 'z'));
    uint8x16_t printable = in_range(v, 0x21, 0x7e);
    uint8x16_t punct =
        vbicq_u8(printable, vorrq_u8(alpha, digit));
    counts.alpha += vaddvq_u8(vandq_u8(alpha, one));
    counts.digit += vaddvq_u8(vandq_u8(digit, one));
    counts.punct += vaddvq_u8(vandq_u8(punct, one));
  }

  CountTail(p + i, n - i, &counts);
  return counts;
}

#endif

}  // namespace saged::features::kernels

#endif  // SAGED_FEATURES_HAVE_SIMD
