#ifndef SAGED_FEATURES_METADATA_PROFILER_H_
#define SAGED_FEATURES_METADATA_PROFILER_H_

#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace saged::features {

/// Column-level statistics produced by the metadata profiler (the paper's
/// parameter list: value frequencies, missing fraction, character counts,
/// alphabetic / numeric / punctuation proportions, distinct proportion).
struct ColumnProfile {
  double missing_fraction = 0.0;
  double distinct_ratio = 0.0;
  double numeric_fraction = 0.0;  // cells parseable as numbers
  double mean_length = 0.0;
  double std_length = 0.0;
  double mean_alpha = 0.0;
  double mean_digit = 0.0;
  double mean_punct = 0.0;
  double numeric_mean = 0.0;  // over parseable cells
  double numeric_std = 0.0;
};

/// Per-column metadata featurizer: fits column statistics once, then maps
/// each cell to a fixed-width feature vector describing how the cell sits
/// within its column's distribution.
///
/// Two fitting modes share one accumulator: Fit(column) for in-memory
/// columns, or Observe(cell) per streamed cell followed by Finalize(). Fit
/// is implemented as Observe-per-row + Finalize, so a streaming scan that
/// observes the same cells in the same order produces bit-identical
/// statistics (floating-point sums included) to the whole-column fit.
class MetadataProfiler {
 public:
  /// Width of CellFeatures(): frequency, missing flag, normalized length,
  /// alpha fraction, digit fraction, punctuation fraction, uniqueness flag,
  /// capped |z-score| of the numeric value.
  static constexpr size_t kWidth = 8;

  Status Fit(const Column& column);

  /// Incremental fit: feed cells in row order, then call Finalize.
  void Observe(std::string_view cell);

  /// Completes an Observe() sequence. Errors on zero observed cells.
  Status Finalize();

  const ColumnProfile& profile() const { return profile_; }

  /// Cells observed so far (== column size after Finalize).
  size_t observed() const { return n_; }

  /// Per-value occurrence counts of the fitted column. The frozen-stats
  /// layer reuses these to re-derive distinct counts and column types
  /// without a second pass over the data.
  const std::unordered_map<std::string, size_t>& value_counts() const {
    return counts_;
  }

  /// Feature vector for one raw cell value of the fitted column.
  std::vector<double> CellFeatures(std::string_view cell) const;

  /// Allocation-light form of CellFeatures: writes the kWidth features into
  /// `out` (which must have size kWidth), bit-identical to CellFeatures.
  /// The char-class fractions come from one batched kernels::CountCharClasses
  /// pass instead of three separate scans.
  void CellFeaturesInto(std::string_view cell, std::span<double> out) const;

 private:
  ColumnProfile profile_;
  std::unordered_map<std::string, size_t> counts_;
  size_t n_ = 0;
  double max_length_ = 1.0;

  // Running sums between Observe() and Finalize().
  double len_sum_ = 0.0;
  double len_sq_ = 0.0;
  double alpha_sum_ = 0.0;
  double digit_sum_ = 0.0;
  double punct_sum_ = 0.0;
  size_t missing_ = 0;
  size_t numeric_n_ = 0;
  double num_sum_ = 0.0;
  double num_sq_ = 0.0;
};

/// Convenience: profile without keeping the per-value counts.
ColumnProfile ProfileColumn(const Column& column);

}  // namespace saged::features

#endif  // SAGED_FEATURES_METADATA_PROFILER_H_
