#ifndef SAGED_FEATURES_SIGNATURE_H_
#define SAGED_FEATURES_SIGNATURE_H_

#include <vector>

#include "data/column.h"
#include "features/metadata_profiler.h"

namespace saged::features {

/// Width of ColumnSignature(): 4 type one-hots + 8 normalized statistics.
inline constexpr size_t kSignatureWidth = 12;

/// Fixed-size, scale-free characterization of a column used by both
/// similarity matchers (cosine similarity and K-Means clustering over
/// historical columns). Columns "similar" under this signature tend to
/// exhibit comparable error profiles (paper Section 3.1).
std::vector<double> ColumnSignature(const Column& column);

/// Signature from pre-computed type + profile. ColumnSignature is this
/// applied to a one-pass fit; the streaming stats builder calls it with
/// statistics frozen during its first scan, so both paths share one layout.
std::vector<double> SignatureFromStats(ColumnType type,
                                       const ColumnProfile& profile);

}  // namespace saged::features

#endif  // SAGED_FEATURES_SIGNATURE_H_
