#ifndef SAGED_FEATURES_KERNELS_H_
#define SAGED_FEATURES_KERNELS_H_

#include <cstdint>
#include <string_view>

namespace saged::features::kernels {

/// Batched, branch-lean inner loops of the featurization hot path: per-cell
/// character-class counting (the metadata profile's alpha/digit/punct
/// fractions), byte histograms (the char TF-IDF term counts), and the
/// dictionary encoder's value hash. Every kernel has a named `*Scalar`
/// reference implementation; the dispatched entry points must return
/// results byte-identical to their reference at every input — the parity
/// tests in tests/features_dict_test.cc and tests/property_test.cc enforce
/// this over random byte strings including NUL and high bytes, and the
/// `no-unverified-simd` lint rule enforces that every function living in a
/// `*_simd.cc` compilation unit keeps such a tested scalar sibling.
///
/// Counts are integers throughout, so SIMD lane order cannot perturb them;
/// every floating-point operation downstream (fraction and TF-IDF weight
/// computation) stays scalar and shared between the paths, which is what
/// makes the dictionary/SIMD featurization byte-identical to the scalar
/// one.

/// Per-byte character-class counts over one cell value, under the "C"
/// locale definition the rest of the repo uses (common/strings.h
/// AlphaFraction & friends): alpha = [A-Za-z], digit = [0-9], punct =
/// printable ASCII that is neither alphanumeric nor space.
struct CharClassCounts {
  uint32_t alpha = 0;
  uint32_t digit = 0;
  uint32_t punct = 0;

  bool operator==(const CharClassCounts&) const = default;
};

/// Reference implementation: one <cctype> predicate call per byte. The
/// parity baseline for the table-driven and SIMD versions.
CharClassCounts CountCharClassesScalar(std::string_view bytes);

/// Dispatched implementation: branch-lean 256-entry class-bitmask table
/// walk, or the SSE2/NEON specialization from kernels_simd.cc when the
/// hardware has it and the runtime flag (SetSimdEnabled) is on.
CharClassCounts CountCharClasses(std::string_view bytes);

/// Reference byte histogram: counts[b] += 1 per byte, one at a time.
/// `counts` must have 256 entries and is NOT zeroed here.
void ByteHistogramScalar(std::string_view bytes, uint32_t* counts);

/// Batched histogram: 4-way unrolled accumulation into the same table
/// (byte order is irrelevant to a histogram, so this is exactly equal to
/// the reference by construction — the property tests check anyway).
void ByteHistogram(std::string_view bytes, uint32_t* counts);

/// Reference value hash for the dictionary encoder: FNV-1a folded over
/// little-endian 8-byte groups (the "8-gram" the batched version loads with
/// memcpy), tail bytes assembled explicitly. Hash quality only affects
/// bucket spread — dictionary equality always compares the actual bytes —
/// but the batched version must still match this reference exactly so the
/// encoder's probe sequences (and therefore its performance) are
/// reproducible everywhere.
uint64_t HashValueScalar(std::string_view bytes);

/// Batched value hash: same 8-gram FNV-1a, unaligned word loads.
uint64_t HashValue(std::string_view bytes);

/// True when this binary carries a SIMD specialization (SSE2 or NEON) of
/// the char-class kernel.
bool SimdAvailable();

/// Runtime dispatch flag: turns the SIMD specialization on/off process-wide
/// (default on; a no-op when !SimdAvailable()). Wired to
/// SagedConfig::featurize_simd by the detection entry points. Because the
/// SIMD kernels are parity-tested byte-identical, flipping this mid-run is
/// benign — it only changes which loop computes the same integers.
void SetSimdEnabled(bool enabled);
bool SimdEnabled();

#if defined(__SSE2__) || defined(__ARM_NEON)
#define SAGED_FEATURES_HAVE_SIMD 1
/// SSE2/NEON specialization of CountCharClassesScalar (kernels_simd.cc).
/// Call through CountCharClasses() instead — it honors the runtime flag.
CharClassCounts CountCharClassesSimd(std::string_view bytes);
#endif

}  // namespace saged::features::kernels

#endif  // SAGED_FEATURES_KERNELS_H_
