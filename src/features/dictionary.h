#ifndef SAGED_FEATURES_DICTIONARY_H_
#define SAGED_FEATURES_DICTIONARY_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "data/value.h"

namespace saged::features {

/// Column dictionary encoder — the storage idiom behind the encoded
/// featurization path: a distinct-value table in first-seen order plus a
/// per-cell code vector. Real tables repeat values heavily, so the
/// featurizer profiles/hashes/TF-IDFs each distinct value exactly once
/// into a per-dictionary feature matrix and then gathers per-cell rows
/// through the code vector (see featurizer.cc). Determinism: codes are
/// assigned in first-occurrence order, equality compares the actual bytes
/// (the kernels::HashValue hash only spreads the probe sequence), so the
/// encoding is a pure function of the cell sequence.
///
/// The encoder is reusable scratch: Encode() rebuilds in place, keeping
/// the backing allocations (the arena discipline of the streaming
/// detector, which encodes one block after another with one dictionary per
/// column). The distinct-value views point into the encoded cells and are
/// valid only while those cells outlive the dictionary's use.
class ColumnDictionary {
 public:
  /// Rebuilds the dictionary over `cells`. Previous contents are
  /// discarded; capacity is retained.
  void Encode(std::span<const Cell> cells);

  /// Number of distinct values (== number of valid codes).
  size_t size() const { return values_.size(); }

  /// Cells encoded by the last Encode() call.
  size_t encoded_cells() const { return codes_.size(); }

  /// The distinct value behind `code`, in first-seen order.
  std::string_view value(uint32_t code) const { return values_[code]; }

  /// Per-cell codes: value(codes()[i]) reproduces cell i byte-for-byte.
  const std::vector<uint32_t>& codes() const { return codes_; }

  /// Distinct values / encoded cells (1.0 for an empty encode).
  double distinct_ratio() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t code = kEmptySlot;
  };
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  /// Finds or inserts `value` (with its precomputed hash); returns its code.
  uint32_t Intern(std::string_view value, uint64_t hash);

  std::vector<Slot> table_;  // open addressing, power-of-two, linear probe
  std::vector<std::string_view> values_;
  std::vector<uint32_t> codes_;
  size_t mask_ = 0;  // table_.size() - 1
};

}  // namespace saged::features

#endif  // SAGED_FEATURES_DICTIONARY_H_
