#ifndef SAGED_TEXT_TOKENIZER_H_
#define SAGED_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace saged::text {

/// Splits a cell value into lower-cased word tokens (maximal runs of
/// alphanumeric characters). "Senior Software-Engineer" ->
/// {"senior", "software", "engineer"}.
std::vector<std::string> WordTokens(std::string_view value);

/// Tokenizes a whole tuple (one document in the paper's Word2Vec setup):
/// the concatenation of each cell's word tokens.
std::vector<std::string> TupleTokens(const std::vector<std::string>& cells);

}  // namespace saged::text

#endif  // SAGED_TEXT_TOKENIZER_H_
