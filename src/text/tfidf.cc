#include "text/tfidf.h"

#include <bitset>
#include <cmath>

namespace saged::text {

Status CharTfidf::Fit(const std::vector<std::string>& column) {
  vocab_.clear();
  beta_.fill(0);
  seen_global_.fill(false);
  n_docs_ = 0;
  for (const auto& cell : column) Observe(cell);
  return Status::OK();
}

void CharTfidf::Observe(std::string_view cell) {
  ++n_docs_;
  std::bitset<256> seen_cell;
  for (char raw : cell) {
    auto c = static_cast<unsigned char>(raw);
    if (!seen_cell[c]) {
      seen_cell[c] = true;
      ++beta_[c];
      if (!seen_global_[c]) {
        seen_global_[c] = true;
        vocab_.push_back(c);
      }
    }
  }
}

double CharTfidf::Weight(unsigned char c, std::string_view cell) const {
  if (cell.empty() || n_docs_ == 0) return 0.0;
  size_t count = 0;
  for (char raw : cell) {
    if (static_cast<unsigned char>(raw) == c) ++count;
  }
  if (count == 0) return 0.0;
  double tf = static_cast<double>(count) / static_cast<double>(cell.size());
  double idf = std::log2(static_cast<double>(n_docs_) /
                         (static_cast<double>(beta_[c]) + 1.0));
  return tf * idf;
}

std::vector<double> CharTfidf::TransformCell(std::string_view cell) const {
  std::vector<double> out(vocab_.size(), 0.0);
  if (cell.empty() || n_docs_ == 0) return out;
  // Single pass: count characters, then weight the vocab slots.
  std::array<size_t, 256> counts{};
  for (char raw : cell) ++counts[static_cast<unsigned char>(raw)];
  double inv_len = 1.0 / static_cast<double>(cell.size());
  for (size_t i = 0; i < vocab_.size(); ++i) {
    unsigned char c = vocab_[i];
    if (counts[c] == 0) continue;
    double tf = static_cast<double>(counts[c]) * inv_len;
    double idf = std::log2(static_cast<double>(n_docs_) /
                           (static_cast<double>(beta_[c]) + 1.0));
    out[i] = tf * idf;
  }
  return out;
}

}  // namespace saged::text
