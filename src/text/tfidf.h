#ifndef SAGED_TEXT_TFIDF_H_
#define SAGED_TEXT_TFIDF_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace saged::text {

/// Character-level TF-IDF over one column (paper Equation 1): each cell is a
/// document, the column is the corpus, terms are single characters.
///
///   tfidf(X, i) = a(X, i) / a(i) * log2(N / (beta(X) + 1))
///
/// where a(X, i) counts character X in cell i, a(i) is the cell length, and
/// beta(X) counts cells containing X.
///
/// Fits either from a whole column (Fit) or one streamed cell at a time
/// (Observe). Fit is a loop of Observe, so both modes yield the same
/// vocabulary order (first-seen) and identical document frequencies.
class CharTfidf {
 public:
  /// Computes beta(X) and the column's character vocabulary.
  Status Fit(const std::vector<std::string>& column);

  /// Incremental fit: folds one cell into the corpus statistics. No
  /// finalization step is needed — weights are valid once all cells of the
  /// column have been observed.
  void Observe(std::string_view cell);

  /// Characters present in the fitted column, in first-seen order.
  const std::vector<unsigned char>& vocabulary() const { return vocab_; }

  size_t NumDocs() const { return n_docs_; }

  /// Number of fitted cells containing character `c`.
  size_t DocFrequency(unsigned char c) const { return beta_[c]; }

  /// TF-IDF weight of character `c` within `cell` (0 when absent).
  double Weight(unsigned char c, std::string_view cell) const;

  /// Dense vector over `vocabulary()` order for one cell.
  std::vector<double> TransformCell(std::string_view cell) const;

 private:
  std::vector<unsigned char> vocab_;
  std::array<size_t, 256> beta_{};
  std::array<bool, 256> seen_global_{};
  size_t n_docs_ = 0;
};

}  // namespace saged::text

#endif  // SAGED_TEXT_TFIDF_H_
