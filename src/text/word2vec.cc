#include "text/word2vec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace saged::text {

namespace {
constexpr size_t kUnigramTableSize = 1 << 16;

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

Status Word2Vec::Train(const std::vector<std::vector<std::string>>& documents) {
  Rng rng(seed_);

  // Optional document subsampling for scalability.
  std::vector<const std::vector<std::string>*> docs;
  docs.reserve(std::min(documents.size(), options_.max_documents));
  if (documents.size() > options_.max_documents) {
    auto keep = rng.SampleWithoutReplacement(documents.size(),
                                             options_.max_documents);
    std::sort(keep.begin(), keep.end());
    for (size_t i : keep) docs.push_back(&documents[i]);
  } else {
    for (const auto& d : documents) docs.push_back(&d);
  }

  // Vocabulary with counts.
  std::unordered_map<std::string, size_t> counts;
  for (const auto* doc : docs) {
    for (const auto& tok : *doc) ++counts[tok];
  }
  vocab_.clear();
  std::vector<size_t> freq;
  for (const auto& [word, count] : counts) {
    if (count >= options_.min_count) {
      vocab_.emplace(word, vocab_.size());
      freq.push_back(count);
    }
  }
  if (vocab_.empty()) return Status::OK();  // nothing to train; Embed -> zeros

  const size_t v = vocab_.size();
  const size_t d = options_.dim;
  in_vectors_.resize(v * d);
  out_vectors_.assign(v * d, 0.0);
  for (auto& w : in_vectors_) {
    w = (rng.Uniform() - 0.5) / static_cast<double>(d);
  }

  // Unigram^0.75 negative-sampling table.
  std::vector<double> pow_freq(v);
  for (size_t i = 0; i < v; ++i) {
    pow_freq[i] = std::pow(static_cast<double>(freq[i]), 0.75);
  }
  double total = std::accumulate(pow_freq.begin(), pow_freq.end(), 0.0);
  unigram_table_.resize(kUnigramTableSize);
  {
    size_t word = 0;
    double cum = pow_freq[0] / total;
    for (size_t i = 0; i < kUnigramTableSize; ++i) {
      unigram_table_[i] = word;
      double frac = static_cast<double>(i + 1) / kUnigramTableSize;
      while (frac > cum && word + 1 < v) {
        ++word;
        cum += pow_freq[word] / total;
      }
    }
  }

  // Pre-encode documents as id sequences.
  std::vector<std::vector<size_t>> encoded;
  encoded.reserve(docs.size());
  for (const auto* doc : docs) {
    std::vector<size_t> ids;
    ids.reserve(doc->size());
    for (const auto& tok : *doc) {
      auto it = vocab_.find(tok);
      if (it != vocab_.end()) ids.push_back(it->second);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }

  std::vector<double> grad(d);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    double lr = options_.learning_rate *
                (1.0 - static_cast<double>(epoch) /
                           static_cast<double>(options_.epochs));
    lr = std::max(lr, options_.learning_rate * 0.1);
    for (const auto& ids : encoded) {
      for (size_t center = 0; center < ids.size(); ++center) {
        size_t win = 1 + static_cast<size_t>(rng.UniformInt(options_.window));
        size_t lo = center >= win ? center - win : 0;
        size_t hi = std::min(center + win, ids.size() - 1);
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          double* v_in = &in_vectors_[ids[center] * d];
          std::fill(grad.begin(), grad.end(), 0.0);
          // Positive sample + negatives.
          for (size_t s = 0; s <= options_.negative; ++s) {
            size_t target;
            double label;
            if (s == 0) {
              target = ids[ctx];
              label = 1.0;
            } else {
              target = unigram_table_[rng.UniformInt(kUnigramTableSize)];
              if (target == ids[ctx]) continue;
              label = 0.0;
            }
            double* v_out = &out_vectors_[target * d];
            double dot = 0.0;
            for (size_t j = 0; j < d; ++j) dot += v_in[j] * v_out[j];
            double g = (Sigmoid(dot) - label) * lr;
            for (size_t j = 0; j < d; ++j) {
              grad[j] += g * v_out[j];
              v_out[j] -= g * v_in[j];
            }
          }
          for (size_t j = 0; j < d; ++j) v_in[j] -= grad[j];
        }
      }
    }
  }
  return Status::OK();
}

DocumentReservoir::DocumentReservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {
  sample_.reserve(std::min<size_t>(capacity_, 1 << 16));
}

void DocumentReservoir::Add(std::vector<std::string> document) {
  size_t index = seen_++;
  if (index < capacity_) {
    sample_.emplace_back(index, std::move(document));
    return;
  }
  // Algorithm R: item `index` survives with probability capacity / (index+1),
  // evicting a uniformly random resident.
  size_t j = static_cast<size_t>(rng_.UniformInt(index + 1));
  if (j < capacity_) sample_[j] = {index, std::move(document)};
}

std::vector<std::vector<std::string>> DocumentReservoir::Take() {
  std::sort(sample_.begin(), sample_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::vector<std::string>> out;
  out.reserve(sample_.size());
  for (auto& [index, doc] : sample_) out.push_back(std::move(doc));
  sample_.clear();
  return out;
}

std::vector<double> Word2Vec::Embed(const std::string& word) const {
  std::vector<double> out(options_.dim, 0.0);
  auto it = vocab_.find(word);
  if (it == vocab_.end() || in_vectors_.empty()) return out;
  const double* v = &in_vectors_[it->second * options_.dim];
  std::copy(v, v + options_.dim, out.begin());
  return out;
}

std::vector<double> Word2Vec::EmbedValue(std::string_view value) const {
  std::vector<double> acc(options_.dim, 0.0);
  EmbedValueInto(value, acc);
  return acc;
}

void Word2Vec::EmbedValueInto(std::string_view value,
                              std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  auto tokens = WordTokens(value);
  size_t hits = 0;
  for (const auto& tok : tokens) {
    auto it = vocab_.find(tok);
    if (it == vocab_.end() || in_vectors_.empty()) continue;
    const double* v = &in_vectors_[it->second * options_.dim];
    for (size_t j = 0; j < options_.dim; ++j) out[j] += v[j];
    ++hits;
  }
  if (hits > 0) {
    for (auto& a : out) a /= static_cast<double>(hits);
  }
}

}  // namespace saged::text
