#include "text/tokenizer.h"

#include <cctype>

namespace saged::text {

std::vector<std::string> WordTokens(std::string_view value) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : value) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> TupleTokens(const std::vector<std::string>& cells) {
  std::vector<std::string> out;
  for (const auto& cell : cells) {
    auto toks = WordTokens(cell);
    out.insert(out.end(), std::make_move_iterator(toks.begin()),
               std::make_move_iterator(toks.end()));
  }
  return out;
}

}  // namespace saged::text
