#ifndef SAGED_TEXT_WORD2VEC_H_
#define SAGED_TEXT_WORD2VEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace saged::text {

/// Skip-gram training hyperparameters.
struct Word2VecOptions {
  size_t dim = 8;
  size_t window = 3;
  size_t negative = 4;
  size_t epochs = 3;
  double learning_rate = 0.05;
  size_t min_count = 1;
  /// Documents are subsampled down to this many before training; embedding
  /// quality saturates quickly on tabular corpora and this keeps SAGED's
  /// detection time flat in dataset size (matching the paper's efficiency
  /// profile).
  size_t max_documents = 20000;
};

/// Word2Vec skip-gram model with negative sampling (Mikolov et al. 2013).
/// SAGED trains one per dataset, treating each tuple as a document, and
/// represents a cell as the average of its tokens' vectors.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {}, uint64_t seed = 42)
      : options_(options), seed_(seed) {}

  /// Trains on tokenized documents.
  Status Train(const std::vector<std::vector<std::string>>& documents);

  size_t dim() const { return options_.dim; }
  size_t VocabSize() const { return vocab_.size(); }
  bool Contains(const std::string& word) const {
    return vocab_.count(word) > 0;
  }

  /// Embedding of one word (zeros when out of vocabulary or untrained).
  std::vector<double> Embed(const std::string& word) const;

  /// Average embedding of the word tokens of a raw cell value.
  std::vector<double> EmbedValue(std::string_view value) const;

  /// Allocation-light form of EmbedValue: writes the dim() averaged
  /// components into `out` (which must have size dim()), bit-identical to
  /// EmbedValue (same accumulation and division order).
  void EmbedValueInto(std::string_view value, std::span<double> out) const;

 private:
  Word2VecOptions options_;
  uint64_t seed_;
  std::unordered_map<std::string, size_t> vocab_;
  std::vector<double> in_vectors_;   // vocab x dim
  std::vector<double> out_vectors_;  // vocab x dim
  std::vector<size_t> unigram_table_;
};

/// Seeded reservoir sample (Algorithm R) over tokenized documents, restored
/// to stream order on Take(). For streams of at most `capacity` documents it
/// is the identity, so small tables are unaffected. Both the in-memory and
/// the streaming detection paths funnel their Word2Vec corpus through one of
/// these with the same seed: the sampled corpus depends only on the document
/// stream, never on how the rows were blocked, which is what makes streamed
/// embeddings bit-identical to in-memory ones.
class DocumentReservoir {
 public:
  explicit DocumentReservoir(size_t capacity, uint64_t seed);

  /// Folds the next document of the stream into the sample.
  void Add(std::vector<std::string> document);

  /// Documents offered so far (>= the sample size).
  size_t seen() const { return seen_; }

  /// The sampled documents in original stream order. Leaves the reservoir
  /// empty.
  std::vector<std::vector<std::string>> Take();

 private:
  size_t capacity_;
  Rng rng_;
  size_t seen_ = 0;
  /// (stream index, document) pairs; unordered until Take() sorts them.
  std::vector<std::pair<size_t, std::vector<std::string>>> sample_;
};

}  // namespace saged::text

#endif  // SAGED_TEXT_WORD2VEC_H_
