#ifndef SAGED_PIPELINE_DOWNSTREAM_H_
#define SAGED_PIPELINE_DOWNSTREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "ml/matrix.h"
#include "ml/mlp.h"

namespace saged::pipeline {

/// Downstream ML task families handled by the Figure-16 pipeline.
enum class TaskType {
  kRegression,
  kBinaryClassification,
  kMultiClassification,
};

/// Model-ready view of a table for one prediction task.
struct PreparedData {
  ml::Matrix x;                 // encoded features (label column excluded)
  std::vector<double> y_reg;    // regression targets
  std::vector<int> y_cls;       // class ids
  size_t n_classes = 0;
  TaskType task = TaskType::kRegression;
};

/// Encodes `table` for the task: numeric feature columns parse (missing ->
/// mean), categorical ones label-encode; the label column becomes the
/// target. Rows whose label cell cannot be interpreted are dropped for
/// regression (they would poison the loss).
Result<PreparedData> PrepareForModel(const Table& table, size_t label_col,
                                     TaskType task);

/// Trains the MLP with the given hyperparameters on a shuffled 75/25 split
/// and returns the held-out primary score: R^2 for regression, macro-F1 for
/// classification.
Result<double> TrainAndScore(const PreparedData& data,
                             const ml::MlpOptions& options, uint64_t seed);

/// The Figure-16 protocol: train on `train_version` (ground truth, dirty,
/// or repaired data), evaluate on the *clean* rows of the held-out split —
/// measuring what the data quality of the training set costs the model.
/// Both tables must have identical shape; encoders are fitted consistently
/// across the two.
Result<double> TrainOnVersionScoreOnClean(const Table& train_version,
                                          const Table& clean,
                                          size_t label_col, TaskType task,
                                          const ml::MlpOptions& options,
                                          uint64_t seed);

}  // namespace saged::pipeline

#endif  // SAGED_PIPELINE_DOWNSTREAM_H_
