#include "pipeline/repair.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "common/trace.h"
#include "data/value.h"
#include "ml/decision_tree.h"
#include "ml/matrix.h"

namespace saged::pipeline {

namespace {

/// Numeric encoding of the full table: numeric columns parse (missing ->
/// column mean), non-numeric columns label-encode.
ml::Matrix EncodeTable(const Table& t, std::vector<bool>* numeric_out) {
  const size_t rows = t.NumRows();
  const size_t cols = t.NumCols();
  ml::Matrix x(rows, cols);
  numeric_out->assign(cols, false);
  for (size_t j = 0; j < cols; ++j) {
    auto nums = t.column(j).AsNumbers();
    size_t numeric_n = 0;
    double sum = 0.0;
    for (const auto& v : nums) {
      if (v) {
        ++numeric_n;
        sum += *v;
      }
    }
    bool numeric = numeric_n * 2 >= rows && numeric_n > 0;
    (*numeric_out)[j] = numeric;
    if (numeric) {
      double mean = sum / static_cast<double>(numeric_n);
      for (size_t r = 0; r < rows; ++r) {
        x.At(r, j) = nums[r] ? *nums[r] : mean;
      }
    } else {
      std::unordered_map<std::string, double> ids;
      for (size_t r = 0; r < rows; ++r) {
        auto [it, inserted] =
            ids.emplace(t.cell(r, j), static_cast<double>(ids.size()));
        x.At(r, j) = it->second;
      }
    }
  }
  return x;
}

std::string FormatLike(const Column& column, double value) {
  // Match the column's integer/decimal style.
  size_t decimals = 0;
  for (const auto& v : column.values()) {
    size_t dot = v.find('.');
    if (dot != std::string::npos) {
      decimals = std::max(decimals, v.size() - dot - 1);
    }
  }
  decimals = std::min<size_t>(decimals, 6);
  if (decimals == 0) {
    return StrFormat("%lld", static_cast<long long>(std::llround(value)));
  }
  return StrFormat("%.*f", static_cast<int>(decimals), value);
}

}  // namespace

Result<Table> RepairTable(const Table& dirty, const ErrorMask& detections,
                          uint64_t seed) {
  SAGED_TRACE_SPAN("pipeline/repair");
  const size_t rows = dirty.NumRows();
  const size_t cols = dirty.NumCols();
  if (detections.rows() != rows || detections.cols() != cols) {
    return Status::InvalidArgument("detection mask shape mismatch");
  }
  Table repaired = dirty;
  repaired.set_name(dirty.name() + "_repaired");

  std::vector<bool> numeric;
  ml::Matrix encoded = EncodeTable(dirty, &numeric);

  for (size_t j = 0; j < cols; ++j) {
    std::vector<size_t> flagged;
    std::vector<size_t> clean;
    for (size_t r = 0; r < rows; ++r) {
      (detections.IsDirty(r, j) ? flagged : clean).push_back(r);
    }
    if (flagged.empty()) continue;

    if (numeric[j] && clean.size() >= 10) {
      // Decision-tree regression from the other columns. Detection is never
      // perfect: undetected errors (e.g. a typo'd exponent parsing as 1e94)
      // would poison the imputer's training targets and then spread through
      // leaf averages, so train only on targets inside a robust quantile
      // envelope and clamp predictions to it.
      // Median/MAD envelope (50% breakdown): with imperfect detection a
      // sizable share of the "clean" rows still carries extreme values, so
      // quantile-based bounds would themselves be set by errors.
      std::vector<double> sorted;
      sorted.reserve(clean.size());
      for (size_t r : clean) sorted.push_back(encoded.At(r, j));
      std::sort(sorted.begin(), sorted.end());
      double med = sorted[sorted.size() / 2];
      std::vector<double> dev(sorted.size());
      for (size_t i = 0; i < sorted.size(); ++i) {
        dev[i] = std::abs(sorted[i] - med);
      }
      std::sort(dev.begin(), dev.end());
      double robust_sd = 1.4826 * dev[dev.size() / 2];
      if (robust_sd < 1e-12) {
        robust_sd = std::abs(med) > 1e-12 ? 0.05 * std::abs(med) : 1.0;
      }
      double lo = med - 8.0 * robust_sd;
      double hi = med + 8.0 * robust_sd;

      std::vector<size_t> feature_cols;
      for (size_t c = 0; c < cols; ++c) {
        if (c != j) feature_cols.push_back(c);
      }
      ml::Matrix features = encoded.SelectCols(feature_cols);
      std::vector<size_t> train_rows;
      std::vector<double> train_y;
      for (size_t r : clean) {
        double v = encoded.At(r, j);
        if (v < lo || v > hi) continue;  // suspected undetected error
        train_rows.push_back(r);
        train_y.push_back(v);
      }

      ml::TreeOptions opts;
      opts.max_depth = 8;
      ml::DecisionTreeRegressor model(opts, seed + j);
      if (train_rows.size() >= 10 &&
          model.Fit(features.SelectRows(train_rows), train_y).ok()) {
        ml::Matrix pred_x = features.SelectRows(flagged);
        auto preds = model.Predict(pred_x);
        for (size_t i = 0; i < flagged.size(); ++i) {
          double v = std::clamp(preds[i], lo, hi);
          repaired.set_cell(flagged[i], j, FormatLike(dirty.column(j), v));
        }
        continue;
      }
    }

    // Categorical/text repair: prefer the closest frequent unflagged value
    // by edit distance (a typo'd "Stoutt" snaps back to "Stout"); fall back
    // to the column mode when nothing is plausibly close.
    std::unordered_map<std::string, size_t> freq;
    for (size_t r : clean) ++freq[dirty.cell(r, j)];
    if (freq.empty()) continue;  // entire column flagged: leave as is
    std::vector<std::pair<std::string, size_t>> domain(freq.begin(),
                                                       freq.end());
    // Most frequent first so ties in distance resolve to common values.
    std::sort(domain.begin(), domain.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    const std::string& mode = domain.front().first;
    // Cap the scan: huge open domains make edit-distance repair both slow
    // and meaningless, so only the frequent head is considered.
    size_t scan = std::min<size_t>(domain.size(), 256);
    for (size_t r : flagged) {
      const std::string& bad = dirty.cell(r, j);
      size_t best_dist = std::max<size_t>(1, bad.size() / 4) + 1;
      const std::string* best_value = nullptr;
      for (size_t d = 0; d < scan; ++d) {
        const std::string& cand = domain[d].first;
        if (cand.size() + best_dist <= bad.size() ||
            bad.size() + best_dist <= cand.size()) {
          continue;  // length difference alone exceeds the budget
        }
        size_t dist = EditDistance(bad, cand);
        if (dist < best_dist) {
          best_dist = dist;
          best_value = &cand;
        }
      }
      repaired.set_cell(r, j, best_value != nullptr ? *best_value : mode);
    }
  }
  return repaired;
}

}  // namespace saged::pipeline
