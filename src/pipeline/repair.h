#ifndef SAGED_PIPELINE_REPAIR_H_
#define SAGED_PIPELINE_REPAIR_H_

#include <cstdint>

#include "common/status.h"
#include "data/error_mask.h"
#include "data/table.h"

namespace saged::pipeline {

/// ML-based repair of detected errors (the paper's Figure-16 setup): cells
/// flagged in `detections` are re-imputed — numeric columns with a decision-
/// tree regressor trained on the unflagged rows (features = the other
/// columns, encoded numerically), categorical/text columns with the
/// column mode (missForest substitute; see DESIGN.md).
Result<Table> RepairTable(const Table& dirty, const ErrorMask& detections,
                          uint64_t seed = 42);

}  // namespace saged::pipeline

#endif  // SAGED_PIPELINE_REPAIR_H_
