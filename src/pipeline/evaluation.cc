#include "pipeline/evaluation.h"

#include "baselines/registry.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "pipeline/repair.h"
#include "pipeline/tuner.h"

namespace saged::pipeline {

Result<EvalRow> RunBaseline(const std::string& name,
                            const datagen::Dataset& dataset, size_t budget,
                            uint64_t seed) {
  SAGED_TRACE_SPAN("pipeline/run_baseline");
  SAGED_COUNTER_INC("pipeline.eval_rows");
  SAGED_ASSIGN_OR_RETURN(auto detector, baselines::MakeBaseline(name));
  baselines::DetectionContext ctx;
  ctx.dirty = &dataset.dirty;
  ctx.rules = &dataset.rules;
  ctx.domains = &dataset.domains;
  ctx.oracle = core::MaskOracle(dataset.mask);
  ctx.labeling_budget = budget;
  ctx.seed = seed;
  SAGED_ASSIGN_OR_RETURN(auto timed, detector->Run(ctx));
  auto score = dataset.mask.Score(timed.mask);
  return EvalRow{name,           dataset.spec.name, score.Precision(),
                 score.Recall(), score.F1(),        timed.seconds};
}

Result<EvalRow> RunSaged(core::Saged& saged, const datagen::Dataset& dataset) {
  SAGED_TRACE_SPAN("pipeline/run_saged");
  SAGED_COUNTER_INC("pipeline.eval_rows");
  SAGED_ASSIGN_OR_RETURN(
      auto result, saged.Run(core::DetectionRequest::ForTable(
                       &dataset.dirty, core::MaskOracle(dataset.mask))));
  auto score = dataset.mask.Score(result.mask);
  return EvalRow{"saged",        dataset.spec.name, score.Precision(),
                 score.Recall(), score.F1(),        result.seconds};
}

Result<core::Saged> MakeSagedWithHistory(
    const core::SagedConfig& config,
    const std::vector<std::string>& historical_names,
    const datagen::MakeOptions& gen_options) {
  SAGED_TRACE_SPAN("pipeline/make_saged_with_history");
  SAGED_RETURN_NOT_OK(config.Validate());
  core::Saged saged(config);
  for (const auto& name : historical_names) {
    SAGED_ASSIGN_OR_RETURN(auto hist, datagen::MakeDataset(name, gen_options));
    SAGED_RETURN_NOT_OK(saged.AddHistoricalDataset(hist.dirty, hist.mask));
  }
  return saged;
}

Result<double> DownstreamScore(const Table& table, size_t label_col,
                               TaskType task, uint64_t seed, bool tune) {
  SAGED_TRACE_SPAN("pipeline/downstream");
  SAGED_ASSIGN_OR_RETURN(auto data, PrepareForModel(table, label_col, task));
  ml::MlpOptions options;
  options.epochs = 80;
  if (tune) {
    TunerOptions tuner;
    SAGED_ASSIGN_OR_RETURN(options, TuneMlp(data, tuner, seed));
  }
  return TrainAndScore(data, options, seed);
}

Result<double> DownstreamScoreVsClean(const Table& version,
                                      const Table& clean, size_t label_col,
                                      TaskType task, uint64_t seed,
                                      bool tune) {
  SAGED_TRACE_SPAN("pipeline/downstream_vs_clean");
  ml::MlpOptions options;
  options.epochs = 80;
  if (tune) {
    SAGED_ASSIGN_OR_RETURN(auto data,
                           PrepareForModel(clean, label_col, task));
    TunerOptions tuner;
    SAGED_ASSIGN_OR_RETURN(options, TuneMlp(data, tuner, seed));
  }
  return TrainOnVersionScoreOnClean(version, clean, label_col, task, options,
                                    seed);
}

Result<double> DownstreamScoreWithMask(const datagen::Dataset& dataset,
                                       const ErrorMask& detections,
                                       size_t label_col, TaskType task,
                                       uint64_t seed, bool tune) {
  SAGED_TRACE_SPAN("pipeline/downstream_with_mask");
  SAGED_ASSIGN_OR_RETURN(auto repaired,
                         RepairTable(dataset.dirty, detections, seed));
  return DownstreamScoreVsClean(repaired, dataset.clean, label_col, task,
                                seed, tune);
}

}  // namespace saged::pipeline
