#include "pipeline/downstream.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "common/trace.h"
#include "data/value.h"
#include "ml/metrics.h"
#include "ml/preprocess.h"

namespace saged::pipeline {

Result<PreparedData> PrepareForModel(const Table& table, size_t label_col,
                                     TaskType task) {
  SAGED_TRACE_SPAN("pipeline/prepare_for_model");
  const size_t rows = table.NumRows();
  const size_t cols = table.NumCols();
  if (label_col >= cols) return Status::OutOfRange("label column out of range");
  if (rows < 20) return Status::InvalidArgument("too few rows for modeling");

  PreparedData out;
  out.task = task;

  // Rows usable for the task (regression needs a numeric label).
  std::vector<size_t> keep;
  std::vector<std::optional<double>> label_nums;
  if (task == TaskType::kRegression) {
    label_nums = table.column(label_col).AsNumbers();
    for (size_t r = 0; r < rows; ++r) {
      if (label_nums[r]) keep.push_back(r);
    }
  } else {
    keep.resize(rows);
    for (size_t r = 0; r < rows; ++r) keep[r] = r;
  }
  if (keep.size() < 20) {
    return Status::InvalidArgument("too few usable rows for modeling");
  }

  // Targets.
  if (task == TaskType::kRegression) {
    out.y_reg.reserve(keep.size());
    for (size_t r : keep) out.y_reg.push_back(*label_nums[r]);
  } else {
    ml::LabelEncoder encoder;
    out.y_cls.reserve(keep.size());
    for (size_t r : keep) {
      out.y_cls.push_back(encoder.FitOne(table.cell(r, label_col)));
    }
    out.n_classes = encoder.NumClasses();
  }

  // Features: every other column, numerically encoded.
  out.x = ml::Matrix(keep.size(), cols - 1);
  size_t fj = 0;
  for (size_t j = 0; j < cols; ++j) {
    if (j == label_col) continue;
    auto nums = table.column(j).AsNumbers();
    size_t numeric_n = 0;
    double sum = 0.0;
    for (size_t r : keep) {
      if (nums[r]) {
        ++numeric_n;
        sum += *nums[r];
      }
    }
    if (numeric_n * 2 >= keep.size() && numeric_n > 0) {
      double mean = sum / static_cast<double>(numeric_n);
      for (size_t i = 0; i < keep.size(); ++i) {
        out.x.At(i, fj) = nums[keep[i]] ? *nums[keep[i]] : mean;
      }
    } else {
      ml::LabelEncoder encoder;
      for (size_t i = 0; i < keep.size(); ++i) {
        out.x.At(i, fj) =
            static_cast<double>(encoder.FitOne(table.cell(keep[i], j)));
      }
    }
    ++fj;
  }
  return out;
}

Result<double> TrainAndScore(const PreparedData& data,
                             const ml::MlpOptions& options, uint64_t seed) {
  SAGED_TRACE_SPAN("pipeline/train_and_score");
  Rng rng(seed);
  auto split = ml::TrainTestSplit(data.x.rows(), 0.25, rng);
  if (split.train.empty() || split.test.empty()) {
    return Status::InvalidArgument("degenerate split");
  }

  ml::MlpOptions opts = options;
  ml::Matrix train_x = data.x.SelectRows(split.train);
  ml::Matrix test_x = data.x.SelectRows(split.test);

  switch (data.task) {
    case TaskType::kRegression: {
      opts.task = ml::MlpTask::kRegression;
      opts.n_outputs = 1;
      // Standardize targets for stable training; un-scale for scoring.
      double mean = 0.0;
      for (size_t i : split.train) mean += data.y_reg[i];
      mean /= static_cast<double>(split.train.size());
      double var = 0.0;
      for (size_t i : split.train) {
        var += (data.y_reg[i] - mean) * (data.y_reg[i] - mean);
      }
      double sd = std::sqrt(var / static_cast<double>(split.train.size()));
      if (sd < 1e-12) sd = 1.0;

      std::vector<double> train_y;
      train_y.reserve(split.train.size());
      for (size_t i : split.train) {
        train_y.push_back((data.y_reg[i] - mean) / sd);
      }
      ml::Mlp net(opts, seed);
      SAGED_RETURN_NOT_OK(net.Fit(train_x, train_y));
      ml::Matrix pred = net.Predict(test_x);
      std::vector<double> y_hat(pred.rows());
      std::vector<double> y_true(pred.rows());
      for (size_t i = 0; i < pred.rows(); ++i) {
        y_hat[i] = pred.At(i, 0) * sd + mean;
        y_true[i] = data.y_reg[split.test[i]];
      }
      return ml::R2Score(y_true, y_hat);
    }
    case TaskType::kBinaryClassification:
    case TaskType::kMultiClassification: {
      size_t n_classes = std::max<size_t>(data.n_classes, 2);
      bool binary = data.task == TaskType::kBinaryClassification ||
                    n_classes == 2;
      opts.task = binary ? ml::MlpTask::kBinary : ml::MlpTask::kMulticlass;
      opts.n_outputs = binary ? 1 : n_classes;
      ml::Matrix train_y(split.train.size(), opts.n_outputs);
      for (size_t i = 0; i < split.train.size(); ++i) {
        int cls = data.y_cls[split.train[i]];
        if (binary) {
          train_y.At(i, 0) = cls == 0 ? 0.0 : 1.0;
        } else {
          train_y.At(i, static_cast<size_t>(cls)) = 1.0;
        }
      }
      ml::Mlp net(opts, seed);
      SAGED_RETURN_NOT_OK(net.Fit(train_x, train_y));
      auto pred = net.PredictClasses(test_x);
      std::vector<int> truth(split.test.size());
      for (size_t i = 0; i < split.test.size(); ++i) {
        int cls = data.y_cls[split.test[i]];
        truth[i] = binary ? (cls == 0 ? 0 : 1) : cls;
      }
      return ml::MacroF1(truth, pred);
    }
  }
  return Status::InvalidArgument("unknown task");
}

Result<double> TrainOnVersionScoreOnClean(const Table& train_version,
                                          const Table& clean,
                                          size_t label_col, TaskType task,
                                          const ml::MlpOptions& options,
                                          uint64_t seed) {
  SAGED_TRACE_SPAN("pipeline/train_on_version");
  const size_t rows = clean.NumRows();
  const size_t cols = clean.NumCols();
  if (train_version.NumRows() != rows || train_version.NumCols() != cols) {
    return Status::InvalidArgument("version/clean shape mismatch");
  }
  if (label_col >= cols) return Status::OutOfRange("label column out of range");
  if (rows < 40) return Status::InvalidArgument("too few rows for modeling");

  Rng rng(seed);
  auto split = ml::TrainTestSplit(rows, 0.25, rng);

  // Column typing from the clean data; encoders fitted over both tables so
  // category ids agree (corrupted categories get their own ids). Numeric
  // features are winsorized z-scores under median/MAD statistics of the
  // *training* version: with heavy-tailed corruption (a deleted decimal
  // point turns 0.9 into 905648) a plain mean/stddev scaler collapses every
  // honest value onto one point and the comparison measures scaler
  // artifacts instead of data quality.
  ml::Matrix train_x(split.train.size(), cols - 1);
  ml::Matrix test_x(split.test.size(), cols - 1);
  size_t fj = 0;
  for (size_t j = 0; j < cols; ++j) {
    if (j == label_col) continue;
    auto clean_nums = clean.column(j).AsNumbers();
    size_t numeric_n = 0;
    for (const auto& v : clean_nums) {
      if (v) ++numeric_n;
    }
    bool numeric = numeric_n * 2 >= rows && numeric_n > 0;
    if (numeric) {
      auto version_nums = train_version.column(j).AsNumbers();
      std::vector<double> train_vals;
      for (size_t i = 0; i < split.train.size(); ++i) {
        if (auto v = version_nums[split.train[i]]) train_vals.push_back(*v);
      }
      double med = 0.0;
      double rsd = 1.0;
      if (!train_vals.empty()) {
        std::sort(train_vals.begin(), train_vals.end());
        med = train_vals[train_vals.size() / 2];
        std::vector<double> dev(train_vals.size());
        for (size_t i = 0; i < train_vals.size(); ++i) {
          dev[i] = std::abs(train_vals[i] - med);
        }
        std::sort(dev.begin(), dev.end());
        rsd = 1.4826 * dev[dev.size() / 2];
        if (rsd < 1e-12) rsd = 1.0;
      }
      auto encode = [&](std::optional<double> v) {
        if (!v) return 0.0;  // missing -> robust center
        return std::clamp((*v - med) / rsd, -4.0, 4.0);
      };
      for (size_t i = 0; i < split.train.size(); ++i) {
        train_x.At(i, fj) = encode(version_nums[split.train[i]]);
      }
      for (size_t i = 0; i < split.test.size(); ++i) {
        test_x.At(i, fj) = encode(clean_nums[split.test[i]]);
      }
    } else {
      ml::LabelEncoder encoder;
      encoder.Fit(clean.column(j).values());
      for (size_t i = 0; i < split.train.size(); ++i) {
        train_x.At(i, fj) = static_cast<double>(
            encoder.FitOne(train_version.cell(split.train[i], j)));
      }
      for (size_t i = 0; i < split.test.size(); ++i) {
        test_x.At(i, fj) = static_cast<double>(
            encoder.Transform(clean.cell(split.test[i], j)));
      }
    }
    ++fj;
  }

  ml::MlpOptions opts = options;
  if (task == TaskType::kRegression) {
    opts.task = ml::MlpTask::kRegression;
    opts.n_outputs = 1;
    auto version_labels = train_version.column(label_col).AsNumbers();
    auto clean_labels = clean.column(label_col).AsNumbers();
    // Train rows whose version label parses; robust standardization from
    // the parseable train labels (clamped to a quantile envelope so an
    // undetected extreme label cannot flatten the target scale).
    std::vector<size_t> train_keep;
    std::vector<double> raw_y;
    for (size_t i = 0; i < split.train.size(); ++i) {
      if (version_labels[split.train[i]]) {
        train_keep.push_back(i);
        raw_y.push_back(*version_labels[split.train[i]]);
      }
    }
    if (train_keep.size() < 20) {
      return Status::InvalidArgument("too few usable training labels");
    }
    // Median/MAD standardization: training labels may be corrupted, and a
    // handful of extreme values must not set the target scale (mean/stddev
    // have a 0% breakdown point; median/MAD survive up to 50% label noise).
    std::vector<double> sorted = raw_y;
    std::sort(sorted.begin(), sorted.end());
    double mean = sorted[sorted.size() / 2];  // robust location
    std::vector<double> dev(raw_y.size());
    for (size_t i = 0; i < raw_y.size(); ++i) {
      dev[i] = std::abs(raw_y[i] - mean);
    }
    std::sort(dev.begin(), dev.end());
    double sd = 1.4826 * dev[dev.size() / 2];  // MAD -> sigma-equivalent
    if (sd < 1e-12) sd = 1.0;
    // Drop robust-outlier training labels entirely: under squared loss even
    // a few clamped extreme targets dominate the gradients, and a data
    // scientist running this pipeline would filter them exactly like this.
    std::vector<size_t> filtered_keep;
    std::vector<double> train_y;
    for (size_t i = 0; i < raw_y.size(); ++i) {
      double z = (raw_y[i] - mean) / sd;
      if (std::abs(z) > 3.5) continue;
      filtered_keep.push_back(train_keep[i]);
      train_y.push_back(z);
    }
    if (filtered_keep.size() < 20) {
      return Status::InvalidArgument("too few usable training labels");
    }
    ml::Mlp net(opts, seed);
    SAGED_RETURN_NOT_OK(net.Fit(train_x.SelectRows(filtered_keep), train_y));
    ml::Matrix pred = net.Predict(test_x);
    std::vector<double> y_hat;
    std::vector<double> y_true;
    for (size_t i = 0; i < split.test.size(); ++i) {
      auto t = clean_labels[split.test[i]];
      if (!t) continue;
      y_hat.push_back(pred.At(i, 0) * sd + mean);
      y_true.push_back(*t);
    }
    if (y_true.empty()) return Status::InvalidArgument("no clean test labels");
    return ml::R2Score(y_true, y_hat);
  }

  // Classification: classes from the clean data; version labels outside the
  // clean class set are mapped to class 0 (the model just learns them as
  // noise, which is the point).
  ml::LabelEncoder encoder;
  encoder.Fit(clean.column(label_col).values());
  size_t n_classes = std::max<size_t>(encoder.NumClasses(), 2);
  bool binary = task == TaskType::kBinaryClassification || n_classes == 2;
  opts.task = binary ? ml::MlpTask::kBinary : ml::MlpTask::kMulticlass;
  opts.n_outputs = binary ? 1 : n_classes;

  ml::Matrix train_y(split.train.size(), opts.n_outputs);
  for (size_t i = 0; i < split.train.size(); ++i) {
    int cls = encoder.Transform(train_version.cell(split.train[i], label_col));
    if (binary) {
      train_y.At(i, 0) = cls == 0 ? 0.0 : 1.0;
    } else {
      train_y.At(i, static_cast<size_t>(cls)) = 1.0;
    }
  }
  ml::Mlp net(opts, seed);
  SAGED_RETURN_NOT_OK(net.Fit(train_x, train_y));
  auto pred = net.PredictClasses(test_x);
  std::vector<int> truth(split.test.size());
  for (size_t i = 0; i < split.test.size(); ++i) {
    int cls = encoder.Transform(clean.cell(split.test[i], label_col));
    truth[i] = binary ? (cls == 0 ? 0 : 1) : cls;
  }
  return ml::MacroF1(truth, pred);
}

}  // namespace saged::pipeline
