#include "pipeline/tuner.h"

#include <limits>
#include <cmath>

#include "common/rng.h"
#include "common/trace.h"

namespace saged::pipeline {

Status TunerOptions::Validate() const {
  if (trials == 0) return Status::InvalidArgument("tuner trials must be > 0");
  if (epochs == 0) return Status::InvalidArgument("tuner epochs must be > 0");
  return Status::OK();
}

Result<ml::MlpOptions> TuneMlp(const PreparedData& data,
                               const TunerOptions& options, uint64_t seed) {
  SAGED_TRACE_SPAN("pipeline/tune_mlp");
  SAGED_RETURN_NOT_OK(options.Validate());
  Rng rng(seed);
  ml::MlpOptions best;
  double best_score = -std::numeric_limits<double>::max();
  bool any = false;

  for (size_t trial = 0; trial < options.trials; ++trial) {
    ml::MlpOptions candidate;
    candidate.epochs = options.epochs;
    // Search space: lr in [1e-3, 3e-2] (log-uniform), 1-2 hidden layers,
    // 8-64 units per layer.
    candidate.learning_rate = std::exp(rng.Uniform(std::log(1e-3),
                                                   std::log(3e-2)));
    size_t layers = 1 + rng.UniformInt(uint64_t{2});
    candidate.hidden.clear();
    for (size_t l = 0; l < layers; ++l) {
      candidate.hidden.push_back(8ull << rng.UniformInt(uint64_t{4}));
    }
    auto score = TrainAndScore(data, candidate, rng.Next());
    if (!score.ok()) continue;
    if (*score > best_score) {
      best_score = *score;
      best = candidate;
      any = true;
    }
  }
  if (!any) return Status::RuntimeError("all tuning trials failed");
  return best;
}

}  // namespace saged::pipeline
