#ifndef SAGED_PIPELINE_TUNER_H_
#define SAGED_PIPELINE_TUNER_H_

#include <cstdint>

#include "common/status.h"
#include "ml/mlp.h"
#include "pipeline/downstream.h"

namespace saged::pipeline {

/// Random-search budget (our Optuna substitute; see DESIGN.md). The search
/// space matches the knobs the paper tunes: learning rate, number of hidden
/// layers, and units per layer.
struct TunerOptions {
  size_t trials = 8;
  size_t epochs = 80;

  /// Same contract as SagedConfig::Validate(): descriptive InvalidArgument
  /// for out-of-range knobs, checked once by TuneMlp on entry.
  Status Validate() const;
};

/// Searches MLP hyperparameters on the prepared data and returns the best
/// configuration found (by held-out primary score).
Result<ml::MlpOptions> TuneMlp(const PreparedData& data,
                               const TunerOptions& options, uint64_t seed);

}  // namespace saged::pipeline

#endif  // SAGED_PIPELINE_TUNER_H_
