#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace saged {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  if (n == 0) return 0;
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : static_cast<size_t>(UniformInt(weights.size()));
  }
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  if (k >= n) return idx;
  // Partial Fisher-Yates: first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace saged
