#include "common/binary_io.h"

#include <cstring>

namespace saged {

namespace {

template <typename T>
void WriteRaw(std::ostream* out, T v) {
  // The build targets little-endian platforms; memcpy keeps this UB-free.
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->write(buf, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU8(uint8_t v) { WriteRaw(out_, v); }
void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(out_, v); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(out_, v); }
void BinaryWriter::WriteI32(int32_t v) { WriteRaw(out_, v); }
void BinaryWriter::WriteF64(double v) { WriteRaw(out_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteF64Vector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteF64(x);
}

Status BinaryReader::ReadBytes(void* dst, size_t n) {
  in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!in_->good() && !(n == 0)) {
    return Status::IoError("unexpected end of binary stream");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v = 0;
  SAGED_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v = 0;
  SAGED_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  SAGED_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  int32_t v = 0;
  SAGED_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadF64() {
  double v = 0;
  SAGED_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  SAGED_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > kMaxLength) return Status::IoError("corrupt string length");
  std::string s(n, '\0');
  SAGED_RETURN_NOT_OK(ReadBytes(s.data(), n));
  return s;
}

Result<std::vector<double>> BinaryReader::ReadF64Vector() {
  SAGED_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > kMaxLength) return Status::IoError("corrupt vector length");
  std::vector<double> v(n);
  for (auto& x : v) {
    SAGED_ASSIGN_OR_RETURN(x, ReadF64());
  }
  return v;
}

}  // namespace saged
