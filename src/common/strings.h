#ifndef SAGED_COMMON_STRINGS_H_
#define SAGED_COMMON_STRINGS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace saged {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `text` with leading/trailing ASCII whitespace removed.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// True when the trimmed value parses fully as a finite double.
bool IsNumeric(std::string_view text);

/// Parses a double; empty/garbage yields nullopt.
std::optional<double> ParseDouble(std::string_view text);

/// Fraction of characters in `text` that are alphabetic / digits /
/// punctuation. Empty strings yield 0.
double AlphaFraction(std::string_view text);
double DigitFraction(std::string_view text);
double PunctFraction(std::string_view text);

/// True when `value` is one of the conventional missing-value spellings
/// ("", "NULL", "null", "NA", "N/A", "nan", "?", "-", ...).
bool IsMissingToken(std::string_view value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Edit (Levenshtein) distance between two strings.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace saged

#endif  // SAGED_COMMON_STRINGS_H_
