#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <array>
#include <cmath>

namespace saged {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view t = Trim(text);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

bool IsNumeric(std::string_view text) { return ParseDouble(text).has_value(); }

namespace {

template <typename Pred>
double Fraction(std::string_view text, Pred pred) {
  if (text.empty()) return 0.0;
  size_t n = 0;
  for (char c : text) {
    if (pred(static_cast<unsigned char>(c))) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(text.size());
}

}  // namespace

double AlphaFraction(std::string_view text) {
  return Fraction(text, [](unsigned char c) { return std::isalpha(c) != 0; });
}

double DigitFraction(std::string_view text) {
  return Fraction(text, [](unsigned char c) { return std::isdigit(c) != 0; });
}

double PunctFraction(std::string_view text) {
  return Fraction(text, [](unsigned char c) { return std::ispunct(c) != 0; });
}

bool IsMissingToken(std::string_view value) {
  std::string_view t = Trim(value);
  if (t.empty()) return true;
  static constexpr std::array<std::string_view, 12> kTokens = {
      "null", "na", "n/a", "nan", "none", "?", "-", "--",
      "missing", "unknown", "nil", "empty"};
  std::string lower = ToLower(t);
  return std::find(kTokens.begin(), kTokens.end(), lower) != kTokens.end();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace saged
