#ifndef SAGED_COMMON_LOGGING_H_
#define SAGED_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace saged {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log line (already prefixed with level and
/// location). Installed via SetLogSink; invoked under the logging mutex,
/// so messages from concurrent threads arrive whole and one at a time —
/// keep sinks fast and never log from inside one.
using LogSinkFn = std::function<void(LogLevel, const std::string&)>;

/// Replaces the default stderr writer; pass nullptr to restore it. Used by
/// tests and the telemetry layer to capture log output.
void SetLogSink(LogSinkFn sink);

namespace internal {

/// Stream-style log sink; emits on destruction (and aborts when fatal).
/// Used via SAGED_LOG and the contract macros in common/contracts.h.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace saged

#define SAGED_LOG(level)                                                  \
  ::saged::internal::LogMessage(::saged::LogLevel::k##level, __FILE__, __LINE__)

// Invariant checks (SAGED_CHECK and friends) live in common/contracts.h.

#endif  // SAGED_COMMON_LOGGING_H_
