#include "common/run_manifest.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/json.h"

#ifndef SAGED_BUILD_GIT_SHA
#define SAGED_BUILD_GIT_SHA "unknown"
#endif
#ifndef SAGED_BUILD_FLAGS
#define SAGED_BUILD_FLAGS "unknown"
#endif

namespace saged {

namespace {

std::string SanitizedToolName(const std::string& tool) {
  std::string out;
  out.reserve(tool.size());
  for (char c : tool) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "run";
  return out;
}

void AppendKey(std::string& out, std::string_view key, bool pretty,
               bool& first) {
  if (!first) out += ',';
  first = false;
  if (pretty) out += "\n  ";
  json::AppendJsonString(out, key);
  out += pretty ? ": " : ":";
}

}  // namespace

std::string BuildGitSha() { return SAGED_BUILD_GIT_SHA; }

std::string BuildFlags() { return SAGED_BUILD_FLAGS; }

std::string Iso8601UtcNow() {
  using namespace std::chrono;
  int64_t secs =
      duration_cast<seconds>(system_clock::now().time_since_epoch()).count();
  int64_t days = secs / 86400;
  int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  // Civil-from-days (Howard Hinnant's algorithm) — avoids gmtime and its
  // thread-unsafe global buffer.
  int64_t z = days + 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  uint64_t doe = static_cast<uint64_t>(z - era * 146097);
  uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = static_cast<int64_t>(yoe) + era * 400;
  uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  uint64_t mp = (5 * doy + 2) / 153;
  uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  uint64_t m = mp < 10 ? mp + 3 : mp - 9;
  if (m <= 2) y += 1;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04lld-%02llu-%02lluT%02lld:%02lld:%02lldZ",
                static_cast<long long>(y), static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(d),
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem % 3600) / 60),
                static_cast<long long>(rem % 60));
  return buf;
}

std::string ManifestJson(const RunManifest& manifest, bool pretty) {
  std::string out = "{";
  bool first = true;
  AppendKey(out, "schema_version", pretty, first);
  out += '1';
  AppendKey(out, "timestamp_utc", pretty, first);
  json::AppendJsonString(out, Iso8601UtcNow());
  AppendKey(out, "tool", pretty, first);
  json::AppendJsonString(out, manifest.tool);
  AppendKey(out, "command_line", pretty, first);
  json::AppendJsonString(out, manifest.command_line);
  AppendKey(out, "git_sha", pretty, first);
  json::AppendJsonString(out, BuildGitSha());
  AppendKey(out, "build_flags", pretty, first);
  json::AppendJsonString(out, BuildFlags());
  AppendKey(out, "config_hash", pretty, first);
  json::AppendJsonString(out, manifest.config_hash);
  AppendKey(out, "threads", pretty, first);
  json::AppendJsonUint(out, manifest.threads);
  AppendKey(out, "wall_ms", pretty, first);
  json::AppendJsonDouble(out, manifest.wall_ms);
  AppendKey(out, "peak_rss_bytes", pretty, first);
  json::AppendJsonUint(out, manifest.peak_rss_bytes);

  AppendKey(out, "datasets", pretty, first);
  out += '{';
  bool inner_first = true;
  for (const auto& [name, digest] : manifest.datasets) {
    if (!inner_first) out += ',';
    inner_first = false;
    if (pretty) out += "\n    ";
    json::AppendJsonString(out, name);
    out += pretty ? ": " : ":";
    json::AppendJsonString(out, digest);
  }
  if (pretty && !inner_first) out += "\n  ";
  out += '}';

  AppendKey(out, "metrics", pretty, first);
  out += '{';
  inner_first = true;
  for (const auto& [name, value] : manifest.metrics) {
    if (!inner_first) out += ',';
    inner_first = false;
    if (pretty) out += "\n    ";
    json::AppendJsonString(out, name);
    out += pretty ? ": " : ":";
    json::AppendJsonDouble(out, value);
  }
  if (pretty && !inner_first) out += "\n  ";
  out += '}';

  AppendKey(out, "extra", pretty, first);
  out += '{';
  inner_first = true;
  for (const auto& [name, value] : manifest.extra) {
    if (!inner_first) out += ',';
    inner_first = false;
    if (pretty) out += "\n    ";
    json::AppendJsonString(out, name);
    out += pretty ? ": " : ":";
    json::AppendJsonString(out, value);
  }
  if (pretty && !inner_first) out += "\n  ";
  out += '}';

  if (pretty) out += '\n';
  out += '}';
  if (pretty) out += '\n';
  return out;
}

Status AppendRunManifest(const std::string& runs_dir,
                         const RunManifest& manifest) {
  std::error_code ec;
  std::filesystem::create_directories(runs_dir, ec);
  if (ec) {
    return Status::IoError("cannot create ledger directory " + runs_dir +
                           ": " + ec.message());
  }
  const std::string ledger_path = runs_dir + "/ledger.jsonl";
  {
    std::ofstream ledger(ledger_path, std::ios::app);
    if (!ledger) {
      return Status::IoError("cannot open " + ledger_path + " for append");
    }
    ledger << ManifestJson(manifest, /*pretty=*/false) << '\n';
    if (!ledger.good()) {
      return Status::IoError("short write to " + ledger_path);
    }
  }
  const std::string last_path =
      runs_dir + "/" + SanitizedToolName(manifest.tool) + "-last.json";
  std::ofstream last(last_path, std::ios::trunc);
  if (!last) {
    return Status::IoError("cannot open " + last_path + " for writing");
  }
  last << ManifestJson(manifest, /*pretty=*/true);
  if (!last.good()) return Status::IoError("short write to " + last_path);
  return Status::OK();
}

}  // namespace saged
