#ifndef SAGED_COMMON_EXECUTOR_H_
#define SAGED_COMMON_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace saged {

/// Work-stealing thread pool shared by the offline (knowledge extraction)
/// and online (detection) phases. One instance replaces the per-call thread
/// churn the detector used to pay: workers are spawned once and reused.
///
/// Scheduling: every worker owns a deque. A task submitted from a worker
/// thread lands on that worker's deque (LIFO pop keeps caches warm); tasks
/// submitted from outside are distributed round-robin. An idle worker first
/// drains its own deque, then steals from the back of a sibling's deque
/// (FIFO steal takes the oldest — usually largest — pending task).
///
/// Telemetry: tasks carry the submitter's open span path, so spans opened
/// inside a pooled task nest under the span that was open at submission
/// time (see trace.h ScopedSpanPath). Counters `executor.tasks` and
/// `executor.steals` plus histogram `executor.queue_ms` (submit-to-start
/// latency) are recorded when telemetry is enabled.
///
/// Determinism contract: the pool schedules, it never sequences. Callers
/// that need bit-identical output across thread counts must (a) write
/// results into pre-sized per-index slots and (b) derive any randomness
/// from the index, never from execution order (see
/// KnowledgeExtractor::AddDataset for the pattern).
class Executor {
 public:
  /// `num_threads` = 0 sizes the pool to the hardware concurrency.
  explicit Executor(size_t num_threads = 0);

  /// Blocks until every already-submitted task has finished, then joins
  /// the workers. Tasks submitted concurrently with destruction are
  /// completed, never dropped.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface from future::get().
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `fn(i)` for every i in [0, n), spreading indices across the pool,
  /// and blocks until all are done. The calling thread participates (so
  /// nested ParallelFor from inside a task cannot deadlock: the inner call
  /// just drains its own indices inline alongside any helpers).
  ///
  /// `max_parallelism` caps the number of threads touching the loop
  /// (0 = pool size + caller; 1 = fully sequential on the caller).
  ///
  /// The first exception thrown by any `fn(i)` is rethrown on the caller
  /// after the loop quiesces; remaining indices are abandoned.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0);

  /// Process-wide pool sized to the hardware, created on first use. Never
  /// destroyed (workers die with the process), so it is safe to use from
  /// static destructors and bench fixtures.
  static Executor& Shared();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue SAGED_GUARDED_BY(mu);
  };

  void Enqueue(std::function<void()> task);
  void WorkerLoop(size_t index);
  /// Pops one task: own queue first (LIFO), then steals (FIFO). Returns
  /// false when nothing is runnable anywhere.
  bool TryRunOne(size_t worker_index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
  bool shutdown_ SAGED_GUARDED_BY(wake_mu_) = false;
};

}  // namespace saged

#endif  // SAGED_COMMON_EXECUTOR_H_
