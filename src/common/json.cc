#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace saged::json {

namespace {

void AppendUnicodeEscape(std::string& out, uint32_t codepoint) {
  char buf[8];
  if (codepoint >= 0x10000) {
    // Encode as a UTF-16 surrogate pair (JSON's only spelling above the BMP).
    uint32_t v = codepoint - 0x10000;
    std::snprintf(buf, sizeof(buf), "\\u%04x",
                  0xD800u + ((v >> 10) & 0x3FFu));
    out += buf;
    std::snprintf(buf, sizeof(buf), "\\u%04x", 0xDC00u + (v & 0x3FFu));
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf), "\\u%04x", codepoint);
    out += buf;
  }
}

/// Decodes one UTF-8 sequence starting at s[i]. On success returns the
/// codepoint and advances *len to the sequence length; malformed input
/// (bad continuation, overlong form, surrogate range, > U+10FFFF) yields
/// U+FFFD with *len = 1, so each bad byte is replaced independently.
uint32_t DecodeUtf8(std::string_view s, size_t i, size_t* len) {
  const auto byte = [&](size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  unsigned char b0 = byte(i);
  size_t need = 0;
  uint32_t cp = 0;
  uint32_t min_cp = 0;
  if (b0 < 0xC0) {  // lone continuation byte (0x80..0xBF) or ASCII caller bug
    *len = 1;
    return 0xFFFD;
  } else if (b0 < 0xE0) {
    need = 1;
    cp = b0 & 0x1Fu;
    min_cp = 0x80;
  } else if (b0 < 0xF0) {
    need = 2;
    cp = b0 & 0x0Fu;
    min_cp = 0x800;
  } else if (b0 < 0xF8) {
    need = 3;
    cp = b0 & 0x07u;
    min_cp = 0x10000;
  } else {
    *len = 1;
    return 0xFFFD;
  }
  if (i + need >= s.size()) {  // truncated sequence at end of string
    *len = 1;
    return 0xFFFD;
  }
  for (size_t k = 1; k <= need; ++k) {
    unsigned char bk = byte(i + k);
    if ((bk & 0xC0u) != 0x80u) {
      *len = 1;
      return 0xFFFD;
    }
    cp = (cp << 6) | (bk & 0x3Fu);
  }
  if (cp < min_cp || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
    *len = 1;  // overlong / out of range / surrogate half
    return 0xFFFD;
  }
  *len = need + 1;
  return cp;
}

}  // namespace

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\b':
          out += "\\b";
          break;
        case '\f':
          out += "\\f";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (c < 0x20 || c == 0x7F) {
            AppendUnicodeEscape(out, c);
          } else {
            out += static_cast<char>(c);
          }
      }
      ++i;
      continue;
    }
    size_t len = 1;
    uint32_t cp = DecodeUtf8(s, i, &len);
    AppendUnicodeEscape(out, cp);
    i += len;
  }
  out += '"';
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(out, s);
  return out;
}

void AppendJsonDouble(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendJsonUint(std::string& out, uint64_t v) {
  out += std::to_string(v);
}

}  // namespace saged::json
