#ifndef SAGED_COMMON_JSON_H_
#define SAGED_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

/// Shared JSON *emission* helpers (no parser, no DOM): the one place where
/// string escaping and number formatting live, used by telemetry DumpJson,
/// the Chrome trace writer, and the run-manifest writer. Emitted JSON is
/// pure ASCII: control characters and quotes are escaped, valid UTF-8 is
/// re-encoded as \uXXXX (surrogate pairs above the BMP), and bytes that are
/// not valid UTF-8 become U+FFFD — so a hostile column name can never break
/// a dump's structure or its consumers.
namespace saged::json {

/// Appends `s` to `out` as a quoted, fully escaped JSON string literal.
void AppendJsonString(std::string& out, std::string_view s);

/// `s` as a quoted JSON string literal (convenience over AppendJsonString).
std::string JsonEscaped(std::string_view s);

/// Appends `v` with %.6g; non-finite values are clamped to 0 (JSON has no
/// NaN/Inf).
void AppendJsonDouble(std::string& out, double v);

/// Appends `v` as a decimal integer literal.
void AppendJsonUint(std::string& out, uint64_t v);

}  // namespace saged::json

#endif  // SAGED_COMMON_JSON_H_
