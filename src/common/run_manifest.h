#ifndef SAGED_COMMON_RUN_MANIFEST_H_
#define SAGED_COMMON_RUN_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// The run ledger: every CLI / bench invocation appends a small JSON
/// manifest recording what ran, on which bytes, built from which source —
/// so a BENCH_*.json file is never an orphan number again. Two artifacts
/// per append under the ledger directory (default `runs/`):
///   - `ledger.jsonl`     — one minified manifest per line, append-only
///   - `<tool>-last.json` — the same manifest pretty-printed, overwritten,
///                          giving tools/saged_report a predictable path.
/// Field reference in DESIGN.md §Perf observability.
namespace saged {

struct RunManifest {
  /// Identifies the invocation, e.g. "saged_cli detect" or
  /// "bench_table1_datasets". Sanitized (non [A-Za-z0-9._-] → '_') to form
  /// the `<tool>-last.json` filename.
  std::string tool;
  /// The argv the process was started with, space-joined.
  std::string command_line;
  /// Hex content hash of the SagedConfig in effect ("" when the run has no
  /// config, e.g. a baseline-only bench).
  std::string config_hash;
  /// name → hex content digest of every dataset the run consumed (from
  /// data/content_hash.h).
  std::vector<std::pair<std::string, std::string>> datasets;
  /// Worker threads the run was configured with (0 = hardware default).
  uint32_t threads = 0;
  double wall_ms = 0.0;
  uint64_t peak_rss_bytes = 0;
  /// Flat numeric summary: quality metrics and telemetry percentiles, e.g.
  /// "detect.cell_ms.p99". saged_report diffs these.
  std::map<std::string, double> metrics;
  /// Free-form string annotations (dataset list, output paths, notes).
  std::map<std::string, std::string> extra;
};

/// Git SHA the binary was built from ("unknown" outside a git checkout).
std::string BuildGitSha();

/// Build type + sanitizer summary, e.g. "RelWithDebInfo" or "Debug+tsan".
std::string BuildFlags();

/// UTC wall-clock time formatted ISO-8601 ("2026-08-08T12:34:56Z").
std::string Iso8601UtcNow();

/// The manifest as JSON (schema_version 1). `pretty` adds newlines and
/// indentation; minified output contains no newline, suitable for jsonl.
std::string ManifestJson(const RunManifest& manifest, bool pretty);

/// Creates `runs_dir` if needed, appends the minified manifest to
/// `ledger.jsonl`, and rewrites `<tool>-last.json`. IoError with the
/// offending path when the directory or files are unwritable.
[[nodiscard]] Status AppendRunManifest(const std::string& runs_dir,
                                       const RunManifest& manifest);

}  // namespace saged

#endif  // SAGED_COMMON_RUN_MANIFEST_H_
