#ifndef SAGED_COMMON_STOPWATCH_H_
#define SAGED_COMMON_STOPWATCH_H_

#include <chrono>

namespace saged {

/// Wall-clock timer used to report detection runtimes (the paper's
/// efficiency metric). Starts on construction.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace saged

#endif  // SAGED_COMMON_STOPWATCH_H_
