#ifndef SAGED_COMMON_STOPWATCH_H_
#define SAGED_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace saged {

/// Wall-clock timer used to report detection runtimes (the paper's
/// efficiency metric). Starts on construction.
///
/// Pick the unit at the call site — Seconds()/Millis()/Nanos() — instead
/// of multiplying Seconds() by hand; telemetry histograms record Millis().
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset().
  double Millis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed integral nanoseconds since construction / last Reset().
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace saged

#endif  // SAGED_COMMON_STOPWATCH_H_
