#ifndef SAGED_COMMON_CONTRACTS_H_
#define SAGED_COMMON_CONTRACTS_H_

#include <sstream>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/trace.h"

/// Runtime contracts: SAGED_CHECK / SAGED_DCHECK and the comparison forms
/// SAGED_CHECK_EQ/NE/LT/LE/GT/GE (plus SAGED_DCHECK_* counterparts).
///
/// Contracts guard *programmer* errors — shape mismatches, use-before-fit,
/// violated pre/post-conditions. Data errors (bad input files, out-of-range
/// knobs) flow through Status/Result instead; a failing contract means the
/// process state is wrong and continuing would corrupt results, so failure
/// is fail-fast: the message (expression, captured operand values, any
/// streamed context, and the telemetry span path active on the failing
/// thread) is flushed through the log sink, then the process aborts.
///
/// SAGED_DCHECK* compile to nothing in NDEBUG builds (the condition is not
/// evaluated), so they are safe on hot paths like Matrix::At.
namespace saged::internal {

/// Stringifies one operand of a comparison check. Falls back to a
/// placeholder for types without an ostream operator<< so the macros work
/// with any operand (enums with printers, pointers, ...).
template <typename T>
void PrintCheckOperand(std::ostream& os, const T& v) {
  if constexpr (requires(std::ostream& s, const T& t) { s << t; }) {
    os << v;
  } else {
    os << "<unprintable>";
  }
}

/// Outcome of evaluating a comparison check: operands are stringified only
/// on failure, so the passing path costs one comparison.
struct CheckOpResult {
  bool ok;
  std::string operands;  // "lhs vs. rhs", empty when ok
};

template <typename A, typename B, typename Cmp>
CheckOpResult EvalCheckOp(const A& a, const B& b, Cmp cmp) {
  if (cmp(a, b)) return {true, {}};
  std::ostringstream os;
  PrintCheckOperand(os, a);
  os << " vs. ";
  PrintCheckOperand(os, b);
  return {false, os.str()};
}

/// Accumulates the failure message and aborts on destruction. The final
/// line is emitted through the logging layer (so an installed sink sees it
/// and stderr output stays whole under concurrency), suffixed with the
/// telemetry span path open on the failing thread — in a parallel stage
/// that names exactly which pipeline stage blew up.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr,
               std::string operands = {});
  /// Emits and aborts; never returns.
  ~CheckFailure();

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows streamed context in compiled-out SAGED_DCHECK expansions.
struct NullCheckStream {
  template <typename T>
  NullCheckStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace saged::internal

/// Aborts with the failing expression (plus any streamed context) when
/// `cond` is false. The `if/else` shape keeps the streaming syntax
/// (`SAGED_CHECK(x) << "context"`) while nesting safely inside unbraced
/// if/else chains.
#define SAGED_CHECK(cond)                                            \
  if (cond) {                                                        \
  } else /* NOLINT(readability/braces) */                            \
    ::saged::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define SAGED_CHECK_OP_(a, b, op, cmp)                               \
  if (auto saged_check_result_ =                                     \
          ::saged::internal::EvalCheckOp((a), (b), cmp);             \
      saged_check_result_.ok) {                                      \
  } else /* NOLINT(readability/braces) */                            \
    ::saged::internal::CheckFailure(__FILE__, __LINE__,              \
                                    #a " " #op " " #b,               \
                                    std::move(saged_check_result_.operands))

/// Comparison checks with operand capture: the failure message shows both
/// runtime values ("3 vs. 5"), not just the expression text.
#define SAGED_CHECK_EQ(a, b) \
  SAGED_CHECK_OP_(a, b, ==, [](const auto& x, const auto& y) { return x == y; })
#define SAGED_CHECK_NE(a, b) \
  SAGED_CHECK_OP_(a, b, !=, [](const auto& x, const auto& y) { return x != y; })
#define SAGED_CHECK_LT(a, b) \
  SAGED_CHECK_OP_(a, b, <, [](const auto& x, const auto& y) { return x < y; })
#define SAGED_CHECK_LE(a, b) \
  SAGED_CHECK_OP_(a, b, <=, [](const auto& x, const auto& y) { return x <= y; })
#define SAGED_CHECK_GT(a, b) \
  SAGED_CHECK_OP_(a, b, >, [](const auto& x, const auto& y) { return x > y; })
#define SAGED_CHECK_GE(a, b) \
  SAGED_CHECK_OP_(a, b, >=, [](const auto& x, const auto& y) { return x >= y; })

#ifdef NDEBUG

/// Debug-only checks: compiled out in NDEBUG (the condition and operands
/// are never evaluated — `false && ...` short-circuits at compile time —
/// but stay visible to the compiler so they cannot rot).
#define SAGED_DCHECK(cond) \
  while (false && (cond)) ::saged::internal::NullCheckStream()
#define SAGED_DCHECK_OP_(a, b)                                       \
  while (false && (static_cast<void>(a), static_cast<void>(b), false)) \
  ::saged::internal::NullCheckStream()
#define SAGED_DCHECK_EQ(a, b) SAGED_DCHECK_OP_(a, b)
#define SAGED_DCHECK_NE(a, b) SAGED_DCHECK_OP_(a, b)
#define SAGED_DCHECK_LT(a, b) SAGED_DCHECK_OP_(a, b)
#define SAGED_DCHECK_LE(a, b) SAGED_DCHECK_OP_(a, b)
#define SAGED_DCHECK_GT(a, b) SAGED_DCHECK_OP_(a, b)
#define SAGED_DCHECK_GE(a, b) SAGED_DCHECK_OP_(a, b)

#else  // !NDEBUG

#define SAGED_DCHECK(cond) SAGED_CHECK(cond)
#define SAGED_DCHECK_EQ(a, b) SAGED_CHECK_EQ(a, b)
#define SAGED_DCHECK_NE(a, b) SAGED_CHECK_NE(a, b)
#define SAGED_DCHECK_LT(a, b) SAGED_CHECK_LT(a, b)
#define SAGED_DCHECK_LE(a, b) SAGED_CHECK_LE(a, b)
#define SAGED_DCHECK_GT(a, b) SAGED_CHECK_GT(a, b)
#define SAGED_DCHECK_GE(a, b) SAGED_CHECK_GE(a, b)

#endif  // NDEBUG

#endif  // SAGED_COMMON_CONTRACTS_H_
