#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/json.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"

namespace saged::telemetry {

SpanNode* SpanNode::FindOrAddChild(std::string_view child_name) {
  for (auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(child_name);
  children.push_back(std::move(node));
  return children.back().get();
}

namespace {

/// Per-thread cap on buffered trace events: bounds memory under pathological
/// span rates (~64 MB worst case per thread at sizeof(TraceEvent)+name).
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

std::atomic<bool> g_trace_events_enabled{false};
std::atomic<uint64_t> g_dropped_events{0};
/// Steady-clock nanoseconds of the trace epoch; kUnsetEpoch until event
/// capture is first switched on (or re-pinned by ResetTraceEvents).
constexpr int64_t kUnsetEpoch = INT64_MIN;
std::atomic<int64_t> g_epoch_ns{kUnsetEpoch};

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread span tree plus the open-span stack. The owning thread is the
/// only writer; the mutex exists so SnapshotSpans / ResetSpans on another
/// thread observe a consistent tree (uncontended in steady state).
class ThreadTrace {
 public:
  ThreadTrace();
  ~ThreadTrace();

  void Enter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu);
    SpanNode* parent = stack.empty() ? &root : stack.back();
    stack.push_back(parent->FindOrAddChild(name));
  }

  void Exit(uint64_t elapsed_ns, int64_t start_ns, bool has_arg,
            uint64_t arg) {
    std::lock_guard<std::mutex> lock(mu);
    if (stack.empty()) return;  // Reset raced an open span; drop the sample
    SpanNode* node = stack.back();
    node->count += 1;
    node->total_ns += elapsed_ns;
    stack.pop_back();
    if (g_trace_events_enabled.load(std::memory_order_relaxed)) {
      int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
      if (epoch == kUnsetEpoch) return;  // enable raced; skip this one
      if (events.size() >= kMaxEventsPerThread) {
        g_dropped_events.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      TraceEvent event;
      event.name = node->name;
      event.tid = thread_index;
      event.ts_ns = start_ns > epoch ? static_cast<uint64_t>(start_ns - epoch)
                                     : 0;
      event.dur_ns = elapsed_ns;
      event.arg = arg;
      event.has_arg = has_arg;
      events.push_back(std::move(event));
    }
  }

  /// Pops without recording: used when closing a structurally re-entered
  /// path (ScopedSpanPath), whose time is accounted on the origin thread.
  void ExitNoRecord() {
    std::lock_guard<std::mutex> lock(mu);
    if (!stack.empty()) stack.pop_back();
  }

  std::vector<std::string> OpenSpanNames() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> names;
    names.reserve(stack.size());
    for (const SpanNode* node : stack) names.push_back(node->name);
    return names;
  }

  std::mutex mu;
  // unnamed container of top-level spans
  SpanNode root SAGED_GUARDED_BY(mu);
  // open spans, outermost first
  std::vector<SpanNode*> stack SAGED_GUARDED_BY(mu);
  // completed occurrences (capped)
  std::vector<TraceEvent> events SAGED_GUARDED_BY(mu);
  uint32_t thread_index = 0;  // set once at registration, immutable after
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadTrace*> live SAGED_GUARDED_BY(mu);
  // trees / events of exited threads
  std::vector<MergedSpan> retired SAGED_GUARDED_BY(mu);
  std::vector<TraceEvent> retired_events SAGED_GUARDED_BY(mu);
  uint32_t next_thread_index SAGED_GUARDED_BY(mu) = 0;
};

TraceRegistry& Registry() {
  static auto& registry = *new TraceRegistry;
  return registry;
}

ThreadTrace& LocalTrace() {
  thread_local ThreadTrace trace;
  return trace;
}

MergedSpan* FindOrAddMerged(std::vector<MergedSpan>& siblings,
                            const std::string& name) {
  for (auto& node : siblings) {
    if (node.name == name) return &node;
  }
  siblings.push_back(MergedSpan{name, 0, 0, {}, {}});
  return &siblings.back();
}

void AddThread(std::vector<uint32_t>& threads, uint32_t id) {
  if (std::find(threads.begin(), threads.end(), id) == threads.end()) {
    threads.push_back(id);
    std::sort(threads.begin(), threads.end());
  }
}

void MergeNode(std::vector<MergedSpan>& dst, const SpanNode& src,
               uint32_t thread_index) {
  MergedSpan* node = FindOrAddMerged(dst, src.name);
  node->count += src.count;
  node->total_ns += src.total_ns;
  AddThread(node->threads, thread_index);
  for (const auto& child : src.children) {
    MergeNode(node->children, *child, thread_index);
  }
}

void MergeMerged(std::vector<MergedSpan>& dst, const MergedSpan& src) {
  MergedSpan* node = FindOrAddMerged(dst, src.name);
  node->count += src.count;
  node->total_ns += src.total_ns;
  for (uint32_t id : src.threads) AddThread(node->threads, id);
  for (const auto& child : src.children) MergeMerged(node->children, child);
}

ThreadTrace::ThreadTrace() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  thread_index = registry.next_thread_index++;
  registry.live.push_back(this);
}

ThreadTrace::~ThreadTrace() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& child : root.children) {
      MergeNode(registry.retired, *child, thread_index);
    }
    registry.retired_events.insert(
        registry.retired_events.end(),
        std::make_move_iterator(events.begin()),
        std::make_move_iterator(events.end()));
    events.clear();
  }
  registry.live.erase(
      std::remove(registry.live.begin(), registry.live.end(), this),
      registry.live.end());
}

void AppendMicros(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::vector<MergedSpan> SnapshotSpans() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  std::vector<MergedSpan> out;
  for (const auto& node : registry.retired) MergeMerged(out, node);
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    for (const auto& child : trace->root.children) {
      MergeNode(out, *child, trace->thread_index);
    }
  }
  return out;
}

void ResetSpans() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  registry.retired.clear();
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    if (trace->stack.empty()) trace->root.children.clear();
  }
}

bool TraceEventsEnabled() {
  return g_trace_events_enabled.load(std::memory_order_relaxed);
}

void SetTraceEventsEnabled(bool enabled) {
  bool was = g_trace_events_enabled.exchange(enabled);
  if (enabled && !was) {
    // Pin the epoch on the off→on transition only: events buffered across a
    // disable/enable cycle stay on one coherent timeline.
    int64_t expected = kUnsetEpoch;
    g_epoch_ns.compare_exchange_strong(expected, SteadyNowNs());
  }
}

std::vector<TraceEvent> SnapshotTraceEvents() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  std::vector<TraceEvent> out = registry.retired_events;
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    out.insert(out.end(), trace->events.begin(), trace->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });
  return out;
}

uint64_t DroppedTraceEvents() {
  return g_dropped_events.load(std::memory_order_relaxed);
}

void ResetTraceEvents() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  registry.retired_events.clear();
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    trace->events.clear();
  }
  g_dropped_events.store(0, std::memory_order_relaxed);
  if (g_trace_events_enabled.load(std::memory_order_relaxed)) {
    // Fresh trace: restart the timeline at "now" so the first event lands
    // near ts 0 instead of minutes into an empty track.
    g_epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  } else {
    g_epoch_ns.store(kUnsetEpoch, std::memory_order_relaxed);
  }
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events = SnapshotTraceEvents();
  std::vector<uint32_t> tids;
  for (const auto& event : events) AddThread(tids, event.tid);

  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  json::AppendJsonUint(out, DroppedTraceEvents());
  out += "},\"traceEvents\":[";
  bool first = true;
  for (uint32_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    json::AppendJsonUint(out, tid);
    out += ",\"args\":{\"name\":";
    json::AppendJsonString(out, "saged-thread-" + std::to_string(tid));
    out += "}}";
  }
  for (const auto& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    json::AppendJsonString(out, event.name);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    json::AppendJsonUint(out, event.tid);
    out += ",\"ts\":";
    AppendMicros(out, event.ts_ns);
    out += ",\"dur\":";
    AppendMicros(out, event.dur_ns);
    if (event.has_arg) {
      out += ",\"args\":{\"id\":";
      json::AppendJsonUint(out, event.arg);
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << ChromeTraceJson();
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

std::vector<std::string> CurrentSpanPath() {
  if (!Enabled()) return {};
  return LocalTrace().OpenSpanNames();
}

ScopedSpanPath::ScopedSpanPath(const std::vector<std::string>& path) {
  if (!Enabled() || path.empty()) return;
  auto& trace = LocalTrace();
  for (const auto& name : path) trace.Enter(name);
  depth_ = path.size();
}

ScopedSpanPath::~ScopedSpanPath() {
  if (depth_ == 0) return;
  auto& trace = LocalTrace();
  for (size_t i = 0; i < depth_; ++i) trace.ExitNoRecord();
}

ScopedSpan::ScopedSpan(std::string_view name) : active_(Enabled()) {
  if (!active_) return;
  LocalTrace().Enter(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::ScopedSpan(std::string_view name, uint64_t arg)
    : active_(Enabled()), has_arg_(true), arg_(arg) {
  if (!active_) return;
  LocalTrace().Enter(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  auto now = std::chrono::steady_clock::now();
  auto elapsed = now - start_;
  int64_t start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         start_.time_since_epoch())
                         .count();
  LocalTrace().Exit(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      start_ns, has_arg_, arg_);
}

}  // namespace saged::telemetry
