#include "common/trace.h"

#include <algorithm>
#include <mutex>

#include "common/telemetry.h"

namespace saged::telemetry {

SpanNode* SpanNode::FindOrAddChild(std::string_view child_name) {
  for (auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  auto node = std::make_unique<SpanNode>();
  node->name = std::string(child_name);
  children.push_back(std::move(node));
  return children.back().get();
}

namespace {

/// Per-thread span tree plus the open-span stack. The owning thread is the
/// only writer; the mutex exists so SnapshotSpans / ResetSpans on another
/// thread observe a consistent tree (uncontended in steady state).
class ThreadTrace {
 public:
  ThreadTrace();
  ~ThreadTrace();

  void Enter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu);
    SpanNode* parent = stack.empty() ? &root : stack.back();
    stack.push_back(parent->FindOrAddChild(name));
  }

  void Exit(uint64_t elapsed_ns) {
    std::lock_guard<std::mutex> lock(mu);
    if (stack.empty()) return;  // Reset raced an open span; drop the sample
    SpanNode* node = stack.back();
    node->count += 1;
    node->total_ns += elapsed_ns;
    stack.pop_back();
  }

  /// Pops without recording: used when closing a structurally re-entered
  /// path (ScopedSpanPath), whose time is accounted on the origin thread.
  void ExitNoRecord() {
    std::lock_guard<std::mutex> lock(mu);
    if (!stack.empty()) stack.pop_back();
  }

  std::vector<std::string> OpenSpanNames() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> names;
    names.reserve(stack.size());
    for (const SpanNode* node : stack) names.push_back(node->name);
    return names;
  }

  std::mutex mu;
  SpanNode root;                 // unnamed container of top-level spans
  std::vector<SpanNode*> stack;  // open spans, outermost first
  uint32_t thread_index = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<ThreadTrace*> live;
  std::vector<MergedSpan> retired;  // trees of exited threads
  uint32_t next_thread_index = 0;
};

TraceRegistry& Registry() {
  static auto& registry = *new TraceRegistry;
  return registry;
}

ThreadTrace& LocalTrace() {
  thread_local ThreadTrace trace;
  return trace;
}

MergedSpan* FindOrAddMerged(std::vector<MergedSpan>& siblings,
                            const std::string& name) {
  for (auto& node : siblings) {
    if (node.name == name) return &node;
  }
  siblings.push_back(MergedSpan{name, 0, 0, {}, {}});
  return &siblings.back();
}

void AddThread(std::vector<uint32_t>& threads, uint32_t id) {
  if (std::find(threads.begin(), threads.end(), id) == threads.end()) {
    threads.push_back(id);
    std::sort(threads.begin(), threads.end());
  }
}

void MergeNode(std::vector<MergedSpan>& dst, const SpanNode& src,
               uint32_t thread_index) {
  MergedSpan* node = FindOrAddMerged(dst, src.name);
  node->count += src.count;
  node->total_ns += src.total_ns;
  AddThread(node->threads, thread_index);
  for (const auto& child : src.children) {
    MergeNode(node->children, *child, thread_index);
  }
}

void MergeMerged(std::vector<MergedSpan>& dst, const MergedSpan& src) {
  MergedSpan* node = FindOrAddMerged(dst, src.name);
  node->count += src.count;
  node->total_ns += src.total_ns;
  for (uint32_t id : src.threads) AddThread(node->threads, id);
  for (const auto& child : src.children) MergeMerged(node->children, child);
}

ThreadTrace::ThreadTrace() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  thread_index = registry.next_thread_index++;
  registry.live.push_back(this);
}

ThreadTrace::~ThreadTrace() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& child : root.children) {
      MergeNode(registry.retired, *child, thread_index);
    }
  }
  registry.live.erase(
      std::remove(registry.live.begin(), registry.live.end(), this),
      registry.live.end());
}

}  // namespace

std::vector<MergedSpan> SnapshotSpans() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  std::vector<MergedSpan> out;
  for (const auto& node : registry.retired) MergeMerged(out, node);
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    for (const auto& child : trace->root.children) {
      MergeNode(out, *child, trace->thread_index);
    }
  }
  return out;
}

void ResetSpans() {
  auto& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  registry.retired.clear();
  for (ThreadTrace* trace : registry.live) {
    std::lock_guard<std::mutex> lock(trace->mu);
    if (trace->stack.empty()) trace->root.children.clear();
  }
}

std::vector<std::string> CurrentSpanPath() {
  if (!Enabled()) return {};
  return LocalTrace().OpenSpanNames();
}

ScopedSpanPath::ScopedSpanPath(const std::vector<std::string>& path) {
  if (!Enabled() || path.empty()) return;
  auto& trace = LocalTrace();
  for (const auto& name : path) trace.Enter(name);
  depth_ = path.size();
}

ScopedSpanPath::~ScopedSpanPath() {
  if (depth_ == 0) return;
  auto& trace = LocalTrace();
  for (size_t i = 0; i < depth_; ++i) trace.ExitNoRecord();
}

ScopedSpan::ScopedSpan(std::string_view name) : active_(Enabled()) {
  if (!active_) return;
  LocalTrace().Enter(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  LocalTrace().Exit(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
}

}  // namespace saged::telemetry
