#ifndef SAGED_COMMON_TRACE_H_
#define SAGED_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// Scoped spans forming a per-stage timing tree.
///
/// Each thread keeps its own span stack (no cross-thread contention on the
/// hot path; one uncontended mutex acquisition per enter/exit keeps the
/// structure readable by DumpJson mid-run). Trees from worker threads are
/// merged by span name at export time, so a span opened inside the
/// detector's column workers shows up once with the contributing thread
/// ids attached.
///
/// Naming convention: `phase/stage` or `phase/stage/substage`, e.g.
/// `detect/featurize` or `extract/base_models` (see DESIGN.md).
namespace saged::telemetry {

/// One node of a thread-local span tree.
struct SpanNode {
  std::string name;
  uint64_t count = 0;     // completed invocations
  uint64_t total_ns = 0;  // wall time summed over invocations
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* FindOrAddChild(std::string_view child_name);
};

/// A span tree node after merging across threads (what DumpJson emits).
struct MergedSpan {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  /// Registration-order ids of the threads that executed this span.
  std::vector<uint32_t> threads;
  std::vector<MergedSpan> children;
};

/// Merges every thread's tree (live and retired) into one forest.
std::vector<MergedSpan> SnapshotSpans();

// ---------------------------------------------------------------------------
// Trace events: per-occurrence records behind the aggregated tree.
//
// The span tree above aggregates (count/total per name); trace events keep
// every individual span occurrence with its thread id and steady-clock
// timestamps, so executor parallelism, help-while-waiting stalls, and
// streaming block overlap become visible per thread in Perfetto /
// chrome://tracing. Capture is a second, independent switch because events
// cost memory (one record per span exit) where the tree costs O(distinct
// names).
// ---------------------------------------------------------------------------

/// One completed span occurrence — a Chrome trace-event "complete" ("X")
/// event. Timestamps are steady-clock nanoseconds since the process trace
/// epoch (the first moment event capture was switched on).
struct TraceEvent {
  std::string name;
  /// Registration-order id of the thread that ran the span (same ids as
  /// MergedSpan::threads).
  uint32_t tid = 0;
  uint64_t ts_ns = 0;   // span start, relative to the trace epoch
  uint64_t dur_ns = 0;  // wall duration
  /// Optional per-occurrence payload (SAGED_TRACE_SPAN_ARG): block index,
  /// request id, column index — shown as args.id in the Chrome trace.
  uint64_t arg = 0;
  bool has_arg = false;
};

/// Trace-event capture switch. Independent of Enabled(): events are only
/// recorded when BOTH are on (ScopedSpan does nothing at all when Enabled()
/// is false). SetTraceEventsEnabled(true) also pins the trace epoch.
bool TraceEventsEnabled();
void SetTraceEventsEnabled(bool enabled);

/// Events from live and exited threads, sorted by (ts_ns, dur_ns
/// descending) so a parent precedes its children at equal start times.
std::vector<TraceEvent> SnapshotTraceEvents();

/// Events discarded after a thread hit its per-thread buffer cap (bounded
/// memory under pathological span rates). Reported in the Chrome trace
/// metadata; reset by ResetTraceEvents.
uint64_t DroppedTraceEvents();

/// Clears captured events (live and retired buffers) and the dropped
/// counter. Safe while spans are open: only completed events are stored.
void ResetTraceEvents();

/// The captured events as Chrome trace-event JSON: one "M" thread_name
/// metadata event per contributing thread, then the "X" complete events in
/// timestamp order, ts/dur in microseconds. Loadable in Perfetto and
/// chrome://tracing (schema in DESIGN.md §Perf observability).
std::string ChromeTraceJson();
Status WriteChromeTrace(const std::string& path);

/// Names of the spans currently open on the calling thread, outermost
/// first. Empty when telemetry is disabled or no span is open. The executor
/// captures this at task-submission time so pooled work nests correctly.
std::vector<std::string> CurrentSpanPath();

/// Re-opens a span path captured on another thread (via CurrentSpanPath),
/// so spans opened inside a pooled task attach under the submitter's span
/// instead of at the worker's root. Structural only: closing the path adds
/// no counts or time to the re-entered nodes (the submitting thread's own
/// ScopedSpan already accounts the wall time once).
class ScopedSpanPath {
 public:
  explicit ScopedSpanPath(const std::vector<std::string>& path);
  ~ScopedSpanPath();

  ScopedSpanPath(const ScopedSpanPath&) = delete;
  ScopedSpanPath& operator=(const ScopedSpanPath&) = delete;

 private:
  size_t depth_ = 0;
};

/// Clears retired trees and every quiescent live tree. Trees of threads
/// currently inside a span are left untouched (spans keep their open
/// stack valid); call only between runs / in tests.
void ResetSpans();

/// RAII span. Does nothing when telemetry is disabled at construction
/// time; an in-flight span finishes normally if telemetry is toggled off
/// midway.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(std::string_view(name)) {}
  explicit ScopedSpan(const std::string& name)
      : ScopedSpan(std::string_view(name)) {}
  explicit ScopedSpan(std::string_view name);
  /// Span with a per-occurrence metadata payload (block index, request id)
  /// carried into the exported trace event as args.id. The aggregated tree
  /// ignores it.
  ScopedSpan(std::string_view name, uint64_t arg);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  bool has_arg_ = false;
  uint64_t arg_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace saged::telemetry

#define SAGED_TRACE_CONCAT_IMPL_(a, b) a##b
#define SAGED_TRACE_CONCAT_(a, b) SAGED_TRACE_CONCAT_IMPL_(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define SAGED_TRACE_SPAN(name)             \
  ::saged::telemetry::ScopedSpan SAGED_TRACE_CONCAT_(saged_span_, __LINE__)( \
      name)

/// Opens a span carrying a numeric per-occurrence payload (exported as
/// args.id on the Chrome trace event — e.g. the streaming block index).
#define SAGED_TRACE_SPAN_ARG(name, arg)    \
  ::saged::telemetry::ScopedSpan SAGED_TRACE_CONCAT_(saged_span_, __LINE__)( \
      ::std::string_view(name), static_cast<uint64_t>(arg))

#endif  // SAGED_COMMON_TRACE_H_
