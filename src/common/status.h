#ifndef SAGED_COMMON_STATUS_H_
#define SAGED_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace saged {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kRuntimeError,
  kNotImplemented,
};

/// Arrow-style status object. Functions that can fail return `Status` (or
/// `Result<T>` when they also produce a value); exceptions never cross the
/// public API boundary. The class-level [[nodiscard]] makes the compiler
/// flag any call site that drops a returned Status on the floor — errors
/// must be checked, propagated, or explicitly voided with a justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "Code: message" rendering for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error status (Arrow's
/// `arrow::Result`). Access the value only after checking `ok()`.
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// silently swallowed error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a (non-OK) status keeps call
  /// sites terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller (RocksDB/Arrow idiom).
#define SAGED_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::saged::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define SAGED_CONCAT_IMPL_(a, b) a##b
#define SAGED_CONCAT_(a, b) SAGED_CONCAT_IMPL_(a, b)

#define SAGED_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

/// Unwraps a Result<T> into `lhs`, forwarding the error on failure.
#define SAGED_ASSIGN_OR_RETURN(lhs, rexpr) \
  SAGED_ASSIGN_OR_RETURN_IMPL_(SAGED_CONCAT_(_saged_res_, __LINE__), lhs, rexpr)

}  // namespace saged

#endif  // SAGED_COMMON_STATUS_H_
