#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/thread_annotations.h"

namespace saged {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Guards the sink pointer and serializes emission: each message reaches
/// the sink (or stderr) as one whole line, never interleaved with another
/// thread's output.
std::mutex& LogMutex() {
  static auto& mu = *new std::mutex;
  return mu;
}

/// The sink slot LogMutex() serializes: both the SetLogSink swap and each
/// emission go through it under the lock.
LogSinkFn& Sink() SAGED_REQUIRES(LogMutex()) {
  static auto& sink = *new LogSinkFn;
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSinkFn sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  Sink() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || fatal_) {
    const std::string message = stream_.str();
    std::lock_guard<std::mutex> lock(LogMutex());
    if (Sink()) {
      Sink()(level_, message);
    } else {
      std::fprintf(stderr, "%s\n", message.c_str());
    }
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace saged
