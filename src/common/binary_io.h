#ifndef SAGED_COMMON_BINARY_IO_H_
#define SAGED_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace saged {

/// Little binary serialization layer used to persist trained models (the
/// knowledge base survives across offline / online runs). Fixed-width
/// little-endian primitives; strings and vectors are length-prefixed.
/// Writers collect into the stream; readers validate as they go and report
/// corruption through Status.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteF64Vector(const std::vector<double>& v);

  /// True when every write so far succeeded.
  bool ok() const { return out_->good(); }
  Status status() const {
    return ok() ? Status::OK() : Status::IoError("binary write failed");
  }

 private:
  std::ostream* out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadF64Vector();

  /// Guards length-prefixed reads against corrupted / truncated files.
  static constexpr uint64_t kMaxLength = 1ull << 32;

 private:
  Status ReadBytes(void* dst, size_t n);

  std::istream* in_;
};

}  // namespace saged

#endif  // SAGED_COMMON_BINARY_IO_H_
