#include "common/executor.h"

#include <algorithm>
#include <chrono>

#include "common/contracts.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged {

namespace {

/// Identifies the pool (and worker slot) owning the current thread, so
/// Submit from inside a task lands on the submitting worker's own deque and
/// ParallelFor can help-drain instead of deadlocking while it waits.
thread_local Executor* tl_pool = nullptr;
thread_local size_t tl_worker = 0;

}  // namespace

Executor::Executor(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  SAGED_CHECK_GE(workers_.size(), 1u)
      << "executor must own at least one worker";
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

Executor& Executor::Shared() {
  // Leaked on purpose (repo-wide singleton idiom): workers outlive every
  // static destructor that might still submit work.
  static auto& pool = *new Executor(0);
  return pool;
}

void Executor::Enqueue(std::function<void()> task) {
  if (telemetry::Enabled()) {
    // Carry the submitter's open span path into the task so spans it opens
    // nest where the work was scheduled from, not at the worker's root.
    auto path = telemetry::CurrentSpanPath();
    auto enqueued = std::chrono::steady_clock::now();
    task = [inner = std::move(task), path = std::move(path), enqueued]() {
      SAGED_COUNTER_INC("executor.tasks");
      double queue_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - enqueued)
                            .count();
      SAGED_HISTOGRAM_OBSERVE("executor.queue_ms", queue_ms);
      telemetry::ScopedSpanPath reenter(path);
      inner();
    };
  }
  size_t index = tl_pool == this
                     ? tl_worker
                     : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                           workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[index]->mu);
    workers_[index]->queue.push_back(std::move(task));
  }
  {
    // Lock/unlock pairs the pending_ increment with the workers' predicate
    // check; without it a worker could miss the notify between checking and
    // sleeping.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool Executor::TryRunOne(size_t worker_index) {
  std::function<void()> task;
  Worker& own = *workers_[worker_index];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());  // LIFO: newest first, caches warm
      own.queue.pop_back();
    }
  }
  if (!task) {
    for (size_t offset = 1; offset < workers_.size() && !task; ++offset) {
      Worker& victim = *workers_[(worker_index + offset) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());  // FIFO steal: oldest task
        victim.queue.pop_front();
        SAGED_COUNTER_INC("executor.steals");
      }
    }
  }
  if (!task) return false;
  size_t before = pending_.fetch_sub(1, std::memory_order_acq_rel);
  SAGED_DCHECK_GE(before, 1u);  // claimed tasks were counted on submission
  task();
  return true;
}

void Executor::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker = index;
  while (true) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    // Drain-on-shutdown: exit only once every queued task has been claimed,
    // so the destructor's contract (submitted work completes) holds.
    if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                           size_t max_parallelism) {
  if (n == 0) return;
  SAGED_CHECK(static_cast<bool>(fn)) << "ParallelFor needs a callable body";
  size_t helper_budget =
      max_parallelism == 0 ? num_workers() : max_parallelism - 1;
  size_t helpers = std::min({helper_budget, n - 1, num_workers()});
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;
    std::exception_ptr first_error SAGED_GUARDED_BY(mu);
  };
  auto state = std::make_shared<LoopState>();
  // Safe to capture fn/n by reference: every helper future is awaited below
  // before this frame unwinds.
  auto drain = [state, &fn, n]() {
    while (!state->cancelled.load(std::memory_order_relaxed)) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->first_error) state->first_error = std::current_exception();
        }
        state->cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (size_t h = 0; h < helpers; ++h) futures.push_back(Submit(drain));
  drain();  // the caller is always one of the loop's lanes

  for (auto& future : futures) {
    if (tl_pool == this) {
      // A worker waiting on its own pool must keep executing pool tasks:
      // the helper it awaits may be sitting in its own deque (nested
      // ParallelFor), and blocking would deadlock.
      while (future.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!TryRunOne(tl_worker)) std::this_thread::yield();
      }
    }
    future.get();  // helpers only rethrow via state; get() is for joining
  }
  // saged-lint: allow(lock-discipline): every lane was joined above, so no concurrent writer of first_error can exist
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace saged
