#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "common/trace.h"

namespace saged::telemetry {

namespace {

std::atomic<bool> g_enabled{false};

/// Round-robin shard assignment: one slot per thread, fixed for its
/// lifetime, shared by every counter (the goal is only to keep concurrent
/// writers off the same cache line).
size_t ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot = next.fetch_add(1);
  return slot;
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// JSON emission: escaping and number formatting are delegated to the shared
// common/json helpers so every writer (telemetry, Chrome trace, manifests)
// escapes identically.
// ---------------------------------------------------------------------------

void AppendEscaped(std::string& out, const std::string& s) {
  json::AppendJsonString(out, s);
}

void AppendDouble(std::string& out, double v) {
  json::AppendJsonDouble(out, v);
}

void AppendSpan(std::string& out, const MergedSpan& span, int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  out += pad + "{\"name\": ";
  AppendEscaped(out, span.name);
  out += ", \"count\": " + std::to_string(span.count);
  out += ", \"total_ms\": ";
  AppendDouble(out, static_cast<double>(span.total_ns) / 1e6);
  out += ", \"threads\": [";
  for (size_t i = 0; i < span.threads.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(span.threads[i]);
  }
  out += "], \"children\": [";
  if (!span.children.empty()) {
    out += '\n';
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i) out += ",\n";
      AppendSpan(out, span.children[i], indent + 2);
    }
    out += '\n' + pad;
  }
  out += "]}";
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

void Counter::Add(uint64_t delta) {
  shards_[ThreadShard() % kShards].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::BucketFor(double value) {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  int exp = 0;
  double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(std::max(sub, 0), kSubBuckets - 1);
  int bucket = (exp + kExpOffset) * kSubBuckets + sub;
  return std::min(std::max(bucket, 0), kBuckets - 1);
}

double Histogram::BucketMidpoint(int bucket) {
  int exp = bucket / kSubBuckets - kExpOffset;
  int sub = bucket % kSubBuckets;
  double frac = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(frac, exp);
}

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

HistogramStats Histogram::Snapshot() const {
  HistogramStats stats;
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  stats.count = total;
  if (total == 0) return stats;
  stats.min = min_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);
  stats.mean = sum_.load(std::memory_order_relaxed) /
               static_cast<double>(total);
  auto percentile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen > rank) return BucketMidpoint(b);
    }
    return stats.max;
  };
  stats.p50 = percentile(0.50);
  stats.p90 = percentile(0.90);
  stats.p95 = percentile(0.95);
  stats.p99 = percentile(0.99);
  return stats;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::Set(uint64_t value) {
  value_.store(value, std::memory_order_relaxed);
  uint64_t current = max_.load(std::memory_order_relaxed);
  while (value > current &&
         !max_.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Process memory probes
// ---------------------------------------------------------------------------

namespace {

/// Parses a "VmRSS:   12345 kB" style line of /proc/self/status.
uint64_t ReadStatusKb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  size_t key_len = std::char_traits<char>::length(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) != 0) continue;
    uint64_t kb = 0;
    size_t i = key_len;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      kb = kb * 10 + static_cast<uint64_t>(line[i] - '0');
      ++i;
    }
    return kb * 1024;
  }
  return 0;
}

}  // namespace

uint64_t CurrentRssBytes() { return ReadStatusKb("VmRSS:"); }

uint64_t PeakRssBytes() { return ReadStatusKb("VmHWM:"); }

bool TryResetPeakRss() {
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (!clear_refs) return false;
  clear_refs << "5";
  clear_refs.flush();
  return clear_refs.good();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TelemetryRegistry& TelemetryRegistry::Get() {
  static auto& registry = *new TelemetryRegistry;
  return registry;
}

Counter* TelemetryRegistry::FindOrCreateCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* TelemetryRegistry::FindOrCreateHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

Gauge* TelemetryRegistry::FindOrCreateGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

uint64_t TelemetryRegistry::CounterValue(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

HistogramStats TelemetryRegistry::HistogramSnapshot(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStats{} : it->second->Snapshot();
}

uint64_t TelemetryRegistry::GaugeValue(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

uint64_t TelemetryRegistry::GaugeMax(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Max();
}

void TelemetryRegistry::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, histogram] : histograms_) histogram->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
  }
  ResetSpans();
}

std::string TelemetryRegistry::DumpJson() {
  std::string out = "{\n  \"version\": 1,\n  \"counters\": {";
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [name, counter] : counters_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendEscaped(out, name);
      out += ": " + std::to_string(counter->Value());
    }
    if (!first) out += "\n  ";
    out += "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, histogram] : histograms_) {
      auto stats = histogram->Snapshot();
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendEscaped(out, name);
      out += ": {\"count\": " + std::to_string(stats.count);
      out += ", \"min\": ";
      AppendDouble(out, stats.min);
      out += ", \"max\": ";
      AppendDouble(out, stats.max);
      out += ", \"mean\": ";
      AppendDouble(out, stats.mean);
      out += ", \"p50\": ";
      AppendDouble(out, stats.p50);
      out += ", \"p90\": ";
      AppendDouble(out, stats.p90);
      out += ", \"p95\": ";
      AppendDouble(out, stats.p95);
      out += ", \"p99\": ";
      AppendDouble(out, stats.p99);
      out += "}";
    }
    if (!first) out += "\n  ";
    out += "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : gauges_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    ";
      AppendEscaped(out, name);
      out += ": {\"value\": " + std::to_string(gauge->Value());
      out += ", \"max\": " + std::to_string(gauge->Max());
      out += "}";
    }
    if (!first) out += "\n  ";
    out += "},\n";
  }
  out += "  \"spans\": [";
  auto spans = SnapshotSpans();
  if (!spans.empty()) {
    out += '\n';
    for (size_t i = 0; i < spans.size(); ++i) {
      if (i) out += ",\n";
      AppendSpan(out, spans[i], 4);
    }
    out += "\n  ";
  }
  out += "]\n}\n";
  return out;
}

Status TelemetryRegistry::DumpJsonToFile(const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << DumpJson();
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

void AddCounter(const std::string& name, uint64_t delta) {
  if (!Enabled()) return;
  TelemetryRegistry::Get().FindOrCreateCounter(name)->Add(delta);
}

void ObserveHistogram(const std::string& name, double value) {
  if (!Enabled()) return;
  TelemetryRegistry::Get().FindOrCreateHistogram(name)->Observe(value);
}

void SetGauge(const std::string& name, uint64_t value) {
  if (!Enabled()) return;
  TelemetryRegistry::Get().FindOrCreateGauge(name)->Set(value);
}

}  // namespace saged::telemetry
