#ifndef SAGED_COMMON_TELEMETRY_H_
#define SAGED_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

/// Process-wide telemetry: named counters and histograms plus the span
/// timing tree from common/trace.h, exported as one JSON document.
///
/// The subsystem is off by default. All recording macros compile to a
/// single relaxed atomic load when disabled, so instrumentation can stay
/// in hot paths permanently. Names follow the span convention
/// `phase/stage/substage` for spans and `subsystem.metric` for counters
/// and histograms (see DESIGN.md §Observability).
namespace saged::telemetry {

/// Cheap global switch read on every record; relaxed ordering is enough
/// because recording is best-effort (a racing enable may miss one event).
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic counter sharded across cache lines so concurrent writers
/// (e.g. the detector's column workers) never contend on one atomic.
class Counter {
 public:
  void Add(uint64_t delta);
  uint64_t Value() const;
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Summary emitted per histogram (percentiles are bucket midpoints of a
/// base-2 log-linear layout; relative error is bounded by the sub-bucket
/// resolution, ~3%).
struct HistogramStats {
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Lock-free log-linear histogram: each power of two is split into
/// kSubBuckets linear sub-buckets, each an independent atomic, so Observe
/// is one index computation plus three relaxed atomic ops.
class Histogram {
 public:
  void Observe(double value);
  HistogramStats Snapshot() const;
  void Reset();

 private:
  static constexpr int kSubBuckets = 16;   // per power of two
  static constexpr int kExpOffset = 32;    // covers 2^-32 .. 2^31
  static constexpr int kExpRange = 64;
  static constexpr int kBuckets = kExpRange * kSubBuckets;

  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded to +/-inf so the CAS loops in Observe need no first-sample case.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Last-value-plus-high-watermark instrument for sampled quantities (queue
/// depths, resident-set size). Set() stores the latest sample and folds it
/// into the watermark; both survive until Reset.
class Gauge {
 public:
  void Set(uint64_t value);
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<uint64_t> max_{0};
};

/// Process memory probes (Linux /proc/self/status; zero where unsupported).
/// CurrentRssBytes reads VmRSS, PeakRssBytes reads VmHWM. TryResetPeakRss
/// rewinds the kernel's high watermark to the current RSS (writes "5" to
/// /proc/self/clear_refs) so per-phase peaks can be measured in one
/// process; returns false when the kernel refuses.
uint64_t CurrentRssBytes();
uint64_t PeakRssBytes();
bool TryResetPeakRss();

/// Owner of every named counter and histogram. Lookup takes a mutex, so
/// call sites cache the returned pointer (the SAGED_COUNTER_* macros do
/// this via a function-local static); instruments are never destroyed
/// before process exit.
class TelemetryRegistry {
 public:
  static TelemetryRegistry& Get();

  Counter* FindOrCreateCounter(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);

  /// Current value of a named counter (0 when it does not exist yet).
  uint64_t CounterValue(const std::string& name);
  /// Snapshot of a named histogram (zero stats when it does not exist).
  HistogramStats HistogramSnapshot(const std::string& name);
  /// Latest sample of a named gauge (0 when it does not exist yet).
  uint64_t GaugeValue(const std::string& name);
  /// High watermark of a named gauge (0 when it does not exist yet).
  uint64_t GaugeMax(const std::string& name);

  /// Zeroes every counter and histogram and clears the span tree. Meant
  /// for tests and for bench binaries that dump per-phase snapshots; only
  /// safe when no spans are open on other threads.
  void Reset();

  /// Serializes counters, histograms, gauges and the merged span tree:
  ///   {"version":1, "counters":{...}, "histograms":{...}, "gauges":{...},
  ///    "spans":[...]}
  /// Span nodes carry name / count / total_ms / threads / children; gauge
  /// nodes carry value / max.
  std::string DumpJson();
  Status DumpJsonToFile(const std::string& path);

 private:
  TelemetryRegistry() = default;

  // The maps are guarded; the instruments they own are lock-free atomics,
  // so FindOrCreate* hands out stable pointers hot paths update unlocked.
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ SAGED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ SAGED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SAGED_GUARDED_BY(mu_);
};

/// Uncached slow-path helpers (tests, dynamic names). Hot paths should use
/// the macros below.
void AddCounter(const std::string& name, uint64_t delta);
void ObserveHistogram(const std::string& name, double value);
void SetGauge(const std::string& name, uint64_t value);

}  // namespace saged::telemetry

/// Adds `delta` to the named counter when telemetry is enabled. `name`
/// must be a string literal: the resolved instrument is cached per call
/// site, so the whole macro costs one atomic load when disabled and one
/// relaxed fetch_add when enabled.
#define SAGED_COUNTER_ADD(name, delta)                              \
  do {                                                              \
    if (::saged::telemetry::Enabled()) {                            \
      static ::saged::telemetry::Counter* saged_counter_cached_ =   \
          ::saged::telemetry::TelemetryRegistry::Get()              \
              .FindOrCreateCounter(name);                           \
      saged_counter_cached_->Add(delta);                            \
    }                                                               \
  } while (0)

#define SAGED_COUNTER_INC(name) SAGED_COUNTER_ADD(name, 1)

/// Records `value` into the named histogram when telemetry is enabled;
/// same literal-name caching contract as SAGED_COUNTER_ADD.
#define SAGED_HISTOGRAM_OBSERVE(name, value)                          \
  do {                                                                \
    if (::saged::telemetry::Enabled()) {                              \
      static ::saged::telemetry::Histogram* saged_histogram_cached_ = \
          ::saged::telemetry::TelemetryRegistry::Get()                \
              .FindOrCreateHistogram(name);                           \
      saged_histogram_cached_->Observe(value);                        \
    }                                                                 \
  } while (0)

/// Samples `value` into the named gauge when telemetry is enabled; same
/// literal-name caching contract as SAGED_COUNTER_ADD. The gauge keeps the
/// latest sample and the maximum seen since Reset.
#define SAGED_GAUGE_SET(name, value)                            \
  do {                                                          \
    if (::saged::telemetry::Enabled()) {                        \
      static ::saged::telemetry::Gauge* saged_gauge_cached_ =   \
          ::saged::telemetry::TelemetryRegistry::Get()          \
              .FindOrCreateGauge(name);                         \
      saged_gauge_cached_->Set(value);                          \
    }                                                           \
  } while (0)

/// Samples the process's current resident-set size into the named gauge
/// (its Max() then tracks the peak across every sample point).
#define SAGED_GAUGE_SAMPLE_RSS(name) \
  SAGED_GAUGE_SET(name, ::saged::telemetry::CurrentRssBytes())

#endif  // SAGED_COMMON_TELEMETRY_H_
