#include "common/contracts.h"

namespace saged::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* expr,
                           std::string operands)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << expr;
  if (!operands.empty()) stream_ << " (" << operands << ")";
  stream_ << " ";
}

CheckFailure::~CheckFailure() {
  std::string span_path;
  for (const auto& name : telemetry::CurrentSpanPath()) {
    if (!span_path.empty()) span_path += '/';
    span_path += name;
  }
  stream_ << " [span: " << (span_path.empty() ? "<none>" : span_path) << "]";
  // The fatal LogMessage flushes through the installed sink (or stderr)
  // under the logging mutex, then aborts the process.
  LogMessage(LogLevel::kError, file_, line_, /*fatal=*/true) << stream_.str();
}

}  // namespace saged::internal
