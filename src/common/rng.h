#ifndef SAGED_COMMON_RNG_H_
#define SAGED_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saged {

/// Deterministic pseudo-random generator (xoshiro256**). A single seed makes
/// every experiment in the repository reproducible bit-for-bit; we avoid
/// std::mt19937 so distributions are identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli trial.
  bool Bernoulli(double p);

  /// Samples an index according to non-negative `weights` (need not sum
  /// to 1). All-zero weights fall back to uniform.
  size_t Weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n). If k >= n, returns all n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-model seeding).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace saged

#endif  // SAGED_COMMON_RNG_H_
