// Declarative thread-safety annotations, checked by saged_lint rather than
// by the compiler. All macros expand to nothing: they exist so the locking
// contract of a class lives next to the data it protects instead of in a
// prose comment, and so the `lock-discipline` lint pass can verify that
// every touch of an annotated member happens under the right lock.
//
//   class Registry {
//    public:
//     void Reset() SAGED_EXCLUDES(mu_);   // takes mu_ itself; deadlock if held
//    private:
//     void PumpLocked() SAGED_REQUIRES(mu_);  // caller must already hold mu_
//     std::mutex mu_;
//     std::map<std::string, int> items_ SAGED_GUARDED_BY(mu_);
//   };
//
// The lint pass enforces:
//   * a member annotated SAGED_GUARDED_BY(mu) is only read or written inside
//     a std::lock_guard / std::unique_lock / std::scoped_lock scope naming
//     `mu`, or inside a function annotated SAGED_REQUIRES(mu);
//   * a function annotated SAGED_REQUIRES(mu) is only called with `mu` held;
//   * a function annotated SAGED_EXCLUDES(mu) is never called with `mu` held;
//   * every `std::mutex` member declared under src/ is referenced by at
//     least one SAGED_GUARDED_BY — an unannotated mutex is a lock whose
//     protected state the tooling cannot see.
//
// These deliberately mirror Clang's -Wthread-safety attribute names so a
// future toolchain upgrade can map them onto the real attributes; keeping
// them as no-ops today means the checks run on every platform the plain
// lint binary builds on.

#ifndef SAGED_COMMON_THREAD_ANNOTATIONS_H_
#define SAGED_COMMON_THREAD_ANNOTATIONS_H_

// NOLINTBEGIN(cppcoreguidelines-macro-usage)

/// Data member annotation: reads and writes require `mu` to be held.
#define SAGED_GUARDED_BY(mu)

/// Function annotation: the caller must hold `mu` before calling.
#define SAGED_REQUIRES(mu)

/// Function annotation: the caller must NOT hold `mu` (the function
/// acquires it itself; calling with it held would deadlock).
#define SAGED_EXCLUDES(mu)

// NOLINTEND(cppcoreguidelines-macro-usage)

#endif  // SAGED_COMMON_THREAD_ANNOTATIONS_H_
