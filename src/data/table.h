#ifndef SAGED_DATA_TABLE_H_
#define SAGED_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace saged {

/// Column-major tabular dataset. Columns own the cell storage; rows are a
/// logical view. All columns must have the same length.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t NumRows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t NumCols() const { return columns_.size(); }

  /// Appends a column; fails if its length disagrees with existing columns.
  Status AddColumn(Column column);

  const Column& column(size_t j) const { return columns_[j]; }
  Column& mutable_column(size_t j) { return columns_[j]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or an error.
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Cell& cell(size_t row, size_t col) const { return columns_[col][row]; }
  void set_cell(size_t row, size_t col, Cell value) {
    columns_[col][row] = std::move(value);
  }

  /// One row materialized as strings (for labeling UIs and CSV output).
  std::vector<Cell> Row(size_t row) const;

  /// Column names in order.
  std::vector<std::string> ColumnNames() const;

  /// Copy of the first `fraction` of rows (0 < fraction <= 1); used by the
  /// scalability experiment (Figure 15).
  Table HeadFraction(double fraction) const;

  /// Copy restricted to the given row indices (order preserved).
  Table SelectRows(const std::vector<size_t>& rows) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace saged

#endif  // SAGED_DATA_TABLE_H_
