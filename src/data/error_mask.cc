#include "data/error_mask.h"

#include <algorithm>

#include "common/contracts.h"

namespace saged {

size_t ErrorMask::DirtyCount() const {
  return static_cast<size_t>(std::count(bits_.begin(), bits_.end(), 1));
}

double ErrorMask::ErrorRate() const {
  if (bits_.empty()) return 0.0;
  return static_cast<double>(DirtyCount()) / static_cast<double>(bits_.size());
}

std::vector<int> ErrorMask::ColumnLabels(size_t col) const {
  std::vector<int> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = IsDirty(r, col) ? 1 : 0;
  return out;
}

bool ErrorMask::RowHasError(size_t row) const {
  for (size_t c = 0; c < cols_; ++c) {
    if (IsDirty(row, c)) return true;
  }
  return false;
}

DetectionScore ErrorMask::Score(const ErrorMask& predicted) const {
  SAGED_CHECK(predicted.rows_ == rows_ && predicted.cols_ == cols_)
      << "mask shape mismatch";
  DetectionScore s;
  for (size_t i = 0; i < bits_.size(); ++i) {
    bool truth = bits_[i] != 0;
    bool pred = predicted.bits_[i] != 0;
    if (truth && pred) {
      ++s.tp;
    } else if (!truth && pred) {
      ++s.fp;
    } else if (truth && !pred) {
      ++s.fn;
    } else {
      ++s.tn;
    }
  }
  return s;
}

void ErrorMask::Merge(const ErrorMask& other) {
  SAGED_CHECK(other.rows_ == rows_ && other.cols_ == cols_)
      << "mask shape mismatch";
  for (size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = bits_[i] | other.bits_[i];
  }
}

ErrorMask ErrorMask::HeadRows(size_t n) const {
  n = std::min(n, rows_);
  ErrorMask out(n, cols_);
  std::copy(bits_.begin(), bits_.begin() + static_cast<long>(n * cols_),
            out.bits_.begin());
  return out;
}

}  // namespace saged
