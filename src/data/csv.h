#ifndef SAGED_DATA_CSV_H_
#define SAGED_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace saged {

/// RFC-4180-style CSV options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Reads `path` into a Table (first line = column names when has_header).
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV text held in memory.
Result<Table> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes `table` to `path` with quoting where needed.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Serializes `table` as CSV text.
std::string FormatCsv(const Table& table, const CsvOptions& options = {});

}  // namespace saged

#endif  // SAGED_DATA_CSV_H_
