#ifndef SAGED_DATA_CSV_H_
#define SAGED_DATA_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace saged {

/// RFC-4180-style CSV options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// Reads `path` into a Table (first line = column names when has_header).
Result<Table> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV text held in memory.
Result<Table> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes `table` to `path` with quoting where needed.
Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options = {});

/// Serializes `table` as CSV text.
std::string FormatCsv(const Table& table, const CsvOptions& options = {});

/// One decoded block of a streaming CSV read: column-major cell storage for
/// up to `block_rows` consecutive data rows, plus the global (0-based,
/// header-exclusive) index of the first row, so downstream stages can
/// address cells with stable whole-table coordinates.
struct CsvBlock {
  size_t first_row = 0;
  std::vector<std::vector<Cell>> columns;

  size_t rows() const { return columns.empty() ? 0 : columns[0].size(); }
};

/// Incremental CSV reader for out-of-core pipelines: decodes `path` in
/// fixed-size byte chunks and yields blocks of `block_rows` rows, never
/// holding more than one chunk of raw text plus one block of cells. The
/// decoded row stream is identical to ReadCsv on the same file — quoted
/// fields, escaped quotes, and CRLF pairs that straddle chunk boundaries are
/// handled by deferring a record until its terminator is unambiguous, and
/// ragged rows fail with the same record-numbered IoError.
///
///   CsvBlockReader reader(path, 50000);
///   SAGED_RETURN_NOT_OK(reader.Open());
///   CsvBlock block;
///   while (true) {
///     SAGED_ASSIGN_OR_RETURN(bool more, reader.Next(&block));
///     if (!more) break;
///     ...  // block.columns[j][i] is cell (block.first_row + i, j)
///   }
class CsvBlockReader {
 public:
  /// `chunk_bytes` sizes the raw read buffer; tests shrink it to force
  /// records across chunk boundaries. A record longer than one chunk still
  /// parses (the buffer grows to hold it), it just re-scans on refill.
  explicit CsvBlockReader(std::string path, size_t block_rows = 50000,
                          CsvOptions options = {},
                          size_t chunk_bytes = 1 << 20);

  /// Opens the file and reads the header (or, without a header, peeks the
  /// first record to fix the column count and synthesizes col0..colN names;
  /// that record is still returned as data by the first Next).
  Status Open();

  /// Column names, valid after Open. Empty for an empty file.
  const std::vector<std::string>& column_names() const { return names_; }

  size_t NumCols() const { return names_.size(); }

  /// Data rows decoded so far (== the next block's first_row).
  size_t rows_read() const { return next_row_; }

  /// Fills `block` with the next `block_rows` (or fewer, at end of file)
  /// rows. Returns false — with an empty block — once the file is
  /// exhausted. Field-count mismatches surface as IoError.
  Result<bool> Next(CsvBlock* block);

 private:
  /// Appends one chunk from the file to `buf_`, compacting the consumed
  /// prefix first. Sets eof_ when the file is exhausted.
  Status FetchMore();

  /// Extracts the next complete record from the buffered text, refilling
  /// from the file as needed. Returns false at end of input. Mirrors
  /// ParseCsv record-for-record, including skipping a trailing blank line.
  Result<bool> NextRecord(std::vector<std::string>* fields);

  std::string path_;
  size_t block_rows_;
  CsvOptions options_;
  size_t chunk_bytes_;

  std::ifstream in_;
  std::string buf_;
  size_t pos_ = 0;
  bool eof_ = false;
  bool opened_ = false;

  std::vector<std::string> names_;
  /// The peeked first record of a header-less file, returned by Next first.
  std::vector<std::string> stashed_record_;
  bool has_stashed_ = false;
  /// Record index in ParseCsv numbering (the header counts as record 0), so
  /// ragged-row errors match the in-memory parser verbatim.
  size_t record_no_ = 0;
  size_t next_row_ = 0;
};

}  // namespace saged

#endif  // SAGED_DATA_CSV_H_
