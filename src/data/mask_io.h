#ifndef SAGED_DATA_MASK_IO_H_
#define SAGED_DATA_MASK_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/error_mask.h"
#include "data/table.h"

namespace saged {

/// ErrorMask <-> 0/1 table conversions, the on-disk interchange format used
/// by the `saged` CLI (a mask CSV has the same header as its data CSV and
/// "1" in every dirty cell).
Table MaskToTable(const ErrorMask& mask,
                  const std::vector<std::string>& column_names);

/// Parses a 0/1 table back into a mask; any other cell content is an error.
Result<ErrorMask> TableToMask(const Table& table);

/// Convenience file forms.
Status WriteMaskCsv(const ErrorMask& mask,
                    const std::vector<std::string>& column_names,
                    const std::string& path);
Result<ErrorMask> ReadMaskCsv(const std::string& path);

}  // namespace saged

#endif  // SAGED_DATA_MASK_IO_H_
