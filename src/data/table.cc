#include "data/table.h"

#include <algorithm>

#include "common/contracts.h"
#include "common/strings.h"

namespace saged {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != NumRows()) {
    return Status::InvalidArgument(
        StrFormat("column '%s' has %zu rows, table '%s' has %zu",
                  column.name().c_str(), column.size(), name_.c_str(),
                  NumRows()));
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < columns_.size(); ++j) {
    if (columns_[j].name() == name) return j;
  }
  return Status::NotFound("no column named '" + name + "'");
}

std::vector<Cell> Table::Row(size_t row) const {
  std::vector<Cell> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c[row]);
  return out;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.name());
  return out;
}

Table Table::HeadFraction(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t n = static_cast<size_t>(static_cast<double>(NumRows()) * fraction);
  n = std::max<size_t>(n, 1);
  Table out(name_);
  for (const auto& c : columns_) {
    Column copy = c;
    copy.Truncate(n);
    // Cannot fail: every column of a consistent table truncates to the
    // same length.
    SAGED_CHECK(out.AddColumn(std::move(copy)).ok());
  }
  return out;
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out(name_);
  for (const auto& c : columns_) {
    std::vector<Cell> vals;
    vals.reserve(rows.size());
    for (size_t r : rows) vals.push_back(c[r]);
    // Cannot fail: each selected column has exactly rows.size() cells.
    SAGED_CHECK(out.AddColumn(Column(c.name(), std::move(vals))).ok());
  }
  return out;
}

}  // namespace saged
