#ifndef SAGED_DATA_ERROR_MASK_H_
#define SAGED_DATA_ERROR_MASK_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/contracts.h"

namespace saged {

/// Accuracy of a detection mask against a ground-truth mask.
struct DetectionScore {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
  size_t tn = 0;

  double Precision() const {
    return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double Recall() const {
    return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Dense rows x cols dirty/clean matrix. Doubles as ground truth (produced by
/// the error injector) and as detector output.
class ErrorMask {
 public:
  ErrorMask() = default;
  ErrorMask(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), bits_(rows * cols, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  bool IsDirty(size_t row, size_t col) const {
    SAGED_DCHECK(row < rows_ && col < cols_) << "mask index out of bounds";
    return bits_[row * cols_ + col] != 0;
  }
  void Set(size_t row, size_t col, bool dirty = true) {
    SAGED_DCHECK(row < rows_ && col < cols_) << "mask index out of bounds";
    bits_[row * cols_ + col] = dirty ? 1 : 0;
  }

  /// Total number of dirty cells.
  size_t DirtyCount() const;

  /// Fraction of all cells that are dirty.
  double ErrorRate() const;

  /// Per-column dirty labels (0/1) for column `col`.
  std::vector<int> ColumnLabels(size_t col) const;

  /// True when any cell of `row` is dirty.
  bool RowHasError(size_t row) const;

  /// Cell-level confusion counts of `predicted` against this ground truth.
  DetectionScore Score(const ErrorMask& predicted) const;

  /// Cell-wise OR with another mask of the same shape.
  void Merge(const ErrorMask& other);

  /// Copy of the first `n` rows.
  ErrorMask HeadRows(size_t n) const;

  bool operator==(const ErrorMask& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && bits_ == other.bits_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace saged

#endif  // SAGED_DATA_ERROR_MASK_H_
