#include "data/content_hash.h"

namespace saged {

void HashTableContent(const Table& table, Fnv1a* h) {
  h->Update(table.NumRows());
  h->Update(table.NumCols());
  for (size_t j = 0; j < table.NumCols(); ++j) {
    h->Update(table.column(j).name());
    h->Update(std::string_view("\x1f", 1));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      h->Update(table.cell(r, j));
      h->Update(std::string_view("\x1f", 1));
    }
  }
}

void HashMaskContent(const ErrorMask& mask, Fnv1a* h) {
  h->Update(mask.rows());
  h->Update(mask.cols());
  for (size_t r = 0; r < mask.rows(); ++r) {
    for (size_t j = 0; j < mask.cols(); ++j) {
      h->Update(uint64_t{mask.IsDirty(r, j) ? 1u : 0u});
    }
  }
}

uint64_t TableContentHash(const Table& table) {
  Fnv1a h;
  HashTableContent(table, &h);
  return h.Digest();
}

uint64_t MaskContentHash(const ErrorMask& mask) {
  Fnv1a h;
  HashMaskContent(mask, &h);
  return h.Digest();
}

}  // namespace saged
