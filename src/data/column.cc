#include "data/column.h"

#include <unordered_set>

#include "common/strings.h"

namespace saged {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
    case ColumnType::kText:
      return "text";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

ColumnType InferTypeFromCounts(size_t numeric, size_t date, size_t non_missing,
                               size_t total, size_t distinct) {
  if (non_missing == 0) return ColumnType::kText;
  double numeric_frac = static_cast<double>(numeric) / non_missing;
  double date_frac = static_cast<double>(date) / non_missing;
  if (numeric_frac >= 0.6) return ColumnType::kNumeric;
  if (date_frac >= 0.6) return ColumnType::kDate;
  double distinct_ratio =
      static_cast<double>(distinct) / static_cast<double>(total);
  if (distinct_ratio <= 0.2 || distinct <= 30) {
    return ColumnType::kCategorical;
  }
  return ColumnType::kText;
}

ColumnType Column::InferType() const {
  size_t numeric = 0;
  size_t date = 0;
  size_t non_missing = 0;
  for (const auto& v : values_) {
    ValueKind kind = ClassifyValue(v);
    if (kind == ValueKind::kMissing) continue;
    ++non_missing;
    if (kind == ValueKind::kInteger || kind == ValueKind::kReal) ++numeric;
    if (kind == ValueKind::kDate) ++date;
  }
  return InferTypeFromCounts(numeric, date, non_missing, values_.size(),
                             DistinctCount());
}

std::vector<std::optional<double>> Column::AsNumbers() const {
  std::vector<std::optional<double>> out;
  out.reserve(values_.size());
  for (const auto& v : values_) out.push_back(CellAsNumber(v));
  return out;
}

size_t Column::DistinctCount() const {
  std::unordered_set<std::string_view> seen;
  seen.reserve(values_.size());
  for (const auto& v : values_) seen.insert(v);
  return seen.size();
}

double Column::MissingFraction() const {
  if (values_.empty()) return 0.0;
  size_t missing = 0;
  for (const auto& v : values_) {
    if (IsMissingToken(v)) ++missing;
  }
  return static_cast<double>(missing) / values_.size();
}

void Column::Truncate(size_t n) {
  if (n < values_.size()) values_.resize(n);
}

}  // namespace saged
