#include "data/csv.h"

#include <sstream>
#include <utility>

#include "common/strings.h"

namespace saged {

namespace {

/// Splits one CSV record honoring quotes. `pos` advances past the record
/// (including the newline). Returns false at end of input. `*saw_newline`
/// (optional) reports whether the record ended at a newline terminator, as
/// opposed to running off the end of `text` — the streaming reader uses the
/// distinction to defer records that may continue in the next file chunk.
bool NextRecordIn(const std::string& text, size_t& pos, char delim,
                  std::vector<std::string>& fields,
                  bool* saw_newline = nullptr) {
  fields.clear();
  if (saw_newline != nullptr) *saw_newline = false;
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++pos;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(field));
      if (saw_newline != nullptr) *saw_newline = true;
      return true;
    } else {
      field += c;
      ++pos;
    }
  }
  fields.push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& field, char delim) {
  return field.find(delim) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

void AppendField(std::string& out, const std::string& field, char delim) {
  if (!NeedsQuoting(field, delim)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  Table table;
  std::vector<std::vector<Cell>> columns;
  std::vector<std::string> names;
  std::vector<std::string> fields;
  size_t pos = 0;
  size_t record_no = 0;
  while (NextRecordIn(text, pos, options.delimiter, fields)) {
    // Skip a trailing blank line.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;
    if (record_no == 0) {
      size_t n = fields.size();
      columns.resize(n);
      if (options.has_header) {
        names = fields;
        ++record_no;
        continue;
      }
      names.resize(n);
      for (size_t j = 0; j < n; ++j) names[j] = StrFormat("col%zu", j);
    }
    if (fields.size() != columns.size()) {
      return Status::IoError(
          StrFormat("record %zu has %zu fields, expected %zu", record_no,
                    fields.size(), columns.size()));
    }
    for (size_t j = 0; j < fields.size(); ++j) {
      columns[j].push_back(fields[j]);
    }
    ++record_no;
  }
  for (size_t j = 0; j < columns.size(); ++j) {
    SAGED_RETURN_NOT_OK(table.AddColumn(Column(names[j], std::move(columns[j]))));
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ParseCsv(buf.str(), options);
  if (result.ok()) result->set_name(path);
  return result;
}

std::string FormatCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      if (j) out += options.delimiter;
      AppendField(out, table.column(j).name(), options.delimiter);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      if (j) out += options.delimiter;
      AppendField(out, table.cell(r, j), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << FormatCsv(table, options);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CsvBlockReader
// ---------------------------------------------------------------------------

CsvBlockReader::CsvBlockReader(std::string path, size_t block_rows,
                               CsvOptions options, size_t chunk_bytes)
    : path_(std::move(path)),
      block_rows_(block_rows == 0 ? 1 : block_rows),
      options_(options),
      chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

Status CsvBlockReader::FetchMore() {
  // Compact the consumed prefix so the buffer stays one chunk plus at most
  // one straddling record.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  size_t old_size = buf_.size();
  buf_.resize(old_size + chunk_bytes_);
  in_.read(buf_.data() + old_size, static_cast<std::streamsize>(chunk_bytes_));
  size_t got = static_cast<size_t>(in_.gcount());
  buf_.resize(old_size + got);
  if (got == 0) {
    if (in_.bad()) return Status::IoError("read from '" + path_ + "' failed");
    eof_ = true;
  }
  return Status::OK();
}

Result<bool> CsvBlockReader::NextRecord(std::vector<std::string>* fields) {
  while (true) {
    if (pos_ < buf_.size()) {
      size_t probe = pos_;
      bool saw_newline = false;
      bool got = NextRecordIn(buf_, probe, options_.delimiter, *fields,
                              &saw_newline);
      // A record is only trusted when its terminator cannot move with more
      // data: a newline with bytes after it, or anything once the file is
      // exhausted. A newline at the buffer's very edge is re-scanned after
      // the next fetch — it could be the '\r' of a split "\r\n" pair — and
      // an unterminated record could simply continue in the next chunk.
      if (got && ((saw_newline && probe < buf_.size()) || eof_)) {
        pos_ = probe;
        // ParseCsv parity: a final blank line is not a record.
        if (eof_ && pos_ >= buf_.size() && fields->size() == 1 &&
            (*fields)[0].empty()) {
          return false;
        }
        return true;
      }
    }
    if (eof_) return pos_ < buf_.size();  // nothing further to read
    SAGED_RETURN_NOT_OK(FetchMore());
  }
}

Status CsvBlockReader::Open() {
  if (opened_) return Status::InvalidArgument("CsvBlockReader reused");
  opened_ = true;
  in_.open(path_, std::ios::binary);
  if (!in_) return Status::IoError("cannot open '" + path_ + "'");

  std::vector<std::string> first;
  SAGED_ASSIGN_OR_RETURN(bool got, NextRecord(&first));
  if (!got) return Status::OK();  // empty file: zero columns, zero rows
  if (options_.has_header) {
    names_ = std::move(first);
    record_no_ = 1;
  } else {
    names_.resize(first.size());
    for (size_t j = 0; j < first.size(); ++j) names_[j] = StrFormat("col%zu", j);
    stashed_record_ = std::move(first);
    has_stashed_ = true;
  }
  return Status::OK();
}

Result<bool> CsvBlockReader::Next(CsvBlock* block) {
  if (!opened_) return Status::InvalidArgument("Open() not called");
  block->first_row = next_row_;
  block->columns.assign(names_.size(), {});
  if (names_.empty()) return false;
  for (auto& column : block->columns) column.reserve(block_rows_);

  std::vector<std::string> fields;
  while (block->rows() < block_rows_) {
    if (has_stashed_) {
      fields = std::move(stashed_record_);
      has_stashed_ = false;
    } else {
      SAGED_ASSIGN_OR_RETURN(bool got, NextRecord(&fields));
      if (!got) break;
    }
    if (fields.size() != names_.size()) {
      return Status::IoError(
          StrFormat("record %zu has %zu fields, expected %zu", record_no_,
                    fields.size(), names_.size()));
    }
    for (size_t j = 0; j < fields.size(); ++j) {
      block->columns[j].push_back(std::move(fields[j]));
    }
    ++record_no_;
    ++next_row_;
  }
  return block->rows() > 0;
}

}  // namespace saged
