#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace saged {

namespace {

/// Splits one CSV record honoring quotes. `pos` advances past the record
/// (including the newline). Returns false at end of input.
bool NextRecord(const std::string& text, size_t& pos, char delim,
                std::vector<std::string>& fields) {
  fields.clear();
  if (pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field += c;
        ++pos;
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
      ++pos;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume \r\n or \n.
      if (c == '\r' && pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
      ++pos;
      fields.push_back(std::move(field));
      return true;
    } else {
      field += c;
      ++pos;
    }
  }
  fields.push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& field, char delim) {
  return field.find(delim) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}

void AppendField(std::string& out, const std::string& field, char delim) {
  if (!NeedsQuoting(field, delim)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

}  // namespace

Result<Table> ParseCsv(const std::string& text, const CsvOptions& options) {
  Table table;
  std::vector<std::vector<Cell>> columns;
  std::vector<std::string> names;
  std::vector<std::string> fields;
  size_t pos = 0;
  size_t record_no = 0;
  while (NextRecord(text, pos, options.delimiter, fields)) {
    // Skip a trailing blank line.
    if (fields.size() == 1 && fields[0].empty() && pos >= text.size()) break;
    if (record_no == 0) {
      size_t n = fields.size();
      columns.resize(n);
      if (options.has_header) {
        names = fields;
        ++record_no;
        continue;
      }
      names.resize(n);
      for (size_t j = 0; j < n; ++j) names[j] = StrFormat("col%zu", j);
    }
    if (fields.size() != columns.size()) {
      return Status::IoError(
          StrFormat("record %zu has %zu fields, expected %zu", record_no,
                    fields.size(), columns.size()));
    }
    for (size_t j = 0; j < fields.size(); ++j) {
      columns[j].push_back(fields[j]);
    }
    ++record_no;
  }
  for (size_t j = 0; j < columns.size(); ++j) {
    SAGED_RETURN_NOT_OK(table.AddColumn(Column(names[j], std::move(columns[j]))));
  }
  return table;
}

Result<Table> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ParseCsv(buf.str(), options);
  if (result.ok()) result->set_name(path);
  return result;
}

std::string FormatCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      if (j) out += options.delimiter;
      AppendField(out, table.column(j).name(), options.delimiter);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      if (j) out += options.delimiter;
      AppendField(out, table.cell(r, j), options.delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path,
                const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << FormatCsv(table, options);
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace saged
