#ifndef SAGED_DATA_COLUMN_H_
#define SAGED_DATA_COLUMN_H_

#include <optional>
#include <string>
#include <vector>

#include "data/value.h"

namespace saged {

/// Dominant type of a column, inferred from its values.
enum class ColumnType {
  kNumeric,
  kCategorical,
  kText,
  kDate,
};

const char* ColumnTypeName(ColumnType type);

/// Type inference from pre-accumulated value-kind counts. Column::InferType
/// is this function applied to one pass over the values; streaming scans
/// call it directly with counts gathered cell-by-cell so both paths share
/// one set of thresholds.
ColumnType InferTypeFromCounts(size_t numeric, size_t date, size_t non_missing,
                               size_t total, size_t distinct);

/// One attribute of a tabular dataset: a name plus raw cell values.
/// Columns are the unit SAGED trains base models on and matches across
/// datasets, so most statistics live here.
class Column {
 public:
  Column() = default;
  Column(std::string name, std::vector<Cell> values)
      : name_(std::move(name)), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Cell& operator[](size_t i) const { return values_[i]; }
  Cell& operator[](size_t i) { return values_[i]; }
  const std::vector<Cell>& values() const { return values_; }
  std::vector<Cell>& mutable_values() { return values_; }

  void Append(Cell value) { values_.push_back(std::move(value)); }

  /// Infers the dominant type: numeric if >=60% of non-missing cells parse
  /// as numbers; date if >=60% look like dates; categorical if the distinct
  /// ratio is small; text otherwise.
  ColumnType InferType() const;

  /// Numeric view: parsed values for cells that are numbers (index-aligned;
  /// non-numeric cells yield nullopt).
  std::vector<std::optional<double>> AsNumbers() const;

  /// Number of distinct values.
  size_t DistinctCount() const;

  /// Fraction of cells that are explicit missing tokens.
  double MissingFraction() const;

  /// Keeps only the first `n` values (used for data-fraction sweeps).
  void Truncate(size_t n);

 private:
  std::string name_;
  std::vector<Cell> values_;
};

}  // namespace saged

#endif  // SAGED_DATA_COLUMN_H_
