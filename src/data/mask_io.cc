#include "data/mask_io.h"

#include "common/strings.h"
#include "data/csv.h"

namespace saged {

Table MaskToTable(const ErrorMask& mask,
                  const std::vector<std::string>& column_names) {
  Table t("mask");
  for (size_t j = 0; j < mask.cols(); ++j) {
    std::vector<Cell> values(mask.rows());
    for (size_t r = 0; r < mask.rows(); ++r) {
      values[r] = mask.IsDirty(r, j) ? "1" : "0";
    }
    std::string name =
        j < column_names.size() ? column_names[j] : StrFormat("col%zu", j);
    (void)t.AddColumn(Column(std::move(name), std::move(values)));
  }
  return t;
}

Result<ErrorMask> TableToMask(const Table& table) {
  ErrorMask mask(table.NumRows(), table.NumCols());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      const Cell& v = table.cell(r, j);
      if (v == "1") {
        mask.Set(r, j);
      } else if (v != "0") {
        return Status::InvalidArgument(
            StrFormat("mask cell (%zu,%zu) must be 0 or 1, got '%s'", r, j,
                      v.c_str()));
      }
    }
  }
  return mask;
}

Status WriteMaskCsv(const ErrorMask& mask,
                    const std::vector<std::string>& column_names,
                    const std::string& path) {
  return WriteCsv(MaskToTable(mask, column_names), path);
}

Result<ErrorMask> ReadMaskCsv(const std::string& path) {
  SAGED_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return TableToMask(table);
}

}  // namespace saged
