#ifndef SAGED_DATA_VALUE_H_
#define SAGED_DATA_VALUE_H_

#include <optional>
#include <string>
#include <string_view>

namespace saged {

/// Cells are kept in their raw textual form, exactly as they appear in a CSV
/// file: error detection must see typos, formatting glitches, and disguised
/// missing values before any typed parsing destroys them.
using Cell = std::string;

/// Coarse value classes used for column type inference.
enum class ValueKind {
  kMissing,
  kInteger,
  kReal,
  kDate,
  kText,
};

/// Classifies one cell's raw text.
ValueKind ClassifyValue(std::string_view raw);

/// Parses a cell as a number if possible (missing tokens yield nullopt).
std::optional<double> CellAsNumber(std::string_view raw);

/// True for "YYYY-MM-DD", "DD/MM/YYYY", "MM-DD-YYYY" style date spellings.
bool LooksLikeDate(std::string_view raw);

const char* ValueKindName(ValueKind kind);

}  // namespace saged

#endif  // SAGED_DATA_VALUE_H_
