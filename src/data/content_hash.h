#ifndef SAGED_DATA_CONTENT_HASH_H_
#define SAGED_DATA_CONTENT_HASH_H_

#include <cstdint>
#include <string_view>

#include "data/error_mask.h"
#include "data/table.h"

/// Stable content hashing for tables and error masks. This is the
/// datagen-golden machinery promoted into the library: the golden tests pin
/// generator output by these digests, and the run-ledger manifests record
/// them so every bench/CLI result is traceable to the exact bytes it was
/// measured on. The byte layout below is pinned — changing it invalidates
/// the golden constants in tests/datagen_golden_test.cc.
namespace saged {

/// FNV-1a, 64-bit. Stable across platforms and standard-library versions,
/// unlike std::hash.
class Fnv1a {
 public:
  void Update(std::string_view bytes) {
    for (unsigned char c : bytes) {
      hash_ ^= c;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Update(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    Update(std::string_view(buf, 8));
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Folds shape, column names, and every cell (row-major, 0x1f-separated)
/// into `h`.
void HashTableContent(const Table& table, Fnv1a* h);

/// Folds shape and every dirty bit (row-major) into `h`.
void HashMaskContent(const ErrorMask& mask, Fnv1a* h);

/// Digest of a single table (fresh stream).
uint64_t TableContentHash(const Table& table);

/// Digest of a single mask (fresh stream).
uint64_t MaskContentHash(const ErrorMask& mask);

}  // namespace saged

#endif  // SAGED_DATA_CONTENT_HASH_H_
