#include "data/value.h"

#include <cctype>

#include "common/strings.h"

namespace saged {

namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

bool LooksLikeDate(std::string_view raw) {
  std::string_view t = Trim(raw);
  // Accept three-part dates with '-' or '/' separators where each part is
  // numeric and one part has 4 digits (the year) or all parts <= 2 digits.
  for (char sep : {'-', '/'}) {
    auto parts = Split(t, sep);
    if (parts.size() != 3) continue;
    bool numeric = true;
    for (const auto& p : parts) numeric = numeric && AllDigits(p);
    if (!numeric) continue;
    bool has_year = parts[0].size() == 4 || parts[2].size() == 4;
    bool short_form = parts[0].size() <= 2 && parts[1].size() <= 2 &&
                      parts[2].size() <= 2;
    if (has_year || short_form) return true;
  }
  return false;
}

ValueKind ClassifyValue(std::string_view raw) {
  std::string_view t = Trim(raw);
  if (IsMissingToken(t)) return ValueKind::kMissing;
  if (LooksLikeDate(t)) return ValueKind::kDate;
  if (auto v = ParseDouble(t)) {
    double d = *v;
    if (d == static_cast<long long>(d) && t.find('.') == std::string_view::npos &&
        t.find('e') == std::string_view::npos &&
        t.find('E') == std::string_view::npos) {
      return ValueKind::kInteger;
    }
    return ValueKind::kReal;
  }
  return ValueKind::kText;
}

std::optional<double> CellAsNumber(std::string_view raw) {
  std::string_view t = Trim(raw);
  if (IsMissingToken(t)) return std::nullopt;
  return ParseDouble(t);
}

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kMissing:
      return "missing";
    case ValueKind::kInteger:
      return "integer";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kDate:
      return "date";
    case ValueKind::kText:
      return "text";
  }
  return "?";
}

}  // namespace saged
