#include "baselines/mink.h"

#include "baselines/strategy_library.h"

namespace saged::baselines {

Result<ErrorMask> MinKDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    ml::Matrix flags = StrategyLibrary::Featurize(t.column(j), ctx.seed);
    for (size_t r = 0; r < flags.rows(); ++r) {
      size_t votes = 0;
      for (double v : flags.Row(r)) votes += v > 0.5 ? 1 : 0;
      if (votes >= k_) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
