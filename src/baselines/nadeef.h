#ifndef SAGED_BASELINES_NADEEF_H_
#define SAGED_BASELINES_NADEEF_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// NADEEF (Dallachiesa et al.): rule-based cleaning driven entirely by
/// user-supplied signals — functional dependencies, syntactic patterns,
/// numeric ranges, and NOT-NULL constraints. Flags every cell violating a
/// rule; detects nothing beyond the rules (the configuration burden the
/// paper criticizes).
class NadeefDetector : public ErrorDetector {
 public:
  std::string Name() const override { return "nadeef"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_NADEEF_H_
