#ifndef SAGED_BASELINES_STRATEGY_LIBRARY_H_
#define SAGED_BASELINES_STRATEGY_LIBRARY_H_

#include <string>
#include <vector>

#include "data/column.h"
#include "ml/matrix.h"

namespace saged::baselines {

/// The cheap per-column detection strategies that Raha runs to featurize
/// cells and that min-K votes over: outlier rules at several
/// sensitivities, missing-token checks, value-frequency checks, and
/// character-shape checks. Each strategy maps every cell of a column to a
/// 0/1 flag.
class StrategyLibrary {
 public:
  /// Number of strategies (the width of the per-cell feature vector).
  static size_t NumStrategies();

  /// Names, aligned with the feature columns (diagnostics only).
  static const std::vector<std::string>& StrategyNames();

  /// cells x strategies binary matrix for one column.
  static ml::Matrix Featurize(const Column& column, uint64_t seed);
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_STRATEGY_LIBRARY_H_
