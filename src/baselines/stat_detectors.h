#ifndef SAGED_BASELINES_STAT_DETECTORS_H_
#define SAGED_BASELINES_STAT_DETECTORS_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// Standard-deviation outlier detector ("SD"): flags numeric cells with
/// |x - mean| > k * stddev, per numeric column. Non-numeric columns are
/// skipped — which is why the paper reports it detecting nothing on text-
/// heavy datasets like Beers and Rayyan.
class SdDetector : public ErrorDetector {
 public:
  explicit SdDetector(double k = 3.0) : k_(k) {}
  std::string Name() const override { return "sd"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;

 private:
  double k_;
};

/// Inter-quartile-range detector ("IQR"): flags numeric cells outside
/// [Q1 - k*IQR, Q3 + k*IQR].
class IqrDetector : public ErrorDetector {
 public:
  explicit IqrDetector(double k = 1.5) : k_(k) {}
  std::string Name() const override { return "iqr"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;

 private:
  double k_;
};

/// Isolation-forest detector ("IF"): per numeric column anomaly scoring.
class IfDetector : public ErrorDetector {
 public:
  std::string Name() const override { return "if"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_STAT_DETECTORS_H_
