#ifndef SAGED_BASELINES_DETECTOR_BASE_H_
#define SAGED_BASELINES_DETECTOR_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/labeling.h"
#include "data/error_mask.h"
#include "data/table.h"
#include "datagen/rules.h"

namespace saged::baselines {

/// Everything a baseline may consume. Rule-based tools read `rules`, KATARA
/// reads `domains`, ML-based tools spend `labeling_budget` oracle calls;
/// each tool ignores what it does not need (that asymmetry of required
/// inputs is exactly the paper's point).
struct DetectionContext {
  const Table* dirty = nullptr;
  const datagen::RuleSet* rules = nullptr;
  const datagen::KataraDomains* domains = nullptr;
  core::OracleFn oracle;
  size_t labeling_budget = 20;
  uint64_t seed = 42;
};

/// Detection output with the wall-clock cost (the paper's runtime metric).
struct TimedDetection {
  ErrorMask mask;
  double seconds = 0.0;
};

/// Base class for every baseline error detector.
class ErrorDetector {
 public:
  virtual ~ErrorDetector() = default;

  /// Stable tool name used in benchmark tables ("raha", "ed2", ...).
  virtual std::string Name() const = 0;

  /// Produces the predicted dirty-cell mask for ctx.dirty.
  virtual Result<ErrorMask> Detect(const DetectionContext& ctx) = 0;

  /// Timed wrapper around Detect.
  Result<TimedDetection> Run(const DetectionContext& ctx);
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_DETECTOR_BASE_H_
