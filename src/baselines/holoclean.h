#ifndef SAGED_BASELINES_HOLOCLEAN_H_
#define SAGED_BASELINES_HOLOCLEAN_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// HoloClean (Rekatsinas et al.) — its error-detection stage: denial-
/// constraint (FD) conflict cells, explicit nulls, and statistical outliers
/// feed the noisy-cell set that its repair model would later reason over.
/// Unlike NADEEF it flags *both* sides of an FD conflict (either could be
/// wrong as far as the constraint is concerned).
class HolocleanDetector : public ErrorDetector {
 public:
  std::string Name() const override { return "holoclean"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_HOLOCLEAN_H_
