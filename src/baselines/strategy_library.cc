#include "baselines/strategy_library.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "data/value.h"

namespace saged::baselines {

namespace {

/// Char-class shape of a value: letters -> 'a', digits -> 'd', everything
/// else kept verbatim; runs collapsed ("555-123" -> "d-d").
std::string ShapeOf(const std::string& value) {
  std::string shape;
  char prev = 0;
  for (char c : value) {
    char cls;
    if (std::isalpha(static_cast<unsigned char>(c))) {
      cls = 'a';
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      cls = 'd';
    } else {
      cls = c;
    }
    if (cls != prev || (cls != 'a' && cls != 'd')) shape += cls;
    prev = cls;
  }
  return shape;
}

struct ColumnStats {
  std::vector<std::optional<double>> nums;
  bool numeric = false;
  double mean = 0.0;
  double sd = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  std::unordered_map<std::string, size_t> value_freq;
  std::unordered_map<std::string, size_t> shape_freq;
  std::vector<std::string> shapes;
};

ColumnStats ComputeStats(const Column& col) {
  ColumnStats s;
  s.nums = col.AsNumbers();
  std::vector<double> values;
  for (const auto& v : s.nums) {
    if (v) values.push_back(*v);
  }
  s.numeric = values.size() * 2 >= col.size() && !values.empty();
  if (s.numeric) {
    double sum = 0.0;
    double sq = 0.0;
    for (double v : values) {
      sum += v;
      sq += v * v;
    }
    s.mean = sum / static_cast<double>(values.size());
    s.sd = std::sqrt(std::max(
        0.0, sq / static_cast<double>(values.size()) - s.mean * s.mean));
    std::sort(values.begin(), values.end());
    s.q1 = values[values.size() / 4];
    s.q3 = values[(values.size() * 3) / 4];
  }
  s.shapes.reserve(col.size());
  for (const auto& v : col.values()) {
    ++s.value_freq[v];
    s.shapes.push_back(ShapeOf(v));
    ++s.shape_freq[s.shapes.back()];
  }
  return s;
}

}  // namespace

const std::vector<std::string>& StrategyLibrary::StrategyNames() {
  static const auto& names = *new std::vector<std::string>{
      "sd2",        "sd3",         "iqr",        "missing",
      "rare_value", "very_rare",   "rare_shape", "non_numeric_in_numeric"};
  return names;
}

size_t StrategyLibrary::NumStrategies() { return StrategyNames().size(); }

ml::Matrix StrategyLibrary::Featurize(const Column& column, uint64_t seed) {
  (void)seed;
  const size_t n = column.size();
  ml::Matrix out(n, NumStrategies());
  if (n == 0) return out;
  ColumnStats s = ComputeStats(column);
  double n_d = static_cast<double>(n);
  double iqr = s.q3 - s.q1;

  for (size_t r = 0; r < n; ++r) {
    const auto& cell = column[r];
    size_t f = 0;
    // sd2 / sd3 outlier rules.
    for (double k : {2.0, 3.0}) {
      bool flag = false;
      if (s.numeric && s.nums[r] && s.sd > 1e-12) {
        flag = std::abs(*s.nums[r] - s.mean) > k * s.sd;
      }
      out.At(r, f++) = flag ? 1.0 : 0.0;
    }
    // IQR rule.
    {
      bool flag = false;
      if (s.numeric && s.nums[r] && iqr > 1e-12) {
        flag = *s.nums[r] < s.q1 - 1.5 * iqr || *s.nums[r] > s.q3 + 1.5 * iqr;
      }
      out.At(r, f++) = flag ? 1.0 : 0.0;
    }
    // Missing token.
    out.At(r, f++) = IsMissingToken(cell) ? 1.0 : 0.0;
    // Rare value (< 2%) / very rare value (unique in a repetitive column).
    double freq = static_cast<double>(s.value_freq[cell]) / n_d;
    out.At(r, f++) = freq < 0.02 ? 1.0 : 0.0;
    bool repetitive = s.value_freq.size() * 5 < n;
    out.At(r, f++) = (repetitive && s.value_freq[cell] == 1) ? 1.0 : 0.0;
    // Rare character shape (< 5% of the column).
    double shape_freq =
        static_cast<double>(s.shape_freq[s.shapes[r]]) / n_d;
    out.At(r, f++) = shape_freq < 0.05 ? 1.0 : 0.0;
    // Non-numeric cell inside a numeric column.
    out.At(r, f++) =
        (s.numeric && !s.nums[r] && !IsMissingToken(cell)) ? 1.0 : 0.0;
  }
  return out;
}

}  // namespace saged::baselines
