#ifndef SAGED_BASELINES_KATARA_H_
#define SAGED_BASELINES_KATARA_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// KATARA (Chu et al.): knowledge-base-powered detection. Columns mapped to
/// a KB domain have every cell validated against the dictionary; values
/// outside the domain (typos, swaps into other domains, missing spellings)
/// are flagged. Columns with open domains are skipped — the source of its
/// partial recall in the paper's comparison.
class KataraDetector : public ErrorDetector {
 public:
  std::string Name() const override { return "katara"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_KATARA_H_
