#ifndef SAGED_BASELINES_MINK_H_
#define SAGED_BASELINES_MINK_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// min-K ensemble: runs the strategy library over every column and flags a
/// cell when at least `k` strategies agree it is erroneous. Precision-
/// oriented aggregation of weak detectors.
class MinKDetector : public ErrorDetector {
 public:
  explicit MinKDetector(size_t k = 2) : k_(k) {}
  std::string Name() const override { return "mink"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;

 private:
  size_t k_;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_MINK_H_
