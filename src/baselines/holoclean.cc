#include "baselines/holoclean.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "data/value.h"

namespace saged::baselines {

Result<ErrorMask> HolocleanDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());

  // Denial constraints: every cell participating in an FD conflict group is
  // noisy (both lhs and rhs cells of conflicting rows).
  if (ctx.rules != nullptr) {
    for (const auto& fd : ctx.rules->fds) {
      std::unordered_map<std::string, std::vector<size_t>> groups;
      for (size_t r = 0; r < t.NumRows(); ++r) {
        groups[t.cell(r, fd.lhs)].push_back(r);
      }
      for (const auto& [lhs, rows] : groups) {
        std::unordered_map<std::string, size_t> rhs_counts;
        for (size_t r : rows) ++rhs_counts[t.cell(r, fd.rhs)];
        if (rhs_counts.size() < 2) continue;
        std::string majority;
        size_t best = 0;
        for (const auto& [v, c] : rhs_counts) {
          if (c > best) {
            best = c;
            majority = v;
          }
        }
        for (size_t r : rows) {
          if (t.cell(r, fd.rhs) != majority) {
            mask.Set(r, fd.rhs);
            mask.Set(r, fd.lhs);
          }
        }
      }
    }
  }

  // Null detector.
  for (size_t j = 0; j < t.NumCols(); ++j) {
    const Column& col = t.column(j);
    for (size_t r = 0; r < col.size(); ++r) {
      if (IsMissingToken(col[r])) mask.Set(r, j);
    }
  }

  // Statistical outlier detector over numeric columns.
  for (size_t j = 0; j < t.NumCols(); ++j) {
    auto nums = t.column(j).AsNumbers();
    double sum = 0.0;
    double sq = 0.0;
    size_t n = 0;
    for (const auto& v : nums) {
      if (v) {
        sum += *v;
        sq += *v * *v;
        ++n;
      }
    }
    if (n * 2 < t.NumRows() || n < 8) continue;
    double mean = sum / static_cast<double>(n);
    double sd = std::sqrt(std::max(0.0, sq / static_cast<double>(n) - mean * mean));
    if (sd <= 1e-12) continue;
    for (size_t r = 0; r < nums.size(); ++r) {
      if (nums[r] && std::abs(*nums[r] - mean) > 3.0 * sd) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
