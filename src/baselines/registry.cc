#include "baselines/registry.h"

#include "baselines/dboost.h"
#include "baselines/ed2.h"
#include "baselines/fahes.h"
#include "baselines/holoclean.h"
#include "baselines/katara.h"
#include "baselines/mink.h"
#include "baselines/nadeef.h"
#include "baselines/raha.h"
#include "baselines/stat_detectors.h"

namespace saged::baselines {

const std::vector<std::string>& AllBaselineNames() {
  static const auto& names = *new std::vector<std::string>{
      "raha", "ed2",   "holoclean", "nadeef", "katara", "dboost",
      "mink", "fahes", "sd",        "if",     "iqr"};
  return names;
}

Result<std::unique_ptr<ErrorDetector>> MakeBaseline(const std::string& name) {
  if (name == "raha") return std::unique_ptr<ErrorDetector>(new RahaDetector());
  if (name == "ed2") return std::unique_ptr<ErrorDetector>(new Ed2Detector());
  if (name == "holoclean") {
    return std::unique_ptr<ErrorDetector>(new HolocleanDetector());
  }
  if (name == "nadeef") {
    return std::unique_ptr<ErrorDetector>(new NadeefDetector());
  }
  if (name == "katara") {
    return std::unique_ptr<ErrorDetector>(new KataraDetector());
  }
  if (name == "dboost") {
    return std::unique_ptr<ErrorDetector>(new DboostDetector());
  }
  if (name == "mink") return std::unique_ptr<ErrorDetector>(new MinKDetector());
  if (name == "fahes") {
    return std::unique_ptr<ErrorDetector>(new FahesDetector());
  }
  if (name == "sd") return std::unique_ptr<ErrorDetector>(new SdDetector());
  if (name == "if") return std::unique_ptr<ErrorDetector>(new IfDetector());
  if (name == "iqr") return std::unique_ptr<ErrorDetector>(new IqrDetector());
  return Status::NotFound("unknown baseline '" + name + "'");
}

}  // namespace saged::baselines
