#include "baselines/stat_detectors.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/value.h"
#include "ml/isolation_forest.h"
#include "ml/matrix.h"

namespace saged::baselines {

namespace {

/// Parsed view of one column: aligned numeric values and whether the column
/// is predominantly numeric (>= 50% parseable cells).
struct NumericView {
  bool is_numeric = false;
  std::vector<std::optional<double>> values;
};

NumericView ParseColumn(const Column& column) {
  NumericView view;
  view.values = column.AsNumbers();
  size_t numeric = 0;
  for (const auto& v : view.values) {
    if (v) ++numeric;
  }
  view.is_numeric = column.size() > 0 && numeric * 2 >= column.size();
  return view;
}

}  // namespace

Result<ErrorMask> SdDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    NumericView view = ParseColumn(t.column(j));
    if (!view.is_numeric) continue;
    double sum = 0.0;
    double sq = 0.0;
    size_t n = 0;
    for (const auto& v : view.values) {
      if (v) {
        sum += *v;
        sq += *v * *v;
        ++n;
      }
    }
    if (n < 2) continue;
    double mean = sum / static_cast<double>(n);
    double sd = std::sqrt(std::max(0.0, sq / static_cast<double>(n) - mean * mean));
    if (sd <= 1e-12) continue;
    for (size_t r = 0; r < view.values.size(); ++r) {
      if (view.values[r] && std::abs(*view.values[r] - mean) > k_ * sd) {
        mask.Set(r, j);
      }
    }
  }
  return mask;
}

Result<ErrorMask> IqrDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    NumericView view = ParseColumn(t.column(j));
    if (!view.is_numeric) continue;
    std::vector<double> nums;
    nums.reserve(view.values.size());
    for (const auto& v : view.values) {
      if (v) nums.push_back(*v);
    }
    if (nums.size() < 4) continue;
    std::sort(nums.begin(), nums.end());
    double q1 = nums[nums.size() / 4];
    double q3 = nums[(nums.size() * 3) / 4];
    double iqr = q3 - q1;
    if (iqr <= 1e-12) continue;
    double lo = q1 - k_ * iqr;
    double hi = q3 + k_ * iqr;
    for (size_t r = 0; r < view.values.size(); ++r) {
      if (view.values[r] && (*view.values[r] < lo || *view.values[r] > hi)) {
        mask.Set(r, j);
      }
    }
  }
  return mask;
}

Result<ErrorMask> IfDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    NumericView view = ParseColumn(t.column(j));
    if (!view.is_numeric) continue;
    // 1-D isolation forest over the parseable cells.
    std::vector<size_t> rows;
    ml::Matrix x;
    for (size_t r = 0; r < view.values.size(); ++r) {
      if (view.values[r]) {
        rows.push_back(r);
        double v = *view.values[r];
        x.AppendRow(std::span<const double>(&v, 1));
      }
    }
    if (x.rows() < 8) continue;
    ml::IsolationForestOptions opts;
    opts.contamination = 0.05;
    ml::IsolationForest forest(opts, ctx.seed + j);
    if (!forest.Fit(x).ok()) continue;
    auto preds = forest.Predict(x);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (preds[i]) mask.Set(rows[i], j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
