#ifndef SAGED_BASELINES_ED2_H_
#define SAGED_BASELINES_ED2_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// ED2 (Neutatz et al., CIKM 2019), reimplemented: per-column cell features
/// (metadata + character TF-IDF), then an active-learning loop — each round
/// trains one gradient-boosting classifier per column on the labeled cells,
/// measures per-column prediction certainty over the *whole* table, and
/// spends the next label on the least-certain column's least-certain tuple.
/// The full-table certainty scans every round are why its detection time
/// grows linearly with the labeling budget (paper Figures 9 and 12).
class Ed2Detector : public ErrorDetector {
 public:
  std::string Name() const override { return "ed2"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_ED2_H_
