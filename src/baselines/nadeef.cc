#include "baselines/nadeef.h"

#include "common/strings.h"
#include "data/value.h"

namespace saged::baselines {

Result<ErrorMask> NadeefDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  if (ctx.rules == nullptr) return mask;  // no signals, no detections
  const datagen::RuleSet& rules = *ctx.rules;

  // Functional dependencies: flag the dependent cell of minority rows.
  for (const auto& fd : rules.fds) {
    for (size_t r : datagen::FdViolations(t, fd)) {
      mask.Set(r, fd.rhs);
    }
  }

  // Syntactic patterns.
  for (const auto& rule : rules.patterns) {
    const Column& col = t.column(rule.col);
    for (size_t r = 0; r < col.size(); ++r) {
      if (!datagen::MatchesPattern(rule.kind, col[r])) mask.Set(r, rule.col);
    }
  }

  // Numeric ranges (non-parseable cells violate numeric-domain rules too).
  for (const auto& rule : rules.ranges) {
    const Column& col = t.column(rule.col);
    for (size_t r = 0; r < col.size(); ++r) {
      auto v = CellAsNumber(col[r]);
      if (!v || *v < rule.lo || *v > rule.hi) mask.Set(r, rule.col);
    }
  }

  // NOT NULL constraints.
  for (size_t j : rules.not_null_cols) {
    const Column& col = t.column(j);
    for (size_t r = 0; r < col.size(); ++r) {
      if (IsMissingToken(col[r])) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
