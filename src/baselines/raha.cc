#include "baselines/raha.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "baselines/strategy_library.h"
#include "common/rng.h"
#include "ml/agglomerative.h"
#include "ml/gradient_boosting.h"

namespace saged::baselines {

Result<ErrorMask> RahaDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  const size_t rows = t.NumRows();
  const size_t cols = t.NumCols();
  if (rows == 0 || cols == 0) return Status::InvalidArgument("empty table");
  Rng rng(ctx.seed);

  // 1. Strategy features per column.
  std::vector<ml::Matrix> features(cols);
  for (size_t j = 0; j < cols; ++j) {
    features[j] = StrategyLibrary::Featurize(t.column(j), ctx.seed + j);
  }

  // 2. Dendrograms over a row subsample.
  std::vector<size_t> pool(rows);
  std::iota(pool.begin(), pool.end(), 0);
  if (rows > options_.cluster_cap) {
    pool = rng.SampleWithoutReplacement(rows, options_.cluster_cap);
    std::sort(pool.begin(), pool.end());
  }
  const size_t p = pool.size();
  std::vector<ml::Agglomerative> dendrograms(cols);
  for (size_t j = 0; j < cols; ++j) {
    ml::Matrix sub = features[j].SelectRows(pool);
    SAGED_RETURN_NOT_OK(dendrograms[j].Fit(sub));
  }

  // 3. Budgeted tuple selection by unlabeled-cluster coverage.
  const size_t budget = std::min(ctx.labeling_budget, p);
  const size_t k_final = std::min(budget + 1, p);
  std::vector<size_t> selected_pool;
  std::unordered_set<size_t> taken;
  for (size_t iter = 0; iter < budget; ++iter) {
    size_t k = std::min<size_t>(2 + iter, p);
    std::vector<double> score(p, 0.0);
    for (size_t j = 0; j < cols; ++j) {
      auto labels = dendrograms[j].Cut(k);
      std::vector<char> labeled(k, 0);
      for (size_t idx : selected_pool) labeled[labels[idx]] = 1;
      for (size_t i = 0; i < p; ++i) {
        if (!labeled[labels[i]]) score[i] += 1.0;
      }
    }
    for (size_t idx : selected_pool) score[idx] = -1.0;
    size_t pick = 0;
    double best = -2.0;
    for (size_t i = 0; i < p; ++i) {
      double jitter = score[i] + 1e-6 * rng.Uniform();
      if (!taken.count(i) && jitter > best) {
        best = jitter;
        pick = i;
      }
    }
    if (taken.count(pick)) break;
    taken.insert(pick);
    selected_pool.push_back(pick);
  }

  // Oracle labels for the selected tuples (all their cells).
  std::vector<std::vector<int>> tuple_labels(cols);
  for (size_t j = 0; j < cols; ++j) {
    for (size_t idx : selected_pool) {
      tuple_labels[j].push_back(ctx.oracle(pool[idx], j));
    }
  }

  // 4.+5. Per column: propagate labels within final clusters, train a
  // classifier on the propagated cells, predict everything.
  ErrorMask mask(rows, cols);
  for (size_t j = 0; j < cols; ++j) {
    auto labels = dendrograms[j].Cut(k_final);
    // Majority label per cluster among the user-labeled cells it contains.
    std::vector<int> pos(k_final, 0);
    std::vector<int> neg(k_final, 0);
    for (size_t s = 0; s < selected_pool.size(); ++s) {
      size_t c = labels[selected_pool[s]];
      (tuple_labels[j][s] ? pos : neg)[c] += 1;
    }
    std::vector<size_t> train_rows;
    std::vector<int> train_y;
    for (size_t i = 0; i < p; ++i) {
      size_t c = labels[i];
      if (pos[c] + neg[c] == 0) continue;  // unlabeled cluster
      train_rows.push_back(pool[i]);
      train_y.push_back(pos[c] >= neg[c] && pos[c] > 0 ? 1 : 0);
    }

    bool has0 = std::find(train_y.begin(), train_y.end(), 0) != train_y.end();
    bool has1 = std::find(train_y.begin(), train_y.end(), 1) != train_y.end();
    if (!has0 || !has1) {
      // Degenerate propagation (single-class): fall back to strategy votes —
      // permissive when everything labeled was dirty, conservative when
      // everything labeled was clean.
      double vote_threshold = has1 ? 1.0 : 3.0;
      for (size_t r = 0; r < rows; ++r) {
        double votes = 0.0;
        for (double v : features[j].Row(r)) votes += v;
        if (votes >= vote_threshold) mask.Set(r, j);
      }
      continue;
    }

    ml::BoostingOptions opts;
    opts.n_rounds = 20;
    opts.learning_rate = 0.3;
    opts.tree.max_depth = 3;
    ml::GradientBoostingClassifier model(opts, rng.Next());
    ml::Matrix train = features[j].SelectRows(train_rows);
    SAGED_RETURN_NOT_OK(model.Fit(train, train_y));
    auto preds = model.Predict(features[j]);
    for (size_t r = 0; r < rows; ++r) {
      if (preds[r]) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
