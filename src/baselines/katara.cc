#include "baselines/katara.h"

namespace saged::baselines {

Result<ErrorMask> KataraDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  if (ctx.domains == nullptr) return mask;
  const auto& domains = *ctx.domains;
  for (size_t j = 0; j < t.NumCols() && j < domains.size(); ++j) {
    if (domains[j].empty()) continue;  // open domain: KB has no coverage
    const Column& col = t.column(j);
    for (size_t r = 0; r < col.size(); ++r) {
      if (!domains[j].count(col[r])) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
