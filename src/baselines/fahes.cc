#include "baselines/fahes.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/strings.h"
#include "data/value.h"

namespace saged::baselines {

namespace {

bool IsSentinelNumber(double v) {
  static const double kSentinels[] = {0,    -1,   99,    -99,  999,
                                      -999, 9999, -9999, 99999};
  for (double s : kSentinels) {
    if (v == s) return true;
  }
  return false;
}

}  // namespace

Result<ErrorMask> FahesDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    const Column& col = t.column(j);
    auto nums = col.AsNumbers();
    size_t numeric_n = 0;
    double sum = 0.0;
    double sq = 0.0;
    for (const auto& v : nums) {
      if (v) {
        ++numeric_n;
        sum += *v;
        sq += *v * *v;
      }
    }
    bool numeric_col = numeric_n * 2 >= col.size();
    double mean = numeric_n ? sum / static_cast<double>(numeric_n) : 0.0;
    double sd = numeric_n ? std::sqrt(std::max(
                                0.0, sq / static_cast<double>(numeric_n) -
                                         mean * mean))
                          : 0.0;

    // Value frequency table for disguised-value detection.
    std::unordered_map<std::string, size_t> freq;
    for (const auto& v : col.values()) ++freq[v];

    for (size_t r = 0; r < col.size(); ++r) {
      const auto& cell = col[r];
      // (a) explicit missing spellings.
      if (IsMissingToken(cell)) {
        mask.Set(r, j);
        continue;
      }
      // (b) numeric sentinels that are distribution outliers.
      if (numeric_col && nums[r]) {
        double v = *nums[r];
        bool outlying = sd > 1e-12 && std::abs(v - mean) > 3.0 * sd;
        if (IsSentinelNumber(v) && (outlying || freq[cell] * 20 > col.size())) {
          // Repeated sentinel or extreme sentinel -> disguised missing.
          if (outlying) mask.Set(r, j);
        } else if (outlying && IsSentinelNumber(v)) {
          mask.Set(r, j);
        }
      }
    }
  }
  return mask;
}

}  // namespace saged::baselines
