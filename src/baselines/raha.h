#ifndef SAGED_BASELINES_RAHA_H_
#define SAGED_BASELINES_RAHA_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// Raha (Mahdavi et al., SIGMOD 2019), reimplemented at the level the paper
/// evaluates it: (1) a library of cheap detection strategies featurizes
/// every cell; (2) cells of each column are clustered hierarchically;
/// (3) the labeling budget is spent on tuples covering unlabeled clusters;
/// (4) labels propagate to all cells of the labeled clusters; (5) one
/// classifier per column is trained on the propagated labels.
struct RahaOptions {
  /// Row cap for the quadratic dendrograms (out-of-sample cells join the
  /// cluster of their nearest in-sample neighbor).
  size_t cluster_cap = 300;
};

class RahaDetector : public ErrorDetector {
 public:
  using Options = RahaOptions;

  explicit RahaDetector(Options options = {}) : options_(options) {}
  std::string Name() const override { return "raha"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;

 private:
  Options options_;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_RAHA_H_
