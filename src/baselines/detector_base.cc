#include "baselines/detector_base.h"

#include "common/stopwatch.h"

namespace saged::baselines {

Result<TimedDetection> ErrorDetector::Run(const DetectionContext& ctx) {
  StopWatch watch;
  SAGED_ASSIGN_OR_RETURN(ErrorMask mask, Detect(ctx));
  return TimedDetection{std::move(mask), watch.Seconds()};
}

}  // namespace saged::baselines
