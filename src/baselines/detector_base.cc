#include "baselines/detector_base.h"

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::baselines {

Result<TimedDetection> ErrorDetector::Run(const DetectionContext& ctx) {
  // Dynamic span name: one top-level tree node per tool ("baseline/raha").
  SAGED_TRACE_SPAN("baseline/" + Name());
  SAGED_COUNTER_INC("baseline.runs");
  StopWatch watch;
  SAGED_ASSIGN_OR_RETURN(ErrorMask mask, Detect(ctx));
  double seconds = watch.Seconds();
  SAGED_HISTOGRAM_OBSERVE("baseline.detect_ms", watch.Millis());
  return TimedDetection{std::move(mask), seconds};
}

}  // namespace saged::baselines
