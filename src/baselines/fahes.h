#ifndef SAGED_BASELINES_FAHES_H_
#define SAGED_BASELINES_FAHES_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// FAHES (Qahtan et al.): detector of explicit and *disguised* missing
/// values. Flags (a) conventional missing spellings, (b) numeric sentinel
/// values (0, -1, 9s-runs) that are simultaneously frequent and far from
/// the column's distribution, and (c) repeated out-of-pattern tokens in
/// string columns.
class FahesDetector : public ErrorDetector {
 public:
  std::string Name() const override { return "fahes"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_FAHES_H_
