#include "baselines/dboost.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "data/value.h"
#include "ml/gaussian_mixture.h"

namespace saged::baselines {

Result<ErrorMask> DboostDetector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  ErrorMask mask(t.NumRows(), t.NumCols());
  for (size_t j = 0; j < t.NumCols(); ++j) {
    const Column& col = t.column(j);
    auto nums = col.AsNumbers();
    std::vector<double> values;
    std::vector<size_t> rows;
    for (size_t r = 0; r < nums.size(); ++r) {
      if (nums[r]) {
        values.push_back(*nums[r]);
        rows.push_back(r);
      }
    }
    bool numeric_col = values.size() * 2 >= col.size();

    if (numeric_col && values.size() >= 8) {
      // Gaussian strategy.
      double sum = 0.0;
      double sq = 0.0;
      for (double v : values) {
        sum += v;
        sq += v * v;
      }
      double mean = sum / static_cast<double>(values.size());
      double sd = std::sqrt(std::max(
          0.0, sq / static_cast<double>(values.size()) - mean * mean));
      if (sd > 1e-12) {
        for (size_t i = 0; i < values.size(); ++i) {
          if (std::abs(values[i] - mean) > options_.gaussian_k * sd) {
            mask.Set(rows[i], j);
          }
        }
      }

      // Histogram strategy: rare bins are anomalies.
      auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
      double lo = *lo_it;
      double hi = *hi_it;
      if (hi > lo) {
        std::vector<size_t> bins(options_.histogram_bins, 0);
        auto bin_of = [&](double v) {
          size_t b = static_cast<size_t>((v - lo) / (hi - lo) *
                                         static_cast<double>(bins.size()));
          return std::min(b, bins.size() - 1);
        };
        for (double v : values) ++bins[bin_of(v)];
        double rare = std::max(
            1.0, options_.rare_fraction * static_cast<double>(values.size()));
        for (size_t i = 0; i < values.size(); ++i) {
          if (static_cast<double>(bins[bin_of(values[i])]) <= rare) {
            mask.Set(rows[i], j);
          }
        }
      }

      // Gaussian-mixture strategy: lowest-likelihood percentile. Skipped
      // when the likelihoods are (near-)constant — a degenerate column has
      // no low-likelihood tail, and flagging ties would mark everything.
      ml::GaussianMixture1D gmm(options_.gmm_components, 60, ctx.seed + j);
      if (gmm.Fit(values).ok()) {
        auto ll = gmm.ScoreSamples(values);
        std::vector<double> sorted = ll;
        std::sort(sorted.begin(), sorted.end());
        size_t cut = static_cast<size_t>(options_.gmm_percentile *
                                         static_cast<double>(sorted.size()));
        bool degenerate = sorted.back() - sorted.front() < 1e-9;
        if (cut > 0 && !degenerate) {
          double threshold = sorted[cut - 1];
          if (threshold < sorted.back() - 1e-9) {
            for (size_t i = 0; i < values.size(); ++i) {
              if (ll[i] <= threshold) mask.Set(rows[i], j);
            }
          }
        }
      }
    } else {
      // Categorical histogram: rare values are anomalies.
      std::unordered_map<std::string, size_t> freq;
      for (const auto& v : col.values()) ++freq[v];
      double rare = std::max(
          1.0, options_.rare_fraction * static_cast<double>(col.size()));
      for (size_t r = 0; r < col.size(); ++r) {
        if (static_cast<double>(freq[col[r]]) <= rare) mask.Set(r, j);
      }
    }
  }
  return mask;
}

}  // namespace saged::baselines
