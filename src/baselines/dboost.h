#ifndef SAGED_BASELINES_DBOOST_H_
#define SAGED_BASELINES_DBOOST_H_

#include <string>

#include "baselines/detector_base.h"

namespace saged::baselines {

/// dBoost knobs.
struct DboostOptions {
  double gaussian_k = 3.0;
  size_t histogram_bins = 20;
  /// Bins / categories rarer than this fraction are outliers.
  double rare_fraction = 0.005;
  size_t gmm_components = 2;
  /// Mixture log-likelihood percentile below which cells are flagged.
  double gmm_percentile = 0.02;
};

/// dBoost (Pit-Claudel et al.): quantitative error detection via statistical
/// models per column — histograms (rare bins / rare categories), single
/// Gaussians (z-score), and Gaussian mixtures (low mixture likelihood). A
/// cell is flagged when any strategy fires.
class DboostDetector : public ErrorDetector {
 public:
  using Options = DboostOptions;

  explicit DboostDetector(Options options = {}) : options_(options) {}
  std::string Name() const override { return "dboost"; }
  Result<ErrorMask> Detect(const DetectionContext& ctx) override;

 private:
  Options options_;
};

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_DBOOST_H_
