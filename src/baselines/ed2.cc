#include "baselines/ed2.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "features/metadata_profiler.h"
#include "ml/gradient_boosting.h"
#include "text/tfidf.h"

namespace saged::baselines {

namespace {

/// ED2's per-column featurization: metadata stats + the column's own
/// character-level TF-IDF (no cross-column padding — every column trains
/// its own classifier).
Result<ml::Matrix> FeaturizeColumn(const Column& column) {
  features::MetadataProfiler profiler;
  SAGED_RETURN_NOT_OK(profiler.Fit(column));
  text::CharTfidf tfidf;
  SAGED_RETURN_NOT_OK(tfidf.Fit(column.values()));
  const size_t meta_w = features::MetadataProfiler::kWidth;
  const size_t width = meta_w + tfidf.vocabulary().size();
  ml::Matrix out(column.size(), width);
  for (size_t r = 0; r < column.size(); ++r) {
    auto row = out.Row(r);
    auto meta = profiler.CellFeatures(column[r]);
    std::copy(meta.begin(), meta.end(), row.begin());
    auto weights = tfidf.TransformCell(column[r]);
    std::copy(weights.begin(), weights.end(),
              row.begin() + static_cast<long>(meta_w));
  }
  return out;
}

ml::GradientBoostingClassifier MakeModel(uint64_t seed) {
  ml::BoostingOptions opts;
  opts.n_rounds = 20;
  opts.learning_rate = 0.3;
  opts.tree.max_depth = 3;
  return ml::GradientBoostingClassifier(opts, seed);
}

}  // namespace

Result<ErrorMask> Ed2Detector::Detect(const DetectionContext& ctx) {
  const Table& t = *ctx.dirty;
  const size_t rows = t.NumRows();
  const size_t cols = t.NumCols();
  if (rows == 0 || cols == 0) return Status::InvalidArgument("empty table");
  Rng rng(ctx.seed);

  std::vector<ml::Matrix> features(cols);
  for (size_t j = 0; j < cols; ++j) {
    SAGED_ASSIGN_OR_RETURN(features[j], FeaturizeColumn(t.column(j)));
  }

  const size_t budget = std::min(ctx.labeling_budget, rows);
  // Bootstrap: two random labeled tuples.
  std::vector<size_t> selected =
      rng.SampleWithoutReplacement(rows, std::min<size_t>(2, budget));
  std::unordered_set<size_t> taken(selected.begin(), selected.end());
  std::vector<std::vector<int>> y(cols);
  auto record = [&](size_t row) {
    for (size_t j = 0; j < cols; ++j) y[j].push_back(ctx.oracle(row, j));
  };
  for (size_t r : selected) record(r);

  // Active-learning rounds: full-table certainty scans each round (the
  // expensive part that makes ED2's cost scale with the budget).
  std::vector<std::vector<double>> proba(cols);
  auto train_and_score = [&]() -> Status {
    for (size_t j = 0; j < cols; ++j) {
      bool has0 = std::find(y[j].begin(), y[j].end(), 0) != y[j].end();
      bool has1 = std::find(y[j].begin(), y[j].end(), 1) != y[j].end();
      if (!has0 || !has1) {
        proba[j].assign(rows, 0.5);  // untrainable: maximally uncertain
        continue;
      }
      auto model = MakeModel(rng.Next());
      ml::Matrix train = features[j].SelectRows(selected);
      SAGED_RETURN_NOT_OK(model.Fit(train, y[j]));
      proba[j] = model.PredictProba(features[j]);
    }
    return Status::OK();
  };

  while (selected.size() < budget) {
    SAGED_RETURN_NOT_OK(train_and_score());
    // Column with the lowest mean certainty.
    size_t worst_col = 0;
    double worst = 2.0;
    for (size_t j = 0; j < cols; ++j) {
      double certainty = 0.0;
      for (double v : proba[j]) certainty += std::abs(v - 0.5) * 2.0;
      certainty /= static_cast<double>(rows);
      if (certainty < worst) {
        worst = certainty;
        worst_col = j;
      }
    }
    // Least-certain unlabeled tuple in that column.
    double best_u = -1.0;
    size_t pick = 0;
    bool found = false;
    for (size_t r = 0; r < rows; ++r) {
      if (taken.count(r)) continue;
      double u = 1.0 - std::abs(proba[worst_col][r] - 0.5) * 2.0 +
                 1e-7 * rng.Uniform();
      if (u > best_u) {
        best_u = u;
        pick = r;
        found = true;
      }
    }
    if (!found) break;
    taken.insert(pick);
    selected.push_back(pick);
    record(pick);
  }

  // Final models + predictions.
  ErrorMask mask(rows, cols);
  for (size_t j = 0; j < cols; ++j) {
    bool has0 = std::find(y[j].begin(), y[j].end(), 0) != y[j].end();
    bool has1 = std::find(y[j].begin(), y[j].end(), 1) != y[j].end();
    if (!has0 || !has1) {
      // Single-class labels: predict that class everywhere (all-clean stays
      // empty; all-dirty flags the full column).
      if (has1) {
        for (size_t r = 0; r < rows; ++r) mask.Set(r, j);
      }
      continue;
    }
    auto model = MakeModel(rng.Next());
    ml::Matrix train = features[j].SelectRows(selected);
    SAGED_RETURN_NOT_OK(model.Fit(train, y[j]));
    auto preds = model.Predict(features[j]);
    for (size_t r = 0; r < rows; ++r) {
      if (preds[r]) mask.Set(r, j);
    }
  }
  return mask;
}

}  // namespace saged::baselines
