#ifndef SAGED_BASELINES_REGISTRY_H_
#define SAGED_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/detector_base.h"
#include "common/status.h"

namespace saged::baselines {

/// Names of all baseline tools, in the paper's grouping order: ML-based
/// (raha, ed2), rule-based (holoclean, nadeef), KB-powered (katara),
/// ensembles (dboost, mink), outlier detectors (fahes, sd, if, iqr).
const std::vector<std::string>& AllBaselineNames();

/// Instantiates a baseline by name.
Result<std::unique_ptr<ErrorDetector>> MakeBaseline(const std::string& name);

}  // namespace saged::baselines

#endif  // SAGED_BASELINES_REGISTRY_H_
