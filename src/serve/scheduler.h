// Admission control and fair scheduling for the saged_serve daemon.
//
// Requests land in per-connection FIFO queues; dispatch walks the
// connections round-robin, so one chatty client pipelining hundreds of
// requests cannot starve the others, while each client still sees its own
// requests answered in the order it sent them. Admission is bounded: past
// `max_queue` waiting requests Admit() returns OutOfRange and the server
// answers with the typed kQueueFull error instead of buffering without
// limit. `max_inflight` caps how many requests run on the executor at
// once — detection is internally parallel (ParallelFor over columns), so
// the default of 1 keeps requests from fighting over the same cores while
// the queue provides the throughput.

#ifndef SAGED_SERVE_SCHEDULER_H_
#define SAGED_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "common/executor.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace saged::serve {

class RequestScheduler {
 public:
  struct Options {
    /// Max requests waiting (not yet running). 0 admits nothing.
    size_t max_queue = 64;
    /// Max requests running on the executor concurrently.
    size_t max_inflight = 1;
  };

  RequestScheduler(Executor* executor, Options options);

  /// Admits `work` for connection `conn_id`, or rejects with OutOfRange
  /// when `max_queue` requests are already waiting. Admitted work always
  /// runs, even if Drain() is called before its turn.
  [[nodiscard]] Status Admit(uint64_t conn_id, std::function<void()> work)
      SAGED_EXCLUDES(mu_);

  /// Blocks until every admitted request has finished running. New
  /// Admit() calls during and after Drain() are rejected (OutOfRange) —
  /// the server maps that onto kShuttingDown.
  void Drain() SAGED_EXCLUDES(mu_);

  /// Requests admitted but not yet running.
  size_t QueueDepth() const SAGED_EXCLUDES(mu_);
  /// Requests currently running.
  size_t Inflight() const SAGED_EXCLUDES(mu_);

 private:
  /// Dispatches waiting work round-robin while inflight slots are free.
  void PumpLocked() SAGED_REQUIRES(mu_);

  struct Waiting {
    std::function<void()> work;
    /// Started at admission; read at dispatch for serve.queue_ms.
    StopWatch queued_at;
  };

  Executor* executor_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  /// Per-connection FIFO queues, keyed by connection id. The map iteration
  /// order (ascending id) seeds the round-robin; `next_conn_` remembers
  /// where the last dispatch stopped.
  std::map<uint64_t, std::deque<Waiting>> queues_ SAGED_GUARDED_BY(mu_);
  uint64_t next_conn_ SAGED_GUARDED_BY(mu_) = 0;
  size_t queued_ SAGED_GUARDED_BY(mu_) = 0;
  size_t inflight_ SAGED_GUARDED_BY(mu_) = 0;
  bool draining_ SAGED_GUARDED_BY(mu_) = false;
};

}  // namespace saged::serve

#endif  // SAGED_SERVE_SCHEDULER_H_
