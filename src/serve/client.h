// Client side of the saged_serve protocol: a blocking connection helper
// used by `saged_serve request/ping/stop`, the serving bench, and the
// tests. One connection per client; requests may be pipelined (send
// several, then read the replies and match them by request_id).

#ifndef SAGED_SERVE_CLIENT_H_
#define SAGED_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace saged::serve {

/// A detection answer: either the response or the server's typed error.
struct DetectReply {
  uint64_t request_id = 0;
  ServeError error = ServeError::kNone;
  std::string error_message;
  /// Valid when error == kNone.
  DetectResponseMsg response;

  bool ok() const { return error == ServeError::kNone; }
};

class SagedClient {
 public:
  SagedClient() = default;
  ~SagedClient();

  SagedClient(const SagedClient&) = delete;
  SagedClient& operator=(const SagedClient&) = delete;

  [[nodiscard]] Status Connect(const std::string& socket_path);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trips a liveness probe.
  [[nodiscard]] Status Ping();

  /// One-shot convenience: send one request, wait for its reply.
  Result<DetectReply> Detect(const DetectRequestMsg& request);

  /// Pipelining primitives: queue a request without waiting, then collect
  /// replies in server-completion order and match by request_id.
  [[nodiscard]] Status SendDetectRequest(const DetectRequestMsg& request);
  Result<DetectReply> ReadReply();

  /// Asks the server to shut down and waits for the acknowledgement.
  [[nodiscard]] Status SendShutdown();

 private:
  /// Blocks until one complete frame arrives.
  Result<Frame> ReadFrame();
  [[nodiscard]] Status SendAll(const std::string& bytes);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace saged::serve

#endif  // SAGED_SERVE_CLIENT_H_
