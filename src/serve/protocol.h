// Wire protocol of the saged_serve daemon: length-prefixed binary frames
// over a local stream socket.
//
// Frame layout (little-endian, like every saged binary format):
//
//   u32  magic          'S' 'A' 'G' 'E' (0x45474153 LE on the wire)
//   u8   message type   MessageType
//   u32  payload bytes  bounded by the decoder's max_frame_bytes
//   ...  payload        message-specific, BinaryWriter-encoded
//
// The decoder is incremental: sockets deliver arbitrary splits, so Feed()
// accepts any byte run (down to one byte at a time) and Next() pops
// complete frames. Corruption — wrong magic, unknown type, oversized
// length — is a Status, never a crash: the server answers with a typed
// kErrorResponse and drops the connection.

#ifndef SAGED_SERVE_PROTOCOL_H_
#define SAGED_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/request.h"
#include "data/error_mask.h"

namespace saged::serve {

/// 'S' 'A' 'G' 'E' as the first four wire bytes.
inline constexpr uint32_t kFrameMagic = 0x45474153u;

/// Frame header bytes: magic + type + payload length.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;

/// Default ceiling on one frame's payload (defense against a corrupted or
/// hostile length prefix allocating the moon).
inline constexpr size_t kMaxFrameBytes = 64u << 20;

enum class MessageType : uint8_t {
  kPing = 1,            // liveness probe, empty payload
  kPong = 2,            // reply to kPing, empty payload
  kDetectRequest = 3,   // DetectRequestMsg
  kDetectResponse = 4,  // DetectResponseMsg
  kErrorResponse = 5,   // ErrorResponseMsg
  kShutdown = 6,        // ask the server to stop, empty payload
  kShutdownAck = 7,     // shutdown acknowledged, empty payload
};

/// True when `type` is a value the protocol defines.
bool IsKnownMessageType(uint8_t type);

/// Typed error classes a server can answer with. Stable wire values —
/// clients switch on these, not on message strings.
enum class ServeError : uint8_t {
  kNone = 0,
  kBadFrame = 1,         // unparseable frame or payload
  kBadRequest = 2,       // parseable but unservable (validation failed)
  kQueueFull = 3,        // bounded admission rejected the request
  kDetectionFailed = 4,  // the engine returned an error
  kShuttingDown = 5,     // server is draining; no new work
};

const char* ServeErrorName(ServeError error);

/// One decoded frame.
struct Frame {
  MessageType type = MessageType::kPing;
  std::string payload;
};

/// Wraps `payload` in a wire frame.
std::string EncodeFrame(MessageType type, const std::string& payload);

/// Incremental frame parser. Feed() buffers arbitrary byte runs; Next()
/// pops one complete frame at a time. Both report corruption as a Status
/// and poison the decoder (every later call fails the same way) — a stream
/// is unrecoverable after framing breaks.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  [[nodiscard]] Status Feed(const char* data, size_t size);

  /// True = `*out` holds the next frame; false = need more bytes.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  Status poison_ = Status::OK();
};

/// A detection request on the wire. Everything is passed by path: the
/// server and client share a filesystem (local socket), so the payload
/// stays small no matter the table size, and the streaming path keeps its
/// out-of-core property.
struct DetectRequestMsg {
  /// Client-chosen correlation id, echoed on the response. A client may
  /// pipeline several requests on one connection and match replies by id.
  uint64_t request_id = 0;
  /// CSV of the dirty table to detect on.
  std::string data_path;
  /// Mask CSV answering oracle queries (doubles as ground truth for the
  /// reported P/R/F1, exactly like `saged_cli detect --oracle-mask`).
  std::string oracle_mask_path;
  /// Optional `name=value,...` SagedConfig overrides applied on top of the
  /// server's base config (the shared registry in core/config_flags.h).
  std::string config_flags;
  /// Per-request execution knobs (--stream / --block-rows / --chunk-bytes).
  core::DetectionOptions options;
};

std::string EncodeDetectRequest(const DetectRequestMsg& msg);
Result<DetectRequestMsg> DecodeDetectRequest(const std::string& payload);

/// A detection outcome on the wire: scores plus the predicted mask,
/// bit-packed (8 cells per byte, row-major).
struct DetectResponseMsg {
  uint64_t request_id = 0;
  double seconds = 0.0;
  uint64_t labeled_tuples = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::vector<std::string> column_names;
  ErrorMask mask;
};

std::string EncodeDetectResponse(const DetectResponseMsg& msg);
Result<DetectResponseMsg> DecodeDetectResponse(const std::string& payload);

/// A typed failure answer. `request_id` is 0 when the error is not
/// attributable to a parsed request (e.g. a bad frame).
struct ErrorResponseMsg {
  uint64_t request_id = 0;
  ServeError error = ServeError::kNone;
  std::string message;
};

std::string EncodeErrorResponse(const ErrorResponseMsg& msg);
Result<ErrorResponseMsg> DecodeErrorResponse(const std::string& payload);

}  // namespace saged::serve

#endif  // SAGED_SERVE_PROTOCOL_H_
