// The saged_serve daemon core: a local-socket server that holds one loaded
// detection engine (knowledge base trained / restored exactly once) and
// answers DetectRequest frames for as long as the process lives — the
// amortization the paper's few-shot design promises, kept across requests
// instead of thrown away at process exit.
//
// Threading model (three tiers, one lock each):
//   * one I/O thread owns the socket: poll() over the listen fd, a wake
//     pipe, and every connection; it accepts, reads, decodes frames, and
//     answers the cheap messages (ping, shutdown, rejections) inline;
//   * the RequestScheduler admits detection work (bounded queue,
//     round-robin across connections) and dispatches it to the shared
//     work-stealing Executor;
//   * executor workers run the detections — Saged::Run never mutates the
//     engine, so several in-flight requests share the knowledge base
//     without copies — and write their responses under the connection's
//     write mutex.
//
// Shutdown: RequestStop() (async-signal-safe: one write to the wake pipe)
// makes the I/O loop stop accepting, answer further requests with
// kShuttingDown, drain the scheduler so every admitted request still gets
// its response, then close all sockets and exit.

#ifndef SAGED_SERVE_SERVER_H_
#define SAGED_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/detector.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace saged::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket. Must fit sun_path
  /// (~100 chars); an existing socket file is replaced.
  std::string socket_path;
  /// Bounded admission: requests waiting beyond this are answered with the
  /// typed kQueueFull error.
  size_t max_queue = 64;
  /// Detection requests running concurrently. Detection is internally
  /// parallel, so 1 is the throughput-optimal default on small hosts.
  size_t max_inflight = 1;
  /// Per-frame payload ceiling for incoming frames.
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Outbound stall ceiling per send(2) call (SO_SNDTIMEO on accepted
  /// connections). Frames written from the I/O thread (pong, typed errors,
  /// shutdown acks) otherwise block the poll loop — and with it every
  /// other connection — for as long as one client refuses to read; after
  /// this long the stalled connection is dropped instead. 0 disables the
  /// timeout.
  size_t send_timeout_ms = 10'000;
  /// Warm start for lazily-backed knowledge bases (kb::ShardStore): Start()
  /// acquires a lease over every base model and holds it until the server
  /// is destroyed, so no request ever pays a shard load and the cache bound
  /// is suspended for the server's lifetime. A no-op for fully-resident
  /// knowledge bases.
  bool pin_models = false;
};

/// One running daemon. The engine must outlive the server and already hold
/// its knowledge base; the server never mutates it (requests carry config
/// overrides instead).
class SagedServer {
 public:
  /// `executor` = nullptr uses Executor::Shared().
  SagedServer(core::Saged* engine, ServerOptions options,
              Executor* executor = nullptr);
  ~SagedServer();

  SagedServer(const SagedServer&) = delete;
  SagedServer& operator=(const SagedServer&) = delete;

  /// Binds the socket and starts the I/O thread. Fails if the path does
  /// not fit sun_path or the bind/listen fails.
  [[nodiscard]] Status Start();

  /// Initiates shutdown without blocking. Async-signal-safe (one write(2)
  /// on the wake pipe) — callable from a SIGINT/SIGTERM handler.
  void RequestStop();

  /// Blocks until the server has fully stopped (I/O thread joined, every
  /// admitted request answered, sockets closed).
  void Wait() SAGED_EXCLUDES(lifecycle_mu_);

  /// RequestStop() + Wait().
  void Stop() SAGED_EXCLUDES(lifecycle_mu_);

  const ServerOptions& options() const { return options_; }

 private:
  /// One accepted client. Reference-counted: the I/O loop and any worker
  /// still writing a response each hold a reference; the fd closes with
  /// the last one.
  struct Connection {
    ~Connection();
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    // saged-lint: allow(lock-discipline): write_mu serializes send(2) on fd between workers; the fd itself is read by the io thread without it by design, so no member is exclusively guarded
    std::mutex write_mu;
    std::atomic<bool> closed{false};
  };

  void IoLoop();
  void AcceptClients();
  /// Reads whatever the socket has; returns false when the connection is
  /// done (EOF, error, or protocol violation) and should be dropped.
  bool ReadClient(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const Frame& frame);
  /// Runs one detection on an executor worker and writes the response.
  void RunDetection(std::shared_ptr<Connection> conn, DetectRequestMsg msg);
  void SendFrame(const std::shared_ptr<Connection>& conn, MessageType type,
                 const std::string& payload);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                 ServeError error, const std::string& message);
  /// Nudges the poll loop (one byte on the wake pipe) so it re-scans
  /// connection state — e.g. to sweep a connection a worker just failed to
  /// write to.
  void WakeIo();

  core::Saged* engine_;
  ServerOptions options_;
  RequestScheduler scheduler_;
  /// Held from Start() (options_.pin_models) until destruction.
  core::ModelLease pinned_models_;

  int listen_fd_ = -1;
  // The wake pipe stays open from Start() until destruction — NOT closed by
  // Wait() — so an async RequestStop (e.g. a second SIGINT racing shutdown)
  // can never write to a closed or reused descriptor.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  bool started_ SAGED_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ SAGED_GUARDED_BY(lifecycle_mu_) = false;
  std::mutex lifecycle_mu_;
  std::thread io_thread_;  // saged-lint: allow(no-adhoc-thread): the I/O loop blocks in poll() indefinitely; parking an Executor worker on it would starve the pool that runs the detections

  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
};

}  // namespace saged::serve

#endif  // SAGED_SERVE_SERVER_H_
