#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>

#include "common/contracts.h"

namespace saged::serve {

SagedClient::~SagedClient() { Close(); }

Status SagedClient::Connect(const std::string& socket_path) {
  SAGED_CHECK(fd_ < 0) << "client is already connected";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path does not fit sun_path: '" +
                                   socket_path + "'");
  }
  socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket() failed, errno " + std::to_string(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int err = errno;
    Close();
    return Status::IoError("connect('" + socket_path + "') failed, errno " +
                           std::to_string(err));
  }
  return Status::OK();
}

void SagedClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

Status SagedClient::Ping() {
  SAGED_RETURN_NOT_OK(SendAll(EncodeFrame(MessageType::kPing, "")));
  SAGED_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kPong) {
    return Status::RuntimeError("expected pong, got message type " +
                                std::to_string(static_cast<int>(frame.type)));
  }
  return Status::OK();
}

Result<DetectReply> SagedClient::Detect(const DetectRequestMsg& request) {
  SAGED_RETURN_NOT_OK(SendDetectRequest(request));
  return ReadReply();
}

Status SagedClient::SendDetectRequest(const DetectRequestMsg& request) {
  return SendAll(
      EncodeFrame(MessageType::kDetectRequest, EncodeDetectRequest(request)));
}

Result<DetectReply> SagedClient::ReadReply() {
  SAGED_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  DetectReply reply;
  if (frame.type == MessageType::kDetectResponse) {
    SAGED_ASSIGN_OR_RETURN(reply.response,
                           DecodeDetectResponse(frame.payload));
    reply.request_id = reply.response.request_id;
    return reply;
  }
  if (frame.type == MessageType::kErrorResponse) {
    SAGED_ASSIGN_OR_RETURN(ErrorResponseMsg msg,
                           DecodeErrorResponse(frame.payload));
    reply.request_id = msg.request_id;
    reply.error = msg.error;
    reply.error_message = std::move(msg.message);
    return reply;
  }
  return Status::RuntimeError("expected a detect reply, got message type " +
                              std::to_string(static_cast<int>(frame.type)));
}

Status SagedClient::SendShutdown() {
  SAGED_RETURN_NOT_OK(SendAll(EncodeFrame(MessageType::kShutdown, "")));
  SAGED_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != MessageType::kShutdownAck) {
    return Status::RuntimeError("expected shutdown ack, got message type " +
                                std::to_string(static_cast<int>(frame.type)));
  }
  return Status::OK();
}

Result<Frame> SagedClient::ReadFrame() {
  if (fd_ < 0) return Status::RuntimeError("client is not connected");
  while (true) {
    Frame frame;
    SAGED_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
    if (complete) return frame;
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv() failed, errno " + std::to_string(errno));
    }
    SAGED_RETURN_NOT_OK(decoder_.Feed(buf, static_cast<size_t>(n)));
  }
}

Status SagedClient::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::RuntimeError("client is not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("send() failed, errno " + std::to_string(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace saged::serve
