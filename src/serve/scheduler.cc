#include "serve/scheduler.h"

#include <utility>

#include "common/contracts.h"
#include "common/telemetry.h"

namespace saged::serve {

RequestScheduler::RequestScheduler(Executor* executor, Options options)
    : executor_(executor != nullptr ? executor : &Executor::Shared()),
      options_(options) {
  SAGED_CHECK(options_.max_inflight > 0)
      << "a scheduler with no inflight slots can never run anything";
}

Status RequestScheduler::Admit(uint64_t conn_id, std::function<void()> work) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::OutOfRange("scheduler is draining; no new work admitted");
  }
  if (queued_ >= options_.max_queue) {
    return Status::OutOfRange("admission queue is full (" +
                              std::to_string(options_.max_queue) +
                              " requests waiting)");
  }
  queues_[conn_id].push_back(Waiting{std::move(work), StopWatch()});
  ++queued_;
  SAGED_GAUGE_SET("serve.queue_depth", static_cast<double>(queued_));
  PumpLocked();
  return Status::OK();
}

void RequestScheduler::PumpLocked() {
  while (inflight_ < options_.max_inflight && queued_ > 0) {
    // Round-robin: the first non-empty queue strictly after the connection
    // served last, wrapping to the front.
    auto it = queues_.upper_bound(next_conn_);
    if (it == queues_.end()) it = queues_.begin();
    SAGED_DCHECK(!it->second.empty());
    next_conn_ = it->first;
    Waiting waiting = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --queued_;
    ++inflight_;
    SAGED_GAUGE_SET("serve.queue_depth", static_cast<double>(queued_));
    SAGED_HISTOGRAM_OBSERVE("serve.queue_ms", waiting.queued_at.Millis());
    executor_->Submit([this, work = std::move(waiting.work)]() {
      work();
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      PumpLocked();
      if (queued_ == 0 && inflight_ == 0) idle_cv_.notify_all();
    });
  }
}

void RequestScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  idle_cv_.wait(lock, [this] { return queued_ == 0 && inflight_ == 0; });
}

size_t RequestScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t RequestScheduler::Inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace saged::serve
