#include "serve/protocol.h"

#include <sstream>

#include "common/binary_io.h"
#include "common/contracts.h"

namespace saged::serve {

namespace {

/// Little-endian u32 into `out`.
void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// The decoders all finish with this: a payload with bytes after the last
/// field is as malformed as a truncated one.
Status CheckFullyConsumed(std::istringstream& in) {
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("message payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

bool IsKnownMessageType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kPing) &&
         type <= static_cast<uint8_t>(MessageType::kShutdownAck);
}

const char* ServeErrorName(ServeError error) {
  switch (error) {
    case ServeError::kNone:
      return "none";
    case ServeError::kBadFrame:
      return "bad_frame";
    case ServeError::kBadRequest:
      return "bad_request";
    case ServeError::kQueueFull:
      return "queue_full";
    case ServeError::kDetectionFailed:
      return "detection_failed";
    case ServeError::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

std::string EncodeFrame(MessageType type, const std::string& payload) {
  SAGED_CHECK(payload.size() < (1ull << 32))
      << "frame payload exceeds the u32 length prefix";
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(kFrameMagic, &frame);
  frame.push_back(static_cast<char>(type));
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  frame += payload;
  return frame;
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  SAGED_RETURN_NOT_OK(poison_);
  buffer_.append(data, size);
  return Status::OK();
}

Result<bool> FrameDecoder::Next(Frame* out) {
  SAGED_CHECK(out != nullptr);
  SAGED_RETURN_NOT_OK(poison_);
  if (buffer_.size() < kFrameHeaderBytes) return false;
  const char* head = buffer_.data();
  if (GetU32(head) != kFrameMagic) {
    poison_ = Status::InvalidArgument("bad frame magic");
    return poison_;
  }
  const uint8_t raw_type = static_cast<uint8_t>(head[4]);
  if (!IsKnownMessageType(raw_type)) {
    poison_ = Status::InvalidArgument("unknown message type " +
                                      std::to_string(raw_type));
    return poison_;
  }
  const uint32_t length = GetU32(head + 5);
  if (length > max_frame_bytes_) {
    poison_ = Status::InvalidArgument(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds the limit of " + std::to_string(max_frame_bytes_));
    return poison_;
  }
  if (buffer_.size() < kFrameHeaderBytes + length) return false;
  out->type = static_cast<MessageType>(raw_type);
  out->payload = buffer_.substr(kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return true;
}

std::string EncodeDetectRequest(const DetectRequestMsg& msg) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(msg.request_id);
  w.WriteString(msg.data_path);
  w.WriteString(msg.oracle_mask_path);
  w.WriteString(msg.config_flags);
  w.WriteU8(msg.options.stream ? 1 : 0);
  w.WriteU64(msg.options.block_rows);
  w.WriteU64(msg.options.chunk_bytes);
  return out.str();
}

Result<DetectRequestMsg> DecodeDetectRequest(const std::string& payload) {
  std::istringstream in(payload);
  BinaryReader r(&in);
  DetectRequestMsg msg;
  SAGED_ASSIGN_OR_RETURN(msg.request_id, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(msg.data_path, r.ReadString());
  SAGED_ASSIGN_OR_RETURN(msg.oracle_mask_path, r.ReadString());
  SAGED_ASSIGN_OR_RETURN(msg.config_flags, r.ReadString());
  SAGED_ASSIGN_OR_RETURN(uint8_t stream, r.ReadU8());
  if (stream > 1) {
    return Status::InvalidArgument("detect request stream byte must be 0/1");
  }
  msg.options.stream = stream == 1;
  SAGED_ASSIGN_OR_RETURN(msg.options.block_rows, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(msg.options.chunk_bytes, r.ReadU64());
  SAGED_RETURN_NOT_OK(CheckFullyConsumed(in));
  return msg;
}

std::string EncodeDetectResponse(const DetectResponseMsg& msg) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(msg.request_id);
  w.WriteF64(msg.seconds);
  w.WriteU64(msg.labeled_tuples);
  w.WriteF64(msg.precision);
  w.WriteF64(msg.recall);
  w.WriteF64(msg.f1);
  w.WriteU32(static_cast<uint32_t>(msg.column_names.size()));
  for (const auto& name : msg.column_names) w.WriteString(name);
  const size_t rows = msg.mask.rows();
  const size_t cols = msg.mask.cols();
  w.WriteU64(rows);
  w.WriteU64(cols);
  // Row-major bit-pack, 8 cells per byte, zero-padded tail.
  std::string bits((rows * cols + 7) / 8, '\0');
  for (size_t r2 = 0; r2 < rows; ++r2) {
    for (size_t c = 0; c < cols; ++c) {
      if (msg.mask.IsDirty(r2, c)) {
        size_t cell = r2 * cols + c;
        bits[cell / 8] |= static_cast<char>(1u << (cell % 8));
      }
    }
  }
  w.WriteString(bits);
  return out.str();
}

Result<DetectResponseMsg> DecodeDetectResponse(const std::string& payload) {
  std::istringstream in(payload);
  BinaryReader r(&in);
  DetectResponseMsg msg;
  SAGED_ASSIGN_OR_RETURN(msg.request_id, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(msg.seconds, r.ReadF64());
  SAGED_ASSIGN_OR_RETURN(msg.labeled_tuples, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(msg.precision, r.ReadF64());
  SAGED_ASSIGN_OR_RETURN(msg.recall, r.ReadF64());
  SAGED_ASSIGN_OR_RETURN(msg.f1, r.ReadF64());
  SAGED_ASSIGN_OR_RETURN(uint32_t n_columns, r.ReadU32());
  // Each name costs at least its 8 length-prefix bytes, so the payload
  // itself bounds the plausible count; checking before reserve() keeps a
  // hostile length from forcing a multi-GB allocation.
  if (n_columns > payload.size() / 8) {
    return Status::InvalidArgument(
        "detect response column count " + std::to_string(n_columns) +
        " exceeds what " + std::to_string(payload.size()) +
        " payload bytes can hold");
  }
  msg.column_names.reserve(n_columns);
  for (uint32_t i = 0; i < n_columns; ++i) {
    SAGED_ASSIGN_OR_RETURN(auto name, r.ReadString());
    msg.column_names.push_back(std::move(name));
  }
  SAGED_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(std::string bits, r.ReadString());
  if (cols != 0 && rows > BinaryReader::kMaxLength / cols) {
    return Status::InvalidArgument("detect response mask dimensions overflow");
  }
  if (bits.size() != (rows * cols + 7) / 8) {
    return Status::InvalidArgument(
        "detect response mask bits do not match its dimensions");
  }
  msg.mask = ErrorMask(rows, cols);
  for (uint64_t r2 = 0; r2 < rows; ++r2) {
    for (uint64_t c = 0; c < cols; ++c) {
      uint64_t cell = r2 * cols + c;
      if (static_cast<unsigned char>(bits[cell / 8]) & (1u << (cell % 8))) {
        msg.mask.Set(r2, c);
      }
    }
  }
  SAGED_RETURN_NOT_OK(CheckFullyConsumed(in));
  return msg;
}

std::string EncodeErrorResponse(const ErrorResponseMsg& msg) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(msg.request_id);
  w.WriteU8(static_cast<uint8_t>(msg.error));
  w.WriteString(msg.message);
  return out.str();
}

Result<ErrorResponseMsg> DecodeErrorResponse(const std::string& payload) {
  std::istringstream in(payload);
  BinaryReader r(&in);
  ErrorResponseMsg msg;
  SAGED_ASSIGN_OR_RETURN(msg.request_id, r.ReadU64());
  SAGED_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  if (code > static_cast<uint8_t>(ServeError::kShuttingDown)) {
    return Status::InvalidArgument("unknown serve error code " +
                                   std::to_string(code));
  }
  msg.error = static_cast<ServeError>(code);
  SAGED_ASSIGN_OR_RETURN(msg.message, r.ReadString());
  SAGED_RETURN_NOT_OK(CheckFullyConsumed(in));
  return msg;
}

}  // namespace saged::serve
