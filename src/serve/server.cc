#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <numeric>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/config_flags.h"
#include "data/csv.h"
#include "data/mask_io.h"

namespace saged::serve {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

SagedServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

SagedServer::SagedServer(core::Saged* engine, ServerOptions options,
                         Executor* executor)
    : engine_(engine),
      options_(std::move(options)),
      scheduler_(executor, RequestScheduler::Options{options_.max_queue,
                                                     options_.max_inflight}) {
  SAGED_CHECK(engine_ != nullptr) << "SagedServer needs a detection engine";
}

SagedServer::~SagedServer() {
  Stop();
  // The wake pipe outlives Wait() (see server.h) and closes only here.
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  wake_write_fd_ = wake_read_fd_ = -1;
}

Status SagedServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    SAGED_CHECK(!started_) << "SagedServer::Start called twice";
  }
  if (options_.pin_models) {
    core::KnowledgeBase* kb = engine_->mutable_knowledge_base();
    std::vector<size_t> all(kb->size());
    std::iota(all.begin(), all.end(), 0);
    auto lease = kb->AcquireModels(all);
    if (!lease.ok()) return lease.status();
    pinned_models_ = std::move(*lease);
    SAGED_GAUGE_SET("serve.pinned_models", kb->size());
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path must be 1.." + std::to_string(sizeof(addr.sun_path) - 1) +
        " chars, got '" + options_.socket_path + "'");
  }
  options_.socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket() failed, errno " + std::to_string(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind('" + options_.socket_path +
                           "') failed, errno " + std::to_string(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen() failed, errno " + std::to_string(err));
  }
  SetNonBlocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("pipe() failed, errno " + std::to_string(err));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);

  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    started_ = true;
  }
  io_thread_ = std::thread([this] { IoLoop(); });  // saged-lint: allow(no-adhoc-thread): the I/O loop blocks in poll() for the server's whole lifetime; parking an Executor worker on it would steal a slot from the pool that runs the detections
  SAGED_LOG(Info) << "saged_serve listening on " << options_.socket_path;
  return Status::OK();
}

void SagedServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  // Safe even when racing Wait(): the wake pipe stays open until the
  // destructor runs, so this never touches a closed/reused descriptor.
  WakeIo();
}

// saged-lint: io-loop
void SagedServer::WakeIo() {
  if (wake_write_fd_ >= 0) {
    // Async-signal-safe; the byte's value is irrelevant.
    char byte = 's';
    // saged-lint: allow(no-blocking-in-io-loop): one byte into the self-pipe; the pipe buffer is empty or near-empty, so this never blocks meaningfully
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void SagedServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (io_thread_.joinable()) io_thread_.join();
  if (!stopped_ && started_) {
    ::unlink(options_.socket_path.c_str());
    stopped_ = true;
  }
}

void SagedServer::Stop() {
  {
    // Scoped so the lock is never held across Wait(), which takes it too.
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
  }
  RequestStop();
  Wait();
}

// saged-lint: io-loop
void SagedServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Sweep connections a sender gave up on (timed-out / failed writes from
    // workers or an earlier iteration): dropping the map reference closes
    // the fd once in-flight writers release theirs, so the client sees HUP
    // instead of a silently wedged connection.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->closed.load(std::memory_order_acquire)) {
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : connections_) {
      fds.push_back(pollfd{conn->fd, POLLIN, 0});
      fd_conn.push_back(id);
    }
    int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      SAGED_LOG(Error) << "poll() failed, errno " << errno;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char sink[64];
      // saged-lint: allow(no-blocking-in-io-loop): the wake pipe's read end is O_NONBLOCK; this loop only drains bytes poll() already reported
      while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) AcceptClients();
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      auto it = connections_.find(fd_conn[i]);
      if (it == connections_.end()) continue;
      bool keep = (fds[i].revents & POLLIN) != 0 && ReadClient(it->second);
      if ((fds[i].revents & (POLLHUP | POLLERR)) != 0) keep = false;
      if (!keep) {
        it->second->closed.store(true, std::memory_order_release);
        connections_.erase(it);
      }
    }
  }

  // Drain: every admitted request still runs and writes its response; the
  // workers hold their own connection references.
  draining_.store(true, std::memory_order_release);
  // saged-lint: allow(no-blocking-in-io-loop): deliberate shutdown barrier — the loop above has exited, so blocking here stalls nothing
  scheduler_.Drain();
  for (auto& [id, conn] : connections_) {
    conn->closed.store(true, std::memory_order_release);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  SAGED_LOG(Info) << "saged_serve stopped";
}

// saged-lint: io-loop
void SagedServer::AcceptClients() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      SAGED_LOG(Warning) << "accept() failed, errno " << errno;
      return;
    }
    if (options_.send_timeout_ms > 0) {
      // Bounds every send(2) on this connection: a client that stops
      // reading costs at most this long per write before it is dropped,
      // instead of wedging whichever thread (I/O loop included) is
      // writing to it.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.send_timeout_ms / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((options_.send_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    connections_[conn->id] = conn;
    SAGED_COUNTER_INC("serve.connections");
  }
}

// saged-lint: io-loop
bool SagedServer::ReadClient(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  // saged-lint: allow(no-blocking-in-io-loop): a single recv on a socket poll() just reported readable; it returns immediately with data or EAGAIN
  ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
  if (n == 0) return false;  // clean EOF
  if (n < 0) return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  if (auto s = conn->decoder.Feed(buf, static_cast<size_t>(n)); !s.ok()) {
    SendError(conn, 0, ServeError::kBadFrame, s.message());
    return false;
  }
  while (true) {
    Frame frame;
    auto more = conn->decoder.Next(&frame);
    if (!more.ok()) {
      // Framing is unrecoverable: answer typed, then drop the connection.
      SendError(conn, 0, ServeError::kBadFrame, more.status().message());
      return false;
    }
    if (!*more) return true;
    HandleFrame(conn, frame);
  }
}

// saged-lint: io-loop
void SagedServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              const Frame& frame) {
  switch (frame.type) {
    case MessageType::kPing:
      SendFrame(conn, MessageType::kPong, "");
      return;
    case MessageType::kShutdown:
      SendFrame(conn, MessageType::kShutdownAck, "");
      RequestStop();
      return;
    case MessageType::kDetectRequest: {
      auto msg = DecodeDetectRequest(frame.payload);
      if (!msg.ok()) {
        SAGED_COUNTER_INC("serve.errors");
        SendError(conn, 0, ServeError::kBadFrame, msg.status().message());
        return;
      }
      const uint64_t request_id = msg->request_id;
      if (stop_requested_.load(std::memory_order_acquire)) {
        SAGED_COUNTER_INC("serve.rejected");
        SendError(conn, request_id, ServeError::kShuttingDown,
                  "server is shutting down");
        return;
      }
      Status admitted = scheduler_.Admit(
          conn->id, [this, conn, request = std::move(msg).value()]() mutable {
            RunDetection(conn, std::move(request));
          });
      if (!admitted.ok()) {
        SAGED_COUNTER_INC("serve.rejected");
        SendError(conn, request_id, ServeError::kQueueFull,
                  admitted.message());
      }
      return;
    }
    case MessageType::kPong:
    case MessageType::kDetectResponse:
    case MessageType::kErrorResponse:
    case MessageType::kShutdownAck:
      SAGED_COUNTER_INC("serve.errors");
      SendError(conn, 0, ServeError::kBadFrame,
                "response-only message type sent to the server");
      return;
  }
}

void SagedServer::RunDetection(std::shared_ptr<Connection> conn,
                               DetectRequestMsg msg) {
  SAGED_TRACE_SPAN("serve/request");
  StopWatch watch;
  SAGED_COUNTER_INC("serve.requests");

  // Per-request engine config: the server's base config plus the request's
  // registered `name=value` overrides. The engine itself is never touched.
  core::SagedConfig config = engine_->config();
  if (auto s = core::ApplySagedFlagList(msg.config_flags, &config); !s.ok()) {
    SAGED_COUNTER_INC("serve.errors");
    SendError(conn, msg.request_id, ServeError::kBadRequest, s.message());
    return;
  }

  auto oracle_table = ReadCsv(msg.oracle_mask_path);
  if (!oracle_table.ok()) {
    SAGED_COUNTER_INC("serve.errors");
    SendError(conn, msg.request_id, ServeError::kBadRequest,
              oracle_table.status().message());
    return;
  }
  auto truth = TableToMask(*oracle_table);
  if (!truth.ok()) {
    SAGED_COUNTER_INC("serve.errors");
    SendError(conn, msg.request_id, ServeError::kBadRequest,
              truth.status().message());
    return;
  }

  core::DetectionRequest request = core::DetectionRequest::ForCsv(
      msg.data_path, core::MaskOracle(*truth), msg.options);
  request.set_config(std::move(config));
  // Run() checks the data's shape against this before the first oracle
  // call: a mask that does not match the data table is the client's
  // mistake (kBadRequest below), never an out-of-bounds read.
  request.set_oracle_shape(truth->rows(), truth->cols());
  if (auto s = request.Validate(); !s.ok()) {
    SAGED_COUNTER_INC("serve.errors");
    SendError(conn, msg.request_id, ServeError::kBadRequest, s.message());
    return;
  }

  auto result = engine_->Run(request);
  if (!result.ok()) {
    SAGED_COUNTER_INC("serve.errors");
    // Errors the request caused (bad path, malformed CSV, invalid option
    // combination) are the client's to fix; everything else is ours.
    StatusCode code = result.status().code();
    ServeError error = (code == StatusCode::kInvalidArgument ||
                        code == StatusCode::kNotFound ||
                        code == StatusCode::kIoError)
                           ? ServeError::kBadRequest
                           : ServeError::kDetectionFailed;
    SendError(conn, msg.request_id, error, result.status().message());
    return;
  }

  // Unreachable while Run enforces the oracle shape above, but Score's
  // shape SAGED_CHECK would abort the whole daemon — never let a request
  // get there.
  if (result->mask.rows() != truth->rows() ||
      result->mask.cols() != truth->cols()) {
    SAGED_COUNTER_INC("serve.errors");
    SendError(conn, msg.request_id, ServeError::kDetectionFailed,
              "detection produced a mask of a different shape than the "
              "oracle mask");
    return;
  }
  auto score = truth->Score(result->mask);
  DetectResponseMsg response;
  response.request_id = msg.request_id;
  response.seconds = result->seconds;
  response.labeled_tuples = result->labeled_tuples;
  response.precision = score.Precision();
  response.recall = score.Recall();
  response.f1 = score.F1();
  for (const auto& diag : result->diagnostics) {
    response.column_names.push_back(diag.column);
  }
  response.mask = std::move(result->mask);
  SendFrame(conn, MessageType::kDetectResponse,
            EncodeDetectResponse(response));
  SAGED_HISTOGRAM_OBSERVE("serve.request_ms", watch.Millis());
}

// saged-lint: io-loop
void SagedServer::SendFrame(const std::shared_ptr<Connection>& conn,
                            MessageType type, const std::string& payload) {
  std::string frame = EncodeFrame(type, payload);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a client that hung up must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    // saged-lint: allow(no-blocking-in-io-loop): bounded by SO_SNDTIMEO set at accept; a stalled client costs at most send_timeout_ms before it is dropped
    ssize_t n = ::send(conn->fd, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO fired: the client is not reading. Drop it rather
        // than stall this thread any longer.
        SAGED_LOG(Warning) << "send() to connection " << conn->id
                           << " timed out after " << options_.send_timeout_ms
                           << "ms; dropping the connection";
      } else {
        SAGED_LOG(Warning) << "send() to connection " << conn->id
                           << " failed, errno " << errno;
      }
      conn->closed.store(true, std::memory_order_release);
      // Let the poll loop sweep the dead connection now, not at the next
      // unrelated socket event.
      WakeIo();
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

// saged-lint: io-loop
void SagedServer::SendError(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, ServeError error,
                            const std::string& message) {
  ErrorResponseMsg msg{request_id, error, message};
  SendFrame(conn, MessageType::kErrorResponse, EncodeErrorResponse(msg));
}

}  // namespace saged::serve
