#ifndef SAGED_KB_SHARD_STORE_H_
#define SAGED_KB_SHARD_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/knowledge_base.h"
#include "features/char_space.h"
#include "kb/model_cache.h"
#include "kb/signature_index.h"
#include "ml/classifier.h"

namespace saged::kb {

/// Store-wide facts surfaced by `saged kb stats` and the serve daemon.
struct StoreStats {
  uint32_t version = 3;  // 2 when transparently serving a monolithic v2 file
  size_t n_entries = 0;
  size_t n_shards = 0;
  size_t n_buckets = 0;        // signature-index buckets (0: empty store)
  size_t resident_shards = 0;  // currently hydrated
  size_t cache_capacity = 0;   // 0 = unbounded
  std::vector<uint64_t> shard_sizes;  // models per shard
};

/// Lazily-loaded, capacity-bounded view of a sharded knowledge base
/// (format v3: one manifest plus one shard file per signature bucket, see
/// kb/kb_builder.h). Opening reads only the manifest — entry metadata,
/// the signature index, and the shard table — so a thousand-dataset store
/// is servable in milliseconds; base models hydrate on first use, whole
/// shards at a time, in parallel on the shared Executor.
///
/// A monolithic v2 file (core/serialization) opens transparently as a
/// single-shard store: metadata is parsed up front, the one "shard" is the
/// v2 file itself, re-parsed on first model use.
///
/// Residency is LRU with whole-shard eviction (ShardLruCache). Leases
/// returned by KnowledgeBase::AcquireModels pin their shards; eviction only
/// ever drops unpinned shards, at acquire time and at lease release.
/// Counters: `kb.shard_loads`, `kb.cache_hits`, `kb.evictions`; each load
/// runs under a `kb/load_shard` trace span.
///
/// The store hydrates one knowledge base at a time — the most recent
/// MakeKnowledgeBase() product (or whatever KnowledgeBase* the first
/// AcquireModels passes). Pointing it at a different knowledge base resets
/// residency and requires every outstanding lease to have been released.
/// The store must outlive its knowledge bases and their leases.
class ShardStore {
 public:
  struct OpenOptions {
    /// Max resident shards (SagedConfig::kb_cache_shards); 0 = unbounded.
    size_t cache_shards = 0;
  };

  /// `path`: a v3 store directory, a manifest file inside one, or a
  /// monolithic v2 knowledge-base file.
  static Result<std::unique_ptr<ShardStore>> Open(const std::string& path,
                                                  const OpenOptions& options);

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// Builds a knowledge base holding every entry's metadata with models
  /// unhydrated, wired back to this store: a ModelProvider for lazy
  /// hydration and (via AttachIndex) a MatcherFactory honoring
  /// `similarity = indexed`.
  Result<core::KnowledgeBase> MakeKnowledgeBase();

  /// Hydrates and pins every shard (serve warm mode / full migration).
  /// The returned lease defeats the cache bound until released.
  [[nodiscard]] Result<core::ModelLease> AcquireAll(core::KnowledgeBase* kb);

  size_t n_entries() const { return entries_.size(); }
  size_t n_shards() const { return shards_.size(); }
  /// nullptr only for an empty store.
  const SignatureIndex* index() const { return has_index_ ? &index_ : nullptr; }
  const features::CharSpace& char_space() const { return char_space_; }

  StoreStats GetStats() const;

 private:
  struct EntryMeta {
    std::string dataset;
    std::string column;
    std::vector<double> signature;
    uint32_t shard = 0;
  };
  struct ShardMeta {
    std::string filename;  // relative to base_dir_; v2: the file itself
    uint64_t n_models = 0;
  };
  struct LoadedModel {
    size_t entry_index = 0;
    std::unique_ptr<ml::BinaryClassifier> model;
  };
  /// Lease payload: unpins its shards on destruction (defined in the .cc).
  struct LeaseState;

  ShardStore() = default;

  static Result<std::unique_ptr<ShardStore>> OpenManifest(
      const std::string& dir, const std::string& manifest_path,
      const OpenOptions& options);
  static Result<std::unique_ptr<ShardStore>> OpenV2(
      const std::string& path, const OpenOptions& options);

  /// ModelProvider entry point: ensures the shards behind `indices` are
  /// resident in `kb` and returns a lease pinning them.
  Result<core::ModelLease> Acquire(core::KnowledgeBase* kb,
                                   const std::vector<size_t>& indices);
  /// Lease destructor: unpins and evicts back to capacity.
  void ReleaseShards(const std::vector<size_t>& shards);

  /// Parses one shard's models from disk. Pure I/O — called without mu_
  /// held so concurrent detection threads never serialize on file reads
  /// (and so the Executor's help-while-waiting can never re-enter the
  /// store while it holds the lock).
  Status LoadShardFile(size_t shard, std::vector<LoadedModel>* out) const;

  /// Drops unpinned LRU shards until back under capacity.
  void EvictToCapacity() SAGED_REQUIRES(mu_);

  std::string base_dir_;  // v3 store directory ("" in v2 mode)
  std::string v2_path_;   // monolithic v2 file ("" in v3 mode)
  uint32_t source_version_ = 3;
  features::CharSpace char_space_{64};
  std::vector<uint64_t> extraction_hashes_;
  std::vector<EntryMeta> entries_;
  std::vector<ShardMeta> shards_;
  /// Shard id -> entry indices (ascending); immutable after Open.
  std::vector<std::vector<size_t>> shard_members_;
  SignatureIndex index_;
  bool has_index_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  ShardLruCache cache_ SAGED_GUARDED_BY(mu_){0, 0};
  /// Shards some thread is currently parsing (claimed, not yet resident).
  std::vector<bool> loading_ SAGED_GUARDED_BY(mu_);
  /// The knowledge base current residency refers to.
  core::KnowledgeBase* hydrated_kb_ SAGED_GUARDED_BY(mu_) = nullptr;
};

}  // namespace saged::kb

#endif  // SAGED_KB_SHARD_STORE_H_
