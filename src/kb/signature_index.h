#ifndef SAGED_KB_SIGNATURE_INDEX_H_
#define SAGED_KB_SIGNATURE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "core/knowledge_base.h"
#include "core/matcher.h"
#include "ml/matrix.h"

namespace saged::kb {

/// Coarse K-Means index over base-model signatures — the IVF-flat layout,
/// cosine flavour. Signatures are L2-normalized before clustering and
/// before each query, so Euclidean nearest-centroid order equals cosine
/// similarity order and the bucket probe sequence agrees with the matcher's
/// similarity measure. Deterministic for a given (entry order, n_buckets,
/// seed): ml::KMeans is seeded and the bucket members keep entry order.
///
/// The same bucket assignment keys the sharded store's shard files
/// (src/kb/shard_store.h), so "probe few buckets" and "load few shards"
/// are the same locality.
class SignatureIndex {
 public:
  /// Default bucket count: ceil(sqrt(n_entries)), at least 1 — the classic
  /// IVF balance point where centroid scan and bucket scan cost the same.
  static size_t AutoBuckets(size_t n_entries);

  /// Default probe count: n_buckets/32, at least 4 (clamped to n_buckets).
  /// Empirically holds recall@max_models >= 0.95 on the synthetic corpus
  /// while scanning a few percent of the entries; bench_kb_scale gates it.
  static size_t AutoProbes(size_t n_buckets);

  /// Fits the index over `kb`'s signatures. `n_buckets` = 0 uses
  /// AutoBuckets; the count is clamped to the entry count by KMeans.
  static Result<SignatureIndex> Build(const core::KnowledgeBase& kb,
                                      size_t n_buckets, uint64_t seed);

  size_t n_buckets() const { return buckets_.size(); }
  size_t n_entries() const { return assignments_.size(); }
  /// Entry index -> bucket id.
  const std::vector<uint32_t>& assignments() const { return assignments_; }
  /// Bucket id -> member entry indices, ascending.
  const std::vector<std::vector<size_t>>& buckets() const { return buckets_; }

  /// Bucket ids in ascending centroid distance from the normalized query;
  /// equal distances break toward the lower bucket id.
  std::vector<size_t> ProbeOrder(const std::vector<double>& signature) const;

  /// The `probes` nearest buckets under the ProbeOrder key — same set and
  /// order as ProbeOrder's prefix, selected in O(n_buckets) instead of a
  /// full sort.
  std::vector<size_t> TopBuckets(const std::vector<double>& signature,
                                 size_t probes) const;

  /// Entry indices (ascending) of the `probes` nearest buckets. A probe
  /// count >= n_buckets() short-circuits to every entry — the exact-scan
  /// degenerate the parity tests pin against CosineMatcher.
  std::vector<size_t> Candidates(const std::vector<double>& signature,
                                 size_t probes) const;

  /// Manifest-embedded serialization (centroids + assignments).
  void Save(BinaryWriter* writer) const;
  static Result<SignatureIndex> Load(BinaryReader* reader);

  /// Copies every entry signature into a bucket-major packed matrix so the
  /// probing matcher scans each probed bucket contiguously (the IVF layout:
  /// without it, per-candidate pointer-chases through scattered
  /// BaseModelEntry heap blocks eat most of what the probing saved). The
  /// copies are exact, so similarities computed from them are bit-identical
  /// to the entry-by-entry scan. Build() packs automatically; after Load(),
  /// the owner re-packs from the knowledge base carrying the signatures.
  /// Not thread-safe against concurrent queries — pack before serving.
  void PackSignatures(const core::KnowledgeBase& kb);
  bool packed() const { return packed_.rows() == n_entries(); }
  /// Rows ordered bucket 0 members (ascending), bucket 1 members, ...
  const ml::Matrix& packed_signatures() const { return packed_; }
  /// First packed row of bucket `b`.
  size_t packed_begin(size_t b) const { return packed_begin_[b]; }

 private:
  ml::Matrix centroids_;  // L2-normalized signature space
  std::vector<uint32_t> assignments_;
  std::vector<std::vector<size_t>> buckets_;
  ml::Matrix packed_;  // raw (unnormalized) signatures, bucket-major
  std::vector<size_t> packed_begin_;

  void RebuildBuckets(size_t n_buckets);
};

/// The bucket-probing matcher: candidates from the index's top-`probes`
/// buckets, then the exact shared selection semantics (threshold, fallback
/// to the most similar *candidate*, deterministic max_models cap — see
/// core::SelectRelevant). probes >= index->n_buckets() is byte-identical
/// to CosineMatcher.
class IndexedMatcher : public core::Matcher {
 public:
  IndexedMatcher(const core::KnowledgeBase* kb, const SignatureIndex* index,
                 double threshold, size_t max_models, size_t probes);

  std::vector<size_t> Match(
      const std::vector<double>& signature) const override;

 private:
  const core::KnowledgeBase* kb_;
  const SignatureIndex* index_;
  double threshold_;
  size_t max_models_;
  size_t probes_;
};

/// Installs a matcher factory on `kb` so MakeMatcher honors
/// `similarity = indexed`: the factory builds an IndexedMatcher with the
/// config's cosine_threshold / max_models_per_column and `index_probes`
/// (0 = AutoProbes). `index` must outlive the knowledge base and every
/// engine holding it.
void AttachIndex(core::KnowledgeBase* kb, const SignatureIndex* index);

}  // namespace saged::kb

#endif  // SAGED_KB_SIGNATURE_INDEX_H_
