#ifndef SAGED_KB_MODEL_CACHE_H_
#define SAGED_KB_MODEL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saged::kb {

/// Residency book-keeping for the sharded store's model cache: which shards
/// are hydrated, which are pinned by outstanding leases, and which to evict
/// when over capacity. Pure logic — no I/O, no locking — so the LRU policy
/// is unit-testable; ShardStore owns the mutex and calls this under it.
///
/// Policy: least-recently-used resident shard first, but never a pinned
/// shard (an active detection run may be probing its models). Capacity 0
/// means unbounded (nothing is ever a victim).
class ShardLruCache {
 public:
  ShardLruCache(size_t n_shards, size_t capacity)
      : capacity_(capacity), shards_(n_shards) {}

  size_t n_shards() const { return shards_.size(); }
  size_t capacity() const { return capacity_; }

  bool IsResident(size_t shard) const { return shards_[shard].resident; }
  size_t PinCount(size_t shard) const { return shards_[shard].pins; }
  /// Number of resident shards (pinned or not).
  size_t ResidentCount() const;

  /// Marks a shard hydrated and counts a use.
  void MarkResident(size_t shard);
  /// Marks a shard dropped (after the caller frees its models).
  void MarkEvicted(size_t shard);

  void Pin(size_t shard) { ++shards_[shard].pins; }
  void Unpin(size_t shard);
  /// Counts a use without changing residency or pins (cache hit).
  void Touch(size_t shard);

  /// Resident, unpinned shards to drop — LRU first — so that the resident
  /// count falls back to capacity. Empty when unbounded, under capacity,
  /// or everything over capacity is pinned (eviction then waits for the
  /// next lease release).
  std::vector<size_t> EvictionVictims() const;

 private:
  struct ShardState {
    bool resident = false;
    size_t pins = 0;
    uint64_t last_use = 0;
  };

  size_t capacity_;
  uint64_t clock_ = 0;
  std::vector<ShardState> shards_;
};

}  // namespace saged::kb

#endif  // SAGED_KB_MODEL_CACHE_H_
