#ifndef SAGED_KB_KB_BUILDER_H_
#define SAGED_KB_KB_BUILDER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/knowledge_base.h"

namespace saged::kb {

/// Sharded store format (v3). A store is a directory:
///
///   manifest.sagk   magic "SAGK", version, char space, extraction hashes,
///                   per-entry metadata {dataset, column, signature,
///                   shard id}, the signature index (centroids +
///                   assignments), and the shard table {filename, n_models}.
///   shard-NNNN.sags magic "SAGS", version, shard id, and that shard's
///                   models as {entry index, tag + payload} records — the
///                   exact per-model encoding of the monolithic v2 format
///                   (core::WriteBaseModel), so migration round-trips
///                   byte-identical.
///
/// Shards are keyed by the signature index's bucket assignment: the models
/// a query probes together live in files that load together.
inline constexpr uint32_t kManifestMagic = 0x5341474B;  // "SAGK"
inline constexpr uint32_t kShardMagic = 0x53414753;     // "SAGS"
inline constexpr uint32_t kStoreVersion = 3;
inline constexpr char kManifestFilename[] = "manifest.sagk";
/// Magic of the monolithic v1/v2 format (core/serialization), re-stated
/// here so ShardStore::Open can sniff which reader a file needs.
inline constexpr uint32_t kMonolithicMagic = 0x53414745;  // "SAGE"

/// "shard-0007.sags" — manifest-relative shard filename.
std::string ShardFilename(size_t shard);

struct BuildOptions {
  size_t n_buckets = 0;  // 0 = SignatureIndex::AutoBuckets(kb.size())
  uint64_t seed = 42;    // K-Means seed; fixed seed -> reproducible layout
};

/// Writes `kb` (fully resident: every entry must hold its model) as a v3
/// sharded store under `dir`, creating the directory if needed.
/// Deterministic for a given (kb, options).
[[nodiscard]] Status WriteShardedStore(const core::KnowledgeBase& kb,
                                       const std::string& dir,
                                       const BuildOptions& options = {});

/// Loads any knowledge-base artifact — monolithic v1/v2 file or v3 store —
/// into a fully-hydrated, self-contained KnowledgeBase (no store hooks, no
/// leases; every model resident and owned by the returned object).
[[nodiscard]] Result<core::KnowledgeBase> LoadFullKnowledgeBase(
    const std::string& path);

/// Rewrites a monolithic v1/v2 file as a v3 sharded store.
[[nodiscard]] Status MigrateV2ToV3(const std::string& v2_path,
                                   const std::string& out_dir,
                                   const BuildOptions& options = {});

/// Rewrites any store (or monolithic file) as a monolithic v2 file.
/// MigrateV2ToV3 then ExportMonolithic reproduces the v2 input
/// byte-for-byte (golden-tested): entry order, extraction hashes, and the
/// per-model encoding all survive the round trip.
[[nodiscard]] Status ExportMonolithic(const std::string& store_path,
                                      const std::string& out_path);

}  // namespace saged::kb

#endif  // SAGED_KB_KB_BUILDER_H_
