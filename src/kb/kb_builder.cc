#include "kb/kb_builder.h"

#include <filesystem>
#include <fstream>

#include "common/binary_io.h"
#include "core/serialization.h"
#include "kb/shard_store.h"
#include "kb/signature_index.h"

namespace saged::kb {

std::string ShardFilename(size_t shard) {
  std::string digits = std::to_string(shard);
  while (digits.size() < 4) digits.insert(digits.begin(), '0');
  return "shard-" + digits + ".sags";
}

Status WriteShardedStore(const core::KnowledgeBase& kb, const std::string& dir,
                         const BuildOptions& options) {
  if (kb.empty()) {
    return Status::InvalidArgument("refusing to write an empty sharded store");
  }
  for (const core::BaseModelEntry& entry : kb.entries()) {
    if (entry.model == nullptr) {
      return Status::InvalidArgument(
          "knowledge base is not fully hydrated; acquire every model "
          "(kb::LoadFullKnowledgeBase) before sharding it");
    }
  }
  SAGED_ASSIGN_OR_RETURN(
      SignatureIndex index,
      SignatureIndex::Build(kb, options.n_buckets, options.seed));

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create store directory '" + dir +
                           "': " + ec.message());
  }

  const size_t n_shards = index.n_buckets();
  for (size_t s = 0; s < n_shards; ++s) {
    const std::vector<size_t>& members = index.buckets()[s];
    std::string path = dir + "/" + ShardFilename(s);
    std::ofstream out(path, std::ios::binary);
    if (!out) return Status::IoError("cannot open '" + path + "' for writing");
    BinaryWriter writer(&out);
    writer.WriteU32(kShardMagic);
    writer.WriteU32(kStoreVersion);
    writer.WriteU32(static_cast<uint32_t>(s));
    writer.WriteU64(members.size());
    for (size_t e : members) {
      writer.WriteU64(e);
      SAGED_RETURN_NOT_OK(core::WriteBaseModel(*kb.entries()[e].model, &writer));
    }
    SAGED_RETURN_NOT_OK(writer.status());
    out.flush();
    if (!out) return Status::IoError("write to '" + path + "' failed");
  }

  std::string manifest_path = dir + "/" + kManifestFilename;
  std::ofstream out(manifest_path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open '" + manifest_path + "' for writing");
  }
  BinaryWriter writer(&out);
  writer.WriteU32(kManifestMagic);
  writer.WriteU32(kStoreVersion);
  kb.char_space().Save(&writer);
  writer.WriteU64(kb.extraction_hashes().size());
  for (uint64_t hash : kb.extraction_hashes()) writer.WriteU64(hash);
  writer.WriteU64(kb.size());
  const std::vector<uint32_t>& assignments = index.assignments();
  for (size_t e = 0; e < kb.size(); ++e) {
    const core::BaseModelEntry& entry = kb.entries()[e];
    writer.WriteString(entry.dataset);
    writer.WriteString(entry.column);
    writer.WriteF64Vector(entry.signature);
    writer.WriteU32(assignments[e]);
  }
  index.Save(&writer);
  writer.WriteU64(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    writer.WriteString(ShardFilename(s));
    writer.WriteU64(index.buckets()[s].size());
  }
  SAGED_RETURN_NOT_OK(writer.status());
  out.flush();
  if (!out) return Status::IoError("write to '" + manifest_path + "' failed");
  return Status::OK();
}

Result<core::KnowledgeBase> LoadFullKnowledgeBase(const std::string& path) {
  SAGED_ASSIGN_OR_RETURN(std::unique_ptr<ShardStore> store,
                         ShardStore::Open(path, ShardStore::OpenOptions{}));
  SAGED_ASSIGN_OR_RETURN(core::KnowledgeBase kb, store->MakeKnowledgeBase());
  SAGED_ASSIGN_OR_RETURN(core::ModelLease lease, store->AcquireAll(&kb));
  // The cache is unbounded here, so releasing the lease evicts nothing:
  // the knowledge base keeps ownership of every hydrated model. Drop the
  // store hooks and it is fully self-contained.
  lease.reset();
  kb.SetModelProvider(core::ModelProvider());
  kb.SetMatcherFactory(core::MatcherFactory());
  return kb;
}

Status MigrateV2ToV3(const std::string& v2_path, const std::string& out_dir,
                     const BuildOptions& options) {
  SAGED_ASSIGN_OR_RETURN(core::KnowledgeBase kb,
                         core::LoadKnowledgeBase(v2_path));
  return WriteShardedStore(kb, out_dir, options);
}

Status ExportMonolithic(const std::string& store_path,
                        const std::string& out_path) {
  SAGED_ASSIGN_OR_RETURN(core::KnowledgeBase kb,
                         LoadFullKnowledgeBase(store_path));
  return core::SaveKnowledgeBase(kb, out_path);
}

}  // namespace saged::kb
