#include "kb/model_cache.h"

#include <algorithm>

#include "common/contracts.h"

namespace saged::kb {

size_t ShardLruCache::ResidentCount() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s.resident ? 1 : 0;
  return n;
}

void ShardLruCache::MarkResident(size_t shard) {
  SAGED_DCHECK_LT(shard, shards_.size());
  shards_[shard].resident = true;
  shards_[shard].last_use = ++clock_;
}

void ShardLruCache::MarkEvicted(size_t shard) {
  SAGED_DCHECK_LT(shard, shards_.size());
  SAGED_DCHECK_EQ(shards_[shard].pins, 0u);
  shards_[shard].resident = false;
}

void ShardLruCache::Unpin(size_t shard) {
  SAGED_DCHECK_GT(shards_[shard].pins, 0u);
  --shards_[shard].pins;
}

void ShardLruCache::Touch(size_t shard) {
  SAGED_DCHECK_LT(shard, shards_.size());
  shards_[shard].last_use = ++clock_;
}

std::vector<size_t> ShardLruCache::EvictionVictims() const {
  if (capacity_ == 0) return {};
  size_t resident = ResidentCount();
  if (resident <= capacity_) return {};

  std::vector<size_t> evictable;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].resident && shards_[i].pins == 0) evictable.push_back(i);
  }
  std::sort(evictable.begin(), evictable.end(), [this](size_t a, size_t b) {
    if (shards_[a].last_use != shards_[b].last_use) {
      return shards_[a].last_use < shards_[b].last_use;
    }
    return a < b;
  });
  size_t excess = resident - capacity_;
  if (evictable.size() > excess) evictable.resize(excess);
  return evictable;
}

}  // namespace saged::kb
