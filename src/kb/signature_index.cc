#include "kb/signature_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contracts.h"
#include "common/telemetry.h"
#include "core/config.h"
#include "ml/kmeans.h"

namespace saged::kb {

namespace {

/// L2-normalized copy (zero vectors stay zero, mirroring the convention of
/// ml::CosineSimilarity, which maps them to similarity 0).
std::vector<double> Normalized(std::span<const double> v) {
  double norm_sq = 0.0;
  for (double x : v) norm_sq += x * x;
  std::vector<double> out(v.begin(), v.end());
  if (norm_sq > 0.0) {
    double inv = 1.0 / std::sqrt(norm_sq);
    for (double& x : out) x *= inv;
  }
  return out;
}

}  // namespace

size_t SignatureIndex::AutoBuckets(size_t n_entries) {
  if (n_entries == 0) return 1;
  auto buckets =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n_entries))));
  return std::max<size_t>(1, buckets);
}

size_t SignatureIndex::AutoProbes(size_t n_buckets) {
  return std::min(n_buckets, std::max<size_t>(4, n_buckets / 32));
}

Result<SignatureIndex> SignatureIndex::Build(const core::KnowledgeBase& kb,
                                             size_t n_buckets, uint64_t seed) {
  if (kb.empty()) {
    return Status::InvalidArgument(
        "cannot build a signature index over an empty knowledge base");
  }
  if (n_buckets == 0) n_buckets = AutoBuckets(kb.size());

  ml::Matrix normalized;
  for (const auto& entry : kb.entries()) {
    normalized.AppendRow(Normalized(entry.signature));
  }

  ml::KMeans kmeans(std::min(n_buckets, kb.size()), 100, seed);
  SAGED_RETURN_NOT_OK(kmeans.Fit(normalized));

  SignatureIndex index;
  index.centroids_ = kmeans.centroids();
  index.assignments_.reserve(kb.size());
  for (size_t label : kmeans.labels()) {
    index.assignments_.push_back(static_cast<uint32_t>(label));
  }
  index.RebuildBuckets(kmeans.k());
  index.PackSignatures(kb);
  return index;
}

void SignatureIndex::PackSignatures(const core::KnowledgeBase& kb) {
  SAGED_CHECK_EQ(kb.size(), n_entries())
      << "signature index covers a different knowledge base";
  const size_t width = kb.entries().front().signature.size();
  packed_begin_.assign(buckets_.size() + 1, 0);
  for (size_t b = 0; b < buckets_.size(); ++b) {
    packed_begin_[b + 1] = packed_begin_[b] + buckets_[b].size();
  }
  packed_ = ml::Matrix(n_entries(), width);
  size_t row = 0;
  for (const auto& members : buckets_) {
    for (size_t e : members) {
      const auto& signature = kb.entries()[e].signature;
      SAGED_CHECK_EQ(signature.size(), width)
          << "knowledge-base signatures disagree on width";
      std::copy(signature.begin(), signature.end(), packed_.Row(row).begin());
      ++row;
    }
  }
}

void SignatureIndex::RebuildBuckets(size_t n_buckets) {
  buckets_.assign(n_buckets, {});
  for (size_t i = 0; i < assignments_.size(); ++i) {
    buckets_[assignments_[i]].push_back(i);
  }
}

std::vector<size_t> SignatureIndex::ProbeOrder(
    const std::vector<double>& signature) const {
  return TopBuckets(signature, n_buckets());
}

std::vector<size_t> SignatureIndex::TopBuckets(
    const std::vector<double>& signature, size_t probes) const {
  std::vector<double> query = Normalized(signature);
  std::vector<double> dist(centroids_.rows());
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    dist[c] = ml::EuclideanDistance(centroids_.Row(c), query);
  }
  std::vector<size_t> order(centroids_.rows());
  for (size_t c = 0; c < order.size(); ++c) order[c] = c;
  auto key = [&](size_t a, size_t b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  };
  // The key is a total order (bucket id breaks ties), so nth_element picks
  // the same prefix set a full sort would; sorting just that prefix then
  // reproduces ProbeOrder's order exactly.
  if (probes < order.size()) {
    std::nth_element(order.begin(), order.begin() + probes, order.end(), key);
    order.resize(probes);
  }
  std::sort(order.begin(), order.end(), key);
  return order;
}

std::vector<size_t> SignatureIndex::Candidates(
    const std::vector<double>& signature, size_t probes) const {
  if (probes >= n_buckets()) {
    // Exact-scan degenerate: every entry, ascending, without touching the
    // centroids — byte-identical input to what CosineMatcher scans.
    std::vector<size_t> all(n_entries());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> order = TopBuckets(signature, probes);
  probes = std::min(probes, order.size());
  size_t total = 0;
  for (size_t p = 0; p < probes; ++p) total += buckets_[order[p]].size();
  std::vector<size_t> out;
  out.reserve(total);
  std::vector<size_t> bounds{0};
  for (size_t p = 0; p < probes; ++p) {
    const auto& members = buckets_[order[p]];
    out.insert(out.end(), members.begin(), members.end());
    bounds.push_back(out.size());
  }
  // Candidate order is part of the selection contract (SelectRelevant keeps
  // survivor order below the cap): ascending, as if scanning a sub-KB.
  // `out` is a concatenation of ascending runs (each bucket keeps entry
  // order), so pairwise merges reach that order in O(C log P) — a full
  // re-sort's O(C log C) would hand back a big slice of the scan time the
  // probing just saved.
  while (bounds.size() > 2) {
    std::vector<size_t> merged{bounds[0]};
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(out.begin() + bounds[i], out.begin() + bounds[i + 1],
                         out.begin() + bounds[i + 2]);
      merged.push_back(bounds[i + 2]);
    }
    if (bounds.size() % 2 == 0) merged.push_back(bounds.back());
    bounds = std::move(merged);
  }
  return out;
}

void SignatureIndex::Save(BinaryWriter* writer) const {
  writer->WriteU64(centroids_.rows());
  writer->WriteU64(centroids_.cols());
  for (size_t r = 0; r < centroids_.rows(); ++r) {
    for (double v : centroids_.Row(r)) writer->WriteF64(v);
  }
  writer->WriteU64(assignments_.size());
  for (uint32_t a : assignments_) writer->WriteU32(a);
}

Result<SignatureIndex> SignatureIndex::Load(BinaryReader* reader) {
  SignatureIndex index;
  SAGED_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
  SAGED_ASSIGN_OR_RETURN(uint64_t cols, reader->ReadU64());
  if (rows == 0 || rows > BinaryReader::kMaxLength ||
      cols > BinaryReader::kMaxLength) {
    return Status::IoError("corrupt signature-index centroid shape");
  }
  index.centroids_ = ml::Matrix(rows, cols);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      SAGED_ASSIGN_OR_RETURN(index.centroids_.At(r, c), reader->ReadF64());
    }
  }
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  if (n > BinaryReader::kMaxLength) {
    return Status::IoError("corrupt signature-index assignment count");
  }
  index.assignments_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SAGED_ASSIGN_OR_RETURN(uint32_t a, reader->ReadU32());
    if (a >= rows) {
      return Status::IoError("signature-index assignment out of range");
    }
    index.assignments_.push_back(a);
  }
  index.RebuildBuckets(rows);
  return index;
}

IndexedMatcher::IndexedMatcher(const core::KnowledgeBase* kb,
                               const SignatureIndex* index, double threshold,
                               size_t max_models, size_t probes)
    : kb_(kb),
      index_(index),
      threshold_(threshold),
      max_models_(max_models),
      probes_(probes) {}

std::vector<size_t> IndexedMatcher::Match(
    const std::vector<double>& signature) const {
  if (!index_->packed() || probes_ >= index_->n_buckets()) {
    // Degenerate (probe everything) or unpacked index: explicit candidate
    // list through the shared scan — at probe=all this is byte-identical
    // input to what CosineMatcher scans.
    std::vector<size_t> candidates = index_->Candidates(signature, probes_);
    SAGED_COUNTER_INC("kb.index_queries");
    SAGED_COUNTER_ADD("kb.index_candidates", candidates.size());
    return core::SelectRelevant(*kb_, signature, std::move(candidates),
                                threshold_, max_models_);
  }

  // Fast path: score each probed bucket as one contiguous sweep over the
  // packed bucket-major signatures, then merge the (entry, sim) runs into
  // ascending entry order — the candidate order the selection contract
  // requires (see Candidates()).
  std::vector<size_t> order = index_->TopBuckets(signature, probes_);
  const size_t probes = std::min(probes_, order.size());
  size_t total = 0;
  for (size_t p = 0; p < probes; ++p) {
    total += index_->buckets()[order[p]].size();
  }
  std::vector<std::pair<size_t, double>> scored;
  scored.reserve(total);
  std::vector<size_t> bounds{0};
  for (size_t p = 0; p < probes; ++p) {
    const size_t bucket = order[p];
    const auto& members = index_->buckets()[bucket];
    const size_t row0 = index_->packed_begin(bucket);
    const auto& packed = index_->packed_signatures();
    for (size_t i = 0; i < members.size(); ++i) {
      scored.emplace_back(
          members[i], ml::CosineSimilarity(packed.Row(row0 + i), signature));
    }
    bounds.push_back(scored.size());
  }
  while (bounds.size() > 2) {
    std::vector<size_t> merged{bounds[0]};
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(scored.begin() + bounds[i],
                         scored.begin() + bounds[i + 1],
                         scored.begin() + bounds[i + 2]);
      merged.push_back(bounds[i + 2]);
    }
    if (bounds.size() % 2 == 0) merged.push_back(bounds.back());
    bounds = std::move(merged);
  }

  std::vector<size_t> candidates(scored.size());
  std::vector<double> sims(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    candidates[i] = scored[i].first;
    sims[i] = scored[i].second;
  }
  SAGED_COUNTER_INC("kb.index_queries");
  SAGED_COUNTER_ADD("kb.index_candidates", candidates.size());
  return core::SelectRelevant(*kb_, signature, std::move(candidates),
                              std::move(sims), threshold_, max_models_);
}

void AttachIndex(core::KnowledgeBase* kb, const SignatureIndex* index) {
  kb->SetMatcherFactory(
      [index](const core::SagedConfig& config, const core::KnowledgeBase* kb)
          -> Result<std::unique_ptr<core::Matcher>> {
        if (kb->size() != index->n_entries()) {
          return Status::InvalidArgument(
              "signature index covers a different knowledge base (entry "
              "counts differ); rebuild it with `saged kb build-index`");
        }
        size_t probes = config.index_probes != 0
                            ? config.index_probes
                            : SignatureIndex::AutoProbes(index->n_buckets());
        return std::unique_ptr<core::Matcher>(
            std::make_unique<IndexedMatcher>(kb, index,
                                             config.cosine_threshold,
                                             config.max_models_per_column,
                                             probes));
      });
}

}  // namespace saged::kb
