#include "kb/shard_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <utility>

#include "common/binary_io.h"
#include "common/executor.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/serialization.h"
#include "kb/kb_builder.h"

namespace saged::kb {

struct ShardStore::LeaseState {
  ShardStore* store;
  std::vector<size_t> shards;

  LeaseState(ShardStore* s, std::vector<size_t> pinned)
      : store(s), shards(std::move(pinned)) {}
  ~LeaseState() { store->ReleaseShards(shards); }
};

Result<std::unique_ptr<ShardStore>> ShardStore::Open(
    const std::string& path, const OpenOptions& options) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return OpenManifest(path, path + "/" + kManifestFilename, options);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  BinaryReader reader(&in);
  SAGED_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  in.close();
  if (magic == kManifestMagic) {
    std::string dir = std::filesystem::path(path).parent_path().string();
    if (dir.empty()) dir = ".";
    return OpenManifest(dir, path, options);
  }
  if (magic == kMonolithicMagic) return OpenV2(path, options);
  return Status::IoError("'" + path +
                         "' is neither a knowledge base nor a sharded store");
}

Result<std::unique_ptr<ShardStore>> ShardStore::OpenManifest(
    const std::string& dir, const std::string& manifest_path,
    const OpenOptions& options) {
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + manifest_path + "'");
  BinaryReader reader(&in);
  SAGED_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kManifestMagic) {
    return Status::IoError("'" + manifest_path + "' is not a store manifest");
  }
  SAGED_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kStoreVersion) {
    return Status::IoError("unsupported sharded-store version");
  }

  std::unique_ptr<ShardStore> store(new ShardStore());
  store->base_dir_ = dir;
  SAGED_RETURN_NOT_OK(store->char_space_.Load(&reader));

  SAGED_ASSIGN_OR_RETURN(uint64_t n_hashes, reader.ReadU64());
  if (n_hashes > BinaryReader::kMaxLength) {
    return Status::IoError("corrupt extraction hash count");
  }
  store->extraction_hashes_.reserve(n_hashes);
  for (uint64_t i = 0; i < n_hashes; ++i) {
    SAGED_ASSIGN_OR_RETURN(uint64_t hash, reader.ReadU64());
    store->extraction_hashes_.push_back(hash);
  }

  SAGED_ASSIGN_OR_RETURN(uint64_t n_entries, reader.ReadU64());
  if (n_entries > BinaryReader::kMaxLength) {
    return Status::IoError("corrupt entry count");
  }
  store->entries_.reserve(n_entries);
  for (uint64_t i = 0; i < n_entries; ++i) {
    EntryMeta meta;
    SAGED_ASSIGN_OR_RETURN(meta.dataset, reader.ReadString());
    SAGED_ASSIGN_OR_RETURN(meta.column, reader.ReadString());
    SAGED_ASSIGN_OR_RETURN(meta.signature, reader.ReadF64Vector());
    SAGED_ASSIGN_OR_RETURN(meta.shard, reader.ReadU32());
    store->entries_.push_back(std::move(meta));
  }

  if (n_entries > 0) {
    SAGED_ASSIGN_OR_RETURN(store->index_, SignatureIndex::Load(&reader));
    store->has_index_ = true;
    if (store->index_.n_entries() != n_entries) {
      return Status::IoError("signature index disagrees with entry count");
    }
  }

  SAGED_ASSIGN_OR_RETURN(uint64_t n_shards, reader.ReadU64());
  if (n_shards > BinaryReader::kMaxLength) {
    return Status::IoError("corrupt shard count");
  }
  store->shards_.reserve(n_shards);
  for (uint64_t s = 0; s < n_shards; ++s) {
    ShardMeta meta;
    SAGED_ASSIGN_OR_RETURN(meta.filename, reader.ReadString());
    SAGED_ASSIGN_OR_RETURN(meta.n_models, reader.ReadU64());
    store->shards_.push_back(std::move(meta));
  }

  store->shard_members_.assign(n_shards, {});
  for (size_t e = 0; e < store->entries_.size(); ++e) {
    uint32_t s = store->entries_[e].shard;
    if (s >= n_shards) {
      return Status::IoError("entry references a shard past the shard table");
    }
    store->shard_members_[s].push_back(e);
  }
  for (uint64_t s = 0; s < n_shards; ++s) {
    if (store->shard_members_[s].size() != store->shards_[s].n_models) {
      return Status::IoError("shard table model counts disagree with entries");
    }
  }

  store->cache_ = ShardLruCache(n_shards, options.cache_shards);
  // saged-lint: allow(lock-discipline): Open constructs the store before any other thread can see it; mu_ has no possible contender yet
  store->loading_.assign(n_shards, false);
  return store;
}

Result<std::unique_ptr<ShardStore>> ShardStore::OpenV2(
    const std::string& path, const OpenOptions& options) {
  SAGED_ASSIGN_OR_RETURN(core::KnowledgeBase full,
                         core::LoadKnowledgeBase(path));

  std::unique_ptr<ShardStore> store(new ShardStore());
  store->v2_path_ = path;
  store->source_version_ = 2;
  store->char_space_ = full.char_space();
  store->extraction_hashes_ = full.extraction_hashes();

  if (!full.empty()) {
    // Index buckets are a matching concern only here: the store has one
    // "shard" (the v2 file), so probe locality cannot reduce I/O.
    SAGED_ASSIGN_OR_RETURN(store->index_, SignatureIndex::Build(full, 0, 42));
    store->has_index_ = true;
  }

  store->entries_.reserve(full.size());
  store->shard_members_.assign(1, {});
  for (size_t e = 0; e < full.size(); ++e) {
    core::BaseModelEntry* src = full.mutable_entry(e);
    EntryMeta meta;
    meta.dataset = std::move(src->dataset);
    meta.column = std::move(src->column);
    meta.signature = std::move(src->signature);
    meta.shard = 0;
    store->entries_.push_back(std::move(meta));
    store->shard_members_[0].push_back(e);
  }
  store->shards_.push_back(ShardMeta{path, full.size()});

  store->cache_ = ShardLruCache(1, options.cache_shards);
  // saged-lint: allow(lock-discipline): Open constructs the store before any other thread can see it; mu_ has no possible contender yet
  store->loading_.assign(1, false);
  return store;
}

Result<core::KnowledgeBase> ShardStore::MakeKnowledgeBase() {
  core::KnowledgeBase kb(char_space_.capacity());
  *kb.mutable_char_space() = char_space_;
  for (const EntryMeta& meta : entries_) {
    core::BaseModelEntry entry;
    entry.dataset = meta.dataset;
    entry.column = meta.column;
    entry.signature = meta.signature;
    kb.AddEntry(std::move(entry));
  }
  for (uint64_t hash : extraction_hashes_) kb.RecordExtraction(hash);
  kb.SetModelProvider(
      [this](core::KnowledgeBase* target, const std::vector<size_t>& indices) {
        return Acquire(target, indices);
      });
  if (has_index_) {
    // The manifest carries only centroids + assignments; rebuild the
    // bucket-major packed signature copy the probing matcher scans. Runs at
    // open time (MakeKnowledgeBase precedes any query), so queries never
    // see a half-packed index.
    if (!index_.packed()) index_.PackSignatures(kb);
    AttachIndex(&kb, &index_);
  }
  return kb;
}

Result<core::ModelLease> ShardStore::AcquireAll(core::KnowledgeBase* kb) {
  std::vector<size_t> all(entries_.size());
  std::iota(all.begin(), all.end(), 0);
  return Acquire(kb, all);
}

Result<core::ModelLease> ShardStore::Acquire(
    core::KnowledgeBase* kb, const std::vector<size_t>& indices) {
  if (kb == nullptr || kb->size() != entries_.size()) {
    return Status::InvalidArgument(
        "knowledge base does not belong to this store");
  }
  std::vector<size_t> shards;
  shards.reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= entries_.size()) {
      return Status::InvalidArgument("model index past the knowledge base");
    }
    shards.push_back(entries_[idx].shard);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  if (shards.empty()) return core::ModelLease();

  std::unique_lock<std::mutex> lock(mu_);
  if (hydrated_kb_ != kb) {
    // Re-target: residency refers to entries of one knowledge base at a
    // time. Wait out in-flight loads (their claim pins hydrated_kb_'s
    // identity), then require every lease to be gone before dropping the
    // old object's models from the book-keeping.
    cv_.wait(lock, [this] {
      return std::none_of(loading_.begin(), loading_.end(),
                          [](bool b) { return b; });
    });
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (cache_.PinCount(s) != 0) {
        return Status::InvalidArgument(
            "cannot serve a new knowledge base while a lease on the "
            "previous one is still alive");
      }
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (cache_.IsResident(s)) cache_.MarkEvicted(s);
    }
    hydrated_kb_ = kb;
  }

  for (size_t s : shards) {
    if (cache_.IsResident(s)) SAGED_COUNTER_INC("kb.cache_hits");
  }

  Status status = Status::OK();
  for (;;) {
    std::vector<size_t> to_load;
    bool peer_loading = false;
    for (size_t s : shards) {
      if (cache_.IsResident(s)) continue;
      if (loading_[s]) {
        peer_loading = true;
      } else {
        to_load.push_back(s);
      }
    }
    if (to_load.empty() && !peer_loading) break;
    if (to_load.empty()) {
      // A concurrent Acquire is parsing a shard we need; it will notify.
      cv_.wait(lock);
      continue;
    }

    for (size_t s : to_load) loading_[s] = true;
    // Parse outside the lock: loads are the slow path, and the shared
    // Executor's help-while-waiting must never run store code under mu_.
    lock.unlock();
    std::vector<Status> load_status(to_load.size());
    std::vector<std::vector<LoadedModel>> loaded(to_load.size());
    Executor::Shared().ParallelFor(to_load.size(), [&](size_t i) {
      load_status[i] = LoadShardFile(to_load[i], &loaded[i]);
    });
    lock.lock();
    for (size_t i = 0; i < to_load.size(); ++i) {
      size_t s = to_load[i];
      loading_[s] = false;
      if (!load_status[i].ok()) {
        if (status.ok()) status = load_status[i];
        continue;
      }
      for (LoadedModel& m : loaded[i]) {
        hydrated_kb_->mutable_entry(m.entry_index)->model = std::move(m.model);
      }
      cache_.MarkResident(s);
    }
    cv_.notify_all();
    if (!status.ok()) return status;
  }

  for (size_t s : shards) {
    cache_.Pin(s);
    cache_.Touch(s);
  }
  EvictToCapacity();
  SAGED_GAUGE_SET("kb.resident_shards", cache_.ResidentCount());
  return core::ModelLease(std::make_shared<LeaseState>(this, std::move(shards)));
}

void ShardStore::ReleaseShards(const std::vector<size_t>& shards) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t s : shards) cache_.Unpin(s);
  EvictToCapacity();
  SAGED_GAUGE_SET("kb.resident_shards", cache_.ResidentCount());
}

void ShardStore::EvictToCapacity() {
  for (size_t s : cache_.EvictionVictims()) {
    if (hydrated_kb_ != nullptr) {
      for (size_t e : shard_members_[s]) {
        hydrated_kb_->mutable_entry(e)->model.reset();
      }
    }
    cache_.MarkEvicted(s);
    SAGED_COUNTER_INC("kb.evictions");
  }
}

Status ShardStore::LoadShardFile(size_t shard,
                                 std::vector<LoadedModel>* out) const {
  SAGED_TRACE_SPAN_ARG("kb/load_shard", shard);
  SAGED_COUNTER_INC("kb.shard_loads");

  if (source_version_ == 2) {
    // The one v2 "shard" is the monolithic file; re-parse it whole.
    SAGED_ASSIGN_OR_RETURN(core::KnowledgeBase full,
                           core::LoadKnowledgeBase(v2_path_));
    if (full.size() != entries_.size()) {
      return Status::IoError("knowledge base '" + v2_path_ +
                             "' changed on disk since the store opened");
    }
    out->reserve(full.size());
    for (size_t e = 0; e < full.size(); ++e) {
      out->push_back(LoadedModel{e, std::move(full.mutable_entry(e)->model)});
    }
    return Status::OK();
  }

  std::string path = base_dir_ + "/" + shards_[shard].filename;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open shard file '" + path + "'");
  BinaryReader reader(&in);
  SAGED_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kShardMagic) {
    return Status::IoError("'" + path + "' is not a SAGED shard file");
  }
  SAGED_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kStoreVersion) {
    return Status::IoError("unsupported shard version in '" + path + "'");
  }
  SAGED_ASSIGN_OR_RETURN(uint32_t shard_id, reader.ReadU32());
  if (shard_id != shard) {
    return Status::IoError("shard file '" + path + "' carries the wrong id");
  }
  SAGED_ASSIGN_OR_RETURN(uint64_t n, reader.ReadU64());
  if (n != shards_[shard].n_models) {
    return Status::IoError("shard '" + path +
                           "' model count disagrees with the manifest");
  }
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LoadedModel m;
    SAGED_ASSIGN_OR_RETURN(uint64_t entry_index, reader.ReadU64());
    if (entry_index >= entries_.size() ||
        entries_[entry_index].shard != shard) {
      return Status::IoError("shard '" + path +
                             "' holds a model for a foreign entry");
    }
    m.entry_index = entry_index;
    SAGED_ASSIGN_OR_RETURN(m.model, core::ReadBaseModel(&reader));
    out->push_back(std::move(m));
  }
  return Status::OK();
}

StoreStats ShardStore::GetStats() const {
  StoreStats stats;
  stats.version = source_version_;
  stats.n_entries = entries_.size();
  stats.n_shards = shards_.size();
  stats.n_buckets = has_index_ ? index_.n_buckets() : 0;
  stats.shard_sizes.reserve(shards_.size());
  for (const ShardMeta& meta : shards_) stats.shard_sizes.push_back(meta.n_models);
  std::lock_guard<std::mutex> lock(mu_);
  stats.resident_shards = cache_.ResidentCount();
  stats.cache_capacity = cache_.capacity();
  return stats;
}

}  // namespace saged::kb
