// Tests for the run ledger (common/run_manifest.h): manifest JSON schema,
// minified vs pretty forms, append-only ledger.jsonl semantics, the
// predictable `<tool>-last.json` path with name sanitization, build
// provenance accessors, and IoError reporting on unwritable directories.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/run_manifest.h"

namespace saged {
namespace {

RunManifest SampleManifest() {
  RunManifest m;
  m.tool = "saged_cli detect";
  m.command_line = "saged_cli detect --config cfg.json";
  m.config_hash = "deadbeef01234567";
  m.datasets.push_back({"hospital", "0011223344556677"});
  m.datasets.push_back({"flights", "8899aabbccddeeff"});
  m.threads = 8;
  m.wall_ms = 123.5;
  m.peak_rss_bytes = 1048576;
  m.metrics["detect.f1"] = 0.91;
  m.metrics["detect.cell_ms.p99"] = 4.25;
  m.extra["note"] = "unit test";
  return m;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class RunManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runs_dir_ = ::testing::TempDir() + "/saged_runs_test";
    std::filesystem::remove_all(runs_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(runs_dir_); }

  std::string runs_dir_;
};

TEST_F(RunManifestTest, ManifestJsonCarriesAllProvenanceFields) {
  std::string json = ManifestJson(SampleManifest(), /*pretty=*/false);
  for (const char* field :
       {"\"schema_version\":1", "\"timestamp_utc\":", "\"tool\":",
        "\"command_line\":", "\"git_sha\":", "\"build_flags\":",
        "\"config_hash\":\"deadbeef01234567\"", "\"threads\":8",
        "\"wall_ms\":123.5", "\"peak_rss_bytes\":1048576", "\"datasets\":",
        "\"hospital\":\"0011223344556677\"",
        "\"flights\":\"8899aabbccddeeff\"", "\"metrics\":",
        "\"detect.cell_ms.p99\":4.25", "\"detect.f1\":0.91", "\"extra\":",
        "\"note\":\"unit test\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
}

TEST_F(RunManifestTest, MinifiedManifestIsSingleLine) {
  std::string json = ManifestJson(SampleManifest(), /*pretty=*/false);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  // Pretty form differs only in whitespace; it must still contain the data.
  std::string pretty = ManifestJson(SampleManifest(), /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("\"detect.f1\""), std::string::npos);
}

TEST_F(RunManifestTest, BuildProvenanceAccessorsAreNonEmpty) {
  EXPECT_FALSE(BuildGitSha().empty());
  EXPECT_FALSE(BuildFlags().empty());
}

TEST_F(RunManifestTest, Iso8601TimestampShape) {
  std::string ts = Iso8601UtcNow();
  // 2026-08-08T12:34:56Z
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], 'Z');
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u, 11u, 12u, 14u, 15u, 17u,
                   18u}) {
    EXPECT_TRUE(ts[i] >= '0' && ts[i] <= '9') << "at index " << i;
  }
  // The container clock says 2026; accept a wide window so the test does
  // not rot.
  int year = std::stoi(ts.substr(0, 4));
  EXPECT_GE(year, 2024);
  EXPECT_LE(year, 2100);
}

TEST_F(RunManifestTest, AppendCreatesLedgerAndLastFile) {
  auto status = AppendRunManifest(runs_dir_, SampleManifest());
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto lines = ReadLines(runs_dir_ + "/ledger.jsonl");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"saged_cli detect\""), std::string::npos);
  // Tool name sanitized for the filename: space -> '_'.
  std::string last = ReadWholeFile(runs_dir_ + "/saged_cli_detect-last.json");
  EXPECT_NE(last.find("\"detect.cell_ms.p99\""), std::string::npos);
}

TEST_F(RunManifestTest, LedgerIsAppendOnlyAndLastIsOverwritten) {
  RunManifest first = SampleManifest();
  first.wall_ms = 100.0;
  RunManifest second = SampleManifest();
  second.wall_ms = 200.0;
  ASSERT_TRUE(AppendRunManifest(runs_dir_, first).ok());
  ASSERT_TRUE(AppendRunManifest(runs_dir_, second).ok());
  auto lines = ReadLines(runs_dir_ + "/ledger.jsonl");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"wall_ms\":100"), std::string::npos);
  EXPECT_NE(lines[1].find("\"wall_ms\":200"), std::string::npos);
  // `<tool>-last.json` holds only the latest run.
  std::string last = ReadWholeFile(runs_dir_ + "/saged_cli_detect-last.json");
  EXPECT_NE(last.find("200"), std::string::npos);
  EXPECT_EQ(last.find("\"wall_ms\": 100"), std::string::npos);
}

TEST_F(RunManifestTest, EmptyToolNameFallsBackToRun) {
  RunManifest m;
  m.tool = "";
  ASSERT_TRUE(AppendRunManifest(runs_dir_, m).ok());
  EXPECT_TRUE(std::filesystem::exists(runs_dir_ + "/run-last.json"));
}

TEST_F(RunManifestTest, UnwritableDirectoryReportsIoErrorWithPath) {
  // A path nested under a regular file can never become a directory.
  std::string blocker = ::testing::TempDir() + "/saged_runs_blocker";
  {
    std::ofstream out(blocker);
    out << "not a directory";
  }
  std::string bad_dir = blocker + "/runs";
  auto status = AppendRunManifest(bad_dir, SampleManifest());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find(bad_dir), std::string::npos);
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace saged
