// End-to-end tests for the saged_serve daemon: a real server on a real
// local socket, driven through the real client. Byte-identity against the
// direct in-process `Saged::Run`, FIFO-fair scheduling, bounded admission
// with typed errors, malformed-input survival, and clean shutdown.
//
// This box has few cores, so every concurrency assertion here is built
// from deterministic constructions (dedicated executors, promise-gated
// blockers, zero-capacity queues) — never from timing races.

#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "core/detector.h"
#include "data/csv.h"
#include "data/mask_io.h"
#include "datagen/datasets.h"
#include "serve/client.h"
#include "serve/scheduler.h"

namespace saged::serve {
namespace {

// ---------------------------------------------------------------------------
// Scheduler unit tests (no sockets): fairness and bounded admission.
// ---------------------------------------------------------------------------

TEST(RequestScheduler, RoundRobinAcrossConnectionsFifoWithin) {
  Executor executor(1);
  RequestScheduler scheduler(&executor, {/*max_queue=*/16, /*max_inflight=*/1});

  // A gate (on its own connection, so it spends its own round-robin turn)
  // occupies the single inflight slot while the queues fill: the dispatch
  // order below is decided by the scheduler, not by arrival races.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Admit(99, [opened] { opened.wait(); }).ok());

  std::vector<std::string> order;
  std::mutex order_mu;
  auto record = [&](std::string tag) {
    return [&order, &order_mu, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  // Connection 1 pipelines three requests; connection 2 sends one. Fair
  // dispatch interleaves them instead of draining connection 1 first.
  ASSERT_TRUE(scheduler.Admit(1, record("a1")).ok());
  ASSERT_TRUE(scheduler.Admit(1, record("a2")).ok());
  ASSERT_TRUE(scheduler.Admit(1, record("a3")).ok());
  ASSERT_TRUE(scheduler.Admit(2, record("b1")).ok());
  EXPECT_EQ(scheduler.QueueDepth(), 4u);

  gate.set_value();
  scheduler.Drain();
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "a3"}))
      << "round-robin across connections, FIFO within each";
}

TEST(RequestScheduler, BoundedAdmissionRejectsWithOutOfRange) {
  Executor executor(1);
  RequestScheduler scheduler(&executor, {/*max_queue=*/2, /*max_inflight=*/1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(scheduler.Admit(1, [opened] { opened.wait(); }).ok());

  ASSERT_TRUE(scheduler.Admit(1, [] {}).ok());
  ASSERT_TRUE(scheduler.Admit(2, [] {}).ok());
  auto rejected = scheduler.Admit(3, [] {});
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);

  gate.set_value();
  scheduler.Drain();
  // Admitted work always ran; the rejected one never did.
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_EQ(scheduler.Inflight(), 0u);
}

TEST(RequestScheduler, DrainRejectsNewWork) {
  Executor executor(1);
  RequestScheduler scheduler(&executor, {/*max_queue=*/4, /*max_inflight=*/1});
  scheduler.Drain();
  auto rejected = scheduler.Admit(1, [] {});
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// End-to-end fixture: one trained engine + CSVs on disk, shared by every
// server test (training is the expensive part; servers are cheap).
// ---------------------------------------------------------------------------

struct ServeWorld {
  std::string dir;
  std::string data_csv;
  std::string mask_csv;
  core::SagedConfig config;
  std::unique_ptr<core::Saged> engine;
  core::DetectionResult direct;  // reference run, same CSVs

  ServeWorld() {
    char tmpl[] = "/tmp/saged_serve_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    SAGED_CHECK(made != nullptr);
    dir = made;

    datagen::MakeOptions gen;
    gen.rows = 120;
    config.labeling_budget = 15;
    config.w2v.dim = 6;
    config.w2v.epochs = 1;
    auto target = datagen::MakeDataset("beers", gen);
    SAGED_CHECK(target.ok());
    data_csv = dir + "/dirty.csv";
    mask_csv = dir + "/mask.csv";
    SAGED_CHECK(WriteCsv(target->dirty, data_csv).ok());
    SAGED_CHECK(
        WriteCsv(MaskToTable(target->mask, target->dirty.ColumnNames()),
                 mask_csv)
            .ok());

    engine = std::make_unique<core::Saged>(config);
    for (const char* name : {"adult", "movies"}) {
      auto hist = datagen::MakeDataset(name, gen);
      SAGED_CHECK(hist.ok());
      SAGED_CHECK(engine->AddHistoricalDataset(hist->dirty, hist->mask).ok());
    }

    auto oracle_table = ReadCsv(mask_csv);
    SAGED_CHECK(oracle_table.ok());
    auto truth = TableToMask(*oracle_table);
    SAGED_CHECK(truth.ok());
    auto run = engine->Run(
        core::DetectionRequest::ForCsv(data_csv, core::MaskOracle(*truth)));
    SAGED_CHECK(run.ok()) << run.status().ToString();
    direct = std::move(run).value();
  }
};

ServeWorld& World() {
  static auto& world = *new ServeWorld;
  return world;
}

/// A fresh server per test on its own socket path.
struct TestServer {
  explicit TestServer(ServerOptions overrides = {}) {
    static int counter = 0;
    options = overrides;
    options.socket_path = World().dir + "/s" + std::to_string(counter++) +
                          ".sock";
    server = std::make_unique<SagedServer>(World().engine.get(), options);
    auto started = server->Start();
    SAGED_CHECK(started.ok()) << started.ToString();
  }
  ~TestServer() { server->Stop(); }

  ServerOptions options;
  std::unique_ptr<SagedServer> server;
};

DetectRequestMsg WorldRequest(uint64_t id) {
  DetectRequestMsg msg;
  msg.request_id = id;
  msg.data_path = World().data_csv;
  msg.oracle_mask_path = World().mask_csv;
  return msg;
}

TEST(SagedServer, PingPong) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok()) << "connection survives repeated pings";
}

TEST(SagedServer, ServedMaskIsByteIdenticalToDirectRun) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  auto reply = client.Detect(WorldRequest(17));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->error_message;
  EXPECT_EQ(reply->request_id, 17u);
  EXPECT_TRUE(reply->response.mask == World().direct.mask);
  EXPECT_EQ(reply->response.labeled_tuples, World().direct.labeled_tuples);
  EXPECT_EQ(reply->response.column_names.size(),
            World().direct.mask.cols());
}

TEST(SagedServer, PipelinedRequestsAnsweredByRequestId) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  for (uint64_t id : {101, 102, 103}) {
    ASSERT_TRUE(client.SendDetectRequest(WorldRequest(id)).ok());
  }
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(reply->ok()) << reply->error_message;
    ids.push_back(reply->request_id);
    EXPECT_TRUE(reply->response.mask == World().direct.mask);
  }
  // One connection = one FIFO queue: pipelined replies come back in order.
  EXPECT_EQ(ids, (std::vector<uint64_t>{101, 102, 103}));
}

TEST(SagedServer, EightConcurrentClientsGetByteIdenticalMasks) {
  TestServer ts;
  constexpr size_t kClients = 8;
  // A dedicated pool for the clients: they block in recv() until the
  // server's executor runs the detection, so they must not occupy it.
  Executor clients(kClients);
  std::vector<std::future<void>> done;
  for (size_t c = 0; c < kClients; ++c) {
    done.push_back(clients.Submit([&ts, c] {
      SagedClient client;
      auto connected = client.Connect(ts.options.socket_path);
      ASSERT_TRUE(connected.ok()) << connected.ToString();
      auto reply = client.Detect(WorldRequest(1000 + c));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      ASSERT_TRUE(reply->ok()) << reply->error_message;
      EXPECT_EQ(reply->request_id, 1000 + c);
      EXPECT_TRUE(reply->response.mask == World().direct.mask)
          << "client " << c << " saw a different mask";
    }));
  }
  for (auto& f : done) f.get();
}

TEST(SagedServer, PerRequestConfigOverrideDoesNotTouchTheEngine) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  DetectRequestMsg msg = WorldRequest(5);
  msg.config_flags = "budget=8";
  auto reply = client.Detect(msg);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->error_message;
  EXPECT_EQ(reply->response.labeled_tuples, 8u)
      << "the override should shrink this request's budget";
  // The next plain request sees the server's base config again.
  auto plain = client.Detect(WorldRequest(6));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->ok());
  EXPECT_TRUE(plain->response.mask == World().direct.mask);
}

TEST(SagedServer, StreamedRequestMatchesStreamedDirectRun) {
  auto oracle_table = ReadCsv(World().mask_csv);
  ASSERT_TRUE(oracle_table.ok());
  auto truth = TableToMask(*oracle_table);
  ASSERT_TRUE(truth.ok());
  core::DetectionOptions streamed;
  streamed.stream = true;
  streamed.block_rows = 40;
  auto direct = World().engine->Run(core::DetectionRequest::ForCsv(
      World().data_csv, core::MaskOracle(*truth), streamed));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  DetectRequestMsg msg = WorldRequest(9);
  msg.options = streamed;
  auto reply = client.Detect(msg);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok()) << reply->error_message;
  EXPECT_TRUE(reply->response.mask == direct->mask);
}

// Typed errors, not crashes or silence.

TEST(SagedServer, ZeroCapacityQueueAnswersQueueFull) {
  ServerOptions opts;
  opts.max_queue = 0;  // every admission attempt must bounce
  TestServer ts(opts);
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  auto reply = client.Detect(WorldRequest(33));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->error, ServeError::kQueueFull);
  EXPECT_EQ(reply->request_id, 33u) << "rejections still carry the id";
  EXPECT_TRUE(client.Ping().ok()) << "rejection must not kill the connection";
}

TEST(SagedServer, MissingDataFileAnswersBadRequest) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  DetectRequestMsg msg = WorldRequest(12);
  msg.data_path = World().dir + "/does_not_exist.csv";
  auto reply = client.Detect(msg);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->error, ServeError::kBadRequest);
  EXPECT_EQ(reply->request_id, 12u);
}

TEST(SagedServer, MismatchedOracleMaskAnswersBadRequest) {
  // A truth mask with fewer rows than the data used to be an out-of-bounds
  // read during labeling and a SAGED_CHECK abort in scoring — one bad
  // request killing the daemon. It must be the client's typed error, and
  // the server must keep serving everyone afterwards.
  auto oracle_table = ReadCsv(World().mask_csv);
  ASSERT_TRUE(oracle_table.ok());
  auto truth = TableToMask(*oracle_table);
  ASSERT_TRUE(truth.ok());
  const std::string short_mask = World().dir + "/short_mask.csv";
  ASSERT_TRUE(WriteCsv(MaskToTable(truth->HeadRows(truth->rows() / 2),
                                   oracle_table->ColumnNames()),
                       short_mask)
                  .ok());

  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  DetectRequestMsg msg = WorldRequest(21);
  msg.oracle_mask_path = short_mask;
  auto reply = client.Detect(msg);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->error, ServeError::kBadRequest);
  EXPECT_EQ(reply->request_id, 21u);
  // The daemon survived: same connection, well-formed request, full answer.
  EXPECT_TRUE(client.Ping().ok());
  auto good = client.Detect(WorldRequest(22));
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good->ok()) << good->error_message;
  EXPECT_TRUE(good->response.mask == World().direct.mask);
}

TEST(SagedServer, UnknownConfigFlagAnswersBadRequest) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  DetectRequestMsg msg = WorldRequest(13);
  msg.config_flags = "no-such-knob=1";
  auto reply = client.Detect(msg);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->error, ServeError::kBadRequest);
}

/// Raw socket helper for malformed-bytes tests (the real client refuses to
/// send garbage).
struct RawConnection {
  int fd = -1;
  explicit RawConnection(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    SAGED_CHECK(fd >= 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    SAGED_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0);
  }
  ~RawConnection() {
    if (fd >= 0) ::close(fd);
  }
  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      SAGED_CHECK(n > 0);
      sent += static_cast<size_t>(n);
    }
  }
  /// Reads until one complete frame parses; peer EOF is an IoError.
  Result<Frame> ReadFrame() {
    FrameDecoder decoder;
    while (true) {
      Frame frame;
      SAGED_ASSIGN_OR_RETURN(bool complete, decoder.Next(&frame));
      if (complete) return frame;
      char buf[4096];
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return Status::IoError("peer closed");
      if (n < 0) return Status::IoError("recv failed");
      SAGED_RETURN_NOT_OK(decoder.Feed(buf, static_cast<size_t>(n)));
    }
  }
};

TEST(SagedServer, GarbageBytesGetTypedErrorAndServerSurvives) {
  TestServer ts;
  {
    RawConnection raw(ts.options.socket_path);
    raw.Send("these are not frames at all!!");
    auto frame = raw.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, MessageType::kErrorResponse);
    auto err = DecodeErrorResponse(frame->payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->error, ServeError::kBadFrame);
  }
  // A well-behaved client connecting afterwards is served normally.
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  EXPECT_TRUE(client.Ping().ok());
  auto reply = client.Detect(WorldRequest(77));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->ok()) << reply->error_message;
  EXPECT_TRUE(reply->response.mask == World().direct.mask);
}

TEST(SagedServer, MalformedDetectPayloadGetsTypedError) {
  TestServer ts;
  RawConnection raw(ts.options.socket_path);
  raw.Send(EncodeFrame(MessageType::kDetectRequest, "truncated payload"));
  auto frame = raw.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, MessageType::kErrorResponse);
  auto err = DecodeErrorResponse(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->error, ServeError::kBadFrame);
}

TEST(SagedServer, ResponseTypeSentToServerIsRejected) {
  TestServer ts;
  RawConnection raw(ts.options.socket_path);
  raw.Send(EncodeFrame(MessageType::kPong, ""));
  auto frame = raw.ReadFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->type, MessageType::kErrorResponse);
  auto err = DecodeErrorResponse(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->error, ServeError::kBadFrame);
}

// A client that writes requests but never reads replies must not wedge the
// I/O thread (which answers pings inline): the server's send times out,
// the connection is dropped, and everyone else keeps being served.
TEST(SagedServer, SlowReaderIsDroppedNotWedged) {
  ServerOptions opts;
  opts.send_timeout_ms = 200;
  TestServer ts(opts);

  RawConnection raw(ts.options.socket_path);
  int flags = fcntl(raw.fd, F_GETFL, 0);
  ASSERT_GE(fcntl(raw.fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "test-side sends must not block either";
  const std::string ping = EncodeFrame(MessageType::kPing, "");
  // Flood pings and never read a single pong: replies pile up until the
  // server's send stalls, times out, and it hangs up on us.
  bool dropped = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!dropped) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "server never dropped the slow reader";
    ssize_t n = ::send(raw.fd, ping.data(), ping.size(), MSG_NOSIGNAL);
    if (n >= 0) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      dropped = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Our buffer is full because the server stopped reading (it is
      // stalled writing pongs); wait until writable or hung up on.
      pollfd pfd{raw.fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
    } else {
      FAIL() << "unexpected send errno " << errno;
    }
  }

  // The poll loop is alive and the socket is still accepting: a fresh
  // well-behaved client gets served immediately.
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  EXPECT_TRUE(client.Ping().ok());
}

TEST(SagedServer, ClientShutdownStopsTheServer) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  ASSERT_TRUE(client.SendShutdown().ok());
  ts.server->Wait();
  // The socket is gone: new connections must fail.
  SagedClient late;
  EXPECT_FALSE(late.Connect(ts.options.socket_path).ok());
}

TEST(SagedServer, RequestsDuringDrainAreRejectedAsShuttingDown) {
  TestServer ts;
  SagedClient client;
  ASSERT_TRUE(client.Connect(ts.options.socket_path).ok());
  ts.server->RequestStop();
  // The already-open connection may race the drain; either the request is
  // answered (admitted before the stop landed) or it is rejected with the
  // shutdown-typed error — never a hang, never an untyped failure.
  auto reply = client.Detect(WorldRequest(55));
  if (reply.ok()) {
    EXPECT_TRUE(reply->ok() || reply->error == ServeError::kShuttingDown ||
                reply->error == ServeError::kQueueFull)
        << "unexpected error class: " << reply->error_message;
  }
  ts.server->Wait();
}

}  // namespace
}  // namespace saged::serve
