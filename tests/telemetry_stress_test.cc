// Concurrency stress for the telemetry layer, meant to run under the tsan
// preset (and plain tier-1): many executor workers hammer counters, gauges,
// histograms and nested trace spans simultaneously, then the test asserts
// exact aggregate totals and per-thread nesting discipline. Any data race
// in the sharded counters, lock-free histogram buckets, per-thread trace
// buffers or the registry mutex shows up here under TSAN.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::telemetry {
namespace {

class TelemetryStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryRegistry::Get().Reset();
    SetEnabled(true);
    SetTraceEventsEnabled(true);
    ResetTraceEvents();
  }
  void TearDown() override {
    SetTraceEventsEnabled(false);
    ResetTraceEvents();
    SetEnabled(false);
    TelemetryRegistry::Get().Reset();
  }
};

constexpr size_t kTasks = 256;
constexpr size_t kOpsPerTask = 200;

TEST_F(TelemetryStressTest, ConcurrentCountersKeepExactTotals) {
  Executor::Shared().ParallelFor(kTasks, [](size_t i) {
    for (size_t k = 0; k < kOpsPerTask; ++k) {
      SAGED_COUNTER_INC("stress.ops");
      SAGED_COUNTER_ADD("stress.bytes", i + 1);
    }
  });
  auto& registry = TelemetryRegistry::Get();
  EXPECT_EQ(registry.CounterValue("stress.ops"), kTasks * kOpsPerTask);
  // sum over i of (i+1) * kOpsPerTask
  uint64_t expected = kOpsPerTask * (kTasks * (kTasks + 1) / 2);
  EXPECT_EQ(registry.CounterValue("stress.bytes"), expected);
}

TEST_F(TelemetryStressTest, ConcurrentHistogramKeepsCountAndBounds) {
  Executor::Shared().ParallelFor(kTasks, [](size_t i) {
    for (size_t k = 0; k < kOpsPerTask; ++k) {
      SAGED_HISTOGRAM_OBSERVE("stress.latency_ms",
                              static_cast<double>(i % 32 + 1));
    }
  });
  auto stats =
      TelemetryRegistry::Get().HistogramSnapshot("stress.latency_ms");
  EXPECT_EQ(stats.count, kTasks * kOpsPerTask);
  EXPECT_GE(stats.min, 1.0 * 0.9);
  EXPECT_LE(stats.max, 32.0 * 1.1);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
}

TEST_F(TelemetryStressTest, ConcurrentGaugeKeepsHighWatermark) {
  Executor::Shared().ParallelFor(kTasks, [](size_t i) {
    for (size_t k = 0; k < kOpsPerTask; ++k) {
      SAGED_GAUGE_SET("stress.depth", i * 1000 + k);
    }
  });
  auto& registry = TelemetryRegistry::Get();
  // The watermark is exact regardless of interleaving; the last value is
  // whichever task wrote last, so only bound it.
  EXPECT_EQ(registry.GaugeMax("stress.depth"),
            (kTasks - 1) * 1000 + (kOpsPerTask - 1));
  EXPECT_LE(registry.GaugeValue("stress.depth"),
            registry.GaugeMax("stress.depth"));
}

TEST_F(TelemetryStressTest, ConcurrentNestedSpansMergeAndNestCorrectly) {
  Executor::Shared().ParallelFor(kTasks, [](size_t i) {
    SAGED_TRACE_SPAN("stress/outer");
    SAGED_COUNTER_INC("stress.span_bodies");
    {
      SAGED_TRACE_SPAN_ARG("stress/inner", i);
      SAGED_HISTOGRAM_OBSERVE("stress.inner_ms", 1.0);
    }
  });

  // Aggregated tree: outer and inner each ran kTasks times, inner nested
  // under outer.
  auto forest = SnapshotSpans();
  uint64_t outer_count = 0;
  uint64_t inner_count = 0;
  for (const auto& root : forest) {
    if (root.name != "stress/outer") continue;
    outer_count += root.count;
    for (const auto& child : root.children) {
      if (child.name == "stress/inner") inner_count += child.count;
    }
  }
  EXPECT_EQ(outer_count, kTasks);
  EXPECT_EQ(inner_count, kTasks);

  // Per-occurrence events: one outer and one inner per task, and on every
  // thread the events nest without partial overlap (interval containment
  // per tid over the (ts asc, dur desc)-sorted stream).
  auto events = SnapshotTraceEvents();
  size_t outer_events = 0;
  size_t inner_events = 0;
  std::map<uint32_t, std::vector<uint64_t>> open_ends;  // tid -> end stack
  for (const auto& e : events) {
    if (e.name == "stress/outer") ++outer_events;
    if (e.name == "stress/inner") ++inner_events;
    auto& stack = open_ends[e.tid];
    uint64_t end = e.ts_ns + e.dur_ns;
    while (!stack.empty() && e.ts_ns >= stack.back()) stack.pop_back();
    if (!stack.empty()) {
      // Strict containment: an event overlapping the enclosing one must
      // end no later than it.
      EXPECT_LE(end, stack.back())
          << "partial overlap on tid " << e.tid << " at ts " << e.ts_ns;
    }
    stack.push_back(end);
  }
  EXPECT_EQ(outer_events, kTasks);
  EXPECT_EQ(inner_events, kTasks);
  EXPECT_EQ(DroppedTraceEvents(), 0u);
}

TEST_F(TelemetryStressTest, DumpJsonIsStableWhileWritersRun) {
  // Readers (DumpJson / snapshots) race live writers; TSAN checks the
  // synchronization, the assertions only need self-consistency.
  std::vector<std::string> dumps(8);
  Executor::Shared().ParallelFor(kTasks + dumps.size(), [&](size_t i) {
    if (i < dumps.size()) {
      dumps[i] = TelemetryRegistry::Get().DumpJson();
      return;
    }
    SAGED_TRACE_SPAN("stress/write");
    for (size_t k = 0; k < kOpsPerTask; ++k) {
      SAGED_COUNTER_INC("stress.mixed");
      SAGED_HISTOGRAM_OBSERVE("stress.mixed_ms", 2.0);
      SAGED_GAUGE_SET("stress.mixed_depth", k);
    }
  });
  for (const auto& dump : dumps) {
    EXPECT_FALSE(dump.empty());
    EXPECT_EQ(dump.front(), '{');
  }
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("stress.mixed"),
            kTasks * kOpsPerTask);
}

}  // namespace
}  // namespace saged::telemetry
