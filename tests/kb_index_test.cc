// Tests for the kb/ signature index: deterministic builds, probe-order
// semantics, serialization, and above all the parity contract the tentpole
// rests on — IndexedMatcher at probe=all selects byte-identically to
// CosineMatcher, and the packed fast path (bucket-major contiguous scan)
// selects byte-identically to the unpacked candidate path at every probe
// count. Matching reads signatures only, so entries here carry no trained
// models; corpus datasets supply realistic, heterogeneous signatures.

#include "kb/signature_index.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "core/config.h"
#include "core/knowledge_base.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "features/signature.h"
#include "ml/matrix.h"

namespace saged::kb {
namespace {

// Inventory datasets are corpus indices [0, n); queries start far above so
// they are always held out.
constexpr size_t kQueryBase = 500'000;

/// Knowledge base of real column signatures over `n_datasets` corpus
/// datasets — no models, matching never reads them.
core::KnowledgeBase CorpusKb(size_t n_datasets) {
  core::KnowledgeBase kb;
  for (size_t i = 0; i < n_datasets; ++i) {
    auto ds = datagen::MakeCorpusDataset(i, {});
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    for (const auto& column : ds->dirty.columns()) {
      core::BaseModelEntry entry;
      entry.dataset = ds->dirty.name();
      entry.column = column.name();
      entry.signature = features::ColumnSignature(column);
      kb.AddEntry(std::move(entry));
    }
  }
  return kb;
}

std::vector<std::vector<double>> HeldOutQueries(size_t n_datasets) {
  std::vector<std::vector<double>> queries;
  for (size_t i = 0; i < n_datasets; ++i) {
    auto ds = datagen::MakeCorpusDataset(kQueryBase + i, {});
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    for (const auto& column : ds->dirty.columns()) {
      queries.push_back(features::ColumnSignature(column));
    }
  }
  return queries;
}

/// Save/Load round trip — the loaded index has centroids + assignments but
/// no packed signature matrix, which is exactly the IndexedMatcher slow
/// path.
SignatureIndex Unpacked(const SignatureIndex& index) {
  std::stringstream buf;
  BinaryWriter writer(&buf);
  index.Save(&writer);
  EXPECT_TRUE(writer.ok());
  BinaryReader reader(&buf);
  auto loaded = SignatureIndex::Load(&reader);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

// --- SignatureIndex ---------------------------------------------------------

TEST(SignatureIndexTest, EmptyKnowledgeBaseRejected) {
  core::KnowledgeBase kb;
  EXPECT_FALSE(SignatureIndex::Build(kb, 0, 42).ok());
}

TEST(SignatureIndexTest, AutoDefaultsAreSane) {
  EXPECT_EQ(SignatureIndex::AutoBuckets(0), 1u);
  EXPECT_EQ(SignatureIndex::AutoBuckets(100), 10u);
  EXPECT_EQ(SignatureIndex::AutoBuckets(101), 11u);
  EXPECT_EQ(SignatureIndex::AutoProbes(1), 1u);    // clamped to n_buckets
  EXPECT_EQ(SignatureIndex::AutoProbes(10), 4u);   // floor of 4
  EXPECT_EQ(SignatureIndex::AutoProbes(200), 6u);  // n_buckets / 32
}

TEST(SignatureIndexTest, BuildIsDeterministic) {
  core::KnowledgeBase kb = CorpusKb(40);
  auto a = SignatureIndex::Build(kb, 8, 42);
  auto b = SignatureIndex::Build(kb, 8, 42);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments(), b->assignments());
  ASSERT_EQ(a->n_buckets(), b->n_buckets());
  EXPECT_EQ(a->buckets(), b->buckets());
}

TEST(SignatureIndexTest, EveryEntryAssignedToExactlyOneBucket) {
  core::KnowledgeBase kb = CorpusKb(40);
  auto index = SignatureIndex::Build(kb, 8, 42);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->n_entries(), kb.size());
  size_t total = 0;
  for (const auto& members : index->buckets()) {
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    total += members.size();
  }
  EXPECT_EQ(total, kb.size());
}

TEST(SignatureIndexTest, TopBucketsEqualsProbeOrderPrefix) {
  core::KnowledgeBase kb = CorpusKb(60);
  auto index = SignatureIndex::Build(kb, 12, 42);
  ASSERT_TRUE(index.ok());
  for (const auto& query : HeldOutQueries(4)) {
    std::vector<size_t> full = index->ProbeOrder(query);
    ASSERT_EQ(full.size(), index->n_buckets());
    for (size_t probes : {size_t{1}, size_t{3}, index->n_buckets()}) {
      std::vector<size_t> top = index->TopBuckets(query, probes);
      ASSERT_EQ(top.size(), probes);
      EXPECT_TRUE(std::equal(top.begin(), top.end(), full.begin()))
          << "TopBuckets(" << probes << ") is not ProbeOrder's prefix";
    }
  }
}

TEST(SignatureIndexTest, CandidatesAscendingAndFromProbedBuckets) {
  core::KnowledgeBase kb = CorpusKb(60);
  auto index = SignatureIndex::Build(kb, 12, 42);
  ASSERT_TRUE(index.ok());
  for (const auto& query : HeldOutQueries(4)) {
    const size_t probes = 3;
    std::vector<size_t> candidates = index->Candidates(query, probes);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    // Same multiset as the union of the probed buckets' members.
    std::vector<size_t> expected;
    for (size_t bucket : index->TopBuckets(query, probes)) {
      const auto& members = index->buckets()[bucket];
      expected.insert(expected.end(), members.begin(), members.end());
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(candidates, expected);
  }
}

TEST(SignatureIndexTest, ProbeAllCandidatesAreEveryEntryAscending) {
  core::KnowledgeBase kb = CorpusKb(30);
  auto index = SignatureIndex::Build(kb, 6, 42);
  ASSERT_TRUE(index.ok());
  std::vector<size_t> all =
      index->Candidates(HeldOutQueries(1).front(), index->n_buckets());
  ASSERT_EQ(all.size(), kb.size());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(SignatureIndexTest, SaveLoadRoundTrips) {
  core::KnowledgeBase kb = CorpusKb(40);
  auto index = SignatureIndex::Build(kb, 8, 42);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->packed());  // Build packs automatically
  SignatureIndex loaded = Unpacked(*index);
  EXPECT_EQ(loaded.assignments(), index->assignments());
  EXPECT_EQ(loaded.buckets(), index->buckets());
  EXPECT_FALSE(loaded.packed());  // packing is the owner's job after Load
  loaded.PackSignatures(kb);
  EXPECT_TRUE(loaded.packed());
}

TEST(SignatureIndexTest, PackedRowsAreExactSignatureCopies) {
  core::KnowledgeBase kb = CorpusKb(40);
  auto index = SignatureIndex::Build(kb, 8, 42);
  ASSERT_TRUE(index.ok());
  size_t row = 0;
  for (size_t b = 0; b < index->n_buckets(); ++b) {
    EXPECT_EQ(index->packed_begin(b), row);
    for (size_t e : index->buckets()[b]) {
      auto packed_row = index->packed_signatures().Row(row);
      const auto& signature = kb.entries()[e].signature;
      ASSERT_EQ(packed_row.size(), signature.size());
      for (size_t i = 0; i < signature.size(); ++i) {
        // Bit-exact copies are what makes fast-path similarities identical.
        EXPECT_EQ(packed_row[i], signature[i]);
      }
      ++row;
    }
  }
}

TEST(SignatureIndexTest, CorruptStreamRejected) {
  std::stringstream buf("garbage that is not an index");
  BinaryReader reader(&buf);
  EXPECT_FALSE(SignatureIndex::Load(&reader).ok());
}

// --- IndexedMatcher parity --------------------------------------------------

TEST(IndexedMatcherTest, ProbeAllIsByteIdenticalToCosineMatcher) {
  core::KnowledgeBase kb = CorpusKb(120);
  auto index = SignatureIndex::Build(kb, 0, 42);
  ASSERT_TRUE(index.ok());
  core::SagedConfig config;
  core::CosineMatcher exact(&kb, config.cosine_threshold,
                            config.max_models_per_column);
  IndexedMatcher probe_all(&kb, &*index, config.cosine_threshold,
                           config.max_models_per_column, index->n_buckets());
  for (const auto& query : HeldOutQueries(8)) {
    EXPECT_EQ(probe_all.Match(query), exact.Match(query));
  }
  // The fallback branch (nothing clears the bar) must agree too.
  core::CosineMatcher exact_fb(&kb, 1.1, config.max_models_per_column);
  IndexedMatcher probe_all_fb(&kb, &*index, 1.1, config.max_models_per_column,
                              index->n_buckets());
  for (const auto& query : HeldOutQueries(4)) {
    EXPECT_EQ(probe_all_fb.Match(query), exact_fb.Match(query));
  }
}

TEST(IndexedMatcherTest, PackedFastPathMatchesUnpackedSlowPath) {
  core::KnowledgeBase kb = CorpusKb(120);
  auto packed = SignatureIndex::Build(kb, 0, 42);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(packed->packed());
  SignatureIndex unpacked = Unpacked(*packed);
  ASSERT_FALSE(unpacked.packed());
  core::SagedConfig config;
  for (size_t probes :
       {size_t{1}, size_t{2}, SignatureIndex::AutoProbes(packed->n_buckets())}) {
    IndexedMatcher fast(&kb, &*packed, config.cosine_threshold,
                        config.max_models_per_column, probes);
    IndexedMatcher slow(&kb, &unpacked, config.cosine_threshold,
                        config.max_models_per_column, probes);
    for (const auto& query : HeldOutQueries(8)) {
      EXPECT_EQ(fast.Match(query), slow.Match(query)) << "probes=" << probes;
    }
  }
}

TEST(IndexedMatcherTest, DefaultProbesRecallAtLeastPointNineFive) {
  core::KnowledgeBase kb = CorpusKb(150);
  auto index = SignatureIndex::Build(kb, 0, 42);
  ASSERT_TRUE(index.ok());
  core::SagedConfig config;
  core::CosineMatcher exact(&kb, config.cosine_threshold,
                            config.max_models_per_column);
  IndexedMatcher fast(&kb, &*index, config.cosine_threshold,
                      config.max_models_per_column,
                      SignatureIndex::AutoProbes(index->n_buckets()));
  size_t expected = 0, reproduced = 0;
  for (const auto& query : HeldOutQueries(10)) {
    std::vector<size_t> truth = exact.Match(query);
    std::vector<size_t> approx = fast.Match(query);
    expected += truth.size();
    for (size_t e : truth) {
      if (std::find(approx.begin(), approx.end(), e) != approx.end()) {
        ++reproduced;
      }
    }
  }
  ASSERT_GT(expected, 0u);
  EXPECT_GE(static_cast<double>(reproduced) / static_cast<double>(expected),
            0.95);
}

TEST(IndexedMatcherTest, AttachIndexWiresMakeMatcher) {
  core::KnowledgeBase kb = CorpusKb(40);
  auto index = SignatureIndex::Build(kb, 0, 42);
  ASSERT_TRUE(index.ok());
  core::SagedConfig config;
  config.similarity = core::SimilarityMethod::kIndexed;

  // Without an attached index the similarity method is an error, not a
  // silent fallback.
  EXPECT_FALSE(core::MakeMatcher(config, &kb).ok());

  AttachIndex(&kb, &*index);
  auto matcher = core::MakeMatcher(config, &kb);
  ASSERT_TRUE(matcher.ok()) << matcher.status().ToString();
  EXPECT_FALSE((*matcher)->Match(HeldOutQueries(1).front()).empty());

  // A knowledge base the index does not cover is rejected.
  core::KnowledgeBase other = CorpusKb(10);
  AttachIndex(&other, &*index);
  EXPECT_FALSE(core::MakeMatcher(config, &other).ok());
}

}  // namespace
}  // namespace saged::kb
