// Wire-protocol tests for the saged_serve frame codec: framing round-trips
// under every torn-read split, corruption is a Status (never a crash), and
// the message payload codecs are exact inverses — including the bit-packed
// mask at awkward shapes.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace saged::serve {
namespace {

DetectRequestMsg SampleRequest() {
  DetectRequestMsg msg;
  msg.request_id = 0xDEADBEEFCAFEull;
  msg.data_path = "/tmp/dirty.csv";
  msg.oracle_mask_path = "/tmp/mask.csv";
  msg.config_flags = "budget=25,detect-threads=2";
  msg.options.stream = true;
  msg.options.block_rows = 1234;
  msg.options.chunk_bytes = 4096;
  return msg;
}

void ExpectSampleRequest(const DetectRequestMsg& got) {
  const DetectRequestMsg want = SampleRequest();
  EXPECT_EQ(got.request_id, want.request_id);
  EXPECT_EQ(got.data_path, want.data_path);
  EXPECT_EQ(got.oracle_mask_path, want.oracle_mask_path);
  EXPECT_EQ(got.config_flags, want.config_flags);
  EXPECT_EQ(got.options.stream, want.options.stream);
  EXPECT_EQ(got.options.block_rows, want.options.block_rows);
  EXPECT_EQ(got.options.chunk_bytes, want.options.chunk_bytes);
}

TEST(FrameCodec, EmptyPayloadRoundTrip) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  EXPECT_EQ(wire.size(), kFrameHeaderBytes);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.type, MessageType::kPing);
  EXPECT_TRUE(frame.payload.empty());
  got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got) << "one frame in, one frame out";
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// Sockets deliver arbitrary splits: a frame cut at EVERY byte boundary
// must decode identically, and the decoder must report "need more" (not an
// error) while the tail is missing.
TEST(FrameCodec, TornReadAtEveryByteBoundary) {
  const std::string wire =
      EncodeFrame(MessageType::kDetectRequest,
                  EncodeDetectRequest(SampleRequest()));
  for (size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(wire.data(), split).ok());
    Frame frame;
    auto first = decoder.Next(&frame);
    ASSERT_TRUE(first.ok()) << "split at " << split;
    if (split < wire.size()) {
      EXPECT_FALSE(*first) << "split at " << split
                           << ": incomplete frame must not pop";
      ASSERT_TRUE(
          decoder.Feed(wire.data() + split, wire.size() - split).ok());
      auto second = decoder.Next(&frame);
      ASSERT_TRUE(second.ok()) << "split at " << split;
      ASSERT_TRUE(*second) << "split at " << split;
    } else {
      ASSERT_TRUE(*first);
    }
    EXPECT_EQ(frame.type, MessageType::kDetectRequest);
    auto decoded = DecodeDetectRequest(frame.payload);
    ASSERT_TRUE(decoded.ok()) << "split at " << split;
    ExpectSampleRequest(*decoded);
  }
}

TEST(FrameCodec, OneByteAtATime) {
  const std::string wire =
      EncodeFrame(MessageType::kErrorResponse,
                  EncodeErrorResponse({7, ServeError::kQueueFull, "full"}));
  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(&wire[i], 1).ok());
    auto got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got);
  }
  ASSERT_TRUE(decoder.Feed(&wire[wire.size() - 1], 1).ok());
  auto got = decoder.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  auto msg = DecodeErrorResponse(frame.payload);
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->request_id, 7u);
  EXPECT_EQ(msg->error, ServeError::kQueueFull);
  EXPECT_EQ(msg->message, "full");
}

TEST(FrameCodec, PipelinedFramesPopInOrder) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire += EncodeFrame(MessageType::kShutdown, "");
  wire += EncodeFrame(MessageType::kPong, "");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame frame;
  for (MessageType want :
       {MessageType::kPing, MessageType::kShutdown, MessageType::kPong}) {
    auto got = decoder.Next(&frame);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_EQ(frame.type, want);
  }
  auto drained = decoder.Next(&frame);
  ASSERT_TRUE(drained.ok());
  EXPECT_FALSE(*drained);
}

TEST(FrameCodec, BadMagicPoisonsTheDecoder) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire[0] = 'X';
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  // Framing breakage is unrecoverable: the good frame fed afterwards must
  // NOT resurrect the stream.
  std::string good = EncodeFrame(MessageType::kPing, "");
  EXPECT_FALSE(decoder.Feed(good.data(), good.size()).ok());
  EXPECT_FALSE(decoder.Next(&frame).ok());
}

TEST(FrameCodec, UnknownMessageTypeRejected) {
  std::string wire = EncodeFrame(MessageType::kPing, "");
  wire[4] = static_cast<char>(0x7F);  // type byte
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame).ok());
  EXPECT_FALSE(IsKnownMessageType(0x7F));
  EXPECT_TRUE(IsKnownMessageType(
      static_cast<uint8_t>(MessageType::kDetectResponse)));
}

// A hostile length prefix must be rejected from the header alone — before
// any payload arrives, and without allocating the claimed size.
TEST(FrameCodec, OversizedLengthRejectedFromHeaderAlone) {
  std::string payload(64, 'x');
  std::string wire = EncodeFrame(MessageType::kPing, payload);
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  ASSERT_TRUE(decoder.Feed(wire.data(), kFrameHeaderBytes).ok());
  Frame frame;
  auto got = decoder.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().ToString().find("64"), std::string::npos)
      << "error should name the offending length: "
      << got.status().ToString();
}

TEST(RequestCodec, RoundTrip) {
  auto decoded = DecodeDetectRequest(EncodeDetectRequest(SampleRequest()));
  ASSERT_TRUE(decoded.ok());
  ExpectSampleRequest(*decoded);
}

TEST(RequestCodec, TruncatedPayloadIsAStatus) {
  const std::string payload = EncodeDetectRequest(SampleRequest());
  // Every proper prefix must fail cleanly — no crash, no partial success.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeDetectRequest(payload.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(RequestCodec, TrailingBytesRejected) {
  std::string payload = EncodeDetectRequest(SampleRequest());
  payload += '\0';
  EXPECT_FALSE(DecodeDetectRequest(payload).ok());
}

TEST(RequestCodec, GarbageRejected) {
  EXPECT_FALSE(DecodeDetectRequest("not a request").ok());
  EXPECT_FALSE(DecodeDetectRequest("").ok());
}

DetectResponseMsg SampleResponse(size_t rows, size_t cols) {
  DetectResponseMsg msg;
  msg.request_id = 42;
  msg.seconds = 1.5;
  msg.labeled_tuples = 20;
  msg.precision = 0.875;
  msg.recall = 0.75;
  msg.f1 = 0.8076923;
  for (size_t c = 0; c < cols; ++c) {
    msg.column_names.push_back("col" + std::to_string(c));
  }
  msg.mask = ErrorMask(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if ((r * 31 + c * 7) % 3 == 0) msg.mask.Set(r, c);
    }
  }
  return msg;
}

// Odd shapes stress the 8-cells-per-byte packing: cell counts that are not
// multiples of 8 exercise the final partial byte.
TEST(ResponseCodec, RoundTripAtAwkwardMaskShapes) {
  for (auto [rows, cols] : std::vector<std::pair<size_t, size_t>>{
           {0, 0}, {1, 1}, {1, 7}, {1, 8}, {1, 9}, {3, 5}, {13, 3}}) {
    DetectResponseMsg msg = SampleResponse(rows, cols);
    auto decoded = DecodeDetectResponse(EncodeDetectResponse(msg));
    ASSERT_TRUE(decoded.ok()) << rows << "x" << cols << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->request_id, msg.request_id);
    EXPECT_DOUBLE_EQ(decoded->precision, msg.precision);
    EXPECT_DOUBLE_EQ(decoded->recall, msg.recall);
    EXPECT_DOUBLE_EQ(decoded->f1, msg.f1);
    EXPECT_EQ(decoded->labeled_tuples, msg.labeled_tuples);
    EXPECT_EQ(decoded->column_names, msg.column_names);
    EXPECT_TRUE(decoded->mask == msg.mask)
        << rows << "x" << cols << " mask did not survive the round trip";
  }
}

TEST(ResponseCodec, TruncatedPayloadIsAStatus) {
  const std::string payload = EncodeDetectResponse(SampleResponse(3, 5));
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeDetectResponse(payload.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
}

// A hostile column count must be bounded by the payload size *before*
// reserve() runs: a claimed ~4 billion names would otherwise attempt a
// multi-GB allocation from a few hundred wire bytes.
TEST(ResponseCodec, HostileColumnCountRejectedBeforeAllocation) {
  std::string payload = EncodeDetectResponse(SampleResponse(3, 5));
  // Field layout: request_id u64, seconds f64, labeled u64, three f64
  // stats, then the u32 column count.
  const size_t count_offset = 8 * 6;
  for (size_t i = 0; i < 4; ++i) payload[count_offset + i] = '\xff';
  auto decoded = DecodeDetectResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  // A count that passes the payload-derived bound but overstates the
  // actual columns still fails cleanly when the names run out.
  const uint32_t within_bound = 10;
  ASSERT_LE(within_bound, payload.size() / 8);
  for (size_t i = 0; i < 4; ++i) {
    payload[count_offset + i] =
        static_cast<char>((within_bound >> (8 * i)) & 0xff);
  }
  EXPECT_FALSE(DecodeDetectResponse(payload).ok());
}

TEST(ErrorCodec, RoundTrip) {
  ErrorResponseMsg msg{9, ServeError::kDetectionFailed, "engine said no"};
  auto decoded = DecodeErrorResponse(EncodeErrorResponse(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->request_id, 9u);
  EXPECT_EQ(decoded->error, ServeError::kDetectionFailed);
  EXPECT_EQ(decoded->message, "engine said no");
}

TEST(ErrorCodec, NamesAreStable) {
  EXPECT_STREQ(ServeErrorName(ServeError::kQueueFull), "queue_full");
  EXPECT_STREQ(ServeErrorName(ServeError::kBadFrame), "bad_frame");
}

}  // namespace
}  // namespace saged::serve
