#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/agglomerative.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"

namespace saged::ml {
namespace {

/// Three well-separated 2-D blobs, `per` points each.
Matrix ThreeBlobs(size_t per, Rng& rng, std::vector<size_t>* truth = nullptr) {
  Matrix x;
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  for (size_t c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per; ++i) {
      std::vector<double> row = {centers[c][0] + rng.Normal(0, 0.5),
                                 centers[c][1] + rng.Normal(0, 0.5)};
      x.AppendRow(row);
      if (truth) truth->push_back(c);
    }
  }
  return x;
}

/// Fraction of same-cluster pairs that agree between two labelings
/// (symmetric Rand-style agreement on a sample of pairs).
double PairAgreement(const std::vector<size_t>& a,
                     const std::vector<size_t>& b) {
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      agree += same_a == same_b;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

// --- KMeans -----------------------------------------------------------------

TEST(KMeansTest, RecoversBlobs) {
  Rng rng(3);
  std::vector<size_t> truth;
  Matrix x = ThreeBlobs(40, rng, &truth);
  KMeans km(3, 100, 7);
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_GT(PairAgreement(truth, km.labels()), 0.99);
}

TEST(KMeansTest, PredictMatchesTraining) {
  Rng rng(5);
  Matrix x = ThreeBlobs(20, rng);
  KMeans km(3, 100, 7);
  ASSERT_TRUE(km.Fit(x).ok());
  auto pred = km.Predict(x);
  EXPECT_EQ(pred, km.labels());
}

TEST(KMeansTest, ClampsKToData) {
  Matrix x = Matrix::FromRows({{1.0}, {2.0}});
  KMeans km(10, 10, 1);
  ASSERT_TRUE(km.Fit(x).ok());
  EXPECT_LE(km.k(), 2u);
}

TEST(KMeansTest, RejectsEmpty) {
  KMeans km(2);
  EXPECT_FALSE(km.Fit(Matrix()).ok());
}

TEST(KMeansTest, InertiaDecreasesWithK) {
  Rng rng(7);
  Matrix x = ThreeBlobs(30, rng);
  KMeans k1(1, 50, 3);
  KMeans k3(3, 50, 3);
  ASSERT_TRUE(k1.Fit(x).ok());
  ASSERT_TRUE(k3.Fit(x).ok());
  EXPECT_LT(k3.inertia(), k1.inertia());
}

// --- Agglomerative ----------------------------------------------------------

TEST(AgglomerativeTest, RecoversBlobsAtK3) {
  Rng rng(9);
  std::vector<size_t> truth;
  Matrix x = ThreeBlobs(25, rng, &truth);
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  auto labels = agg.Cut(3);
  EXPECT_GT(PairAgreement(truth, labels), 0.99);
}

TEST(AgglomerativeTest, CutBoundsRespected) {
  Rng rng(11);
  Matrix x = ThreeBlobs(10, rng);
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  // k = 1: everything one cluster.
  auto one = agg.Cut(1);
  EXPECT_EQ(std::set<size_t>(one.begin(), one.end()).size(), 1u);
  // k = n: all singletons.
  auto n = agg.Cut(x.rows());
  EXPECT_EQ(std::set<size_t>(n.begin(), n.end()).size(), x.rows());
}

TEST(AgglomerativeTest, CutProducesExactlyKClusters) {
  Rng rng(13);
  Matrix x = ThreeBlobs(15, rng);
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  for (size_t k : {2u, 5u, 9u, 20u}) {
    auto labels = agg.Cut(k);
    std::set<size_t> distinct(labels.begin(), labels.end());
    EXPECT_EQ(distinct.size(), std::min<size_t>(k, x.rows())) << "k=" << k;
  }
}

TEST(AgglomerativeTest, MergeCountIsNMinusOne) {
  Rng rng(15);
  Matrix x = ThreeBlobs(8, rng);
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  EXPECT_EQ(agg.merges().size(), x.rows() - 1);
}

TEST(AgglomerativeTest, SinglePointOk) {
  Matrix x = Matrix::FromRows({{1.0, 2.0}});
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  auto labels = agg.Cut(1);
  EXPECT_EQ(labels, (std::vector<size_t>{0}));
}

TEST(AgglomerativeTest, RejectsEmpty) {
  Agglomerative agg;
  EXPECT_FALSE(agg.Fit(Matrix()).ok());
}

/// Monotone linkage property: cutting at k and k+1 only splits (never
/// re-merges) clusters.
class AgglomerativeRefinement : public ::testing::TestWithParam<size_t> {};

TEST_P(AgglomerativeRefinement, CutsAreNested) {
  Rng rng(17 + GetParam());
  Matrix x = ThreeBlobs(12, rng);
  Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  size_t k = GetParam();
  auto coarse = agg.Cut(k);
  auto fine = agg.Cut(k + 1);
  // Same fine cluster implies same coarse cluster.
  for (size_t i = 0; i < coarse.size(); ++i) {
    for (size_t j = i + 1; j < coarse.size(); ++j) {
      if (fine[i] == fine[j]) {
        EXPECT_EQ(coarse[i], coarse[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, AgglomerativeRefinement,
                         ::testing::Values(2, 3, 5, 10, 20));

// --- Isolation forest -------------------------------------------------------

TEST(IsolationForestTest, FlagsInjectedOutliers) {
  Rng rng(19);
  Matrix x;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row = {rng.Normal(0, 1.0)};
    x.AppendRow(row);
  }
  // Plant extreme outliers.
  for (double v : {25.0, -30.0, 40.0}) {
    std::vector<double> row = {v};
    x.AppendRow(row);
  }
  IsolationForestOptions opts;
  opts.contamination = 0.02;
  IsolationForest forest(opts, 3);
  ASSERT_TRUE(forest.Fit(x).ok());
  auto scores = forest.Score(x);
  // Outlier scores dominate inlier scores.
  double max_inlier = *std::max_element(scores.begin(), scores.end() - 3);
  for (size_t i = x.rows() - 3; i < x.rows(); ++i) {
    EXPECT_GT(scores[i], max_inlier - 0.05);
  }
  auto pred = forest.Predict(x);
  EXPECT_EQ(pred[x.rows() - 1], 1);
}

TEST(IsolationForestTest, ScoresInUnitInterval) {
  Rng rng(21);
  Matrix x;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> row = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    x.AppendRow(row);
  }
  IsolationForest forest;
  ASSERT_TRUE(forest.Fit(x).ok());
  for (double s : forest.Score(x)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(IsolationForestTest, RejectsEmpty) {
  IsolationForest forest;
  EXPECT_FALSE(forest.Fit(Matrix()).ok());
}

}  // namespace
}  // namespace saged::ml
