// Death tests for the runtime contracts layer (common/contracts.h): the
// failure message must carry the failing expression, the captured operand
// values, any streamed context, and the telemetry span path active on the
// failing thread. SAGED_DCHECK must vanish (condition unevaluated) in
// NDEBUG builds.
#include "common/contracts.h"

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "common/trace.h"
#include "core/request.h"
#include "data/table.h"

namespace saged {
namespace {

TEST(ContractsTest, PassingChecksAreSilent) {
  SAGED_CHECK(true);
  SAGED_CHECK(1 + 1 == 2) << "never rendered";
  SAGED_CHECK_EQ(4, 4);
  SAGED_CHECK_NE(4, 5);
  SAGED_CHECK_LT(1, 2);
  SAGED_CHECK_LE(2, 2);
  SAGED_CHECK_GT(2, 1);
  SAGED_CHECK_GE(2, 2);
}

TEST(ContractsTest, CheckNestsInUnbracedIfElse) {
  // The if/else macro shape must not steal the else branch.
  bool took_else = false;
  if (false)
    SAGED_CHECK(true);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

TEST(ContractsDeathTest, MessageCarriesExpressionText) {
  int x = 7;
  EXPECT_DEATH(SAGED_CHECK(x == 8), "Check failed: x == 8");
}

TEST(ContractsDeathTest, StreamedContextIsAppended) {
  EXPECT_DEATH(SAGED_CHECK(false) << "width drifted for col " << 3,
               "Check failed: false.*width drifted for col 3");
}

TEST(ContractsDeathTest, ComparisonCapturesOperandValues) {
  size_t rows = 3;
  size_t expected = 5;
  // Both the expression text and the runtime values must appear.
  EXPECT_DEATH(SAGED_CHECK_EQ(rows, expected),
               "Check failed: rows == expected \\(3 vs\\. 5\\)");
}

TEST(ContractsDeathTest, ComparisonDirectionsCapture) {
  EXPECT_DEATH(SAGED_CHECK_LT(9, 2), "9 vs\\. 2");
  EXPECT_DEATH(SAGED_CHECK_GE(1, 4), "1 vs\\. 4");
  EXPECT_DEATH(SAGED_CHECK_NE(6, 6), "6 vs\\. 6");
}

struct Opaque {
  int v = 0;
  bool operator==(const Opaque&) const = default;
};

TEST(ContractsDeathTest, UnprintableOperandsFallBackToPlaceholder) {
  Opaque a{1};
  Opaque b{2};
  EXPECT_DEATH(SAGED_CHECK_EQ(a, b), "<unprintable> vs\\. <unprintable>");
}

TEST(ContractsDeathTest, NoOpenSpanReportsNone) {
  EXPECT_DEATH(SAGED_CHECK(false), "\\[span: <none>\\]");
}

TEST(ContractsDeathTest, FailureReportsActiveSpanPath) {
  EXPECT_DEATH(
      {
        telemetry::SetEnabled(true);
        telemetry::ScopedSpan outer("detect");
        telemetry::ScopedSpan inner("featurize");
        SAGED_CHECK_EQ(1, 2) << "inside the span";
      },
      "\\[span: detect/featurize\\]");
}

#ifdef NDEBUG

TEST(ContractsTest, DcheckConditionNotEvaluatedInRelease) {
  int calls = 0;
  auto touch = [&calls] {
    ++calls;
    return false;
  };
  SAGED_DCHECK(touch());
  SAGED_DCHECK_EQ(++calls, 99);
  SAGED_DCHECK_LT((++calls, 5), 1);
  SAGED_DCHECK(touch()) << "streamed context is swallowed too";
  EXPECT_EQ(calls, 0) << "SAGED_DCHECK must not evaluate its operands "
                         "in NDEBUG builds";
}

#else  // !NDEBUG

TEST(ContractsDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(SAGED_DCHECK(false), "Check failed: false");
  EXPECT_DEATH(SAGED_DCHECK_EQ(2, 3), "2 vs\\. 3");
}

#endif  // NDEBUG

// DetectionRequest is a sum type: constructing it without a source, or
// reading the wrong alternative, is a caller bug the contracts layer kills
// on the spot (invalid-but-recoverable combinations go through Validate()
// as Status instead — see core_detector_test).
TEST(ContractsDeathTest, DetectionRequestRejectsNullTable) {
  EXPECT_DEATH(core::DetectionRequest::ForTable(nullptr, nullptr),
               "ForTable needs a table");
}

TEST(ContractsDeathTest, DetectionRequestTableAccessorOnCsvSource) {
  auto request = core::DetectionRequest::ForCsv("/tmp/x.csv", nullptr);
  EXPECT_DEATH(request.table(), "not an in-memory table");
}

TEST(ContractsDeathTest, DetectionRequestCsvAccessorOnTableSource) {
  Table table;
  auto request = core::DetectionRequest::ForTable(&table, nullptr);
  EXPECT_DEATH(request.csv_path(), "not a CSV path");
}

}  // namespace
}  // namespace saged
