#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"

#include "common/binary_io.h"
#include "core/detector.h"
#include "core/serialization.h"
#include "datagen/datasets.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace saged {
namespace {

// --- Binary primitives --------------------------------------------------------

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(1ull << 40);
  w.WriteI32(-42);
  w.WriteF64(3.14159);
  w.WriteString("hello\0world");
  w.WriteF64Vector({1.0, -2.5, 0.0});
  ASSERT_TRUE(w.ok());

  BinaryReader r(&buf);
  EXPECT_EQ(r.ReadU8().value(), 7);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 1ull << 40);
  EXPECT_EQ(r.ReadI32().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadF64().value(), 3.14159);
  EXPECT_EQ(r.ReadString().value(), "hello");
  auto v = r.ReadF64Vector();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<double>{1.0, -2.5, 0.0}));
}

TEST(BinaryIoTest, TruncationDetected) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU64(9999);  // promises a long string that never arrives
  BinaryReader r(&buf);
  EXPECT_FALSE(r.ReadString().ok());
}

// --- Model round trips ---------------------------------------------------------

void MakeBlobs(ml::Matrix* x, std::vector<int>* y, size_t n, Rng& rng) {
  for (size_t i = 0; i < n; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<double> row = {rng.Normal(label * 3.0, 1.0),
                               rng.Normal(-label * 3.0, 1.0)};
    x->AppendRow(row);
    y->push_back(label);
  }
}

template <typename Model>
void ExpectModelRoundTrip(Model& original) {
  Rng rng(13);
  ml::Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 150, rng);
  ASSERT_TRUE(original.Fit(x, y).ok());

  std::stringstream buf;
  BinaryWriter w(&buf);
  original.Save(&w);
  ASSERT_TRUE(w.ok());

  Model restored;
  BinaryReader r(&buf);
  ASSERT_TRUE(restored.Load(&r).ok());
  auto before = original.PredictProba(x);
  auto after = restored.PredictProba(x);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(before[i], after[i]) << i;
  }
}

TEST(ModelSerializationTest, RandomForestRoundTrip) {
  ml::RandomForestClassifier model;
  ExpectModelRoundTrip(model);
}

TEST(ModelSerializationTest, GradientBoostingRoundTrip) {
  ml::GradientBoostingClassifier model;
  ExpectModelRoundTrip(model);
}

TEST(ModelSerializationTest, LogisticRegressionRoundTrip) {
  ml::LogisticRegression model;
  ExpectModelRoundTrip(model);
}

// --- Knowledge base round trip ----------------------------------------------------

class KbSerializationTest : public ::testing::Test {
 protected:
  static core::Saged MakeTrainedSaged() {
    datagen::MakeOptions gen;
    gen.rows = 250;
    auto adult = datagen::MakeDataset("adult", gen);
    EXPECT_TRUE(adult.ok());
    core::SagedConfig config;
    config.w2v.epochs = 1;
    config.w2v.dim = 6;
    config.labeling_budget = 15;
    core::Saged saged(config);
    EXPECT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
    return saged;
  }
};

TEST_F(KbSerializationTest, StreamRoundTripPreservesDetections) {
  core::Saged original = MakeTrainedSaged();
  std::stringstream buf;
  ASSERT_TRUE(
      core::WriteKnowledgeBase(original.knowledge_base(), &buf).ok());

  auto restored_kb = core::ReadKnowledgeBase(&buf);
  ASSERT_TRUE(restored_kb.ok()) << restored_kb.status().ToString();
  EXPECT_EQ(restored_kb->size(), original.knowledge_base().size());

  core::Saged restored(original.config());
  restored.SetKnowledgeBase(std::move(restored_kb).value());

  datagen::MakeOptions gen;
  gen.rows = 200;
  auto nasa = datagen::MakeDataset("nasa", gen);
  ASSERT_TRUE(nasa.ok());
  auto a = original.Detect(nasa->dirty, core::MaskOracle(nasa->mask));
  auto b = restored.Detect(nasa->dirty, core::MaskOracle(nasa->mask));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->mask == b->mask);
}

TEST_F(KbSerializationTest, FileRoundTrip) {
  core::Saged saged = MakeTrainedSaged();
  std::string path = testing::TempDir() + "/saged_kb_test.bin";
  ASSERT_TRUE(core::SaveKnowledgeBase(saged.knowledge_base(), path).ok());
  auto kb = core::LoadKnowledgeBase(path);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(kb->size(), saged.knowledge_base().size());
  for (size_t i = 0; i < kb->size(); ++i) {
    EXPECT_EQ(kb->entries()[i].dataset,
              saged.knowledge_base().entries()[i].dataset);
    EXPECT_EQ(kb->entries()[i].signature,
              saged.knowledge_base().entries()[i].signature);
  }
}

TEST_F(KbSerializationTest, GarbageFileRejected) {
  std::string path = testing::TempDir() + "/saged_kb_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a knowledge base";
  }
  EXPECT_FALSE(core::LoadKnowledgeBase(path).ok());
  EXPECT_FALSE(core::LoadKnowledgeBase("/nonexistent/kb.bin").ok());
}

TEST_F(KbSerializationTest, TruncatedFileRejected) {
  core::Saged saged = MakeTrainedSaged();
  std::stringstream buf;
  ASSERT_TRUE(core::WriteKnowledgeBase(saged.knowledge_base(), &buf).ok());
  std::string bytes = buf.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(core::ReadKnowledgeBase(&cut).ok());
}

TEST_F(KbSerializationTest, MlpModelsRejected) {
  datagen::MakeOptions gen;
  gen.rows = 150;
  auto adult = datagen::MakeDataset("adult", gen);
  ASSERT_TRUE(adult.ok());
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.base_model = core::ModelType::kMlp;
  core::Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  std::stringstream buf;
  auto status = core::WriteKnowledgeBase(saged.knowledge_base(), &buf);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace saged
