#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/preprocess.h"

namespace saged::ml {
namespace {

// --- Matrix ------------------------------------------------------------------

TEST(MatrixTest, ShapeAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 7.0);
}

TEST(MatrixTest, FromRowsAndAppend) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  std::vector<double> extra = {5, 6};
  m.AppendRow(extra);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 6.0);
}

TEST(MatrixTest, SelectRowsAndCols) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix rows = m.SelectRows({2, 0});
  EXPECT_DOUBLE_EQ(rows.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(rows.At(1, 2), 3.0);
  Matrix cols = m.SelectCols({1});
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols.At(2, 0), 8.0);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = a.ConcatCols(b);
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c.At(1, 2), 6.0);
}

TEST(MatrixTest, ColumnStats) {
  Matrix m = Matrix::FromRows({{0, 10}, {2, 10}});
  auto means = m.ColumnMeans();
  EXPECT_DOUBLE_EQ(means[0], 1.0);
  EXPECT_DOUBLE_EQ(means[1], 10.0);
  auto sd = m.ColumnStdDevs();
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(MatrixTest, Distances) {
  std::vector<double> a = {0, 0};
  std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  std::vector<double> c = {1, 0};
  std::vector<double> d = {0, 1};
  EXPECT_NEAR(CosineSimilarity(c, d), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(c, c), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, c), 0.0);
}

// --- Metrics -----------------------------------------------------------------

TEST(MetricsTest, ConfusionAndF1) {
  std::vector<int> truth = {1, 1, 0, 0, 1};
  std::vector<int> pred = {1, 0, 0, 1, 1};
  auto c = Confusion(truth, pred);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_NEAR(c.F1(), 2.0 * (2.0 / 3) * (2.0 / 3) / (4.0 / 3), 1e-12);
}

TEST(MetricsTest, AccuracyAndMacroF1) {
  std::vector<int> truth = {0, 1, 2, 2};
  std::vector<int> pred = {0, 1, 2, 1};
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 0.75);
  EXPECT_GT(MacroF1(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(MacroF1(truth, truth), 1.0);
}

TEST(MetricsTest, Regression) {
  std::vector<double> truth = {1, 2, 3};
  std::vector<double> same = truth;
  EXPECT_DOUBLE_EQ(MeanSquaredError(truth, same), 0.0);
  EXPECT_DOUBLE_EQ(R2Score(truth, same), 1.0);
  std::vector<double> mean_pred = {2, 2, 2};
  EXPECT_NEAR(R2Score(truth, mean_pred), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, mean_pred), 2.0 / 3.0);
}

// --- Preprocess -----------------------------------------------------------

TEST(PreprocessTest, StandardScaler) {
  Matrix m = Matrix::FromRows({{0, 5}, {2, 5}, {4, 5}});
  StandardScaler scaler;
  Matrix s = scaler.FitTransform(m);
  EXPECT_NEAR(s.At(0, 0), -1.2247, 1e-3);
  EXPECT_NEAR(s.At(1, 0), 0.0, 1e-12);
  // Constant column: centered only.
  EXPECT_NEAR(s.At(0, 1), 0.0, 1e-12);
}

TEST(PreprocessTest, MinMaxScaler) {
  Matrix m = Matrix::FromRows({{0.0}, {10.0}});
  MinMaxScaler scaler;
  Matrix s = scaler.FitTransform(m);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 1.0);
}

TEST(PreprocessTest, LabelEncoder) {
  LabelEncoder enc;
  EXPECT_EQ(enc.FitOne("a"), 0);
  EXPECT_EQ(enc.FitOne("b"), 1);
  EXPECT_EQ(enc.FitOne("a"), 0);
  EXPECT_EQ(enc.Transform("b"), 1);
  EXPECT_EQ(enc.Transform("unseen"), 0);
  EXPECT_EQ(enc.NumClasses(), 2u);
}

TEST(PreprocessTest, TrainTestSplit) {
  Rng rng(3);
  auto split = TrainTestSplit(100, 0.25, rng);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
}

// --- Decision tree ----------------------------------------------------------

/// Labels separable by a single threshold on feature 0.
void MakeThresholdData(Matrix* x, std::vector<int>* y, size_t n, Rng& rng) {
  for (size_t i = 0; i < n; ++i) {
    double v = rng.Uniform(0.0, 1.0);
    double noise = rng.Uniform(0.0, 1.0);
    std::vector<double> row = {v, noise};
    x->AppendRow(row);
    y->push_back(v > 0.5 ? 1 : 0);
  }
}

TEST(DecisionTreeTest, LearnsThreshold) {
  Rng rng(17);
  Matrix x;
  std::vector<int> y;
  MakeThresholdData(&x, &y, 200, rng);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  auto pred = tree.Predict(x);
  EXPECT_GT(Accuracy(y, pred), 0.98);
}

TEST(DecisionTreeTest, RejectsEmpty) {
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Fit(Matrix(), {}).ok());
}

TEST(DecisionTreeTest, RejectsSizeMismatch) {
  Matrix x = Matrix::FromRows({{1.0}, {2.0}});
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Fit(x, {1}).ok());
}

TEST(DecisionTreeTest, ConstantLabelsGiveConstantProba) {
  Matrix x = Matrix::FromRows({{1.0}, {2.0}, {3.0}});
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(x, {1, 1, 1}).ok());
  for (double p : tree.PredictProba(x)) EXPECT_DOUBLE_EQ(p, 1.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsNodes) {
  Rng rng(23);
  Matrix x;
  std::vector<int> y;
  MakeThresholdData(&x, &y, 300, rng);
  std::vector<double> yd(y.begin(), y.end());
  TreeOptions opts;
  opts.max_depth = 1;
  DecisionTree stump(DecisionTree::Task::kClassification, opts, 1);
  ASSERT_TRUE(stump.Fit(x, yd).ok());
  EXPECT_LE(stump.NumNodes(), 3u);
}

TEST(DecisionTreeTest, RegressionLearnsStep) {
  Rng rng(29);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(0.0, 1.0);
    std::vector<double> row = {v};
    x.AppendRow(row);
    y.push_back(v > 0.5 ? 10.0 : -10.0);
  }
  DecisionTreeRegressor tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  auto pred = tree.Predict(x);
  EXPECT_LT(MeanSquaredError(y, pred), 1.0);
}

TEST(DecisionTreeTest, ApplyAndLeafMutation) {
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {0.1}, {0.9}});
  std::vector<double> y = {0, 1, 0, 1};
  DecisionTree tree(DecisionTree::Task::kRegression, {}, 5);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  int leaf = tree.ApplyOne(x.Row(0));
  ASSERT_TRUE(tree.IsLeaf(leaf));
  tree.SetLeafValue(leaf, 42.0);
  EXPECT_DOUBLE_EQ(tree.PredictOne(x.Row(0)), 42.0);
}

TEST(DecisionTreeTest, FeatureImportanceIdentifiesSignal) {
  Rng rng(31);
  Matrix x;
  std::vector<int> y;
  MakeThresholdData(&x, &y, 400, rng);  // signal is feature 0
  std::vector<double> yd(y.begin(), y.end());
  DecisionTree tree(DecisionTree::Task::kClassification, {}, 7);
  ASSERT_TRUE(tree.Fit(x, yd).ok());
  auto imp = tree.FeatureImportances(2);
  EXPECT_GT(imp[0], imp[1]);
}

/// Property sweep: the tree never predicts probabilities outside [0, 1]
/// regardless of depth.
class TreeDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeDepthSweep, ProbaBounded) {
  Rng rng(41 + GetParam());
  Matrix x;
  std::vector<int> y;
  MakeThresholdData(&x, &y, 150, rng);
  TreeOptions opts;
  opts.max_depth = GetParam();
  DecisionTreeClassifier tree(opts, 11);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  for (double p : tree.PredictProba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace saged::ml
