#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"

namespace saged::ml {
namespace {

/// Two Gaussian blobs, linearly separable with noise.
void MakeBlobs(Matrix* x, std::vector<int>* y, size_t n, Rng& rng,
               double separation = 3.0) {
  for (size_t i = 0; i < n; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    double cx = label ? separation : 0.0;
    std::vector<double> row = {rng.Normal(cx, 1.0), rng.Normal(-cx, 1.0)};
    x->AppendRow(row);
    y->push_back(label);
  }
}

/// XOR pattern: not linearly separable, demands depth.
void MakeXor(Matrix* x, std::vector<int>* y, size_t n, Rng& rng) {
  for (size_t i = 0; i < n; ++i) {
    double a = rng.Uniform(-1.0, 1.0);
    double b = rng.Uniform(-1.0, 1.0);
    std::vector<double> row = {a, b};
    x->AppendRow(row);
    y->push_back((a > 0) != (b > 0) ? 1 : 0);
  }
}

// --- Random forest ----------------------------------------------------------

TEST(RandomForestTest, SeparatesBlobs) {
  Rng rng(5);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 300, rng);
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, forest.Predict(x)), 0.95);
}

TEST(RandomForestTest, SolvesXor) {
  Rng rng(7);
  Matrix x;
  std::vector<int> y;
  MakeXor(&x, &y, 500, rng);
  ForestOptions opts;
  opts.n_trees = 24;
  RandomForestClassifier forest(opts, 3);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, forest.Predict(x)), 0.9);
}

TEST(RandomForestTest, CloneIsUntrained) {
  Rng rng(9);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 50, rng);
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto clone = forest.Clone();
  // The clone trains independently and reproduces the parent (same seed).
  ASSERT_TRUE(clone->Fit(x, y).ok());
  EXPECT_EQ(clone->Predict(x), forest.Predict(x));
}

TEST(RandomForestTest, MaxSamplesCapsTraining) {
  Rng rng(11);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 400, rng);
  ForestOptions opts;
  opts.max_samples = 50;
  RandomForestClassifier forest(opts, 1);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, forest.Predict(x)), 0.9);  // still learns
}

TEST(RandomForestTest, FeatureImportancesNormalized) {
  Rng rng(13);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 200, rng);
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto imp = forest.FeatureImportances();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForestRegressorTest, FitsLinearTrend) {
  Rng rng(15);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Uniform(0.0, 10.0);
    std::vector<double> row = {v};
    x.AppendRow(row);
    y.push_back(2.0 * v + rng.Normal(0.0, 0.1));
  }
  RandomForestRegressor forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto pred = forest.Predict(x);
  EXPECT_GT(R2Score(y, pred), 0.95);
}

// --- Gradient boosting ------------------------------------------------------

TEST(GradientBoostingTest, SeparatesBlobs) {
  Rng rng(17);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 300, rng);
  GradientBoostingClassifier gb;
  ASSERT_TRUE(gb.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, gb.Predict(x)), 0.95);
}

TEST(GradientBoostingTest, SolvesXor) {
  Rng rng(19);
  Matrix x;
  std::vector<int> y;
  MakeXor(&x, &y, 500, rng);
  GradientBoostingClassifier gb;
  ASSERT_TRUE(gb.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, gb.Predict(x)), 0.9);
}

TEST(GradientBoostingTest, MoreRoundsHelpOrHold) {
  Rng rng(21);
  Matrix x;
  std::vector<int> y;
  MakeXor(&x, &y, 400, rng);
  BoostingOptions few;
  few.n_rounds = 2;
  BoostingOptions many;
  many.n_rounds = 40;
  GradientBoostingClassifier weak(few, 5);
  GradientBoostingClassifier strong(many, 5);
  ASSERT_TRUE(weak.Fit(x, y).ok());
  ASSERT_TRUE(strong.Fit(x, y).ok());
  EXPECT_GE(Accuracy(y, strong.Predict(x)) + 1e-9,
            Accuracy(y, weak.Predict(x)));
}

TEST(GradientBoostingTest, SubsampleStillLearns) {
  Rng rng(23);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 300, rng);
  BoostingOptions opts;
  opts.subsample = 0.5;
  GradientBoostingClassifier gb(opts, 7);
  ASSERT_TRUE(gb.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, gb.Predict(x)), 0.9);
}

TEST(GradientBoostingTest, ProbaBounded) {
  Rng rng(25);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 100, rng);
  GradientBoostingClassifier gb;
  ASSERT_TRUE(gb.Fit(x, y).ok());
  for (double p : gb.PredictProba(x)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

// --- Logistic regression ----------------------------------------------------

TEST(LogisticRegressionTest, SeparatesBlobs) {
  Rng rng(27);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 300, rng);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, lr.Predict(x)), 0.95);
}

TEST(LogisticRegressionTest, HandlesImbalance) {
  Rng rng(29);
  Matrix x;
  std::vector<int> y;
  // 10:1 imbalance; balanced class weights should still find positives.
  for (int i = 0; i < 220; ++i) {
    int label = i % 11 == 0 ? 1 : 0;
    std::vector<double> row = {label ? 3.0 + rng.Normal(0, 0.5)
                                     : rng.Normal(0, 0.5)};
    x.AppendRow(row);
    y.push_back(label);
  }
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(x, y).ok());
  auto c = Confusion(y, lr.Predict(x));
  EXPECT_GT(c.Recall(), 0.9);
}

TEST(LogisticRegressionTest, RejectsEmpty) {
  LogisticRegression lr;
  EXPECT_FALSE(lr.Fit(Matrix(), {}).ok());
}

// --- MLP ---------------------------------------------------------------------

TEST(MlpTest, BinaryBlobs) {
  Rng rng(31);
  Matrix x;
  std::vector<int> y;
  MakeBlobs(&x, &y, 300, rng);
  MlpClassifier net;
  ASSERT_TRUE(net.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, net.Predict(x)), 0.95);
}

TEST(MlpTest, SolvesXor) {
  Rng rng(33);
  Matrix x;
  std::vector<int> y;
  MakeXor(&x, &y, 600, rng);
  MlpOptions opts;
  opts.hidden = {16, 16};
  opts.epochs = 200;
  MlpClassifier net(opts, 3);
  ASSERT_TRUE(net.Fit(x, y).ok());
  EXPECT_GT(Accuracy(y, net.Predict(x)), 0.9);
}

TEST(MlpTest, RegressionFitsLine) {
  Rng rng(35);
  Matrix x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    double v = rng.Uniform(-1.0, 1.0);
    std::vector<double> row = {v};
    x.AppendRow(row);
    y.push_back(3.0 * v + 0.5);
  }
  MlpOptions opts;
  opts.task = MlpTask::kRegression;
  opts.epochs = 200;
  Mlp net(opts, 5);
  ASSERT_TRUE(net.Fit(x, y).ok());
  Matrix pred = net.Predict(x);
  std::vector<double> y_hat(pred.rows());
  for (size_t i = 0; i < pred.rows(); ++i) y_hat[i] = pred.At(i, 0);
  EXPECT_GT(R2Score(y, y_hat), 0.95);
}

TEST(MlpTest, MulticlassSoftmaxSumsToOne) {
  Rng rng(37);
  Matrix x;
  Matrix targets(90, 3);
  for (int i = 0; i < 90; ++i) {
    int cls = i % 3;
    std::vector<double> row = {static_cast<double>(cls) + rng.Normal(0, 0.2)};
    x.AppendRow(row);
    targets.At(i, static_cast<size_t>(cls)) = 1.0;
  }
  MlpOptions opts;
  opts.task = MlpTask::kMulticlass;
  opts.n_outputs = 3;
  opts.epochs = 150;
  Mlp net(opts, 7);
  ASSERT_TRUE(net.Fit(x, targets).ok());
  Matrix proba = net.Predict(x);
  for (size_t r = 0; r < proba.rows(); ++r) {
    double sum = 0.0;
    for (double v : proba.Row(r)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  auto classes = net.PredictClasses(x);
  std::vector<int> truth(90);
  for (int i = 0; i < 90; ++i) truth[static_cast<size_t>(i)] = i % 3;
  EXPECT_GT(Accuracy(truth, classes), 0.9);
}

TEST(MlpTest, RejectsTargetMismatch) {
  Mlp net;
  Matrix x = Matrix::FromRows({{1.0}});
  Matrix y(2, 1);
  EXPECT_FALSE(net.Fit(x, y).ok());
}

}  // namespace
}  // namespace saged::ml
