// Property-style sweeps over module invariants: things that must hold for
// every parameter combination, not just the happy path.

#include <set>

#include <cmath>

#include <gtest/gtest.h>

#include <span>

#include "common/rng.h"
#include "common/strings.h"
#include "data/csv.h"
#include "datagen/datasets.h"
#include "datagen/error_injector.h"
#include "datagen/synth.h"
#include "features/char_space.h"
#include "features/dictionary.h"
#include "features/featurizer.h"
#include "features/frozen_stats.h"
#include "features/kernels.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged {
namespace {

// --- Error injector: one sweep per error type ---------------------------------

class InjectorTypeSweep : public ::testing::TestWithParam<datagen::ErrorType> {
 protected:
  static Table MixedTable(size_t rows) {
    Rng rng(99);
    std::vector<Cell> num;
    std::vector<Cell> text;
    std::vector<Cell> phone;
    for (size_t i = 0; i < rows; ++i) {
      num.push_back(datagen::SynthInt(rng, 50, 90));
      text.push_back(datagen::SynthFullName(rng));
      phone.push_back(datagen::SynthPhone(rng));
    }
    Table t("mixed");
    EXPECT_TRUE(t.AddColumn(Column("num", std::move(num))).ok());
    EXPECT_TRUE(t.AddColumn(Column("text", std::move(text))).ok());
    EXPECT_TRUE(t.AddColumn(Column("phone", std::move(phone))).ok());
    return t;
  }
};

TEST_P(InjectorTypeSweep, MaskExactlyMarksChangedCells) {
  Table clean = MixedTable(400);
  datagen::InjectionSpec spec;
  spec.error_rate = 0.12;
  spec.types = {GetParam()};
  datagen::ErrorInjector injector(spec, 31);
  auto out = injector.Inject(clean);
  ASSERT_TRUE(out.ok()) << ErrorTypeName(GetParam());
  size_t changed = 0;
  for (size_t r = 0; r < clean.NumRows(); ++r) {
    for (size_t c = 0; c < clean.NumCols(); ++c) {
      bool diff = clean.cell(r, c) != out->dirty.cell(r, c);
      EXPECT_EQ(diff, out->mask.IsDirty(r, c));
      changed += diff;
    }
  }
  // Hit the requested rate exactly (the injector samples without
  // replacement and guarantees every chosen cell changes).
  size_t target = static_cast<size_t>(0.12 * 400 * 3);
  EXPECT_EQ(changed, target) << ErrorTypeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Types, InjectorTypeSweep,
    ::testing::Values(datagen::ErrorType::kMissingValue,
                      datagen::ErrorType::kTypo, datagen::ErrorType::kOutlier,
                      datagen::ErrorType::kFormatting,
                      datagen::ErrorType::kRuleViolation));

// --- CSV round trip under adversarial content ---------------------------------

class CsvRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripSweep, ArbitraryContentSurvives) {
  Rng rng(GetParam());
  static const char kNasty[] = ",\"\n\r;| '";
  Table t("fuzz");
  for (size_t j = 0; j < 4; ++j) {
    std::vector<Cell> values;
    for (size_t r = 0; r < 25; ++r) {
      std::string v;
      size_t len = rng.UniformInt(uint64_t{12});
      for (size_t k = 0; k < len; ++k) {
        if (rng.Bernoulli(0.3)) {
          v += kNasty[rng.UniformInt(sizeof(kNasty) - 1)];
        } else {
          v += static_cast<char>('a' + rng.UniformInt(uint64_t{26}));
        }
      }
      values.push_back(v);
    }
    ASSERT_TRUE(t.AddColumn(Column(StrFormat("c%zu", j), values)).ok());
  }
  auto back = ParseCsv(FormatCsv(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumRows(), t.NumRows());
  ASSERT_EQ(back->NumCols(), t.NumCols());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    for (size_t c = 0; c < t.NumCols(); ++c) {
      EXPECT_EQ(back->cell(r, c), t.cell(r, c)) << "(" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Metric identities -----------------------------------------------------------

class MetricSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricSweep, ConfusionCountsPartitionAndBound) {
  Rng rng(GetParam());
  std::vector<int> truth(200);
  std::vector<int> pred(200);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = rng.Bernoulli(0.3) ? 1 : 0;
    pred[i] = rng.Bernoulli(0.4) ? 1 : 0;
  }
  auto c = ml::Confusion(truth, pred);
  EXPECT_EQ(c.tp + c.fp + c.fn + c.tn, truth.size());
  // F1 is bounded by precision and recall extremes.
  double f1 = c.F1();
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
  EXPECT_LE(f1, std::max(c.Precision(), c.Recall()) + 1e-12);
  EXPECT_GE(f1 + 1e-12, std::min(c.Precision(), c.Recall()) *
                            std::min(c.Precision(), c.Recall()) /
                            std::max({c.Precision(), c.Recall(), 1e-12}));
  // Perfect prediction degenerates correctly.
  auto perfect = ml::Confusion(truth, truth);
  EXPECT_EQ(perfect.fp, 0u);
  EXPECT_EQ(perfect.fn, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricSweep, ::testing::Values(11, 22, 33, 44));

// --- ErrorMask score duality ------------------------------------------------------

TEST(ErrorMaskProperty, SwappingTruthAndPredictionSwapsPrecisionRecall) {
  Rng rng(7);
  ErrorMask a(40, 5);
  ErrorMask b(40, 5);
  for (size_t r = 0; r < 40; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      if (rng.Bernoulli(0.2)) a.Set(r, c);
      if (rng.Bernoulli(0.2)) b.Set(r, c);
    }
  }
  auto ab = a.Score(b);
  auto ba = b.Score(a);
  EXPECT_EQ(ab.tp, ba.tp);
  EXPECT_DOUBLE_EQ(ab.Precision(), ba.Recall());
  EXPECT_DOUBLE_EQ(ab.Recall(), ba.Precision());
  EXPECT_NEAR(ab.F1(), ba.F1(), 1e-12);
}

// --- Dataset determinism across components ---------------------------------------

class DatasetSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DatasetSeedSweep, DifferentSeedsDifferentData) {
  datagen::MakeOptions a;
  a.rows = 60;
  a.seed = GetParam();
  datagen::MakeOptions b = a;
  b.seed = GetParam() + 1000;
  auto da = datagen::MakeDataset("flights", a);
  auto db = datagen::MakeDataset("flights", b);
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  bool any_diff = false;
  for (size_t r = 0; r < 60 && !any_diff; ++r) {
    any_diff = da->clean.Row(r) != db->clean.Row(r);
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetSeedSweep, ::testing::Values(1, 5, 9));

// --- KMeans invariants --------------------------------------------------------------

class KMeansKSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansKSweep, LabelsInRangeAndAllCentroidsFinite) {
  Rng rng(17);
  ml::Matrix x;
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row = {rng.Normal(0, 5), rng.Normal(0, 5)};
    x.AppendRow(row);
  }
  ml::KMeans km(GetParam(), 50, 3);
  ASSERT_TRUE(km.Fit(x).ok());
  for (size_t label : km.labels()) EXPECT_LT(label, km.k());
  for (double v : km.centroids().data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GE(km.inertia(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansKSweep, ::testing::Values(1, 2, 5, 20, 200));

// --- Block featurization invariance (streaming path contract) --------------------

/// featurize(concat(blocks)) == concat(featurize(block_i)) under frozen
/// stats, for arbitrary block boundaries — exact double equality, since the
/// streaming detector's byte-identity guarantee rests on it.
class BlockFeaturizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockFeaturizeSweep, ChunkingNeverChangesTheMatrix) {
  Rng rng(GetParam());
  static const char kNasty[] = ",\"\n\r;| '";
  std::vector<Cell> cells;
  for (size_t r = 0; r < 150; ++r) {
    std::string v;
    size_t len = rng.UniformInt(uint64_t{10});
    for (size_t k = 0; k < len; ++k) {
      if (rng.Bernoulli(0.25)) {
        v += kNasty[rng.UniformInt(sizeof(kNasty) - 1)];
      } else {
        v += static_cast<char>('a' + rng.UniformInt(uint64_t{26}));
      }
    }
    cells.push_back(v);
  }
  Column column("fuzz", cells);

  text::Word2Vec w2v({.dim = 4, .epochs = 1}, /*seed=*/5);
  std::vector<std::vector<std::string>> docs;
  for (const auto& cell : cells) docs.push_back(text::TupleTokens({cell}));
  ASSERT_TRUE(w2v.Train(docs).ok());
  features::CharSpace space(32);
  features::ColumnFeaturizer::RegisterChars(column, &space);
  features::ColumnFeaturizer featurizer(&w2v, &space);

  // Reference: the whole-column fit-and-featurize the in-memory path runs.
  auto whole = featurizer.Featurize(column);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();

  // Frozen stats from a streaming scan over the same cells.
  features::ColumnStatsBuilder builder;
  for (const auto& cell : cells) builder.Observe(cell);
  auto stats = builder.Finalize();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Split at random boundaries (including size-1 blocks) and concatenate.
  std::span<const Cell> all(cells);
  size_t offset = 0;
  while (offset < cells.size()) {
    size_t take = std::min<size_t>(1 + rng.UniformInt(uint64_t{40}),
                                   cells.size() - offset);
    auto block = featurizer.FeaturizeFrozen(*stats, all.subspan(offset, take));
    ASSERT_TRUE(block.ok()) << block.status().ToString();
    ASSERT_EQ(block->rows(), take);
    ASSERT_EQ(block->cols(), whole->cols());
    for (size_t i = 0; i < take; ++i) {
      for (size_t j = 0; j < whole->cols(); ++j) {
        // Exact equality: the per-cell kernel and the frozen stats must be
        // bit-identical to the whole-column path, not merely close.
        ASSERT_EQ(block->At(i, j), whole->At(offset + i, j))
            << "row " << offset + i << " col " << j;
      }
    }
    offset += take;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockFeaturizeSweep,
                         ::testing::Values(101, 202, 303));

// --- DocumentReservoir: the corpus depends on the stream, not the blocking -------

TEST(DocumentReservoirProperty, IdentityBelowCapacityAndStreamOrdered) {
  text::DocumentReservoir reservoir(100, /*seed=*/9);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 60; ++i) docs.push_back({"tok" + std::to_string(i)});
  for (const auto& doc : docs) reservoir.Add(doc);
  EXPECT_EQ(reservoir.seen(), docs.size());
  EXPECT_EQ(reservoir.Take(), docs);  // identity, original order
}

TEST(DocumentReservoirProperty, SubsampleDeterministicAndStreamOrdered) {
  auto run = [] {
    text::DocumentReservoir reservoir(25, /*seed=*/9);
    for (int i = 0; i < 500; ++i) {
      reservoir.Add({"tok" + std::to_string(i)});
    }
    return reservoir.Take();
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);  // same seed + same stream -> same sample
  ASSERT_EQ(a.size(), 25u);
  // Stream order is restored: token indices strictly increase.
  int prev = -1;
  for (const auto& doc : a) {
    int index = std::stoi(doc[0].substr(3));
    EXPECT_GT(index, prev);
    prev = index;
  }
}

// --- String edit distance properties -------------------------------------------------

TEST(EditDistanceProperty, SymmetryAndIdentity) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.UniformInt(uint64_t{10}); ++i) {
      a += static_cast<char>('a' + rng.UniformInt(uint64_t{4}));
    }
    for (size_t i = 0; i < rng.UniformInt(uint64_t{10}); ++i) {
      b += static_cast<char>('a' + rng.UniformInt(uint64_t{4}));
    }
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_EQ(EditDistance(a, a), 0u);
    // Bounded by the longer string's length.
    EXPECT_LE(EditDistance(a, b), std::max(a.size(), b.size()));
    // At least the length difference.
    EXPECT_GE(EditDistance(a, b),
              a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  }
}

// --- Featurization kernels vs references ---------------------------------------

/// Random byte strings, NUL and high bytes included, at lengths sweeping
/// the SIMD chunk boundary.
std::vector<std::string> RandomByteStrings(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  for (size_t len : {0u, 1u, 7u, 15u, 16u, 17u, 31u, 32u, 33u, 100u, 257u}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::string s;
      s.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.UniformInt(uint64_t{256})));
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

TEST(KernelParityProperty, DispatchedKernelsEqualReferencesOnRandomBytes) {
  namespace kernels = features::kernels;
  for (const auto& s : RandomByteStrings(77)) {
    EXPECT_EQ(kernels::CountCharClasses(s), kernels::CountCharClassesScalar(s))
        << "len=" << s.size();
#if defined(SAGED_FEATURES_HAVE_SIMD)
    EXPECT_EQ(kernels::CountCharClassesSimd(s),
              kernels::CountCharClassesScalar(s))
        << "len=" << s.size();
#endif
    uint32_t ref[256] = {0};
    uint32_t fast[256] = {0};
    kernels::ByteHistogramScalar(s, ref);
    kernels::ByteHistogram(s, fast);
    EXPECT_TRUE(std::equal(ref, ref + 256, fast)) << "len=" << s.size();
    EXPECT_EQ(kernels::HashValue(s), kernels::HashValueScalar(s))
        << "len=" << s.size();
  }
}

TEST(KernelParityProperty, CharClassCountsMatchCctypeDefinition) {
  // The scalar reference IS <cctype>; the class table and SIMD ranges must
  // agree with it for every byte value, in the vector body and the tail.
  namespace kernels = features::kernels;
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  auto counts = kernels::CountCharClassesScalar(all);
  EXPECT_EQ(counts.alpha, 52u);
  EXPECT_EQ(counts.digit, 10u);
  EXPECT_EQ(counts.punct, 32u);
  EXPECT_EQ(kernels::CountCharClasses(all), counts);
#if defined(SAGED_FEATURES_HAVE_SIMD)
  EXPECT_EQ(kernels::CountCharClassesSimd(all), counts);
#endif
}

TEST(DictionaryProperty, EncodeDecodeRoundTripOnRandomBytes) {
  // Dictionary encode/decode is lossless for arbitrary cell bytes: gather
  // through the code vector reproduces every cell byte-for-byte, and codes
  // are dense in first-seen order.
  auto strings = RandomByteStrings(123);
  Rng rng(5);
  std::vector<Cell> cells;
  for (int i = 0; i < 500; ++i) {
    cells.push_back(strings[rng.UniformInt(uint64_t{strings.size()})]);
  }
  features::ColumnDictionary dict;
  dict.Encode(cells);
  ASSERT_EQ(dict.codes().size(), cells.size());
  std::set<uint32_t> used;
  for (size_t i = 0; i < cells.size(); ++i) {
    uint32_t code = dict.codes()[i];
    ASSERT_LT(code, dict.size());
    EXPECT_EQ(dict.value(code), cells[i]) << "cell " << i;
    used.insert(code);
  }
  EXPECT_EQ(used.size(), dict.size());  // every code reachable, none wasted
  std::set<std::string> distinct(cells.begin(), cells.end());
  EXPECT_EQ(dict.size(), distinct.size());
}

TEST(DictionaryProperty, GatherEqualsScalarPerCell) {
  // The dictionary path's core claim, stated per cell: featurizing
  // value(codes()[i]) is the same computation as featurizing cells[i],
  // because the gathered bytes are identical strings.
  auto strings = RandomByteStrings(321);
  Rng rng(9);
  std::vector<Cell> cells;
  for (int i = 0; i < 200; ++i) {
    cells.push_back(strings[rng.UniformInt(uint64_t{strings.size()})]);
  }
  features::ColumnDictionary dict;
  dict.Encode(cells);
  for (size_t i = 0; i < cells.size(); ++i) {
    std::string_view gathered = dict.value(dict.codes()[i]);
    EXPECT_EQ(features::kernels::HashValue(gathered),
              features::kernels::HashValue(cells[i]));
    EXPECT_EQ(features::kernels::CountCharClasses(gathered),
              features::kernels::CountCharClasses(cells[i]));
  }
}

}  // namespace
}  // namespace saged
