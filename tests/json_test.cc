// Tests for the shared JSON emission helpers (common/json.h): full escaping
// of control characters and quotes, UTF-8 re-encoding to \uXXXX (surrogate
// pairs above the BMP), replacement of invalid bytes, and number formatting.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace saged::json {
namespace {

TEST(JsonStringTest, PlainAsciiPassesThroughQuoted) {
  EXPECT_EQ(JsonEscaped("hello world_42"), "\"hello world_42\"");
  EXPECT_EQ(JsonEscaped(""), "\"\"");
}

TEST(JsonStringTest, EscapesQuotesAndBackslash) {
  EXPECT_EQ(JsonEscaped("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscaped("a\\b"), "\"a\\\\b\"");
}

TEST(JsonStringTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(JsonEscaped("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
}

TEST(JsonStringTest, EscapesRemainingControlCharacters) {
  EXPECT_EQ(JsonEscaped(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(JsonEscaped(std::string(1, '\x1f')), "\"\\u001f\"");
  EXPECT_EQ(JsonEscaped(std::string(1, '\x7f')), "\"\\u007f\"");
  // Embedded NUL must not truncate the literal.
  EXPECT_EQ(JsonEscaped(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonStringTest, ReencodesTwoByteUtf8) {
  // U+00E9 LATIN SMALL LETTER E WITH ACUTE = C3 A9.
  EXPECT_EQ(JsonEscaped("caf\xc3\xa9"), "\"caf\\u00e9\"");
}

TEST(JsonStringTest, ReencodesThreeByteUtf8) {
  // U+20AC EURO SIGN = E2 82 AC.
  EXPECT_EQ(JsonEscaped("\xe2\x82\xac"), "\"\\u20ac\"");
}

TEST(JsonStringTest, ReencodesAstralPlaneAsSurrogatePair) {
  // U+1F600 GRINNING FACE = F0 9F 98 80 -> \ud83d\ude00.
  EXPECT_EQ(JsonEscaped("\xf0\x9f\x98\x80"), "\"\\ud83d\\ude00\"");
}

TEST(JsonStringTest, InvalidBytesBecomeReplacementCharacter) {
  // 0xFF can start no UTF-8 sequence; a lone continuation byte likewise.
  EXPECT_EQ(JsonEscaped("\xff"), "\"\\ufffd\"");
  EXPECT_EQ(JsonEscaped("\x80"), "\"\\ufffd\"");
  // Each bad byte is replaced independently.
  EXPECT_EQ(JsonEscaped("\xff\xff"), "\"\\ufffd\\ufffd\"");
}

TEST(JsonStringTest, TruncatedSequenceReplacedPerByte) {
  // C3 alone (missing continuation) -> one U+FFFD, then 'x' untouched.
  EXPECT_EQ(JsonEscaped("\xc3"), "\"\\ufffd\"");
  EXPECT_EQ(JsonEscaped("\xc3x"), "\"\\ufffdx\"");
}

TEST(JsonStringTest, OverlongAndSurrogateEncodingsRejected) {
  // C0 80 is the overlong encoding of NUL.
  EXPECT_EQ(JsonEscaped("\xc0\x80"), "\"\\ufffd\\ufffd\"");
  // ED A0 80 encodes the surrogate half U+D800.
  EXPECT_EQ(JsonEscaped("\xed\xa0\x80"), "\"\\ufffd\\ufffd\\ufffd\"");
}

TEST(JsonStringTest, OutputIsPureAscii) {
  std::string hostile;
  for (int b = 1; b < 256; ++b) hostile.push_back(static_cast<char>(b));
  std::string out = JsonEscaped(hostile);
  for (char c : out) {
    unsigned char u = static_cast<unsigned char>(c);
    EXPECT_GE(u, 0x20u);
    EXPECT_LT(u, 0x80u);
  }
}

TEST(JsonNumberTest, DoublesUseCompactFormat) {
  std::string out;
  AppendJsonDouble(out, 1.5);
  EXPECT_EQ(out, "1.5");
  out.clear();
  AppendJsonDouble(out, 0.0);
  EXPECT_EQ(out, "0");
}

TEST(JsonNumberTest, NonFiniteDoublesClampToZero) {
  std::string out;
  AppendJsonDouble(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "0");
  out.clear();
  AppendJsonDouble(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "0");
  out.clear();
  AppendJsonDouble(out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "0");
}

TEST(JsonNumberTest, UintsEmittedInFull) {
  std::string out;
  AppendJsonUint(out, 0);
  EXPECT_EQ(out, "0");
  out.clear();
  AppendJsonUint(out, 18446744073709551615ull);
  EXPECT_EQ(out, "18446744073709551615");
}

TEST(JsonStringTest, AppendAccumulates) {
  std::string out = "{\"k\":";
  AppendJsonString(out, "v");
  out += '}';
  EXPECT_EQ(out, "{\"k\":\"v\"}");
}

}  // namespace
}  // namespace saged::json
