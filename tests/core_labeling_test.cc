#include <set>

#include <gtest/gtest.h>

#include "core/augmentation.h"
#include "core/config.h"
#include "core/labeling.h"
#include "core/meta_classifier.h"

namespace saged::core {
namespace {

/// Meta features for two columns over `n` rows: rows < n_dirty are "dirty"
/// (all base models vote 1), the rest clean.
std::vector<ml::Matrix> FakeMeta(size_t n, size_t n_dirty, size_t models = 3) {
  std::vector<ml::Matrix> meta(2);
  for (auto& m : meta) {
    m = ml::Matrix(n, models);
    for (size_t r = 0; r < n_dirty; ++r) {
      for (size_t c = 0; c < models; ++c) m.At(r, c) = 1.0;
    }
  }
  return meta;
}

OracleFn FakeOracle(size_t n_dirty) {
  return [n_dirty](size_t row, size_t) { return row < n_dirty ? 1 : 0; };
}

// --- Strategies ------------------------------------------------------------------

TEST(LabelingTest, RandomSelectsBudgetDistinct) {
  Rng rng(3);
  auto rows = internal::SelectRandom(100, 20, rng);
  EXPECT_EQ(rows.size(), 20u);
  EXPECT_EQ(std::set<size_t>(rows.begin(), rows.end()).size(), 20u);
}

TEST(LabelingTest, HeuristicPrefersPositiveRows) {
  Rng rng(5);
  auto meta = FakeMeta(100, 10);
  auto rows = internal::SelectHeuristic(meta, {}, 10, rng);
  ASSERT_EQ(rows.size(), 10u);
  // All selected rows must be the all-ones rows.
  for (size_t r : rows) EXPECT_LT(r, 10u);
}

TEST(LabelingTest, HeuristicIgnoresNonVoteColumns) {
  Rng rng(6);
  // Two meta columns: a vote column where rows < 5 are positive, and a
  // metadata column with huge values on the OTHER rows. With vote_cols=1
  // the metadata column must not influence the ranking.
  std::vector<ml::Matrix> meta(1);
  meta[0] = ml::Matrix(50, 2);
  for (size_t r = 0; r < 5; ++r) meta[0].At(r, 0) = 1.0;
  for (size_t r = 5; r < 50; ++r) meta[0].At(r, 1) = 10.0;  // decoy metadata
  auto rows = internal::SelectHeuristic(meta, {1}, 5, rng);
  ASSERT_EQ(rows.size(), 5u);
  for (size_t r : rows) EXPECT_LT(r, 5u);
}

TEST(LabelingTest, ClusteringCoversBothClasses) {
  Rng rng(7);
  auto meta = FakeMeta(60, 20);
  auto rows = internal::SelectClustering(meta, 10, 60, rng);
  ASSERT_FALSE(rows.empty());
  EXPECT_LE(rows.size(), 10u);
  bool any_dirty = false;
  bool any_clean = false;
  for (size_t r : rows) {
    any_dirty |= r < 20;
    any_clean |= r >= 20;
  }
  EXPECT_TRUE(any_dirty);
  EXPECT_TRUE(any_clean);
}

TEST(LabelingTest, ClusteringHonorsSampleCap) {
  Rng rng(9);
  auto meta = FakeMeta(500, 100);
  auto rows = internal::SelectClustering(meta, 8, 50, rng);
  EXPECT_LE(rows.size(), 8u);
  EXPECT_FALSE(rows.empty());
}

TEST(LabelingTest, ActiveLearningStaysWithinBudget) {
  Rng rng(11);
  auto meta = FakeMeta(80, 25);
  SagedConfig config;
  auto rows = internal::SelectActiveLearning(config, meta, 12,
                                             FakeOracle(25), rng);
  EXPECT_EQ(rows.size(), 12u);
  EXPECT_EQ(std::set<size_t>(rows.begin(), rows.end()).size(), 12u);
}

TEST(LabelingTest, DispatcherRoutesAllStrategies) {
  auto meta = FakeMeta(50, 10);
  for (auto strategy :
       {LabelingStrategy::kRandom, LabelingStrategy::kHeuristic,
        LabelingStrategy::kClustering, LabelingStrategy::kActiveLearning}) {
    Rng rng(13);
    SagedConfig config;
    config.labeling = strategy;
    auto rows = SelectTuples(config, meta, {}, 6, FakeOracle(10), rng);
    EXPECT_FALSE(rows.empty()) << LabelingStrategyName(strategy);
    EXPECT_LE(rows.size(), 6u);
  }
}

TEST(LabelingTest, ZeroBudgetEmpty) {
  Rng rng(15);
  SagedConfig config;
  auto meta = FakeMeta(10, 2);
  EXPECT_TRUE(SelectTuples(config, meta, {}, 0, FakeOracle(2), rng).empty());
}

// --- Meta classifier -----------------------------------------------------------

TEST(MetaClassifierTest, LearnsFromLabels) {
  auto meta = FakeMeta(100, 30)[0];
  std::vector<size_t> rows = {0, 5, 10, 40, 60, 80};
  std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  MetaClassifier clf(ModelType::kGradientBoosting, 3);
  ASSERT_TRUE(clf.Fit(meta, rows, labels).ok());
  EXPECT_FALSE(clf.IsFallback());
  auto pred = clf.Predict(meta);
  EXPECT_EQ(pred[2], 1);
  EXPECT_EQ(pred[70], 0);
}

TEST(MetaClassifierTest, SingleClassFallsBackToVoting) {
  auto meta = FakeMeta(50, 10)[0];
  std::vector<size_t> rows = {40, 45};
  std::vector<int> labels = {0, 0};  // only clean labeled
  MetaClassifier clf(ModelType::kGradientBoosting, 3);
  ASSERT_TRUE(clf.Fit(meta, rows, labels).ok());
  EXPECT_TRUE(clf.IsFallback());
  auto pred = clf.Predict(meta);
  EXPECT_EQ(pred[0], 1);   // all base models vote dirty
  EXPECT_EQ(pred[30], 0);  // all vote clean
}

TEST(MetaClassifierTest, RejectsEmptyAndMismatched) {
  auto meta = FakeMeta(10, 2)[0];
  MetaClassifier clf(ModelType::kGradientBoosting, 3);
  EXPECT_FALSE(clf.Fit(meta, {}, {}).ok());
  EXPECT_FALSE(clf.Fit(meta, {0, 1}, {1}).ok());
}

// --- Augmentation ----------------------------------------------------------------

struct AugCase {
  AugmentationMethod method;
};

class AugmentationSweep : public ::testing::TestWithParam<AugmentationMethod> {};

TEST_P(AugmentationSweep, ProducesOnlyUnlabeledRows) {
  Rng rng(17);
  auto meta = FakeMeta(100, 30)[0];
  std::vector<size_t> labeled = {0, 1, 35, 60};
  std::vector<int> labeled_y = {1, 1, 0, 0};
  std::vector<double> proba(100, 0.0);
  for (size_t r = 0; r < 30; ++r) proba[r] = 0.9;
  for (size_t r = 30; r < 100; ++r) proba[r] = 0.1;
  proba[50] = 0.5;  // an uncertain one

  auto pseudo = AugmentColumn(GetParam(), meta, labeled, labeled_y, proba,
                              0.2, rng);
  std::set<size_t> labeled_set(labeled.begin(), labeled.end());
  for (const auto& [row, label] : pseudo) {
    EXPECT_FALSE(labeled_set.count(row)) << row;
    EXPECT_TRUE(label == 0 || label == 1);
    EXPECT_LT(row, 100u);
  }
  if (GetParam() == AugmentationMethod::kNone) {
    EXPECT_TRUE(pseudo.empty());
  } else {
    EXPECT_FALSE(pseudo.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AugmentationSweep,
    ::testing::Values(AugmentationMethod::kNone, AugmentationMethod::kRandom,
                      AugmentationMethod::kIterativeRefinement,
                      AugmentationMethod::kActiveLearning,
                      AugmentationMethod::kKnnShapley));

TEST(AugmentationTest, IterativeRefinementOnlyPositive) {
  Rng rng(19);
  auto meta = FakeMeta(60, 20)[0];
  std::vector<size_t> labeled = {0, 30};
  std::vector<int> labeled_y = {1, 0};
  std::vector<double> proba(60, 0.1);
  for (size_t r = 0; r < 20; ++r) proba[r] = 0.9;
  auto pseudo = AugmentColumn(AugmentationMethod::kIterativeRefinement, meta,
                              labeled, labeled_y, proba, 0.3, rng);
  for (const auto& [row, label] : pseudo) {
    EXPECT_EQ(label, 1);
    EXPECT_LT(row, 20u);
  }
}

TEST(AugmentationTest, FractionCapsCount) {
  Rng rng(21);
  auto meta = FakeMeta(100, 50)[0];
  std::vector<size_t> labeled = {0, 99};
  std::vector<int> labeled_y = {1, 0};
  std::vector<double> proba(100, 0.6);
  auto pseudo = AugmentColumn(AugmentationMethod::kRandom, meta, labeled,
                              labeled_y, proba, 0.1, rng);
  EXPECT_LE(pseudo.size(), 10u);
}

TEST(AugmentationTest, KnnShapleySkipsUniformImportance) {
  Rng rng(23);
  // All candidates identical -> identical Shapley values -> skip.
  ml::Matrix meta(20, 2);
  std::vector<size_t> labeled = {0, 1};
  std::vector<int> labeled_y = {1, 0};
  std::vector<double> proba(20, 0.7);
  auto pseudo = AugmentColumn(AugmentationMethod::kKnnShapley, meta, labeled,
                              labeled_y, proba, 0.2, rng);
  EXPECT_TRUE(pseudo.empty());
}

}  // namespace
}  // namespace saged::core
