// Golden seed-stability tests for the synthetic data generator: the exact
// content of the generated tables and error masks is pinned by hash for two
// seeds. Any change to datagen output — an extra Rng draw, a reordered
// injection pass, a tweaked synthesizer — trips these tests, which protects
// every downstream experiment (and the streaming byte-identity wall) from
// silent dataset drift. If a change to datagen is *intentional*, rerun the
// test and update the pinned constants from the failure messages, which
// print the new hashes.
//
// The hashing itself lives in data/content_hash.h (the run ledger records
// the same digests for provenance); these tests also pin THAT byte layout.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "data/content_hash.h"
#include "datagen/datasets.h"

namespace saged {
namespace {

/// One digest covering everything detection consumes: clean table, dirty
/// table, and ground-truth mask.
uint64_t DatasetDigest(const std::string& name, uint64_t seed, size_t rows) {
  datagen::MakeOptions opts;
  opts.seed = seed;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
  if (!ds.ok()) return 0;
  Fnv1a h;
  HashTableContent(ds->clean, &h);
  HashTableContent(ds->dirty, &h);
  HashMaskContent(ds->mask, &h);
  return h.Digest();
}

struct Golden {
  const char* dataset;
  uint64_t seed;
  uint64_t digest;
};

// Pinned digests at rows=150 (regenerate from failure output on intentional
// datagen changes; see file comment).
constexpr Golden kGoldens[] = {
    {"beers", 7, 0x95938e01dbf1dc12},
    {"beers", 1234, 0x0154bbe1c9f737e7},
    {"flights", 7, 0x3a7475a264f86af1},
    {"flights", 1234, 0x6bc1a2dc20bef20a},
    {"hospital", 7, 0x77dda01f56dcb68f},
    {"hospital", 1234, 0x17520e5e90974e81},
    {"adult", 7, 0xda465c10a9a4e2cb},
    {"adult", 1234, 0xeca57330a58a47b5},
};

TEST(DatagenGoldenTest, ContentHashesPinnedForTwoSeeds) {
  for (const auto& golden : kGoldens) {
    uint64_t digest = DatasetDigest(golden.dataset, golden.seed, 150);
    EXPECT_EQ(digest, golden.digest)
        << "dataset=" << golden.dataset << " seed=" << golden.seed
        << " actual=0x" << std::hex << digest
        << " — datagen output drifted; if intentional, update kGoldens";
  }
}

/// Same digest, over the mass-production corpus family (bench_kb_scale and
/// the kb/ index tests build thousand-entry inventories from it; a silent
/// generator change would quietly shift every recall and latency number).
uint64_t CorpusDigest(size_t index, uint64_t seed) {
  datagen::CorpusOptions opts;
  opts.seed = seed;
  auto ds = datagen::MakeCorpusDataset(index, opts);
  EXPECT_TRUE(ds.ok()) << "corpus index " << index << ": "
                       << ds.status().ToString();
  if (!ds.ok()) return 0;
  Fnv1a h;
  HashTableContent(ds->clean, &h);
  HashTableContent(ds->dirty, &h);
  HashMaskContent(ds->mask, &h);
  return h.Digest();
}

struct CorpusGolden {
  size_t index;
  uint64_t seed;
  uint64_t digest;
};

// Pinned digests at the CorpusOptions defaults (48 rows); regenerate from
// failure output on intentional generator changes, as above.
constexpr CorpusGolden kCorpusGoldens[] = {
    {0, 7, 0x70f6d2978872fecb},
    {1, 7, 0x41f6dd81817ed7ab},
    {42, 7, 0x01f136500747f75e},
    {42, 1234, 0x84f6d253eb7b0a54},
    {9999, 7, 0x92ecb5ddef388f17},
};

TEST(DatagenGoldenTest, CorpusContentHashesPinned) {
  for (const auto& golden : kCorpusGoldens) {
    uint64_t digest = CorpusDigest(golden.index, golden.seed);
    EXPECT_EQ(digest, golden.digest)
        << "corpus index=" << golden.index << " seed=" << golden.seed
        << " actual=0x" << std::hex << digest
        << " — corpus generator drifted; if intentional, update "
           "kCorpusGoldens";
  }
}

/// High-repetition profile (CorpusOptions::value_pool > 0): the corpus the
/// dictionary-featurization bench sweep runs on. Pinned separately so that
/// profile cannot drift under the perfsmoke floor, and asserted disjoint
/// from the fresh-draw profile (value_pool must actually change content).
uint64_t RepetitiveCorpusDigest(size_t index, uint64_t seed, size_t rows,
                                size_t value_pool) {
  datagen::CorpusOptions opts;
  opts.seed = seed;
  opts.rows = rows;
  opts.value_pool = value_pool;
  auto ds = datagen::MakeCorpusDataset(index, opts);
  EXPECT_TRUE(ds.ok()) << "corpus index " << index << ": "
                       << ds.status().ToString();
  if (!ds.ok()) return 0;
  Fnv1a h;
  HashTableContent(ds->clean, &h);
  HashTableContent(ds->dirty, &h);
  HashMaskContent(ds->mask, &h);
  return h.Digest();
}

struct RepetitiveGolden {
  size_t index;
  uint64_t seed;
  size_t rows;
  size_t value_pool;
  uint64_t digest;
};

// Pinned digests of the high-repetition profile (regenerate from failure
// output on intentional generator changes, as above).
constexpr RepetitiveGolden kRepetitiveGoldens[] = {
    {0, 7, 256, 16, 0x0356b09b6ecb852e},
    {1, 7, 256, 16, 0xe2afecce5f1e5927},
    {42, 7, 512, 8, 0x70c8170e8e1093f7},
};

TEST(DatagenGoldenTest, RepetitiveCorpusContentHashesPinned) {
  for (const auto& golden : kRepetitiveGoldens) {
    uint64_t digest = RepetitiveCorpusDigest(golden.index, golden.seed,
                                             golden.rows, golden.value_pool);
    EXPECT_EQ(digest, golden.digest)
        << "repetitive corpus index=" << golden.index
        << " seed=" << golden.seed << " rows=" << golden.rows
        << " pool=" << golden.value_pool << " actual=0x" << std::hex << digest
        << " — high-repetition corpus drifted; if intentional, update "
           "kRepetitiveGoldens";
  }
}

TEST(DatagenGoldenTest, ValuePoolBoundsDistinctsAndChangesContent) {
  datagen::CorpusOptions pooled;
  pooled.rows = 256;
  pooled.value_pool = 16;
  auto ds = datagen::MakeCorpusDataset(0, pooled);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  for (const auto& column : ds->clean.columns()) {
    std::set<std::string> distinct(column.values().begin(),
                                   column.values().end());
    EXPECT_LE(distinct.size(), pooled.value_pool) << column.name();
  }
  // The pooled profile is a different byte stream than fresh draws...
  EXPECT_NE(RepetitiveCorpusDigest(0, 7, 256, 16),
            RepetitiveCorpusDigest(0, 7, 256, 0));
  // ...and value_pool = 0 stays exactly the original profile at any row
  // count (the pinned kCorpusGoldens above cover the default 48 rows).
  EXPECT_EQ(RepetitiveCorpusDigest(42, 7, 48, 0), CorpusDigest(42, 7));
}

TEST(DatagenGoldenTest, CorpusIsIdempotentAndIndexSensitive) {
  EXPECT_EQ(CorpusDigest(42, 7), CorpusDigest(42, 7));
  EXPECT_NE(CorpusDigest(42, 7), CorpusDigest(43, 7));
  EXPECT_NE(CorpusDigest(42, 7), CorpusDigest(42, 8));
  EXPECT_EQ(datagen::CorpusDatasetName(42), "corpus-000042");
}

TEST(DatagenGoldenTest, RegenerationIsIdempotent) {
  // Same seed twice in one process: bit-identical output (no hidden global
  // state in the generator).
  EXPECT_EQ(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 150));
}

TEST(DatagenGoldenTest, SeedAndRowsChangeTheDigest) {
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 8, 150));
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 151));
}

}  // namespace
}  // namespace saged
