// Golden seed-stability tests for the synthetic data generator: the exact
// content of the generated tables and error masks is pinned by hash for two
// seeds. Any change to datagen output — an extra Rng draw, a reordered
// injection pass, a tweaked synthesizer — trips these tests, which protects
// every downstream experiment (and the streaming byte-identity wall) from
// silent dataset drift. If a change to datagen is *intentional*, rerun the
// test and update the pinned constants from the failure messages, which
// print the new hashes.
//
// The hashing itself lives in data/content_hash.h (the run ledger records
// the same digests for provenance); these tests also pin THAT byte layout.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "data/content_hash.h"
#include "datagen/datasets.h"

namespace saged {
namespace {

/// One digest covering everything detection consumes: clean table, dirty
/// table, and ground-truth mask.
uint64_t DatasetDigest(const std::string& name, uint64_t seed, size_t rows) {
  datagen::MakeOptions opts;
  opts.seed = seed;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
  if (!ds.ok()) return 0;
  Fnv1a h;
  HashTableContent(ds->clean, &h);
  HashTableContent(ds->dirty, &h);
  HashMaskContent(ds->mask, &h);
  return h.Digest();
}

struct Golden {
  const char* dataset;
  uint64_t seed;
  uint64_t digest;
};

// Pinned digests at rows=150 (regenerate from failure output on intentional
// datagen changes; see file comment).
constexpr Golden kGoldens[] = {
    {"beers", 7, 0x95938e01dbf1dc12},
    {"beers", 1234, 0x0154bbe1c9f737e7},
    {"flights", 7, 0x3a7475a264f86af1},
    {"flights", 1234, 0x6bc1a2dc20bef20a},
    {"hospital", 7, 0x77dda01f56dcb68f},
    {"hospital", 1234, 0x17520e5e90974e81},
    {"adult", 7, 0xda465c10a9a4e2cb},
    {"adult", 1234, 0xeca57330a58a47b5},
};

TEST(DatagenGoldenTest, ContentHashesPinnedForTwoSeeds) {
  for (const auto& golden : kGoldens) {
    uint64_t digest = DatasetDigest(golden.dataset, golden.seed, 150);
    EXPECT_EQ(digest, golden.digest)
        << "dataset=" << golden.dataset << " seed=" << golden.seed
        << " actual=0x" << std::hex << digest
        << " — datagen output drifted; if intentional, update kGoldens";
  }
}

TEST(DatagenGoldenTest, RegenerationIsIdempotent) {
  // Same seed twice in one process: bit-identical output (no hidden global
  // state in the generator).
  EXPECT_EQ(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 150));
}

TEST(DatagenGoldenTest, SeedAndRowsChangeTheDigest) {
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 8, 150));
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 151));
}

}  // namespace
}  // namespace saged
