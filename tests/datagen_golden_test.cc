// Golden seed-stability tests for the synthetic data generator: the exact
// content of the generated tables and error masks is pinned by hash for two
// seeds. Any change to datagen output — an extra Rng draw, a reordered
// injection pass, a tweaked synthesizer — trips these tests, which protects
// every downstream experiment (and the streaming byte-identity wall) from
// silent dataset drift. If a change to datagen is *intentional*, rerun the
// test and update the pinned constants from the failure messages, which
// print the new hashes.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "data/error_mask.h"
#include "data/table.h"
#include "datagen/datasets.h"

namespace saged {
namespace {

/// FNV-1a, 64-bit. Stable across platforms and standard-library versions,
/// unlike std::hash.
class Fnv1a {
 public:
  void Update(std::string_view bytes) {
    for (unsigned char c : bytes) {
      hash_ ^= c;
      hash_ *= 0x100000001b3ull;
    }
  }
  void Update(uint64_t v) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    Update(std::string_view(buf, 8));
  }
  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

void HashTable(const Table& table, Fnv1a* h) {
  h->Update(table.NumRows());
  h->Update(table.NumCols());
  for (size_t j = 0; j < table.NumCols(); ++j) {
    h->Update(table.column(j).name());
    h->Update(std::string_view("\x1f", 1));
  }
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t j = 0; j < table.NumCols(); ++j) {
      h->Update(table.cell(r, j));
      h->Update(std::string_view("\x1f", 1));
    }
  }
}

void HashMask(const ErrorMask& mask, Fnv1a* h) {
  h->Update(mask.rows());
  h->Update(mask.cols());
  for (size_t r = 0; r < mask.rows(); ++r) {
    for (size_t j = 0; j < mask.cols(); ++j) {
      h->Update(uint64_t{mask.IsDirty(r, j) ? 1u : 0u});
    }
  }
}

/// One digest covering everything detection consumes: clean table, dirty
/// table, and ground-truth mask.
uint64_t DatasetDigest(const std::string& name, uint64_t seed, size_t rows) {
  datagen::MakeOptions opts;
  opts.seed = seed;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << name << ": " << ds.status().ToString();
  if (!ds.ok()) return 0;
  Fnv1a h;
  HashTable(ds->clean, &h);
  HashTable(ds->dirty, &h);
  HashMask(ds->mask, &h);
  return h.Digest();
}

struct Golden {
  const char* dataset;
  uint64_t seed;
  uint64_t digest;
};

// Pinned digests at rows=150 (regenerate from failure output on intentional
// datagen changes; see file comment).
constexpr Golden kGoldens[] = {
    {"beers", 7, 0x95938e01dbf1dc12},
    {"beers", 1234, 0x0154bbe1c9f737e7},
    {"flights", 7, 0x3a7475a264f86af1},
    {"flights", 1234, 0x6bc1a2dc20bef20a},
    {"hospital", 7, 0x77dda01f56dcb68f},
    {"hospital", 1234, 0x17520e5e90974e81},
    {"adult", 7, 0xda465c10a9a4e2cb},
    {"adult", 1234, 0xeca57330a58a47b5},
};

TEST(DatagenGoldenTest, ContentHashesPinnedForTwoSeeds) {
  for (const auto& golden : kGoldens) {
    uint64_t digest = DatasetDigest(golden.dataset, golden.seed, 150);
    EXPECT_EQ(digest, golden.digest)
        << "dataset=" << golden.dataset << " seed=" << golden.seed
        << " actual=0x" << std::hex << digest
        << " — datagen output drifted; if intentional, update kGoldens";
  }
}

TEST(DatagenGoldenTest, RegenerationIsIdempotent) {
  // Same seed twice in one process: bit-identical output (no hidden global
  // state in the generator).
  EXPECT_EQ(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 150));
}

TEST(DatagenGoldenTest, SeedAndRowsChangeTheDigest) {
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 8, 150));
  EXPECT_NE(DatasetDigest("beers", 7, 150), DatasetDigest("beers", 7, 151));
}

}  // namespace
}  // namespace saged
