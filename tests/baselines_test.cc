#include <gtest/gtest.h>

#include "baselines/mink.h"
#include "baselines/registry.h"
#include "baselines/stat_detectors.h"
#include "baselines/strategy_library.h"
#include "core/detector.h"
#include "datagen/datasets.h"

namespace saged::baselines {
namespace {

datagen::Dataset Gen(const std::string& name, size_t rows,
                     double error_rate = -1.0) {
  datagen::MakeOptions opts;
  opts.rows = rows;
  opts.error_rate = error_rate;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

DetectionContext MakeContext(const datagen::Dataset& ds, size_t budget = 20) {
  DetectionContext ctx;
  ctx.dirty = &ds.dirty;
  ctx.rules = &ds.rules;
  ctx.domains = &ds.domains;
  ctx.oracle = core::MaskOracle(ds.mask);
  ctx.labeling_budget = budget;
  ctx.seed = 11;
  return ctx;
}

// --- Registry -------------------------------------------------------------------

TEST(RegistryTest, AllElevenBaselines) {
  EXPECT_EQ(AllBaselineNames().size(), 11u);
  for (const auto& name : AllBaselineNames()) {
    auto detector = MakeBaseline(name);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ((*detector)->Name(), name);
  }
  EXPECT_FALSE(MakeBaseline("nonexistent").ok());
}

/// Contract sweep: every baseline produces a correctly-shaped mask and a
/// non-negative runtime on a representative dataset.
class BaselineSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineSweep, ProducesWellFormedMask) {
  auto ds = Gen("beers", 200);
  auto detector = MakeBaseline(GetParam());
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Run(MakeContext(ds));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mask.rows(), ds.dirty.NumRows());
  EXPECT_EQ(result->mask.cols(), ds.dirty.NumCols());
  EXPECT_GE(result->seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSweep,
                         ::testing::ValuesIn(AllBaselineNames()));

// --- Individual behaviours ---------------------------------------------------------

TEST(SdDetectorTest, FlagsPlantedOutlier) {
  Table t("sd");
  std::vector<Cell> values(100, "50");
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::to_string(45 + static_cast<int>(i % 10));
  }
  values[7] = "100000";
  ASSERT_TRUE(t.AddColumn(Column("v", values)).ok());
  DetectionContext ctx;
  ctx.dirty = &t;
  SdDetector sd;
  auto mask = sd.Detect(ctx);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->IsDirty(7, 0));
  EXPECT_EQ(mask->DirtyCount(), 1u);
}

TEST(SdDetectorTest, IgnoresTextColumns) {
  // The paper notes SD/IF/IQR detect nothing on text-heavy data.
  Table t("txt");
  ASSERT_TRUE(t.AddColumn(Column("v", {"alpha", "beta", "gamma", "delta"})).ok());
  DetectionContext ctx;
  ctx.dirty = &t;
  SdDetector sd;
  auto mask = sd.Detect(ctx);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->DirtyCount(), 0u);
}

TEST(IqrDetectorTest, FlagsPlantedOutlier) {
  Table t("iqr");
  std::vector<Cell> values;
  for (int i = 0; i < 99; ++i) values.push_back(std::to_string(10 + i % 5));
  values.push_back("9999");
  ASSERT_TRUE(t.AddColumn(Column("v", values)).ok());
  DetectionContext ctx;
  ctx.dirty = &t;
  IqrDetector iqr;
  auto mask = iqr.Detect(ctx);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->IsDirty(99, 0));
}

TEST(NadeefTest, NoRulesNoDetections) {
  auto ds = Gen("hospital", 100);
  auto detector = MakeBaseline("nadeef");
  ASSERT_TRUE(detector.ok());
  DetectionContext ctx = MakeContext(ds);
  ctx.rules = nullptr;
  auto result = (*detector)->Detect(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->DirtyCount(), 0u);
}

TEST(NadeefTest, RulesYieldHighPrecision) {
  auto ds = Gen("hospital", 400);
  auto detector = MakeBaseline("nadeef");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds));
  ASSERT_TRUE(result.ok());
  auto score = ds.mask.Score(*result);
  // Rule-based detection is precise on the errors its rules cover.
  EXPECT_GT(score.Precision(), 0.6);
}

TEST(KataraTest, FlagsOutOfDomainValues) {
  auto ds = Gen("beers", 300);
  auto detector = MakeBaseline("katara");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds));
  ASSERT_TRUE(result.ok());
  auto score = ds.mask.Score(*result);
  // Everything KATARA flags really is out of domain, hence truly dirty.
  EXPECT_GT(score.Precision(), 0.9);
  EXPECT_GT(result->DirtyCount(), 0u);
}

TEST(KataraTest, NoDomainsNoDetections) {
  auto ds = Gen("nasa", 100);  // all open domains
  auto detector = MakeBaseline("katara");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->DirtyCount(), 0u);
}

TEST(FahesTest, FlagsExplicitMissing) {
  Table t("mv");
  ASSERT_TRUE(t.AddColumn(Column("v", {"a", "", "NULL", "b", "?"})).ok());
  DetectionContext ctx;
  ctx.dirty = &t;
  auto detector = MakeBaseline("fahes");
  ASSERT_TRUE(detector.ok());
  auto mask = (*detector)->Detect(ctx);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE(mask->IsDirty(1, 0));
  EXPECT_TRUE(mask->IsDirty(2, 0));
  EXPECT_TRUE(mask->IsDirty(4, 0));
  EXPECT_FALSE(mask->IsDirty(0, 0));
}

TEST(DboostTest, CatchesNumericOutliers) {
  auto ds = Gen("nasa", 400);
  auto detector = MakeBaseline("dboost");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ds.mask.Score(*result).Recall(), 0.1);
}

TEST(MinkTest, RequiresAgreement) {
  // One strategy firing alone (rare value) must not flag with k=2 when no
  // other detector agrees on a benign categorical.
  Table t("k");
  std::vector<Cell> values(50, "common");
  values[3] = "Common";  // same shape class, just rare value
  ASSERT_TRUE(t.AddColumn(Column("v", values)).ok());
  DetectionContext ctx;
  ctx.dirty = &t;
  MinKDetector k3(3);
  auto strict = k3.Detect(ctx);
  ASSERT_TRUE(strict.ok());
  MinKDetector k1(1);
  auto loose = k1.Detect(ctx);
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(strict->DirtyCount(), loose->DirtyCount());
}

TEST(StrategyLibraryTest, ShapeAndBinary) {
  Column col("c", {"1", "2", "3", "9999", "NULL"});
  auto flags = StrategyLibrary::Featurize(col, 3);
  EXPECT_EQ(flags.rows(), 5u);
  EXPECT_EQ(flags.cols(), StrategyLibrary::NumStrategies());
  for (double v : flags.data()) EXPECT_TRUE(v == 0.0 || v == 1.0);
  EXPECT_EQ(StrategyLibrary::StrategyNames().size(),
            StrategyLibrary::NumStrategies());
}

TEST(RahaTest, BeatsChanceOnBeers) {
  auto ds = Gen("beers", 300);
  auto detector = MakeBaseline("raha");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds, 20));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ds.mask.Score(*result).F1(), 0.3);
}

TEST(Ed2Test, BeatsChanceOnFlights) {
  auto ds = Gen("flights", 300);
  auto detector = MakeBaseline("ed2");
  ASSERT_TRUE(detector.ok());
  auto result = (*detector)->Detect(MakeContext(ds, 20));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(ds.mask.Score(*result).F1(), 0.3);
}

TEST(Ed2Test, BudgetIncreasesLabels) {
  auto ds = Gen("nasa", 200);
  auto detector = MakeBaseline("ed2");
  ASSERT_TRUE(detector.ok());
  // Larger budget must not crash and should take at least as long.
  auto small = (*detector)->Run(MakeContext(ds, 4));
  auto large = (*detector)->Run(MakeContext(ds, 30));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large->mask.rows(), ds.dirty.NumRows());
}

}  // namespace
}  // namespace saged::baselines
