#include <gtest/gtest.h>

#include "features/char_space.h"
#include "features/featurizer.h"
#include "features/metadata_profiler.h"
#include "features/signature.h"
#include "text/word2vec.h"

namespace saged::features {
namespace {

Column PhoneColumn() {
  return Column("phone", {"555-123-4567", "555-234-5678", "555-345-6789",
                          "555/345/6789", ""});
}

// --- Metadata profiler --------------------------------------------------------

TEST(MetadataProfilerTest, ColumnProfile) {
  Column c("x", {"a", "a", "b", "", "12"});
  MetadataProfiler profiler;
  ASSERT_TRUE(profiler.Fit(c).ok());
  const auto& p = profiler.profile();
  EXPECT_DOUBLE_EQ(p.missing_fraction, 0.2);
  EXPECT_DOUBLE_EQ(p.distinct_ratio, 0.8);  // {"a","b","","12"}
  EXPECT_DOUBLE_EQ(p.numeric_fraction, 0.2);
}

TEST(MetadataProfilerTest, CellFeaturesWidthAndContent) {
  Column c("x", {"aa", "aa", "zz"});
  MetadataProfiler profiler;
  ASSERT_TRUE(profiler.Fit(c).ok());
  auto f = profiler.CellFeatures("aa");
  ASSERT_EQ(f.size(), MetadataProfiler::kWidth);
  EXPECT_NEAR(f[0], 2.0 / 3.0, 1e-12);  // frequency
  EXPECT_DOUBLE_EQ(f[1], 0.0);          // not missing
  EXPECT_DOUBLE_EQ(f[3], 1.0);          // all alphabetic
  EXPECT_DOUBLE_EQ(f[6], 0.0);          // not unique
  auto fz = profiler.CellFeatures("zz");
  EXPECT_DOUBLE_EQ(fz[6], 1.0);  // unique
}

TEST(MetadataProfilerTest, MissingCellFlagged) {
  Column c("x", {"a", ""});
  MetadataProfiler profiler;
  ASSERT_TRUE(profiler.Fit(c).ok());
  EXPECT_DOUBLE_EQ(profiler.CellFeatures("")[1], 1.0);
  EXPECT_DOUBLE_EQ(profiler.CellFeatures("NULL")[1], 1.0);
}

TEST(MetadataProfilerTest, NumericOutlierHasHighZ) {
  std::vector<Cell> values;
  for (int i = 0; i < 50; ++i) values.push_back(std::to_string(100 + i % 5));
  values.push_back("100000");
  Column c("n", values);
  MetadataProfiler profiler;
  ASSERT_TRUE(profiler.Fit(c).ok());
  auto normal = profiler.CellFeatures("102");
  auto outlier = profiler.CellFeatures("100000");
  EXPECT_GT(outlier[7], normal[7]);
  EXPECT_LE(outlier[7], 10.0);  // capped
}

TEST(MetadataProfilerTest, RejectsEmptyColumn) {
  MetadataProfiler profiler;
  EXPECT_FALSE(profiler.Fit(Column("e", {})).ok());
}

// --- CharSpace -----------------------------------------------------------------

TEST(CharSpaceTest, AssignsSlotsFirstCome) {
  CharSpace space(8);
  space.Register({'a', 'b'});
  EXPECT_TRUE(space.IsRegistered('a'));
  EXPECT_TRUE(space.IsRegistered('b'));
  EXPECT_EQ(space.SlotFor('a'), 0u);
  EXPECT_EQ(space.SlotFor('b'), 1u);
  EXPECT_EQ(space.NumRegistered(), 2u);
}

TEST(CharSpaceTest, DuplicateRegistrationStable) {
  CharSpace space(8);
  space.Register({'x'});
  size_t slot = space.SlotFor('x');
  space.Register({'x', 'y'});
  EXPECT_EQ(space.SlotFor('x'), slot);
}

TEST(CharSpaceTest, OverflowSlotForUnregistered) {
  CharSpace space(4);
  space.Register({'a', 'b', 'c', 'd', 'e', 'f'});
  // Capacity 4 = 3 assignable + 1 overflow.
  EXPECT_EQ(space.NumRegistered(), 3u);
  EXPECT_FALSE(space.IsRegistered('f'));
  EXPECT_EQ(space.SlotFor('f'), 3u);  // overflow slot
  EXPECT_EQ(space.SlotFor('z'), 3u);
}

// --- Featurizer -----------------------------------------------------------------

TEST(FeaturizerTest, WidthIsStable) {
  text::Word2Vec w2v;  // untrained: embeddings are zeros, width still dim
  CharSpace space(16);
  ColumnFeaturizer::RegisterChars(PhoneColumn(), &space);
  ColumnFeaturizer featurizer(&w2v, &space);
  auto m1 = featurizer.Featurize(PhoneColumn());
  ASSERT_TRUE(m1.ok());
  Column other("x", {"abc", "def", "ghi"});
  auto m2 = featurizer.Featurize(other);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1->cols(), m2->cols());
  EXPECT_EQ(m1->cols(), ColumnFeaturizer::FeatureWidth(w2v.dim(), space));
  EXPECT_EQ(m1->rows(), PhoneColumn().size());
}

TEST(FeaturizerTest, TfidfLandsInRegisteredSlots) {
  text::Word2Vec w2v;
  CharSpace space(16);
  Column digits("d", {"11", "12", "21"});
  ColumnFeaturizer::RegisterChars(digits, &space);
  ColumnFeaturizer featurizer(&w2v, &space);
  auto m = featurizer.Featurize(digits);
  ASSERT_TRUE(m.ok());
  size_t base = MetadataProfiler::kWidth + w2v.dim();
  // '1' and '2' occupy the first two registered slots; nothing else fires.
  bool any_nonzero = false;
  for (size_t r = 0; r < m->rows(); ++r) {
    for (size_t s = 0; s < space.capacity(); ++s) {
      double v = m->At(r, base + s);
      if (s <= 1) {
        any_nonzero |= v != 0.0;
      } else {
        EXPECT_DOUBLE_EQ(v, 0.0) << "slot " << s;
      }
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(FeaturizerTest, UnregisteredCharsGoToOverflow) {
  text::Word2Vec w2v;
  CharSpace space(4);  // tiny: 3 assignable + overflow
  Column seed("s", {"abc"});
  ColumnFeaturizer::RegisterChars(seed, &space);
  ColumnFeaturizer featurizer(&w2v, &space);
  Column exotic("e", {"zzz", "qqq", "abc"});
  auto m = featurizer.Featurize(exotic);
  ASSERT_TRUE(m.ok());
  size_t base = MetadataProfiler::kWidth + w2v.dim();
  size_t overflow = space.capacity() - 1;
  // 'z' is unregistered: its tf-idf must land in the overflow slot.
  EXPECT_NE(m->At(0, base + overflow), 0.0);
}

TEST(FeaturizerTest, RejectsEmptyColumn) {
  text::Word2Vec w2v;
  CharSpace space(8);
  ColumnFeaturizer featurizer(&w2v, &space);
  EXPECT_FALSE(featurizer.Featurize(Column("e", {})).ok());
}

// --- Signature -------------------------------------------------------------------

TEST(SignatureTest, FixedWidth) {
  auto sig = ColumnSignature(PhoneColumn());
  EXPECT_EQ(sig.size(), kSignatureWidth);
}

TEST(SignatureTest, TypeOneHot) {
  Column numeric("n", {"1", "2", "3", "4", "5", "6"});
  auto sig = ColumnSignature(numeric);
  EXPECT_DOUBLE_EQ(sig[0], 1.0);
  EXPECT_DOUBLE_EQ(sig[1] + sig[2] + sig[3], 0.0);
}

TEST(SignatureTest, SimilarColumnsScoreHigher) {
  Column age_a("age", {"25", "34", "41", "29", "38", "52", "47", "31"});
  Column age_b("age2", {"22", "39", "44", "27", "35", "58", "49", "33"});
  Column name("name", {"Alice Smith", "Bob Jones", "Carol White", "Dan Green",
                       "Eve Black", "Frank Stone", "Grace Hill", "Hank Reed"});
  auto sa = ColumnSignature(age_a);
  auto sb = ColumnSignature(age_b);
  auto sn = ColumnSignature(name);
  EXPECT_GT(ml::CosineSimilarity(sa, sb), ml::CosineSimilarity(sa, sn));
}

TEST(SignatureTest, EmptyColumnIsZeros) {
  auto sig = ColumnSignature(Column("e", {}));
  for (double v : sig) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace saged::features
