// Test wall around the streaming out-of-core detection path:
//   1. CsvBlockReader parity with ParseCsv/ReadCsv under hostile chunk and
//      block geometries (quoted fields, CRLF pairs and embedded newlines
//      split across chunk boundaries, ragged rows, trailing delimiters).
//   2. Frozen-stats equivalence: the streaming stats builder freezes
//      statistics bit-identical to whole-column fits.
//   3. The determinism wall: DetectStream produces byte-identical masks,
//      diagnostics, and F1 to the in-memory Detect across block sizes and
//      thread counts on several synthetic datasets.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"
#include "features/frozen_stats.h"
#include "features/signature.h"

namespace saged {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// Reads `path` fully through the block reader and reassembles a table, so
/// results can be compared cell-for-cell against the in-memory parser. Also
/// checks the block contract along the way: contiguous first_row indices and
/// equal-length columns.
Result<Table> ReadViaBlocks(const std::string& path, size_t block_rows,
                            size_t chunk_bytes, CsvOptions options = {}) {
  CsvBlockReader reader(path, block_rows, options, chunk_bytes);
  SAGED_RETURN_NOT_OK(reader.Open());
  std::vector<std::vector<Cell>> columns(reader.NumCols());
  CsvBlock block;
  size_t expected_first = 0;
  while (true) {
    SAGED_ASSIGN_OR_RETURN(bool more, reader.Next(&block));
    if (!more) break;
    EXPECT_EQ(block.first_row, expected_first);
    EXPECT_LE(block.rows(), block_rows);
    EXPECT_GT(block.rows(), 0u);
    EXPECT_EQ(block.columns.size(), reader.NumCols());
    for (size_t j = 0; j < block.columns.size(); ++j) {
      EXPECT_EQ(block.columns[j].size(), block.rows());
      for (auto& cell : block.columns[j]) columns[j].push_back(cell);
    }
    expected_first += block.rows();
  }
  EXPECT_EQ(reader.rows_read(), expected_first);
  Table table;
  for (size_t j = 0; j < reader.NumCols(); ++j) {
    SAGED_RETURN_NOT_OK(table.AddColumn(
        Column(reader.column_names()[j], std::move(columns[j]))));
  }
  return table;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumCols(), b.NumCols());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t j = 0; j < a.NumCols(); ++j) {
    EXPECT_EQ(a.column(j).name(), b.column(j).name());
    for (size_t r = 0; r < a.NumRows(); ++r) {
      ASSERT_EQ(a.cell(r, j), b.cell(r, j)) << "cell (" << r << "," << j << ")";
    }
  }
}

/// Chunk/block geometries that force every interesting boundary: 1-byte
/// chunks put a boundary after every character, primes land boundaries
/// mid-quote and mid-CRLF, large values exercise the fast path.
const size_t kChunkSweeps[] = {1, 2, 3, 7, 16, 4096};
const size_t kBlockSweeps[] = {1, 2, 3, 1000};

void ExpectParity(const std::string& text, CsvOptions options = {}) {
  auto expected = ParseCsv(text, options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::string path = TempPath("parity.csv");
  WriteFile(path, text);
  for (size_t chunk : kChunkSweeps) {
    for (size_t block : kBlockSweeps) {
      auto got = ReadViaBlocks(path, block, chunk, options);
      ASSERT_TRUE(got.ok()) << "chunk=" << chunk << " block=" << block << ": "
                            << got.status().ToString();
      ExpectTablesEqual(*expected, *got);
    }
  }
}

TEST(CsvBlockReaderTest, PlainTable) {
  ExpectParity("a,b,c\n1,2,3\n4,5,6\n7,8,9\n");
}

TEST(CsvBlockReaderTest, QuotedFieldsAcrossChunkBoundaries) {
  // 1-byte chunks split every quoted field across a boundary.
  ExpectParity("name,desc\nalpha,\"a, quoted, field\"\nbeta,\"say \"\"hi\"\"\"\n");
}

TEST(CsvBlockReaderTest, EmbeddedNewlinesInsideQuotes) {
  ExpectParity("a,b\n\"line1\nline2\",x\n\"crlf\r\nline\",y\n");
}

TEST(CsvBlockReaderTest, CrlfTerminators) {
  // The \r\n pair is split across chunks whenever chunk size is odd.
  ExpectParity("a,b\r\n1,2\r\n3,4\r\n");
}

TEST(CsvBlockReaderTest, BareCarriageReturnTerminator) {
  ExpectParity("a,b\r1,2\r3,4\r");
}

TEST(CsvBlockReaderTest, TrailingDelimiterMakesEmptyLastField) {
  ExpectParity("a,b\n1,\n,\n");
}

TEST(CsvBlockReaderTest, NoTrailingNewline) {
  ExpectParity("a,b\n1,2\n3,4");
}

TEST(CsvBlockReaderTest, TrailingBlankLineIsSkipped) {
  ExpectParity("a,b\n1,2\n\n");
}

TEST(CsvBlockReaderTest, NewlineOnlyFile) { ExpectParity("\n"); }

TEST(CsvBlockReaderTest, EmptyFile) { ExpectParity(""); }

TEST(CsvBlockReaderTest, HeaderOnlyFile) { ExpectParity("a,b,c\n"); }

TEST(CsvBlockReaderTest, NoHeaderModeSynthesizesNamesAndKeepsFirstRecord) {
  CsvOptions options;
  options.has_header = false;
  ExpectParity("1,2\n3,4\n5,6\n", options);
}

TEST(CsvBlockReaderTest, RaggedRowFailsWithParseCsvError) {
  const std::string text = "a,b\n1,2\n1,2,3\n";
  auto expected = ParseCsv(text);
  ASSERT_FALSE(expected.ok());
  std::string path = TempPath("ragged.csv");
  WriteFile(path, text);
  for (size_t chunk : kChunkSweeps) {
    auto got = ReadViaBlocks(path, 2, chunk);
    ASSERT_FALSE(got.ok()) << "chunk=" << chunk;
    EXPECT_EQ(got.status().ToString(), expected.status().ToString());
  }
}

TEST(CsvBlockReaderTest, MissingFileFailsOnOpen) {
  CsvBlockReader reader(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(reader.Open().ok());
}

TEST(CsvBlockReaderTest, RecordLongerThanChunkStillParses) {
  std::string big(10000, 'x');
  ExpectParity("a,b\n" + big + ",\"" + big + "\n" + big + "\"\n");
}

TEST(CsvBlockReaderTest, FuzzedNastyTablesRoundTrip) {
  // Random tables over the characters most likely to break a CSV state
  // machine, serialized by FormatCsv (which quotes as needed) and read back
  // through both parsers.
  const char kNasty[] = ",\"\n\r;| '";
  Rng rng(2026);
  for (int iter = 0; iter < 25; ++iter) {
    size_t cols = 1 + rng.UniformInt(4);
    size_t rows = 1 + rng.UniformInt(12);
    Table table;
    for (size_t j = 0; j < cols; ++j) {
      std::vector<Cell> cells;
      for (size_t r = 0; r < rows; ++r) {
        std::string cell;
        size_t len = rng.UniformInt(8);
        for (size_t k = 0; k < len; ++k) {
          cell += kNasty[rng.UniformInt(sizeof(kNasty) - 1)];
        }
        cells.push_back(cell);
      }
      // Non-nasty names: FormatCsv writes them on the header line, and a
      // name that parses as empty would not round-trip.
      ASSERT_TRUE(
          table.AddColumn(Column("col" + std::to_string(j), cells)).ok());
    }
    std::string text = FormatCsv(table);
    std::string path = TempPath("fuzz.csv");
    WriteFile(path, text);
    auto expected = ParseCsv(text);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    size_t chunk = 1 + rng.UniformInt(32);
    size_t block = 1 + rng.UniformInt(8);
    auto got = ReadViaBlocks(path, block, chunk);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectTablesEqual(*expected, *got);
  }
}

// ---------------------------------------------------------------------------
// Frozen stats = whole-column fits, bit for bit.
// ---------------------------------------------------------------------------

TEST(FrozenStatsTest, MatchesWholeColumnFitsBitForBit) {
  auto ds = datagen::MakeDataset("beers", {.seed = 11, .rows = 120});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  for (size_t j = 0; j < ds->dirty.NumCols(); ++j) {
    const Column& column = ds->dirty.column(j);
    features::ColumnStatsBuilder builder;
    for (const auto& cell : column.values()) builder.Observe(cell);
    auto frozen = builder.Finalize();
    ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();

    features::MetadataProfiler profiler;
    ASSERT_TRUE(profiler.Fit(column).ok());
    text::CharTfidf tfidf;
    ASSERT_TRUE(tfidf.Fit(column.values()).ok());

    // Profiles compare exactly: the builder and Fit run the same Observe
    // sequence, so even the floating-point sums must agree to the last bit.
    const auto& a = frozen->profiler.profile();
    const auto& b = profiler.profile();
    EXPECT_EQ(a.missing_fraction, b.missing_fraction);
    EXPECT_EQ(a.distinct_ratio, b.distinct_ratio);
    EXPECT_EQ(a.numeric_fraction, b.numeric_fraction);
    EXPECT_EQ(a.mean_length, b.mean_length);
    EXPECT_EQ(a.std_length, b.std_length);
    EXPECT_EQ(a.mean_alpha, b.mean_alpha);
    EXPECT_EQ(a.mean_digit, b.mean_digit);
    EXPECT_EQ(a.mean_punct, b.mean_punct);
    EXPECT_EQ(a.numeric_mean, b.numeric_mean);
    EXPECT_EQ(a.numeric_std, b.numeric_std);

    EXPECT_EQ(frozen->tfidf.vocabulary(), tfidf.vocabulary());
    EXPECT_EQ(frozen->tfidf.NumDocs(), tfidf.NumDocs());
    EXPECT_EQ(frozen->type, column.InferType());
    EXPECT_EQ(frozen->signature, features::ColumnSignature(column));
  }
}

// ---------------------------------------------------------------------------
// The determinism wall: streamed == in-memory, byte for byte.
// ---------------------------------------------------------------------------

class StreamingDetectionWall : public ::testing::Test {
 protected:
  static core::SagedConfig FastConfig() {
    core::SagedConfig config;
    config.w2v.epochs = 1;
    config.w2v.dim = 6;
    config.labeling_budget = 20;
    return config;
  }

  static datagen::Dataset Gen(const std::string& name, size_t rows) {
    datagen::MakeOptions opts;
    opts.rows = rows;
    auto ds = datagen::MakeDataset(name, opts);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return std::move(ds).value();
  }

  static core::Saged MakeLoaded(const core::SagedConfig& config) {
    core::Saged saged(config);
    auto adult = Gen("adult", 250);
    auto movies = Gen("movies", 250);
    EXPECT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
    EXPECT_TRUE(saged.AddHistoricalDataset(movies.dirty, movies.mask).ok());
    return saged;
  }
};

TEST_F(StreamingDetectionWall, StreamedEqualsInMemoryAcrossDatasetsBlocksAndThreads) {
  // A CSV round-trip loses nothing the detector sees, so the reference mask
  // is computed on the re-parsed table: both paths then read exactly the
  // same cells and the masks must be byte-identical.
  const std::vector<std::string> datasets = {"beers", "bikes", "hospital"};
  const std::vector<size_t> block_sweeps = {37, 128, 100000};
  const std::vector<size_t> thread_sweeps = {1, 4};
  for (const auto& name : datasets) {
    auto ds = Gen(name, 220);
    std::string path = TempPath(name + "_stream.csv");
    ASSERT_TRUE(WriteCsv(ds.dirty, path).ok());
    auto reparsed = ReadCsv(path);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

    core::SagedConfig config = FastConfig();
    core::Saged saged = MakeLoaded(config);
    auto reference = saged.Detect(*reparsed, core::MaskOracle(ds.mask));
    ASSERT_TRUE(reference.ok()) << name << ": "
                                << reference.status().ToString();
    const auto ref_score = ds.mask.Score(reference->mask);

    for (size_t block_rows : block_sweeps) {
      for (size_t threads : thread_sweeps) {
        core::SagedConfig sweep_config = FastConfig();
        sweep_config.detect_threads = threads;
        core::Saged sweep_saged = MakeLoaded(sweep_config);
        core::DetectionOptions options;
        options.block_rows = block_rows;
        auto streamed = sweep_saged.DetectStream(
            path, core::MaskOracle(ds.mask), options);
        ASSERT_TRUE(streamed.ok())
            << name << " block_rows=" << block_rows << " threads=" << threads
            << ": " << streamed.status().ToString();

        // Byte-identical predictions...
        EXPECT_TRUE(streamed->mask == reference->mask)
            << name << " block_rows=" << block_rows << " threads=" << threads;
        // ...identical F1...
        const auto score = ds.mask.Score(streamed->mask);
        EXPECT_EQ(score.F1(), ref_score.F1());
        // ...and identical run metadata.
        EXPECT_EQ(streamed->labeled_tuples, reference->labeled_tuples);
        EXPECT_EQ(streamed->matched_models, reference->matched_models);
        ASSERT_EQ(streamed->diagnostics.size(), reference->diagnostics.size());
        for (size_t j = 0; j < reference->diagnostics.size(); ++j) {
          EXPECT_EQ(streamed->diagnostics[j].column,
                    reference->diagnostics[j].column);
          EXPECT_EQ(streamed->diagnostics[j].matched_sources,
                    reference->diagnostics[j].matched_sources);
          EXPECT_EQ(streamed->diagnostics[j].used_fallback,
                    reference->diagnostics[j].used_fallback);
          EXPECT_EQ(streamed->diagnostics[j].threshold,
                    reference->diagnostics[j].threshold);
          EXPECT_EQ(streamed->diagnostics[j].flagged_cells,
                    reference->diagnostics[j].flagged_cells);
        }
      }
    }
  }
}

TEST_F(StreamingDetectionWall, SmallChunkBytesDoNotChangeTheMask) {
  auto ds = Gen("beers", 150);
  std::string path = TempPath("beers_chunks.csv");
  ASSERT_TRUE(WriteCsv(ds.dirty, path).ok());
  core::Saged saged = MakeLoaded(FastConfig());

  core::DetectionOptions baseline;
  baseline.block_rows = 64;
  auto reference = saged.DetectStream(path, core::MaskOracle(ds.mask), baseline);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  core::DetectionOptions tiny = baseline;
  tiny.chunk_bytes = 13;  // forces records across nearly every refill
  auto streamed = saged.DetectStream(path, core::MaskOracle(ds.mask), tiny);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_TRUE(streamed->mask == reference->mask);
}

TEST_F(StreamingDetectionWall, StreamRejectsEmptyFileAndMissingKb) {
  std::string path = TempPath("empty_stream.csv");
  WriteFile(path, "");
  core::Saged loaded = MakeLoaded(FastConfig());
  ErrorMask unused;
  EXPECT_FALSE(loaded.DetectStream(path, core::MaskOracle(unused)).ok());

  core::Saged empty_kb(FastConfig());
  EXPECT_FALSE(empty_kb.DetectStream(path, core::MaskOracle(unused)).ok());
}

}  // namespace
}  // namespace saged
