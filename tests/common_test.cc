#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace saged {
namespace {

// --- Status / Result ------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::RuntimeError("x").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  SAGED_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::IoError("nope")).ok());
}

// --- Strings ---------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  auto parts = SplitWhitespace("  hello \t world \n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, ParseDouble) {
  EXPECT_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_EQ(ParseDouble(" -2 ").value(), -2.0);
  EXPECT_FALSE(ParseDouble("12abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
}

TEST(StringsTest, Fractions) {
  EXPECT_DOUBLE_EQ(AlphaFraction("ab12"), 0.5);
  EXPECT_DOUBLE_EQ(DigitFraction("ab12"), 0.5);
  EXPECT_DOUBLE_EQ(PunctFraction("a-b-"), 0.5);
  EXPECT_DOUBLE_EQ(AlphaFraction(""), 0.0);
}

TEST(StringsTest, MissingTokens) {
  for (const char* token : {"", "NULL", "null", "NA", "n/a", "?", "-",
                            " nan ", "None"}) {
    EXPECT_TRUE(IsMissingToken(token)) << token;
  }
  EXPECT_FALSE(IsMissingToken("0"));
  EXPECT_FALSE(IsMissingToken("value"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05d", 42), "00042");
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.Next() != b.Next();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{3}, int64_t{7});
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKTooBig) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, WeightedRespectsZeros) {
  Rng rng(9);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Weighted(w), 1u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(StopWatchTest, MeasuresElapsed) {
  StopWatch w;
  double t0 = w.Seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.Seconds(), t0);
}

}  // namespace
}  // namespace saged
