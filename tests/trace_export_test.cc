// Structural validation of the trace-event export (common/trace.h): event
// capture with thread ids and epoch-relative steady-clock timestamps,
// parent/child containment, SAGED_TRACE_SPAN_ARG payloads, and the Chrome
// trace-event JSON document (metadata events, complete events, timestamp
// order) that --trace-out writes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::telemetry {
namespace {

/// Spins until the steady clock has advanced, so two adjacent spans can
/// never share a start timestamp.
void AdvanceClock() {
  auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() == start) {
  }
}

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryRegistry::Get().Reset();
    SetEnabled(true);
    SetTraceEventsEnabled(true);
    ResetTraceEvents();  // re-pins the epoch: this test's events start ~0
  }
  void TearDown() override {
    SetTraceEventsEnabled(false);
    ResetTraceEvents();
    SetEnabled(false);
    TelemetryRegistry::Get().Reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers) for validating
// the Chrome trace document. Duplicated from telemetry_test on purpose:
// each test binary stays self-contained.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string, JsonObject, JsonArray>
      value;

  bool IsObject() const { return std::holds_alternative<JsonObject>(value); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(value); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(value); }
  double AsNumber() const { return std::get<double>(value); }
  const std::string& AsString() const { return std::get<std::string>(value); }
  bool Has(const std::string& key) const {
    return AsObject().count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    auto it = AsObject().find(key);
    EXPECT_NE(it, AsObject().end()) << "missing key " << key;
    static JsonValue null_value;
    return it == AsObject().end() ? null_value : *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    auto v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON content";
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Expect(char c) {
    SkipSpace();
    ASSERT_LT(pos_, text_.size());
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    char c = Peek();
    auto out = std::make_shared<JsonValue>();
    if (c == '{') {
      JsonObject obj;
      Expect('{');
      if (Peek() != '}') {
        while (true) {
          std::string key = ParseString();
          Expect(':');
          obj[key] = ParseValue();
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect('}');
      out->value = std::move(obj);
    } else if (c == '[') {
      JsonArray arr;
      Expect('[');
      if (Peek() != ']') {
        while (true) {
          arr.push_back(ParseValue());
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect(']');
      out->value = std::move(arr);
    } else if (c == '"') {
      out->value = ParseString();
    } else {
      out->value = ParseNumber();
    }
    return out;
  }

  std::string ParseString() {
    Expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        s += text_[pos_];
      } else {
        s += text_[pos_];
      }
      ++pos_;
    }
    Expect('"');
    return s;
  }

  double ParseNumber() {
    SkipSpace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    double v = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Event capture.
// ---------------------------------------------------------------------------

TEST_F(TraceExportTest, NestedSpansRecordContainedEvents) {
  {
    SAGED_TRACE_SPAN("trace/parent");
    AdvanceClock();
    {
      SAGED_TRACE_SPAN("trace/child");
      AdvanceClock();
    }
    AdvanceClock();
  }
  auto events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the parent started first.
  EXPECT_EQ(events[0].name, "trace/parent");
  EXPECT_EQ(events[1].name, "trace/child");
  EXPECT_EQ(events[0].tid, events[1].tid);
  // Containment: the child's interval lies inside the parent's.
  EXPECT_LT(events[0].ts_ns, events[1].ts_ns);
  EXPECT_GE(events[0].ts_ns + events[0].dur_ns,
            events[1].ts_ns + events[1].dur_ns);
}

TEST_F(TraceExportTest, SpanArgCarriedIntoEvent) {
  { SAGED_TRACE_SPAN_ARG("trace/block", 42); }
  { SAGED_TRACE_SPAN("trace/plain"); }
  auto events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  const auto& block = events[0].name == "trace/block" ? events[0] : events[1];
  const auto& plain = events[0].name == "trace/plain" ? events[0] : events[1];
  EXPECT_TRUE(block.has_arg);
  EXPECT_EQ(block.arg, 42u);
  EXPECT_FALSE(plain.has_arg);
}

TEST_F(TraceExportTest, NoEventsWhenCaptureOff) {
  SetTraceEventsEnabled(false);
  { SAGED_TRACE_SPAN("trace/silent"); }
  EXPECT_TRUE(SnapshotTraceEvents().empty());
  // The aggregated tree still counts the span: capture is independent.
  auto spans = SnapshotSpans();
  bool found = false;
  for (const auto& s : spans) found = found || s.name == "trace/silent";
  EXPECT_TRUE(found);
}

TEST_F(TraceExportTest, ResetClearsEventsAndRestartsTimeline) {
  { SAGED_TRACE_SPAN("trace/before"); }
  ASSERT_EQ(SnapshotTraceEvents().size(), 1u);
  ResetTraceEvents();
  EXPECT_TRUE(SnapshotTraceEvents().empty());
  EXPECT_EQ(DroppedTraceEvents(), 0u);
  { SAGED_TRACE_SPAN("trace/after"); }
  auto events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  // The epoch was re-pinned: the first post-reset event starts near zero
  // (well under a second, even on a loaded machine).
  EXPECT_LT(events[0].ts_ns, uint64_t{1000000000});
}

TEST_F(TraceExportTest, SequentialSpansHaveMonotoneTimestamps) {
  for (int i = 0; i < 100; ++i) {
    SAGED_TRACE_SPAN_ARG("trace/seq", i);
    AdvanceClock();
  }
  auto events = SnapshotTraceEvents();
  ASSERT_EQ(events.size(), 100u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    // Sequential spans on one thread cannot overlap.
    EXPECT_GE(events[i].ts_ns,
              events[i - 1].ts_ns + events[i - 1].dur_ns);
    EXPECT_EQ(events[i].arg, static_cast<uint64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Chrome trace document.
// ---------------------------------------------------------------------------

TEST_F(TraceExportTest, ChromeTraceIsStructurallyValid) {
  Executor::Shared().ParallelFor(64, [](size_t) {
    SAGED_TRACE_SPAN("trace/task");
    AdvanceClock();
  });
  { SAGED_TRACE_SPAN_ARG("trace/tagged", 7); }

  std::string json = ChromeTraceJson();
  JsonParser parser(json);
  auto doc = parser.Parse();
  ASSERT_TRUE(doc->IsObject());
  EXPECT_EQ(doc->At("displayTimeUnit").AsString(), "ms");
  EXPECT_EQ(doc->At("otherData").At("dropped_events").AsNumber(), 0.0);

  const auto& trace_events = doc->At("traceEvents").AsArray();
  std::set<double> metadata_tids;
  std::set<double> event_tids;
  size_t task_events = 0;
  bool saw_tagged = false;
  double last_ts = -1.0;
  bool in_events = false;
  for (const auto& entry : trace_events) {
    const std::string& ph = entry->At("ph").AsString();
    EXPECT_EQ(entry->At("pid").AsNumber(), 1.0);
    if (ph == "M") {
      // All metadata events precede all complete events.
      EXPECT_FALSE(in_events);
      EXPECT_EQ(entry->At("name").AsString(), "thread_name");
      double tid = entry->At("tid").AsNumber();
      EXPECT_TRUE(metadata_tids.insert(tid).second) << "duplicate track";
      std::string expected =
          "saged-thread-" + std::to_string(static_cast<long long>(tid));
      EXPECT_EQ(entry->At("args").At("name").AsString(), expected);
      continue;
    }
    in_events = true;
    ASSERT_EQ(ph, "X");  // only complete events: always balanced
    double ts = entry->At("ts").AsNumber();
    EXPECT_GE(entry->At("dur").AsNumber(), 0.0);
    EXPECT_GE(ts, last_ts);  // timestamp order
    last_ts = ts;
    event_tids.insert(entry->At("tid").AsNumber());
    if (entry->At("name").AsString() == "trace/task") ++task_events;
    if (entry->At("name").AsString() == "trace/tagged") {
      saw_tagged = true;
      EXPECT_EQ(entry->At("args").At("id").AsNumber(), 7.0);
    }
  }
  EXPECT_EQ(task_events, 64u);
  EXPECT_TRUE(saw_tagged);
  // Exactly one thread_name track per thread that emitted events.
  EXPECT_EQ(metadata_tids, event_tids);
  EXPECT_GE(event_tids.size(), 1u);
}

TEST_F(TraceExportTest, WriteChromeTraceRoundTrips) {
  { SAGED_TRACE_SPAN("trace/file"); }
  std::string path = ::testing::TempDir() + "/saged_trace_test.json";
  auto status = WriteChromeTrace(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), ChromeTraceJson());
  std::remove(path.c_str());
}

TEST_F(TraceExportTest, WriteChromeTraceReportsUnwritablePath) {
  auto status = WriteChromeTrace("/nonexistent-dir/trace.json");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("/nonexistent-dir/trace.json"),
            std::string::npos);
}

}  // namespace
}  // namespace saged::telemetry
