#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "pipeline/downstream.h"
#include "pipeline/evaluation.h"
#include "pipeline/repair.h"
#include "pipeline/tuner.h"

namespace saged::pipeline {
namespace {

datagen::Dataset Gen(const std::string& name, size_t rows) {
  datagen::MakeOptions opts;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

// --- Repair --------------------------------------------------------------------

TEST(RepairTest, PerfectMaskRestoresNumericsApproximately) {
  auto ds = Gen("nasa", 300);
  auto repaired = RepairTable(ds.dirty, ds.mask);
  ASSERT_TRUE(repaired.ok());
  // Repaired numeric cells should be closer to the clean values than the
  // dirty ones were, in aggregate.
  double dirty_err = 0.0;
  double repaired_err = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < ds.clean.NumRows(); ++r) {
    for (size_t c = 0; c < ds.clean.NumCols(); ++c) {
      if (!ds.mask.IsDirty(r, c)) continue;
      auto truth = CellAsNumber(ds.clean.cell(r, c));
      auto dirty = CellAsNumber(ds.dirty.cell(r, c));
      auto fixed = CellAsNumber(repaired->cell(r, c));
      if (!truth || !fixed) continue;
      repaired_err += std::abs(*fixed - *truth);
      dirty_err += dirty ? std::abs(*dirty - *truth) : std::abs(*truth);
      ++n;
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(repaired_err, dirty_err);
}

TEST(RepairTest, UntouchedCellsPreserved) {
  auto ds = Gen("beers", 150);
  auto repaired = RepairTable(ds.dirty, ds.mask);
  ASSERT_TRUE(repaired.ok());
  for (size_t r = 0; r < ds.dirty.NumRows(); ++r) {
    for (size_t c = 0; c < ds.dirty.NumCols(); ++c) {
      if (!ds.mask.IsDirty(r, c)) {
        EXPECT_EQ(repaired->cell(r, c), ds.dirty.cell(r, c));
      }
    }
  }
}

TEST(RepairTest, EmptyMaskIsIdentity) {
  auto ds = Gen("nasa", 60);
  ErrorMask empty(ds.dirty.NumRows(), ds.dirty.NumCols());
  auto repaired = RepairTable(ds.dirty, empty);
  ASSERT_TRUE(repaired.ok());
  for (size_t r = 0; r < ds.dirty.NumRows(); ++r) {
    EXPECT_EQ(repaired->Row(r), ds.dirty.Row(r));
  }
}

TEST(RepairTest, RejectsShapeMismatch) {
  auto ds = Gen("nasa", 30);
  EXPECT_FALSE(RepairTable(ds.dirty, ErrorMask(2, 2)).ok());
}

// --- Downstream model -------------------------------------------------------------

TEST(DownstreamTest, PrepareShapes) {
  auto ds = Gen("nasa", 200);
  auto prep = PrepareForModel(ds.clean, 5, TaskType::kRegression);
  ASSERT_TRUE(prep.ok());
  EXPECT_EQ(prep->x.cols(), ds.clean.NumCols() - 1);
  EXPECT_EQ(prep->y_reg.size(), prep->x.rows());
}

TEST(DownstreamTest, PrepareRejectsBadLabelColumn) {
  auto ds = Gen("nasa", 50);
  EXPECT_FALSE(PrepareForModel(ds.clean, 99, TaskType::kRegression).ok());
}

TEST(DownstreamTest, RegressionLearnsNasaResponse) {
  auto ds = Gen("nasa", 600);
  auto prep = PrepareForModel(ds.clean, 5, TaskType::kRegression);
  ASSERT_TRUE(prep.ok());
  ml::MlpOptions opts;
  opts.epochs = 120;
  auto score = TrainAndScore(*prep, opts, 3);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_GT(*score, 0.3);  // clear signal vs the R^2=0 mean baseline
}

TEST(DownstreamTest, ClassificationLearnsFactoryRegime) {
  auto ds = Gen("smart_factory", 500);
  auto label = ds.clean.ColumnIndex("label");
  ASSERT_TRUE(label.ok());
  auto prep =
      PrepareForModel(ds.clean, *label, TaskType::kMultiClassification);
  ASSERT_TRUE(prep.ok());
  ml::MlpOptions opts;
  opts.epochs = 100;
  auto score = TrainAndScore(*prep, opts, 5);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_GT(*score, 0.5);
}

TEST(DownstreamTest, DirtyDataScoresWorseThanClean) {
  datagen::MakeOptions opts;
  opts.rows = 600;
  opts.error_rate = 0.35;
  auto ds = datagen::MakeDataset("nasa", opts);
  ASSERT_TRUE(ds.ok());
  auto clean_score =
      DownstreamScoreVsClean(ds->clean, ds->clean, 5, TaskType::kRegression, 7);
  auto dirty_score =
      DownstreamScoreVsClean(ds->dirty, ds->clean, 5, TaskType::kRegression, 7);
  ASSERT_TRUE(clean_score.ok());
  ASSERT_TRUE(dirty_score.ok());
  EXPECT_GT(*clean_score, *dirty_score);
}

// --- Tuner ------------------------------------------------------------------------

TEST(TunerTest, FindsWorkingConfig) {
  auto ds = Gen("nasa", 300);
  auto prep = PrepareForModel(ds.clean, 5, TaskType::kRegression);
  ASSERT_TRUE(prep.ok());
  TunerOptions opts;
  opts.trials = 3;
  opts.epochs = 30;
  auto best = TuneMlp(*prep, opts, 11);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_FALSE(best->hidden.empty());
  EXPECT_GT(best->learning_rate, 0.0);
}

// --- Evaluation harness --------------------------------------------------------------

TEST(EvaluationTest, RunBaselineScores) {
  auto ds = Gen("beers", 200);
  auto row = RunBaseline("mink", ds, 20, 3);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->tool, "mink");
  EXPECT_EQ(row->dataset, "beers");
  EXPECT_GE(row->f1, 0.0);
  EXPECT_LE(row->f1, 1.0);
  EXPECT_GE(row->seconds, 0.0);
}

TEST(EvaluationTest, MakeSagedWithHistoryAndRun) {
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  datagen::MakeOptions gen;
  gen.rows = 250;
  auto saged = MakeSagedWithHistory(config, {"adult", "movies"}, gen);
  ASSERT_TRUE(saged.ok()) << saged.status().ToString();
  auto ds = Gen("beers", 250);
  auto row = RunSaged(*saged, ds);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->tool, "saged");
  EXPECT_GT(row->f1, 0.4);
}

TEST(EvaluationTest, DownstreamScoreWithPerfectMaskBeatsDirty) {
  datagen::MakeOptions opts;
  opts.rows = 600;
  opts.error_rate = 0.35;
  auto ds = datagen::MakeDataset("nasa", opts);
  ASSERT_TRUE(ds.ok());
  auto repaired_score = DownstreamScoreWithMask(*ds, ds->mask, 5,
                                                TaskType::kRegression, 7);
  auto dirty_score =
      DownstreamScoreVsClean(ds->dirty, ds->clean, 5, TaskType::kRegression, 7);
  ASSERT_TRUE(repaired_score.ok()) << repaired_score.status().ToString();
  ASSERT_TRUE(dirty_score.ok());
  EXPECT_GT(*repaired_score, *dirty_score - 0.05);
}

}  // namespace
}  // namespace saged::pipeline
