// Parallel knowledge extraction: the bit-identical-at-any-thread-count
// guarantee, the content-hash extraction cache, and the config validation /
// flag-registry surface that gates both phases.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/telemetry.h"
#include "core/config_flags.h"
#include "core/detector.h"
#include "core/knowledge_extractor.h"
#include "core/serialization.h"
#include "datagen/datasets.h"

namespace saged::core {
namespace {

SagedConfig FastConfig() {
  SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling_budget = 20;
  return config;
}

datagen::Dataset Gen(const std::string& name, size_t rows) {
  datagen::MakeOptions opts;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

std::string SerializeKb(const Saged& saged) {
  std::ostringstream out;
  EXPECT_TRUE(WriteKnowledgeBase(saged.knowledge_base(), &out).ok());
  return out.str();
}

Saged MakeLoaded(const SagedConfig& config) {
  Saged saged(config);
  auto adult = Gen("adult", 250);
  auto movies = Gen("movies", 250);
  EXPECT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  EXPECT_TRUE(saged.AddHistoricalDataset(movies.dirty, movies.mask).ok());
  return saged;
}

TEST(ParallelExtraction, ThreadCountYieldsByteIdenticalKnowledgeBase) {
  SagedConfig sequential = FastConfig();
  sequential.extract_threads = 1;
  SagedConfig parallel = FastConfig();
  parallel.extract_threads = 4;
  Saged a = MakeLoaded(sequential);
  Saged b = MakeLoaded(parallel);
  EXPECT_EQ(SerializeKb(a), SerializeKb(b));
}

TEST(ParallelExtraction, ThreadCountDoesNotChangeDetection) {
  auto beers = Gen("beers", 200);
  SagedConfig sequential = FastConfig();
  sequential.extract_threads = 1;
  SagedConfig parallel = FastConfig();
  parallel.extract_threads = 4;
  Saged a = MakeLoaded(sequential);
  Saged b = MakeLoaded(parallel);
  auto ra = a.Detect(beers.dirty, MaskOracle(beers.mask));
  auto rb = b.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_TRUE(ra->mask == rb->mask);
  EXPECT_EQ(ra->matched_models, rb->matched_models);
}

TEST(ParallelExtraction, ReAddingSameDatasetHitsCache) {
  telemetry::TelemetryRegistry::Get().Reset();
  telemetry::SetEnabled(true);
  Saged saged(FastConfig());
  auto adult = Gen("adult", 200);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  size_t models = saged.knowledge_base().size();
  ASSERT_GT(models, 0u);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  telemetry::SetEnabled(false);
  // Second ingestion was a no-op served from the cache.
  EXPECT_EQ(saged.knowledge_base().size(), models);
  auto& registry = telemetry::TelemetryRegistry::Get();
  EXPECT_EQ(registry.CounterValue("extract.cache_hits"), 1u);
  EXPECT_EQ(registry.CounterValue("extract.cache_misses"), 1u);
}

TEST(ParallelExtraction, CacheDisabledRetrains) {
  SagedConfig config = FastConfig();
  config.extraction_cache = false;
  Saged saged(config);
  auto adult = Gen("adult", 200);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  size_t models = saged.knowledge_base().size();
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  EXPECT_EQ(saged.knowledge_base().size(), 2 * models);
}

TEST(ParallelExtraction, ChangedLabelsMissCache) {
  Saged saged(FastConfig());
  auto adult = Gen("adult", 200);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  size_t models = saged.knowledge_base().size();
  ErrorMask flipped = adult.mask;
  flipped.Set(0, 0, !flipped.IsDirty(0, 0));
  ASSERT_TRUE(saged.AddHistoricalDataset(adult.dirty, flipped).ok());
  EXPECT_GT(saged.knowledge_base().size(), models);
}

TEST(ParallelExtraction, CacheSurvivesSerialization) {
  SagedConfig config = FastConfig();
  auto adult = Gen("adult", 200);
  KnowledgeExtractor extractor(config);
  KnowledgeBase kb(config.char_slots);
  ASSERT_TRUE(extractor.AddDataset(adult.dirty, adult.mask, &kb).ok());
  ASSERT_EQ(kb.extraction_hashes().size(), 1u);

  std::ostringstream out;
  ASSERT_TRUE(WriteKnowledgeBase(kb, &out).ok());
  std::istringstream in(out.str());
  auto reloaded = ReadKnowledgeBase(&in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->extraction_hashes(), kb.extraction_hashes());

  // The reloaded knowledge base still recognizes its source dataset.
  size_t models = reloaded->size();
  ASSERT_TRUE(extractor.AddDataset(adult.dirty, adult.mask, &*reloaded).ok());
  EXPECT_EQ(reloaded->size(), models);
}

TEST(ParallelExtraction, ContentHashIgnoresThreadCounts) {
  auto adult = Gen("adult", 100);
  SagedConfig a = FastConfig();
  a.extract_threads = 1;
  a.detect_threads = 1;
  SagedConfig b = FastConfig();
  b.extract_threads = 8;
  b.detect_threads = 8;
  EXPECT_EQ(KnowledgeExtractor::ContentHash(adult.dirty, adult.mask, a),
            KnowledgeExtractor::ContentHash(adult.dirty, adult.mask, b));
  SagedConfig c = FastConfig();
  c.seed = 12345;
  EXPECT_NE(KnowledgeExtractor::ContentHash(adult.dirty, adult.mask, a),
            KnowledgeExtractor::ContentHash(adult.dirty, adult.mask, c));
}

TEST(ConfigValidation, AcceptsDefaults) {
  EXPECT_TRUE(SagedConfig{}.Validate().ok());
}

TEST(ConfigValidation, RejectsOutOfRangeKnobs) {
  SagedConfig config;
  config.cosine_threshold = 1.5;
  auto status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("cosine_threshold"), std::string::npos)
      << status.ToString();

  config = SagedConfig{};
  config.labeling_budget = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = SagedConfig{};
  config.char_slots = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = SagedConfig{};
  config.augmentation_fraction = -0.1;
  EXPECT_FALSE(config.Validate().ok());

  config = SagedConfig{};
  config.w2v.dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigValidation, ExtractionRejectsInvalidConfig) {
  SagedConfig config = FastConfig();
  config.labeling_budget = 0;
  Saged saged(config);
  auto adult = Gen("adult", 50);
  auto status = saged.AddHistoricalDataset(adult.dirty, adult.mask);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ConfigFlags, RegistryAppliesKnownFlags) {
  SagedConfig config;
  EXPECT_TRUE(IsSagedConfigFlag("budget"));
  EXPECT_FALSE(IsSagedConfigFlag("no-such-flag"));
  ASSERT_TRUE(ApplySagedFlag("budget", "33", &config).ok());
  EXPECT_EQ(config.labeling_budget, 33u);
  ASSERT_TRUE(ApplySagedFlag("extract-threads", "2", &config).ok());
  EXPECT_EQ(config.extract_threads, 2u);
  ASSERT_TRUE(ApplySagedFlag("cache", "off", &config).ok());
  EXPECT_FALSE(config.extraction_cache);
}

TEST(ConfigFlags, UnknownFlagIsNotFound) {
  SagedConfig config;
  auto status = ApplySagedFlag("no-such-flag", "1", &config);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ConfigFlags, UnparseableValueIsInvalidArgument) {
  SagedConfig config;
  auto status = ApplySagedFlag("budget", "lots", &config);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ConfigFlags, ListAppliesEveryEntry) {
  SagedConfig config;
  ASSERT_TRUE(
      ApplySagedFlagList("budget=10,seed=99,cache=false", &config).ok());
  EXPECT_EQ(config.labeling_budget, 10u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_FALSE(config.extraction_cache);
  EXPECT_FALSE(ApplySagedFlagList("budget", &config).ok());
}

}  // namespace
}  // namespace saged::core
