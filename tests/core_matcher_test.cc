#include <memory>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/knowledge_base.h"
#include "core/knowledge_extractor.h"
#include "core/matcher.h"
#include "core/meta_features.h"
#include "datagen/datasets.h"
#include "features/featurizer.h"
#include "features/signature.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged::core {
namespace {

/// Knowledge base with synthetic entries whose signatures are axis-aligned
/// unit vectors (no trained models needed for matcher tests).
KnowledgeBase FakeKb(size_t n_entries) {
  KnowledgeBase kb(16);
  for (size_t i = 0; i < n_entries; ++i) {
    BaseModelEntry entry;
    entry.dataset = "ds" + std::to_string(i / 4);
    entry.column = "col" + std::to_string(i);
    entry.signature.assign(features::kSignatureWidth, 0.0);
    entry.signature[i % 4] = 1.0;                   // type one-hot
    entry.signature[4 + i % 3] = 0.5;               // some stats
    entry.model = nullptr;
    kb.AddEntry(std::move(entry));
  }
  return kb;
}

TEST(KnowledgeBaseTest, CountsDatasets) {
  KnowledgeBase kb = FakeKb(8);
  EXPECT_EQ(kb.size(), 8u);
  EXPECT_EQ(kb.NumDatasets(), 2u);
  EXPECT_EQ(kb.SignatureMatrix().rows(), 8u);
  EXPECT_EQ(kb.SignatureMatrix().cols(), features::kSignatureWidth);
}

TEST(CosineMatcherTest, ThresholdFilters) {
  KnowledgeBase kb = FakeKb(8);
  CosineMatcher matcher(&kb, 0.99, 16);
  // Query exactly equal to entry 0's signature.
  auto matches = matcher.Match(kb.entries()[0].signature);
  ASSERT_FALSE(matches.empty());
  for (size_t idx : matches) {
    EXPECT_GE(ml::CosineSimilarity(kb.entries()[idx].signature,
                                   kb.entries()[0].signature),
              0.99);
  }
}

TEST(CosineMatcherTest, FallsBackToMostSimilar) {
  KnowledgeBase kb = FakeKb(4);
  CosineMatcher matcher(&kb, 1.1, 16);  // impossible threshold
  std::vector<double> query(features::kSignatureWidth, 0.1);
  auto matches = matcher.Match(query);
  EXPECT_EQ(matches.size(), 1u);  // single best entry
}

TEST(CosineMatcherTest, CapsModelCount) {
  KnowledgeBase kb = FakeKb(12);
  CosineMatcher matcher(&kb, -1.0, 3);  // accept everything, cap at 3
  std::vector<double> query(features::kSignatureWidth, 0.1);
  auto matches = matcher.Match(query);
  EXPECT_EQ(matches.size(), 3u);
}

TEST(ClusterMatcherTest, AssignsToNearestCluster) {
  KnowledgeBase kb = FakeKb(12);
  auto matcher = ClusterMatcher::Create(&kb, 4, 16, 7);
  ASSERT_TRUE(matcher.ok());
  // Querying with an existing entry's signature returns a cluster that
  // contains that entry.
  for (size_t i = 0; i < kb.size(); ++i) {
    auto matches = (*matcher)->Match(kb.entries()[i].signature);
    EXPECT_FALSE(matches.empty());
    bool contains_self = false;
    for (size_t idx : matches) contains_self |= idx == i;
    EXPECT_TRUE(contains_self) << "entry " << i;
  }
}

// --- SelectRelevant determinism (the index-vs-scan parity foundation) ----------

/// Knowledge base where entries [0, n) share one signature — every
/// similarity is an exact tie, the worst case for truncation determinism.
KnowledgeBase TiedKb(size_t n_entries) {
  KnowledgeBase kb(16);
  for (size_t i = 0; i < n_entries; ++i) {
    BaseModelEntry entry;
    entry.dataset = "tied";
    entry.column = "col" + std::to_string(i);
    entry.signature.assign(features::kSignatureWidth, 0.0);
    entry.signature[0] = 1.0;
    kb.AddEntry(std::move(entry));
  }
  return kb;
}

TEST(SelectRelevantTest, TruncationTieBreaksByIndexNotArrivalOrder) {
  KnowledgeBase kb = TiedKb(10);
  std::vector<double> query(features::kSignatureWidth, 0.0);
  query[0] = 1.0;
  std::vector<size_t> ascending{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<size_t> descending(ascending.rbegin(), ascending.rend());
  auto a = SelectRelevant(kb, query, ascending, 0.5, 3);
  auto b = SelectRelevant(kb, query, descending, 0.5, 3);
  // All similarities tie at 1.0: the deterministic (similarity desc, index
  // asc) truncation key must pick the lowest indices either way — a
  // bucket-probing matcher may hand candidates over in any arrival order.
  EXPECT_EQ(a, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(a, b);
}

TEST(SelectRelevantTest, FallbackTieBreaksTowardLowestIndex) {
  KnowledgeBase kb = TiedKb(6);
  std::vector<double> query(features::kSignatureWidth, 0.0);
  query[0] = 1.0;
  std::vector<size_t> shuffled{4, 2, 5, 3};
  auto out = SelectRelevant(kb, query, shuffled, 1.1, 8);  // nothing clears
  EXPECT_EQ(out, (std::vector<size_t>{2}));
}

TEST(SelectRelevantTest, PrecomputedSimsOverloadMatchesComputePath) {
  KnowledgeBase kb = FakeKb(12);
  std::vector<double> query(features::kSignatureWidth, 0.1);
  std::vector<size_t> candidates{1, 3, 4, 7, 9, 11};
  std::vector<double> sims;
  for (size_t c : candidates) {
    sims.push_back(ml::CosineSimilarity(kb.entries()[c].signature, query));
  }
  for (double threshold : {0.2, 0.9, 1.1}) {
    auto computed = SelectRelevant(kb, query, candidates, threshold, 3);
    auto supplied = SelectRelevant(kb, query, candidates, sims, threshold, 3);
    EXPECT_EQ(computed, supplied) << "threshold=" << threshold;
  }
}

TEST(CosineMatcherTest, TiedEntriesTruncateDeterministically) {
  KnowledgeBase kb = TiedKb(10);
  CosineMatcher matcher(&kb, 0.5, 4);
  auto matches = matcher.Match(kb.entries()[0].signature);
  EXPECT_EQ(matches, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ClusterMatcherTest, EmptyKbRejected) {
  KnowledgeBase kb(16);
  EXPECT_FALSE(ClusterMatcher::Create(&kb, 4, 16, 7).ok());
}

TEST(MakeMatcherTest, BuildsBothKinds) {
  KnowledgeBase kb = FakeKb(8);
  SagedConfig config;
  config.similarity = SimilarityMethod::kCosine;
  EXPECT_TRUE(MakeMatcher(config, &kb).ok());
  config.similarity = SimilarityMethod::kClustering;
  EXPECT_TRUE(MakeMatcher(config, &kb).ok());
}

TEST(MakeMatcherTest, EmptyKbRejected) {
  KnowledgeBase kb(16);
  SagedConfig config;
  EXPECT_FALSE(MakeMatcher(config, &kb).ok());
}

// --- Knowledge extraction over real generated data -----------------------------

TEST(KnowledgeExtractorTest, TrainsOneModelPerUsableColumn) {
  datagen::MakeOptions gen;
  gen.rows = 150;
  auto ds = datagen::MakeDataset("beers", gen);
  ASSERT_TRUE(ds.ok());
  SagedConfig config;
  config.w2v.epochs = 1;
  KnowledgeBase kb(config.char_slots);
  KnowledgeExtractor extractor(config);
  ASSERT_TRUE(extractor.AddDataset(ds->dirty, ds->mask, &kb).ok());
  // Every column with both classes present yields one entry.
  EXPECT_GT(kb.size(), 0u);
  EXPECT_LE(kb.size(), ds->dirty.NumCols());
  for (const auto& entry : kb.entries()) {
    EXPECT_EQ(entry.dataset, ds->dirty.name());
    EXPECT_NE(entry.model, nullptr);
    EXPECT_EQ(entry.signature.size(), features::kSignatureWidth);
  }
}

TEST(KnowledgeExtractorTest, RejectsShapeMismatch) {
  datagen::MakeOptions gen;
  gen.rows = 30;
  auto ds = datagen::MakeDataset("nasa", gen);
  ASSERT_TRUE(ds.ok());
  SagedConfig config;
  KnowledgeBase kb(config.char_slots);
  KnowledgeExtractor extractor(config);
  ErrorMask wrong(10, 2);
  EXPECT_FALSE(extractor.AddDataset(ds->dirty, wrong, &kb).ok());
}

TEST(MetaFeaturesTest, ShapeAndProbabilityRange) {
  datagen::MakeOptions gen;
  gen.rows = 120;
  auto ds = datagen::MakeDataset("nasa", gen);
  ASSERT_TRUE(ds.ok());
  SagedConfig config;
  config.w2v.epochs = 1;
  KnowledgeBase kb(config.char_slots);
  KnowledgeExtractor extractor(config);
  ASSERT_TRUE(extractor.AddDataset(ds->dirty, ds->mask, &kb).ok());
  ASSERT_GT(kb.size(), 1u);

  // Featurize one column and run two base models over it.
  text::Word2Vec w2v(config.w2v, 1);
  std::vector<std::vector<std::string>> docs;
  for (size_t r = 0; r < ds->dirty.NumRows(); ++r) {
    docs.push_back(text::TupleTokens(ds->dirty.Row(r)));
  }
  ASSERT_TRUE(w2v.Train(docs).ok());
  features::ColumnFeaturizer featurizer(&w2v, &kb.char_space());
  auto feats = featurizer.Featurize(ds->dirty.column(0));
  ASSERT_TRUE(feats.ok());

  auto meta = BuildMetaFeatures(*feats, kb, {0, 1});
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->rows(), ds->dirty.NumRows());
  EXPECT_EQ(meta->cols(), 2u);
  for (double v : meta->data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MetaFeaturesTest, RejectsEmptyModelSet) {
  KnowledgeBase kb(16);
  ml::Matrix feats(3, 4);
  EXPECT_FALSE(BuildMetaFeatures(feats, kb, {}).ok());
}

TEST(MetaFeaturesTest, RejectsOutOfRangeIndex) {
  KnowledgeBase kb = FakeKb(2);
  ml::Matrix feats(3, 4);
  EXPECT_FALSE(BuildMetaFeatures(feats, kb, {5}).ok());
}

}  // namespace
}  // namespace saged::core
