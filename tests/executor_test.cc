#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"
#include "common/trace.h"

namespace saged {
namespace {

TEST(ExecutorTest, SubmitReturnsValue) {
  Executor pool(2);
  auto future = pool.Submit([] { return 40 + 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ExecutorTest, SubmitRunsVoidTasks) {
  Executor pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ExecutorTest, SubmitPropagatesException) {
  Executor pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ExecutorTest, ParallelForCoversEveryIndexExactlyOnce) {
  Executor pool(4);
  constexpr size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i] += 1; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelForEmptyRangeIsANoOp) {
  Executor pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ExecutorTest, ParallelForSequentialWhenCapped) {
  Executor pool(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  pool.ParallelFor(
      64,
      [&](size_t) {
        std::lock_guard<std::mutex> lock(mu);
        threads.insert(std::this_thread::get_id());
      },
      /*max_parallelism=*/1);
  // max_parallelism = 1 runs everything inline on the caller.
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ExecutorTest, ParallelForUsesMultipleThreadsWhenAllowed) {
  Executor pool(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  pool.ParallelFor(256, [&](size_t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      threads.insert(std::this_thread::get_id());
    }
    // Enough work per index that helpers have a chance to join in.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  EXPECT_GT(threads.size(), 1u);
}

TEST(ExecutorTest, ParallelForRethrowsFirstException) {
  Executor pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&ran](size_t i) {
                         ran.fetch_add(1);
                         if (i == 7) throw std::runtime_error("boom at 7");
                       }),
      std::runtime_error);
  // The loop cancels after the first failure; it must not have run every
  // remaining index as if nothing happened (some overshoot is fine since
  // in-flight helpers finish their current index).
  EXPECT_GE(ran.load(), 1);
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  Executor pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ExecutorTest, NestedParallelForOnSingleWorkerPool) {
  // The pathological case: one worker, and the outer loop body (possibly
  // running on that worker) starts an inner loop whose helper tasks sit in
  // the same worker's queue. Help-while-waiting keeps this live.
  Executor pool(1);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(3, [&](size_t) {
    pool.ParallelFor(5, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 3 * 5);
}

TEST(ExecutorTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    Executor pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
    // Destruction must wait for all 200, not drop queued tasks.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ExecutorTest, ZeroThreadsMeansHardwareConcurrency) {
  Executor pool(0);
  EXPECT_GT(pool.num_workers(), 0u);
}

TEST(ExecutorTest, SharedPoolIsAProcessSingleton) {
  Executor& a = Executor::Shared();
  Executor& b = Executor::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.num_workers(), 0u);
}

TEST(ExecutorTest, RecordsTaskTelemetry) {
  telemetry::TelemetryRegistry::Get().Reset();
  telemetry::SetEnabled(true);
  {
    Executor pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) futures.push_back(pool.Submit([] {}));
    for (auto& f : futures) f.get();
  }
  uint64_t tasks =
      telemetry::TelemetryRegistry::Get().CounterValue("executor.tasks");
  telemetry::SetEnabled(false);
  EXPECT_GE(tasks, 16u);
}

TEST(ExecutorTest, PooledTasksInheritSubmitterSpanPath) {
  telemetry::TelemetryRegistry::Get().Reset();
  telemetry::SetEnabled(true);
  std::vector<std::string> observed;
  {
    Executor pool(2);
    SAGED_TRACE_SPAN("outer");
    pool.Submit([&observed] { observed = telemetry::CurrentSpanPath(); }).get();
  }
  telemetry::SetEnabled(false);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], "outer");
}

}  // namespace
}  // namespace saged
