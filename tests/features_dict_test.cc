// The byte-identity parity wall for the dictionary-encoded, SIMD-friendly
// featurization hot path. Every test here compares raw matrix bytes
// (memcmp, not EXPECT_DOUBLE_EQ): the scalar path, the dictionary path, and
// the SIMD kernels must agree bit-for-bit at any block size, thread count,
// and dictionary cutoff — that identity is what lets the mode knob trade
// work without ever trading results. Inputs deliberately include
// all-distinct and all-identical columns, empty strings, multi-byte UTF-8,
// NUL-free high bytes, and values that straddle SIMD chunk boundaries
// (lengths 15/16/17 around the 16-byte vector width).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/executor.h"
#include "data/column.h"
#include "datagen/datasets.h"
#include "features/char_space.h"
#include "features/dictionary.h"
#include "features/featurizer.h"
#include "features/frozen_stats.h"
#include "features/kernels.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged::features {
namespace {

/// Restores the process-wide SIMD dispatch flag on scope exit, so tests can
/// flip it without leaking state into the rest of the suite.
class SimdFlagGuard {
 public:
  explicit SimdFlagGuard(bool enabled) : saved_(kernels::SimdEnabled()) {
    kernels::SetSimdEnabled(enabled);
  }
  ~SimdFlagGuard() { kernels::SetSimdEnabled(saved_); }

 private:
  bool saved_;
};

/// True when two matrices are byte-identical (shape and every double bit).
bool SameBytes(const ml::Matrix& a, const ml::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

/// A trained featurization context for one column: dataset-level Word2Vec
/// (trained on the column's tokens so embeddings are non-trivial) plus a
/// char space covering the column.
struct FeaturizeContext {
  explicit FeaturizeContext(const Column& column, size_t char_slots = 32)
      : space(char_slots) {
    text::Word2VecOptions opts;
    opts.dim = 4;
    opts.epochs = 1;
    w2v = text::Word2Vec(opts, 42);
    std::vector<std::vector<std::string>> docs;
    docs.reserve(column.size());
    for (const auto& cell : column.values()) {
      docs.push_back(text::WordTokens(cell));
    }
    Status trained = w2v.Train(docs);
    EXPECT_TRUE(trained.ok()) << trained.ToString();
    ColumnFeaturizer::RegisterChars(column, &space);
  }

  ml::Matrix Featurize(const Column& column, FeaturizeMode mode,
                       double cutoff = 0.5) {
    FeaturizeOptions options;
    options.mode = mode;
    options.dict_max_distinct_ratio = cutoff;
    ColumnFeaturizer featurizer(&w2v, &space, options);
    auto m = featurizer.Featurize(column);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return m.ok() ? std::move(m).value() : ml::Matrix();
  }

  text::Word2Vec w2v;
  CharSpace space;
};

/// Featurizes `column` under frozen stats in blocks of `block_rows` cells,
/// reusing one arena across blocks (the streaming detector's discipline),
/// and returns the concatenated matrix.
ml::Matrix FeaturizeBlocked(FeaturizeContext& ctx, const Column& column,
                            FeaturizeMode mode, size_t block_rows) {
  ColumnStatsBuilder builder;
  for (const auto& cell : column.values()) builder.Observe(cell);
  auto stats = builder.Finalize();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();

  FeaturizeOptions options;
  options.mode = mode;
  ColumnFeaturizer featurizer(&ctx.w2v, &ctx.space, options);
  const size_t width = ColumnFeaturizer::FeatureWidth(ctx.w2v.dim(), ctx.space);
  ml::Matrix out(column.size(), width);
  FeatureArena arena;
  ml::Matrix block;
  for (size_t start = 0; start < column.size(); start += block_rows) {
    size_t n = std::min(block_rows, column.size() - start);
    std::span<const Cell> cells(&column.values()[start], n);
    Status s = featurizer.FeaturizeFrozenInto(*stats, cells, &block, &arena);
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (size_t i = 0; i < n; ++i) {
      auto src = block.Row(i);
      std::copy(src.begin(), src.end(), out.Row(start + i).begin());
    }
  }
  return out;
}

/// Adversarial hand-built columns, straddling every edge the kernels have:
/// empty strings, missing tokens, multi-byte UTF-8, high bytes, and values
/// whose lengths bracket the 16-byte SIMD chunk boundary.
std::vector<Column> EdgeColumns() {
  std::vector<Column> columns;
  columns.emplace_back("all_identical",
                       std::vector<Cell>(64, "same-value-123"));
  {
    std::vector<Cell> distinct;
    for (int i = 0; i < 64; ++i) distinct.push_back("v" + std::to_string(i));
    columns.emplace_back("all_distinct", std::move(distinct));
  }
  columns.emplace_back(
      "empties_and_missing",
      std::vector<Cell>{"", "", "NULL", "na", "x", "", "?", "x", "-", ""});
  columns.emplace_back(
      "utf8", std::vector<Cell>{"München", "naïve", "naïve", "日本語",
                                "héllo wörld", "München", "ærøskøbing",
                                "Zürich", "日本語", ""});
  {
    // Lengths 14..18 bracket the 16-byte vector width; repeated so the
    // dictionary path actually kicks in.
    std::vector<Cell> straddle;
    for (size_t len = 14; len <= 18; ++len) {
      std::string v(len, 'a');
      v[len / 2] = '7';
      v[len - 1] = '!';
      for (int rep = 0; rep < 6; ++rep) straddle.push_back(v);
    }
    columns.emplace_back("chunk_straddle", std::move(straddle));
  }
  {
    std::vector<Cell> high;
    for (int i = 0; i < 32; ++i) {
      std::string v = "hb";
      v.push_back(static_cast<char>(0x80 + (i % 8)));
      v.push_back(static_cast<char>(0xF0 + (i % 4)));
      high.push_back(v);
    }
    columns.emplace_back("high_bytes", std::move(high));
  }
  return columns;
}

/// Columns of the parity sweep's datagen datasets: three Table-1 datasets,
/// dirty side (the side detection featurizes).
std::vector<Column> DatagenColumns() {
  std::vector<Column> columns;
  for (const char* name : {"beers", "flights", "hospital"}) {
    datagen::MakeOptions opts;
    opts.rows = 120;
    auto ds = datagen::MakeDataset(name, opts);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    if (!ds.ok()) continue;
    for (const auto& column : ds->dirty.columns()) columns.push_back(column);
  }
  return columns;
}

// --- Whole-column parity: scalar vs dict vs SIMD -----------------------------

TEST(FeaturizeDictParityTest, EdgeColumnsScalarDictSimdIdentical) {
  for (const auto& column : EdgeColumns()) {
    FeaturizeContext ctx(column);
    SimdFlagGuard simd_off(false);
    ml::Matrix scalar = ctx.Featurize(column, FeaturizeMode::kScalar);
    ml::Matrix dict = ctx.Featurize(column, FeaturizeMode::kDict);
    EXPECT_TRUE(SameBytes(scalar, dict)) << column.name() << ": dict != scalar";
    if (kernels::SimdAvailable()) {
      SimdFlagGuard simd_on(true);
      ml::Matrix scalar_simd = ctx.Featurize(column, FeaturizeMode::kScalar);
      ml::Matrix dict_simd = ctx.Featurize(column, FeaturizeMode::kDict);
      EXPECT_TRUE(SameBytes(scalar, scalar_simd))
          << column.name() << ": simd scalar != scalar";
      EXPECT_TRUE(SameBytes(scalar, dict_simd))
          << column.name() << ": simd dict != scalar";
    }
  }
}

TEST(FeaturizeDictParityTest, DatagenColumnsScalarDictSimdIdentical) {
  for (const auto& column : DatagenColumns()) {
    FeaturizeContext ctx(column);
    SimdFlagGuard simd_off(false);
    ml::Matrix scalar = ctx.Featurize(column, FeaturizeMode::kScalar);
    ml::Matrix dict = ctx.Featurize(column, FeaturizeMode::kDict);
    EXPECT_TRUE(SameBytes(scalar, dict)) << column.name() << ": dict != scalar";
    if (kernels::SimdAvailable()) {
      SimdFlagGuard simd_on(true);
      ml::Matrix dict_simd = ctx.Featurize(column, FeaturizeMode::kDict);
      EXPECT_TRUE(SameBytes(scalar, dict_simd))
          << column.name() << ": simd dict != scalar";
    }
  }
}

TEST(FeaturizeDictParityTest, AutoModeMatchesScalarAtAnyCutoff) {
  for (const auto& column : EdgeColumns()) {
    FeaturizeContext ctx(column);
    ml::Matrix scalar = ctx.Featurize(column, FeaturizeMode::kScalar);
    // Cutoff 0.0 forces scalar for every non-constant column, 1.0 forces
    // dict everywhere; both ends (and the default middle) must agree.
    for (double cutoff : {0.0, 0.5, 1.0}) {
      ml::Matrix automatic =
          ctx.Featurize(column, FeaturizeMode::kAuto, cutoff);
      EXPECT_TRUE(SameBytes(scalar, automatic))
          << column.name() << " cutoff=" << cutoff;
    }
  }
}

// --- Block-size independence -------------------------------------------------

TEST(FeaturizeDictParityTest, BlockedFeaturizationIdenticalAtAnyBlockSize) {
  for (const auto& column : EdgeColumns()) {
    FeaturizeContext ctx(column);
    ml::Matrix whole = ctx.Featurize(column, FeaturizeMode::kScalar);
    for (size_t block_rows : {1u, 3u, 7u, 16u, 1000u}) {
      for (FeaturizeMode mode :
           {FeaturizeMode::kScalar, FeaturizeMode::kDict,
            FeaturizeMode::kAuto}) {
        ml::Matrix blocked = FeaturizeBlocked(ctx, column, mode, block_rows);
        EXPECT_TRUE(SameBytes(whole, blocked))
            << column.name() << " block_rows=" << block_rows << " mode="
            << static_cast<int>(mode);
      }
    }
  }
}

TEST(FeaturizeDictParityTest, DatagenBlockedParityAcrossModes) {
  auto columns = DatagenColumns();
  for (size_t j = 0; j < columns.size(); j += 3) {  // every 3rd: keep it quick
    const auto& column = columns[j];
    FeaturizeContext ctx(column);
    ml::Matrix whole = ctx.Featurize(column, FeaturizeMode::kScalar);
    for (size_t block_rows : {17u, 50u}) {
      ml::Matrix blocked =
          FeaturizeBlocked(ctx, column, FeaturizeMode::kDict, block_rows);
      EXPECT_TRUE(SameBytes(whole, blocked))
          << column.name() << " block_rows=" << block_rows;
    }
  }
}

// --- Thread-count independence ----------------------------------------------

TEST(FeaturizeDictParityTest, ParallelColumnsIdenticalAtAnyThreadCount) {
  // The streaming detector's layout: columns fan out across an executor,
  // each with its own arena and output slot. Results must be byte-identical
  // at every max_parallelism, dictionary path included.
  auto columns = DatagenColumns();
  ASSERT_FALSE(columns.empty());
  std::vector<FeaturizeContext> contexts;
  contexts.reserve(columns.size());
  for (const auto& column : columns) contexts.emplace_back(column);

  auto run = [&](size_t threads) {
    std::vector<ml::Matrix> out(columns.size());
    std::vector<FeatureArena> arenas(columns.size());
    FeaturizeOptions options;
    options.mode = FeaturizeMode::kDict;
    Executor::Shared().ParallelFor(
        columns.size(),
        [&](size_t j) {
          ColumnFeaturizer featurizer(&contexts[j].w2v, &contexts[j].space,
                                      options);
          ColumnStatsBuilder builder;
          for (const auto& cell : columns[j].values()) builder.Observe(cell);
          auto stats = builder.Finalize();
          ASSERT_TRUE(stats.ok()) << stats.status().ToString();
          Status s = featurizer.FeaturizeFrozenInto(
              *stats, std::span<const Cell>(columns[j].values()), &out[j],
              &arenas[j]);
          ASSERT_TRUE(s.ok()) << s.ToString();
        },
        threads);
    return out;
  };

  auto sequential = run(1);
  for (size_t threads : {2u, 4u, 0u}) {  // 0 = full pool
    auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (size_t j = 0; j < sequential.size(); ++j) {
      EXPECT_TRUE(SameBytes(sequential[j], parallel[j]))
          << columns[j].name() << " threads=" << threads;
    }
  }
}

// --- Dictionary encoder ------------------------------------------------------

TEST(ColumnDictionaryTest, EncodeRoundTripsEveryCell) {
  std::vector<Cell> cells{"a", "b", "a", "", "c", "b", "a", ""};
  ColumnDictionary dict;
  dict.Encode(cells);
  EXPECT_EQ(dict.size(), 4u);  // a, b, "", c in first-seen order
  EXPECT_EQ(dict.encoded_cells(), cells.size());
  ASSERT_EQ(dict.codes().size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(dict.value(dict.codes()[i]), cells[i]) << "cell " << i;
  }
  // First-seen code order is part of the determinism contract.
  EXPECT_EQ(dict.value(0), "a");
  EXPECT_EQ(dict.value(1), "b");
  EXPECT_EQ(dict.value(2), "");
  EXPECT_EQ(dict.value(3), "c");
  EXPECT_DOUBLE_EQ(dict.distinct_ratio(), 0.5);
}

TEST(ColumnDictionaryTest, ReusedEncoderMatchesFreshOne) {
  std::vector<Cell> first(100, "x");
  std::vector<Cell> second;
  for (int i = 0; i < 50; ++i) second.push_back("v" + std::to_string(i % 7));
  ColumnDictionary reused;
  reused.Encode(first);
  reused.Encode(second);  // arena reuse: rebuild in place
  ColumnDictionary fresh;
  fresh.Encode(second);
  ASSERT_EQ(reused.size(), fresh.size());
  EXPECT_EQ(reused.codes(), fresh.codes());
  for (size_t c = 0; c < fresh.size(); ++c) {
    EXPECT_EQ(reused.value(static_cast<uint32_t>(c)),
              fresh.value(static_cast<uint32_t>(c)));
  }
}

TEST(ColumnDictionaryTest, AllDistinctAndAllIdenticalExtremes) {
  std::vector<Cell> identical(257, "only");
  ColumnDictionary dict;
  dict.Encode(identical);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_DOUBLE_EQ(dict.distinct_ratio(), 1.0 / 257.0);

  std::vector<Cell> distinct;
  for (int i = 0; i < 257; ++i) distinct.push_back(std::to_string(i));
  dict.Encode(distinct);
  EXPECT_EQ(dict.size(), distinct.size());
  EXPECT_DOUBLE_EQ(dict.distinct_ratio(), 1.0);

  dict.Encode({});
  EXPECT_EQ(dict.size(), 0u);
  EXPECT_DOUBLE_EQ(dict.distinct_ratio(), 1.0);
}

// --- Kernels -----------------------------------------------------------------

TEST(KernelsTest, CharClassesAgreeOnAll256SingleBytes) {
  for (int b = 0; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    auto ref = kernels::CountCharClassesScalar(s);
    {
      SimdFlagGuard off(false);
      EXPECT_EQ(kernels::CountCharClasses(s), ref) << "byte " << b;
    }
    if (kernels::SimdAvailable()) {
      SimdFlagGuard on(true);
      // Single bytes exercise the tail loop; pad to 16+ to hit the vector
      // body with the same byte in every lane.
      EXPECT_EQ(kernels::CountCharClasses(s), ref) << "byte " << b;
      std::string wide(33, static_cast<char>(b));
      auto wide_ref = kernels::CountCharClassesScalar(wide);
      EXPECT_EQ(kernels::CountCharClassesSimd(wide), wide_ref)
          << "wide byte " << b;
    }
  }
}

TEST(KernelsTest, SimdFlagDispatchesAndRestores) {
  EXPECT_EQ(kernels::SimdAvailable(),
#if defined(SAGED_FEATURES_HAVE_SIMD)
            true
#else
            false
#endif
  );
  bool before = kernels::SimdEnabled();
  {
    SimdFlagGuard off(false);
    EXPECT_FALSE(kernels::SimdEnabled());
    SimdFlagGuard on(true);
    EXPECT_TRUE(kernels::SimdEnabled());
  }
  EXPECT_EQ(kernels::SimdEnabled(), before);
}

TEST(KernelsTest, HistogramAndHashHandleNulAndHighBytes) {
  std::string nasty;
  for (int i = 0; i < 300; ++i) nasty.push_back(static_cast<char>(i * 7));
  nasty[5] = '\0';
  nasty[37] = '\0';

  uint32_t ref[256] = {0};
  uint32_t fast[256] = {0};
  kernels::ByteHistogramScalar(nasty, ref);
  kernels::ByteHistogram(nasty, fast);
  EXPECT_EQ(std::memcmp(ref, fast, sizeof(ref)), 0);

  EXPECT_EQ(kernels::HashValue(nasty), kernels::HashValueScalar(nasty));
  EXPECT_EQ(kernels::HashValue(""), kernels::HashValueScalar(""));
  // Hash must be length-aware: a NUL-extended string is a different value.
  std::string a("ab", 2), b("ab\0", 3);
  EXPECT_NE(kernels::HashValue(a), kernels::HashValue(b));
}

}  // namespace
}  // namespace saged::features
