// Tests for the saged_report comparison engine (tools/report_engine.h):
// JSON flattening to numeric leaves, unit-suffix gating, regression
// detection with threshold and noise floor, and the table / JSON output.
// This covers the exit-nonzero acceptance path deterministically: an
// injected >threshold slowdown must produce regressions > 0.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "tools/report_engine.h"

namespace saged::report {
namespace {

// ---------------------------------------------------------------------------
// ParseNumericLeaves.
// ---------------------------------------------------------------------------

TEST(ParseNumericLeavesTest, FlattensNestedObjectsWithSlashJoinedPaths) {
  auto result = ParseNumericLeaves(
      R"({"wall_ms": 12.5, "metrics": {"detect.f1": 0.9, "inner": {"n": 3}}})");
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(result.metrics.at("wall_ms"), 12.5);
  EXPECT_DOUBLE_EQ(result.metrics.at("metrics/detect.f1"), 0.9);
  EXPECT_DOUBLE_EQ(result.metrics.at("metrics/inner/n"), 3.0);
}

TEST(ParseNumericLeavesTest, IndexesArrayElements) {
  auto result = ParseNumericLeaves(R"({"xs": [10, 20, {"y": 30}]})");
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_DOUBLE_EQ(result.metrics.at("xs/0"), 10.0);
  EXPECT_DOUBLE_EQ(result.metrics.at("xs/1"), 20.0);
  EXPECT_DOUBLE_EQ(result.metrics.at("xs/2/y"), 30.0);
}

TEST(ParseNumericLeavesTest, SkipsStringsBooleansAndNulls) {
  auto result = ParseNumericLeaves(
      R"({"tool": "bench", "ok": true, "none": null, "n": 1})");
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(result.metrics.at("n"), 1.0);
}

TEST(ParseNumericLeavesTest, HandlesEscapesAndNegativeExponents) {
  auto result = ParseNumericLeaves(
      R"({"we\"ird\\key": 1, "tiny": -2.5e-3})");
  ASSERT_TRUE(result.error.empty()) << result.error;
  ASSERT_EQ(result.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(result.metrics.at("tiny"), -0.0025);
}

TEST(ParseNumericLeavesTest, MalformedInputSetsErrorWithOffset) {
  auto result = ParseNumericLeaves(R"({"a": )");
  EXPECT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("byte"), std::string::npos);
  auto trailing = ParseNumericLeaves(R"({"a": 1} extra)");
  EXPECT_FALSE(trailing.error.empty());
}

// ---------------------------------------------------------------------------
// Gating.
// ---------------------------------------------------------------------------

TEST(IsGatedMetricTest, TimeAndMemorySuffixesAreGated) {
  EXPECT_TRUE(IsGatedMetric("wall_ms"));
  EXPECT_TRUE(IsGatedMetric("peak_rss_bytes"));
  EXPECT_TRUE(IsGatedMetric("metrics/bench.cell_ms.p99"));
  EXPECT_TRUE(IsGatedMetric("metrics/extract_ns"));
  EXPECT_TRUE(IsGatedMetric("telemetry/span/detect/total_us"));
}

TEST(IsGatedMetricTest, QualityMetricsAndCountsAreNot) {
  EXPECT_FALSE(IsGatedMetric("metrics/detect.f1"));
  EXPECT_FALSE(IsGatedMetric("threads"));
  EXPECT_FALSE(IsGatedMetric("schema_version"));
  EXPECT_FALSE(IsGatedMetric("metrics/cells_scanned"));
  EXPECT_FALSE(IsGatedMetric("precision"));
}

// ---------------------------------------------------------------------------
// Compare.
// ---------------------------------------------------------------------------

TEST(CompareTest, InjectedSlowdownBeyondThresholdIsRegression) {
  std::map<std::string, double> old_m = {{"wall_ms", 100.0},
                                         {"metrics/detect.f1", 0.9}};
  std::map<std::string, double> new_m = {{"wall_ms", 150.0},
                                         {"metrics/detect.f1", 0.9}};
  auto result = Compare(old_m, new_m, CompareOptions{});
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.deltas.size(), 2u);
  const auto& wall = result.deltas[0].path == "wall_ms" ? result.deltas[0]
                                                        : result.deltas[1];
  EXPECT_TRUE(wall.gated);
  EXPECT_TRUE(wall.regression);
  EXPECT_NEAR(wall.delta_pct, 50.0, 1e-9);
}

TEST(CompareTest, IdenticalRunsHaveNoRegressions) {
  std::map<std::string, double> m = {{"wall_ms", 100.0},
                                     {"peak_rss_bytes", 1048576.0},
                                     {"metrics/detect.f1", 0.9}};
  auto result = Compare(m, m, CompareOptions{});
  EXPECT_EQ(result.regressions, 0u);
  for (const auto& d : result.deltas) {
    EXPECT_FALSE(d.regression) << d.path;
    EXPECT_DOUBLE_EQ(d.delta_pct, 0.0) << d.path;
  }
}

TEST(CompareTest, IncreaseWithinThresholdPasses) {
  std::map<std::string, double> old_m = {{"wall_ms", 100.0}};
  std::map<std::string, double> new_m = {{"wall_ms", 109.0}};
  auto result = Compare(old_m, new_m, CompareOptions{});  // 10% threshold
  EXPECT_EQ(result.regressions, 0u);
}

TEST(CompareTest, NoiseFloorSuppressesTinyBaselines) {
  // 0.2ms -> 0.9ms is a 350% jump, but below min_value=1.0 it is jitter.
  std::map<std::string, double> old_m = {{"wall_ms", 0.2}};
  std::map<std::string, double> new_m = {{"wall_ms", 0.9}};
  auto result = Compare(old_m, new_m, CompareOptions{});
  EXPECT_EQ(result.regressions, 0u);
  ASSERT_EQ(result.deltas.size(), 1u);
  EXPECT_TRUE(result.deltas[0].gated);
  EXPECT_FALSE(result.deltas[0].regression);
}

TEST(CompareTest, NonGatedIncreaseIsNeverRegression) {
  std::map<std::string, double> old_m = {{"metrics/cells_scanned", 100.0}};
  std::map<std::string, double> new_m = {{"metrics/cells_scanned", 1000.0}};
  auto result = Compare(old_m, new_m, CompareOptions{});
  EXPECT_EQ(result.regressions, 0u);
}

TEST(CompareTest, CustomThresholdApplies) {
  std::map<std::string, double> old_m = {{"wall_ms", 100.0}};
  std::map<std::string, double> new_m = {{"wall_ms", 103.0}};
  CompareOptions tight;
  tight.threshold_pct = 2.0;
  EXPECT_EQ(Compare(old_m, new_m, tight).regressions, 1u);
  CompareOptions loose;
  loose.threshold_pct = 5.0;
  EXPECT_EQ(Compare(old_m, new_m, loose).regressions, 0u);
}

TEST(CompareTest, UnmatchedMetricsReported) {
  std::map<std::string, double> old_m = {{"wall_ms", 1.0}, {"gone", 2.0}};
  std::map<std::string, double> new_m = {{"wall_ms", 1.0}, {"fresh", 3.0}};
  auto result = Compare(old_m, new_m, CompareOptions{});
  ASSERT_EQ(result.only_old.size(), 1u);
  EXPECT_EQ(result.only_old[0], "gone");
  ASSERT_EQ(result.only_new.size(), 1u);
  EXPECT_EQ(result.only_new[0], "fresh");
  EXPECT_EQ(result.deltas.size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end over manifest-shaped JSON.
// ---------------------------------------------------------------------------

TEST(CompareTest, ManifestShapedInputsDiffEndToEnd) {
  auto old_r = ParseNumericLeaves(R"({
    "schema_version": 1, "tool": "bench_pipeline", "threads": 8,
    "wall_ms": 420.0, "peak_rss_bytes": 104857600,
    "metrics": {"bench.cell_ms.p99": 2.0, "detect.f1": 0.90}
  })");
  auto new_r = ParseNumericLeaves(R"({
    "schema_version": 1, "tool": "bench_pipeline", "threads": 8,
    "wall_ms": 430.0, "peak_rss_bytes": 104857600,
    "metrics": {"bench.cell_ms.p99": 5.0, "detect.f1": 0.90}
  })");
  ASSERT_TRUE(old_r.error.empty());
  ASSERT_TRUE(new_r.error.empty());
  auto result = Compare(old_r.metrics, new_r.metrics, CompareOptions{});
  // p99 2ms -> 5ms regresses; wall 420 -> 430 (2.4%) does not.
  EXPECT_EQ(result.regressions, 1u);
  for (const auto& d : result.deltas) {
    if (d.path == "metrics/bench.cell_ms.p99") {
      EXPECT_TRUE(d.regression);
    }
    if (d.path == "wall_ms") {
      EXPECT_FALSE(d.regression);
    }
  }
}

// ---------------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Floors (the recall gate for bench_kb_scale rides on this).
// ---------------------------------------------------------------------------

TEST(CompareTest, FloorPassesWhenMetricMeetsIt) {
  std::map<std::string, double> m = {{"metrics/kb.recall_at_max", 0.98}};
  CompareOptions options;
  options.floors.emplace_back("metrics/kb.recall_at_max", 0.95);
  auto result = Compare(m, m, options);
  EXPECT_EQ(result.regressions, 0u);
  ASSERT_EQ(result.floor_checks.size(), 1u);
  EXPECT_TRUE(result.floor_checks[0].present);
  EXPECT_TRUE(result.floor_checks[0].passed);
  EXPECT_DOUBLE_EQ(result.floor_checks[0].value, 0.98);
}

TEST(CompareTest, FloorFailureCountsAsRegression) {
  std::map<std::string, double> m = {{"metrics/kb.recall_at_max", 0.80}};
  CompareOptions options;
  options.floors.emplace_back("metrics/kb.recall_at_max", 0.95);
  auto result = Compare(m, m, options);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.floor_checks.size(), 1u);
  EXPECT_TRUE(result.floor_checks[0].present);
  EXPECT_FALSE(result.floor_checks[0].passed);
}

TEST(CompareTest, MissingFlooredMetricFails) {
  // A bench that silently stops emitting the gated metric must not pass.
  std::map<std::string, double> m = {{"wall_ms", 100.0}};
  CompareOptions options;
  options.floors.emplace_back("metrics/kb.recall_at_max", 0.95);
  auto result = Compare(m, m, options);
  EXPECT_EQ(result.regressions, 1u);
  ASSERT_EQ(result.floor_checks.size(), 1u);
  EXPECT_FALSE(result.floor_checks[0].present);
  EXPECT_FALSE(result.floor_checks[0].passed);
}

TEST(FormatTest, TableAndJsonCarryFloorChecks) {
  std::map<std::string, double> m = {{"metrics/kb.recall_at_max", 0.80}};
  CompareOptions options;
  options.floors.emplace_back("metrics/kb.recall_at_max", 0.95);
  auto result = Compare(m, m, options);
  std::string table = FormatTable(result, options);
  EXPECT_NE(table.find("FLOOR FAIL"), std::string::npos);
  auto reparsed = ParseNumericLeaves(FormatJson(result));
  ASSERT_TRUE(reparsed.error.empty()) << reparsed.error;
  EXPECT_DOUBLE_EQ(reparsed.metrics.at("floors/0/floor"), 0.95);
  EXPECT_DOUBLE_EQ(reparsed.metrics.at("floors/0/value"), 0.80);
  EXPECT_DOUBLE_EQ(reparsed.metrics.at("regressions"), 1.0);
}

TEST(FormatTest, TableMarksRegressionsAndVerdict) {
  std::map<std::string, double> old_m = {{"wall_ms", 100.0},
                                         {"metrics/detect.f1", 0.9}};
  std::map<std::string, double> new_m = {{"wall_ms", 150.0},
                                         {"metrics/detect.f1", 0.9}};
  CompareOptions options;
  auto result = Compare(old_m, new_m, options);
  std::string table = FormatTable(result, options);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("wall_ms"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s)"), std::string::npos);
}

TEST(FormatTest, JsonOutputIsWellFormedAndRoundTrips) {
  std::map<std::string, double> old_m = {{"wall_ms", 100.0}};
  std::map<std::string, double> new_m = {{"wall_ms", 150.0}};
  CompareOptions options;
  auto result = Compare(old_m, new_m, options);
  std::string json = FormatJson(result);
  // The report's own JSON must parse with the report's own parser.
  auto reparsed = ParseNumericLeaves(json);
  ASSERT_TRUE(reparsed.error.empty()) << reparsed.error;
  EXPECT_DOUBLE_EQ(reparsed.metrics.at("regressions"), 1.0);
}

}  // namespace
}  // namespace saged::report
