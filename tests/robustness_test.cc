// Edge cases and failure-injection tests: degenerate inputs, pathological
// columns, and misuse of the public APIs must fail cleanly with Status
// errors (never crash) and the detectors must stay sane on hostile data.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/detector.h"
#include "core/meta_classifier.h"
#include "datagen/datasets.h"
#include "features/featurizer.h"
#include "features/signature.h"
#include "ml/agglomerative.h"
#include "ml/mlp.h"
#include "pipeline/downstream.h"
#include "pipeline/repair.h"
#include "text/word2vec.h"

namespace saged {
namespace {

Table ConstantTable(size_t rows) {
  Table t("constant");
  std::vector<Cell> a(rows, "same");
  std::vector<Cell> b(rows, "42");
  EXPECT_TRUE(t.AddColumn(Column("a", std::move(a))).ok());
  EXPECT_TRUE(t.AddColumn(Column("b", std::move(b))).ok());
  return t;
}

// --- Degenerate detection inputs ------------------------------------------------

TEST(RobustnessTest, BaselinesSurviveConstantColumns) {
  Table t = ConstantTable(50);
  baselines::DetectionContext ctx;
  ctx.dirty = &t;
  ctx.oracle = [](size_t, size_t) { return 0; };
  for (const auto& name : baselines::AllBaselineNames()) {
    auto detector = baselines::MakeBaseline(name);
    ASSERT_TRUE(detector.ok()) << name;
    auto mask = (*detector)->Detect(ctx);
    ASSERT_TRUE(mask.ok()) << name;
    // Constant data has no anomalies to flag.
    EXPECT_EQ(mask->DirtyCount(), 0u) << name;
  }
}

TEST(RobustnessTest, BaselinesSurviveSingleRow) {
  Table t("one");
  ASSERT_TRUE(t.AddColumn(Column("x", {"value"})).ok());
  ASSERT_TRUE(t.AddColumn(Column("y", {"7"})).ok());
  baselines::DetectionContext ctx;
  ctx.dirty = &t;
  ctx.oracle = [](size_t, size_t) { return 0; };
  ctx.labeling_budget = 5;
  for (const auto& name : baselines::AllBaselineNames()) {
    auto detector = baselines::MakeBaseline(name);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_TRUE((*detector)->Detect(ctx).ok()) << name;
  }
}

TEST(RobustnessTest, SagedSurvivesConstantDirtyTable) {
  datagen::MakeOptions gen;
  gen.rows = 150;
  auto adult = datagen::MakeDataset("adult", gen);
  ASSERT_TRUE(adult.ok());
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.labeling_budget = 10;
  core::Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  Table t = ConstantTable(80);
  auto result = saged.Detect(t, [](size_t, size_t) { return 0; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->mask.DirtyCount(), 0u);
}

TEST(RobustnessTest, SagedBudgetLargerThanTable) {
  datagen::MakeOptions gen;
  gen.rows = 120;
  auto adult = datagen::MakeDataset("adult", gen);
  auto nasa = datagen::MakeDataset("nasa", gen);
  ASSERT_TRUE(adult.ok());
  ASSERT_TRUE(nasa.ok());
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.labeling_budget = 10000;  // way beyond the 120 rows
  core::Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  auto result = saged.Detect(nasa->dirty, core::MaskOracle(nasa->mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->labeled_tuples, 120u);
}

TEST(RobustnessTest, OracleLyingStillTerminates) {
  // An oracle that answers randomly (simulating a careless labeler) must
  // not crash detection; accuracy is allowed to degrade.
  datagen::MakeOptions gen;
  gen.rows = 150;
  auto adult = datagen::MakeDataset("adult", gen);
  auto beers = datagen::MakeDataset("beers", gen);
  ASSERT_TRUE(adult.ok());
  ASSERT_TRUE(beers.ok());
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.labeling_budget = 15;
  core::Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  size_t calls = 0;
  auto result = saged.Detect(beers->dirty, [&calls](size_t r, size_t c) {
    ++calls;
    return static_cast<int>((r + c) % 2);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(calls, 0u);
}

// --- Featurization edge cases ------------------------------------------------------

TEST(RobustnessTest, FeaturizerHandlesAllMissingColumn) {
  text::Word2Vec w2v;
  features::CharSpace space(16);
  Column col("mv", {"", "NULL", "", "NA", ""});
  features::ColumnFeaturizer::RegisterChars(col, &space);
  features::ColumnFeaturizer featurizer(&w2v, &space);
  auto m = featurizer.Featurize(col);
  ASSERT_TRUE(m.ok());
  for (double v : m->data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, SignatureFiniteOnWeirdColumns) {
  for (const Column& col :
       {Column("empty_strings", {"", "", ""}),
        Column("huge", {std::string(5000, 'x'), "y", "z"}),
        Column("unicodeish", {"\xc3\xa9\xc3\xa9", "\xf0\x9f\x98\x80", "a"}),
        Column("numbers", {"1e300", "-1e300", "0"})}) {
    auto sig = features::ColumnSignature(col);
    for (double v : sig) EXPECT_TRUE(std::isfinite(v)) << col.name();
  }
}

// --- ML edge cases -------------------------------------------------------------------

TEST(RobustnessTest, AgglomerativeIdenticalPoints) {
  ml::Matrix x(10, 2, 1.0);  // all identical
  ml::Agglomerative agg;
  ASSERT_TRUE(agg.Fit(x).ok());
  auto labels = agg.Cut(3);
  EXPECT_EQ(labels.size(), 10u);
}

TEST(RobustnessTest, MlpSingleFeatureConstant) {
  ml::Matrix x(30, 1, 2.0);
  std::vector<double> y(30, 1.0);
  ml::MlpOptions opts;
  opts.task = ml::MlpTask::kRegression;
  opts.epochs = 10;
  ml::Mlp net(opts, 3);
  ASSERT_TRUE(net.Fit(x, y).ok());
  for (double v : net.Predict(x).data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustnessTest, MetaClassifierAllDirtyLabels) {
  ml::Matrix meta(30, 3);
  for (size_t r = 0; r < 10; ++r) {
    for (size_t c = 0; c < 3; ++c) meta.At(r, c) = 0.9;
  }
  core::MetaClassifier clf(core::ModelType::kRandomForest, 3);
  ASSERT_TRUE(clf.Fit(meta, {0, 1, 2}, {1, 1, 1}).ok());
  EXPECT_TRUE(clf.IsFallback());
  auto pred = clf.Predict(meta);
  EXPECT_EQ(pred[0], 1);   // votes like the labeled dirty cells
  EXPECT_EQ(pred[20], 0);  // votes of 0 stay clean
}

// --- Repair edge cases -----------------------------------------------------------------

TEST(RobustnessTest, RepairFullyFlaggedColumnIsNoop) {
  Table t = ConstantTable(30);
  ErrorMask all(30, 2);
  for (size_t r = 0; r < 30; ++r) {
    all.Set(r, 0);
    all.Set(r, 1);
  }
  auto repaired = pipeline::RepairTable(t, all);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->NumRows(), 30u);  // nothing to learn from; intact
}

TEST(RobustnessTest, DownstreamRejectsTinyTables) {
  Table t = ConstantTable(10);
  EXPECT_FALSE(
      pipeline::PrepareForModel(t, 0, pipeline::TaskType::kBinaryClassification)
          .ok());
}

TEST(RobustnessTest, DownstreamVsCleanShapeMismatchRejected) {
  Table a = ConstantTable(60);
  Table b = ConstantTable(50);
  ml::MlpOptions opts;
  EXPECT_FALSE(pipeline::TrainOnVersionScoreOnClean(
                   a, b, 0, pipeline::TaskType::kRegression, opts, 3)
                   .ok());
}

// --- High error rates ---------------------------------------------------------------

TEST(RobustnessTest, DetectionAtExtremeErrorRate) {
  // Smart Factory's 83% error rate is the stress case from Table 1.
  datagen::MakeOptions gen;
  gen.rows = 200;
  auto adult = datagen::MakeDataset("adult", gen);
  auto sf = datagen::MakeDataset("smart_factory", gen);
  ASSERT_TRUE(adult.ok());
  ASSERT_TRUE(sf.ok());
  EXPECT_GT(sf->mask.ErrorRate(), 0.8);
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.labeling_budget = 20;
  core::Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  auto result = saged.Detect(sf->dirty, core::MaskOracle(sf->mask));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(sf->mask.Score(result->mask).F1(), 0.6);
}

}  // namespace
}  // namespace saged
