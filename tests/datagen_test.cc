#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "datagen/error_injector.h"
#include "datagen/rules.h"
#include "datagen/synth.h"

namespace saged::datagen {
namespace {

// --- Synthesizers -------------------------------------------------------------

TEST(SynthTest, PhoneShape) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string phone = SynthPhone(rng);
    EXPECT_TRUE(MatchesPattern(PatternKind::kPhone, phone)) << phone;
  }
}

TEST(SynthTest, DateShape) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    std::string date = SynthDate(rng, 2000, 2020);
    EXPECT_TRUE(MatchesPattern(PatternKind::kDateIso, date)) << date;
  }
}

TEST(SynthTest, EmailShape) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    std::string email = SynthEmail(rng);
    EXPECT_TRUE(MatchesPattern(PatternKind::kEmail, email)) << email;
  }
}

TEST(SynthTest, IntWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    double v = std::stod(SynthInt(rng, 10, 20));
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(SynthTest, IdHasPrefixAndWidth) {
  Rng rng(11);
  std::string id = SynthId(rng, "EMP", 5);
  EXPECT_EQ(id.substr(0, 3), "EMP");
  EXPECT_EQ(id.size(), 8u);
}

TEST(SynthTest, ZipShape) {
  Rng rng(13);
  EXPECT_TRUE(MatchesPattern(PatternKind::kZip, SynthZip(rng)));
}

// --- Pattern validators ---------------------------------------------------------

TEST(RulesTest, PatternValidators) {
  EXPECT_TRUE(MatchesPattern(PatternKind::kPhone, "555-123-4567"));
  EXPECT_FALSE(MatchesPattern(PatternKind::kPhone, "555/123/4567"));
  EXPECT_TRUE(MatchesPattern(PatternKind::kDateIso, "2020-01-31"));
  EXPECT_FALSE(MatchesPattern(PatternKind::kDateIso, "01-31-2020"));
  EXPECT_TRUE(MatchesPattern(PatternKind::kEmail, "a@b.com"));
  EXPECT_FALSE(MatchesPattern(PatternKind::kEmail, "a b@c.com"));
  EXPECT_TRUE(MatchesPattern(PatternKind::kNumeric, "-4.2"));
  EXPECT_FALSE(MatchesPattern(PatternKind::kNumeric, "4.2x"));
  EXPECT_TRUE(MatchesPattern(PatternKind::kNonEmpty, "x"));
  EXPECT_FALSE(MatchesPattern(PatternKind::kNonEmpty, "NULL"));
}

TEST(RulesTest, FdViolationsFlagMinority) {
  Table t("fd");
  ASSERT_TRUE(t.AddColumn(Column("lhs", {"a", "a", "a", "b"})).ok());
  ASSERT_TRUE(t.AddColumn(Column("rhs", {"1", "1", "2", "9"})).ok());
  auto rows = FdViolations(t, {0, 1});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);  // the "a"->"2" minority row
}

TEST(RulesTest, NoFalseFdViolations) {
  Table t("clean");
  ASSERT_TRUE(t.AddColumn(Column("lhs", {"a", "a", "b"})).ok());
  ASSERT_TRUE(t.AddColumn(Column("rhs", {"1", "1", "2"})).ok());
  EXPECT_TRUE(FdViolations(t, {0, 1}).empty());
}

// --- Error injector ---------------------------------------------------------------

Table CleanNumericTable(size_t rows) {
  Rng rng(17);
  std::vector<Cell> a;
  std::vector<Cell> b;
  for (size_t i = 0; i < rows; ++i) {
    a.push_back(SynthInt(rng, 100, 120));
    b.push_back(SynthFullName(rng));
  }
  Table t("clean");
  EXPECT_TRUE(t.AddColumn(Column("num", std::move(a))).ok());
  EXPECT_TRUE(t.AddColumn(Column("name", std::move(b))).ok());
  return t;
}

TEST(ErrorInjectorTest, HitsTargetRate) {
  Table clean = CleanNumericTable(500);
  InjectionSpec spec;
  spec.error_rate = 0.2;
  spec.types = {ErrorType::kTypo, ErrorType::kMissingValue};
  ErrorInjector injector(spec, 3);
  auto out = injector.Inject(clean);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->mask.ErrorRate(), 0.2, 0.01);
}

TEST(ErrorInjectorTest, MaskMatchesChangedCells) {
  Table clean = CleanNumericTable(200);
  InjectionSpec spec;
  spec.error_rate = 0.15;
  spec.types = {ErrorType::kTypo, ErrorType::kOutlier,
                ErrorType::kFormatting, ErrorType::kMissingValue};
  ErrorInjector injector(spec, 5);
  auto out = injector.Inject(clean);
  ASSERT_TRUE(out.ok());
  for (size_t r = 0; r < clean.NumRows(); ++r) {
    for (size_t c = 0; c < clean.NumCols(); ++c) {
      bool changed = clean.cell(r, c) != out->dirty.cell(r, c);
      EXPECT_EQ(changed, out->mask.IsDirty(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(ErrorInjectorTest, OutlierMagnitudeScalesWithDegree) {
  Table clean = CleanNumericTable(400);
  auto run = [&](double degree) {
    InjectionSpec spec;
    spec.error_rate = 0.2;
    spec.types = {ErrorType::kOutlier};
    spec.outlier_degree = degree;
    ErrorInjector injector(spec, 7);
    auto out = injector.Inject(clean);
    EXPECT_TRUE(out.ok());
    // Mean |value| of corrupted numeric cells.
    double acc = 0.0;
    size_t n = 0;
    for (size_t r = 0; r < clean.NumRows(); ++r) {
      if (out->mask.IsDirty(r, 0)) {
        if (auto v = CellAsNumber(out->dirty.cell(r, 0))) {
          acc += std::abs(*v - 110.0);
          ++n;
        }
      }
    }
    return n ? acc / static_cast<double>(n) : 0.0;
  };
  EXPECT_GT(run(10.0), run(2.0));
}

TEST(ErrorInjectorTest, TypoPrimitivesAlwaysChange) {
  InjectionSpec spec;
  ErrorInjector injector(spec, 11);
  for (const char* raw : {"hello", "x", "12345", ""}) {
    std::string value(raw);
    for (int i = 0; i < 20; ++i) {
      EXPECT_NE(injector.MakeTypo(value), value);
    }
  }
}

TEST(ErrorInjectorTest, FormattingKeepsContentRecognizable) {
  InjectionSpec spec;
  ErrorInjector injector(spec, 13);
  std::string out = injector.MakeFormatting("555-123-4567");
  EXPECT_NE(out, "555-123-4567");
}

TEST(ErrorInjectorTest, RuleViolationBreaksFd) {
  // city -> zip FD; violations replace zip with another city's zip.
  Rng rng(19);
  std::vector<Cell> city;
  std::vector<Cell> zip;
  for (int i = 0; i < 300; ++i) {
    std::string c = i % 2 ? "Springfield" : "Shelbyville";
    city.push_back(c);
    zip.push_back(c == "Springfield" ? "11111" : "22222");
  }
  Table clean("fd");
  ASSERT_TRUE(clean.AddColumn(Column("city", std::move(city))).ok());
  ASSERT_TRUE(clean.AddColumn(Column("zip", std::move(zip))).ok());
  RuleSet rules;
  rules.fds = {{0, 1}};
  InjectionSpec spec;
  spec.error_rate = 0.1;
  spec.types = {ErrorType::kRuleViolation};
  ErrorInjector injector(spec, 21);
  auto out = injector.Inject(clean, &rules);
  ASSERT_TRUE(out.ok());
  // The dirty table must now violate the FD.
  EXPECT_FALSE(FdViolations(out->dirty, rules.fds[0]).empty());
}

TEST(ErrorInjectorTest, RejectsBadSpec) {
  Table clean = CleanNumericTable(10);
  InjectionSpec bad_rate;
  bad_rate.error_rate = 1.5;
  EXPECT_FALSE(ErrorInjector(bad_rate, 1).Inject(clean).ok());
  InjectionSpec no_types;
  no_types.types.clear();
  EXPECT_FALSE(ErrorInjector(no_types, 1).Inject(clean).ok());
}

// --- Dataset registry ---------------------------------------------------------------

TEST(DatasetsTest, AllFourteenRegistered) {
  EXPECT_EQ(AllDatasetNames().size(), 14u);
  for (const auto& name : AllDatasetNames()) {
    auto spec = GetDatasetSpec(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_GT(spec->rows, 0u);
    EXPECT_GT(spec->cols, 0u);
  }
}

TEST(DatasetsTest, UnknownNameFails) {
  EXPECT_FALSE(GetDatasetSpec("nope").ok());
  EXPECT_FALSE(MakeDataset("nope").ok());
}

/// Table-1 shape parity for every dataset (rows overridden for speed; the
/// column count and error-rate targets are the paper's).
class DatasetSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSweep, MatchesTable1Shape) {
  MakeOptions opts;
  opts.rows = 200;
  auto ds = MakeDataset(GetParam(), opts);
  ASSERT_TRUE(ds.ok()) << GetParam();
  auto spec = GetDatasetSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(ds->dirty.NumCols(), spec->cols);
  EXPECT_EQ(ds->dirty.NumRows(), 200u);
  EXPECT_EQ(ds->clean.NumRows(), 200u);
  EXPECT_EQ(ds->mask.rows(), 200u);
  EXPECT_EQ(ds->mask.cols(), spec->cols);
  // Cell error rate within tolerance of the paper's Table 1.
  EXPECT_NEAR(ds->mask.ErrorRate(), spec->error_rate,
              0.02 + 0.05 * spec->error_rate)
      << GetParam();
  // Clean table really is clean w.r.t. the mask.
  for (size_t r = 0; r < 200; ++r) {
    for (size_t c = 0; c < spec->cols; ++c) {
      if (!ds->mask.IsDirty(r, c)) {
        EXPECT_EQ(ds->clean.cell(r, c), ds->dirty.cell(r, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::ValuesIn(AllDatasetNames()));

TEST(DatasetsTest, Deterministic) {
  MakeOptions opts;
  opts.rows = 50;
  opts.seed = 99;
  auto a = MakeDataset("beers", opts);
  auto b = MakeDataset("beers", opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->mask == b->mask);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(a->dirty.Row(r), b->dirty.Row(r));
  }
}

TEST(DatasetsTest, ErrorRateOverride) {
  MakeOptions opts;
  opts.rows = 300;
  opts.error_rate = 0.4;
  auto ds = MakeDataset("hospital", opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->mask.ErrorRate(), 0.4, 0.03);
}

TEST(DatasetsTest, CleanDataSatisfiesOwnRules) {
  MakeOptions opts;
  opts.rows = 300;
  auto ds = MakeDataset("tax", opts);
  ASSERT_TRUE(ds.ok());
  for (const auto& fd : ds->rules.fds) {
    EXPECT_TRUE(FdViolations(ds->clean, fd).empty())
        << "fd " << fd.lhs << "->" << fd.rhs;
  }
  for (const auto& rule : ds->rules.patterns) {
    const auto& col = ds->clean.column(rule.col);
    for (size_t r = 0; r < col.size(); ++r) {
      EXPECT_TRUE(MatchesPattern(rule.kind, col[r]))
          << "col " << rule.col << " value '" << col[r] << "'";
    }
  }
}

TEST(DatasetsTest, DomainsCoverCleanValues) {
  MakeOptions opts;
  opts.rows = 200;
  auto ds = MakeDataset("beers", opts);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->domains.size(), ds->clean.NumCols());
  for (size_t j = 0; j < ds->domains.size(); ++j) {
    if (ds->domains[j].empty()) continue;
    for (const auto& v : ds->clean.column(j).values()) {
      EXPECT_TRUE(ds->domains[j].count(v))
          << "column " << j << " value '" << v << "'";
    }
  }
}

}  // namespace
}  // namespace saged::datagen
