// ThreadSanitizer stress for the serving path: concurrent connections
// hammering one server, and shutdown racing in-flight requests. Datasets
// are tiny — the point is interleavings (connection lifetime vs worker
// writes, scheduler drain vs admission, RequestStop vs everything), not
// detection quality. Runs in the default suite too; the tsan preset builds
// it with the race detector on.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "core/detector.h"
#include "data/csv.h"
#include "data/mask_io.h"
#include "datagen/datasets.h"
#include "serve/client.h"

namespace saged::serve {
namespace {

struct StressWorld {
  std::string dir;
  std::string data_csv;
  std::string mask_csv;
  std::unique_ptr<core::Saged> engine;

  StressWorld() {
    char tmpl[] = "/tmp/saged_serve_stress_XXXXXX";
    char* made = mkdtemp(tmpl);
    SAGED_CHECK(made != nullptr);
    dir = made;

    datagen::MakeOptions gen;
    gen.rows = 60;
    core::SagedConfig config;
    config.labeling_budget = 5;
    config.w2v.dim = 4;
    config.w2v.epochs = 1;
    auto target = datagen::MakeDataset("beers", gen);
    SAGED_CHECK(target.ok());
    data_csv = dir + "/dirty.csv";
    mask_csv = dir + "/mask.csv";
    SAGED_CHECK(WriteCsv(target->dirty, data_csv).ok());
    SAGED_CHECK(
        WriteCsv(MaskToTable(target->mask, target->dirty.ColumnNames()),
                 mask_csv)
            .ok());

    engine = std::make_unique<core::Saged>(config);
    auto hist = datagen::MakeDataset("adult", gen);
    SAGED_CHECK(hist.ok());
    SAGED_CHECK(engine->AddHistoricalDataset(hist->dirty, hist->mask).ok());
  }
};

StressWorld& World() {
  static auto& world = *new StressWorld;
  return world;
}

std::string SocketPath(const char* tag) {
  return World().dir + "/" + tag + ".sock";
}

DetectRequestMsg StressRequest(uint64_t id) {
  DetectRequestMsg msg;
  msg.request_id = id;
  msg.data_path = World().data_csv;
  msg.oracle_mask_path = World().mask_csv;
  return msg;
}

// Many clients, each mixing pings, detections, and reconnects, all racing
// each other on one server. Every reply must be well-formed; the server
// must drain cleanly afterwards.
TEST(ServeStress, ConcurrentClientsHammerOneServer) {
  ServerOptions options;
  options.socket_path = SocketPath("hammer");
  SagedServer server(World().engine.get(), options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 6;
  Executor clients(kClients);
  std::vector<std::future<void>> done;
  for (size_t c = 0; c < kClients; ++c) {
    done.push_back(clients.Submit([&options, c] {
      for (int round = 0; round < 2; ++round) {
        SagedClient client;
        auto connected = client.Connect(options.socket_path);
        ASSERT_TRUE(connected.ok()) << connected.ToString();
        ASSERT_TRUE(client.Ping().ok());
        auto reply = client.Detect(StressRequest(c * 100 + round));
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        // Queue-full rejections are legal under load; anything else that
        // is not success is a bug.
        if (!reply->ok()) {
          EXPECT_EQ(reply->error, ServeError::kQueueFull)
              << reply->error_message;
        } else {
          EXPECT_EQ(reply->request_id, c * 100 + round);
          EXPECT_GT(reply->response.mask.rows(), 0u);
        }
        client.Close();  // reconnect next round: exercises accept/teardown
      }
    }));
  }
  for (auto& f : done) f.get();
  server.Stop();
}

// RequestStop racing in-flight requests: clients may see success, a typed
// shutdown/queue error, or a connection error — never a hang or a torn
// frame. The server must stop within the test timeout regardless.
TEST(ServeStress, ShutdownRacesInflightRequests) {
  for (int round = 0; round < 3; ++round) {
    ServerOptions options;
    options.socket_path = SocketPath("race");
    SagedServer server(World().engine.get(), options);
    ASSERT_TRUE(server.Start().ok());

    constexpr size_t kClients = 4;
    Executor clients(kClients);
    std::vector<std::future<void>> done;
    for (size_t c = 0; c < kClients; ++c) {
      done.push_back(clients.Submit([&options, c, round] {
        SagedClient client;
        if (!client.Connect(options.socket_path).ok()) return;
        auto reply = client.Detect(StressRequest(c));
        if (reply.ok() && reply->ok()) {
          EXPECT_EQ(reply->request_id, c);
        }
        // The failure modes (IoError, kShuttingDown, kQueueFull,
        // success) are all legal — the assertion is "no race, no hang".
      }));
    }
    // Round 0: stop after the clients finish. Round 1: stop immediately,
    // racing the connects. Round 2: stop mid-flight from a worker.
    if (round == 1) server.RequestStop();
    if (round == 2) {
      auto stopper = clients.Submit([&server] { server.RequestStop(); });
      stopper.get();
    }
    for (auto& f : done) f.get();
    server.Stop();
  }
}

// RequestStop hammered from several threads while another runs the full
// Stop() (join + cleanup): the wake pipe must stay writable until the
// destructor, so a late stop request (e.g. a second SIGINT during
// shutdown) never hits a closed or reused descriptor.
TEST(ServeStress, RequestStopRacesWaitAndTeardown) {
  for (int round = 0; round < 5; ++round) {
    ServerOptions options;
    options.socket_path = SocketPath("stopwait");
    SagedServer server(World().engine.get(), options);
    ASSERT_TRUE(server.Start().ok());

    Executor stoppers(3);
    std::vector<std::future<void>> done;
    done.push_back(stoppers.Submit([&server] { server.Stop(); }));
    for (int s = 0; s < 2; ++s) {
      done.push_back(stoppers.Submit([&server, round] {
        for (int i = 0; i <= round; ++i) server.RequestStop();
      }));
    }
    for (auto& f : done) f.get();
  }
}

// Start/Stop cycling with no traffic: lifecycle state must not leak or
// race between the io thread, Wait, and the destructor.
TEST(ServeStress, StartStopCycles) {
  for (int i = 0; i < 5; ++i) {
    ServerOptions options;
    options.socket_path = SocketPath("cycle");
    SagedServer server(World().engine.get(), options);
    ASSERT_TRUE(server.Start().ok());
    if (i % 2 == 0) {
      SagedClient client;
      ASSERT_TRUE(client.Connect(options.socket_path).ok());
      ASSERT_TRUE(client.Ping().ok());
    }
    server.Stop();
  }
}

}  // namespace
}  // namespace saged::serve
