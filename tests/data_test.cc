#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/error_mask.h"
#include "data/mask_io.h"
#include "data/table.h"
#include "data/value.h"

namespace saged {
namespace {

// --- Value classification ---------------------------------------------------

TEST(ValueTest, ClassifyKinds) {
  EXPECT_EQ(ClassifyValue(""), ValueKind::kMissing);
  EXPECT_EQ(ClassifyValue("NULL"), ValueKind::kMissing);
  EXPECT_EQ(ClassifyValue("42"), ValueKind::kInteger);
  EXPECT_EQ(ClassifyValue("-3.14"), ValueKind::kReal);
  EXPECT_EQ(ClassifyValue("2021-06-14"), ValueKind::kDate);
  EXPECT_EQ(ClassifyValue("14/06/2021"), ValueKind::kDate);
  EXPECT_EQ(ClassifyValue("hello world"), ValueKind::kText);
}

TEST(ValueTest, CellAsNumber) {
  EXPECT_EQ(CellAsNumber("5").value(), 5.0);
  EXPECT_FALSE(CellAsNumber("NULL").has_value());
  EXPECT_FALSE(CellAsNumber("abc").has_value());
}

TEST(ValueTest, DateDetection) {
  EXPECT_TRUE(LooksLikeDate("1999-12-31"));
  EXPECT_TRUE(LooksLikeDate("12/31/1999"));
  EXPECT_FALSE(LooksLikeDate("1999"));
  EXPECT_FALSE(LooksLikeDate("12-31"));
  EXPECT_FALSE(LooksLikeDate("ab-cd-ef"));
}

// --- Column -----------------------------------------------------------------

Column NumericColumn() {
  return Column("n", {"1", "2", "3", "4", "100"});
}

TEST(ColumnTest, InferNumeric) {
  EXPECT_EQ(NumericColumn().InferType(), ColumnType::kNumeric);
}

TEST(ColumnTest, InferCategorical) {
  std::vector<Cell> values;
  for (int i = 0; i < 100; ++i) values.push_back(i % 2 ? "yes" : "no");
  EXPECT_EQ(Column("c", values).InferType(), ColumnType::kCategorical);
}

TEST(ColumnTest, InferDate) {
  Column c("d", {"2020-01-01", "2020-02-02", "2021-03-03"});
  EXPECT_EQ(c.InferType(), ColumnType::kDate);
}

TEST(ColumnTest, DistinctAndMissing) {
  Column c("x", {"a", "b", "a", "", "NULL"});
  EXPECT_EQ(c.DistinctCount(), 4u);
  EXPECT_DOUBLE_EQ(c.MissingFraction(), 0.4);
}

TEST(ColumnTest, AsNumbersAligned) {
  auto nums = NumericColumn().AsNumbers();
  ASSERT_EQ(nums.size(), 5u);
  EXPECT_EQ(nums[4].value(), 100.0);
}

TEST(ColumnTest, Truncate) {
  Column c = NumericColumn();
  c.Truncate(2);
  EXPECT_EQ(c.size(), 2u);
}

// --- Table ------------------------------------------------------------------

Table SmallTable() {
  Table t("demo");
  EXPECT_TRUE(t.AddColumn(Column("a", {"1", "2", "3"})).ok());
  EXPECT_TRUE(t.AddColumn(Column("b", {"x", "y", "z"})).ok());
  return t;
}

TEST(TableTest, Shape) {
  Table t = SmallTable();
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.NumCols(), 2u);
}

TEST(TableTest, RejectsMismatchedColumn) {
  Table t = SmallTable();
  EXPECT_FALSE(t.AddColumn(Column("c", {"only", "two"})).ok());
}

TEST(TableTest, ColumnIndex) {
  Table t = SmallTable();
  EXPECT_EQ(t.ColumnIndex("b").value(), 1u);
  EXPECT_FALSE(t.ColumnIndex("nope").ok());
}

TEST(TableTest, RowView) {
  Table t = SmallTable();
  auto row = t.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "2");
  EXPECT_EQ(row[1], "y");
}

TEST(TableTest, CellMutation) {
  Table t = SmallTable();
  t.set_cell(0, 1, "updated");
  EXPECT_EQ(t.cell(0, 1), "updated");
}

TEST(TableTest, HeadFraction) {
  Table t = SmallTable();
  Table half = t.HeadFraction(0.67);
  EXPECT_EQ(half.NumRows(), 2u);
  EXPECT_EQ(half.NumCols(), 2u);
  // Always keeps at least one row.
  EXPECT_EQ(t.HeadFraction(0.0).NumRows(), 1u);
}

TEST(TableTest, SelectRows) {
  Table t = SmallTable();
  Table sel = t.SelectRows({2, 0});
  EXPECT_EQ(sel.NumRows(), 2u);
  EXPECT_EQ(sel.cell(0, 0), "3");
  EXPECT_EQ(sel.cell(1, 0), "1");
}

// --- ErrorMask --------------------------------------------------------------

TEST(ErrorMaskTest, SetAndQuery) {
  ErrorMask m(3, 2);
  EXPECT_FALSE(m.IsDirty(1, 1));
  m.Set(1, 1);
  EXPECT_TRUE(m.IsDirty(1, 1));
  EXPECT_EQ(m.DirtyCount(), 1u);
  EXPECT_DOUBLE_EQ(m.ErrorRate(), 1.0 / 6.0);
}

TEST(ErrorMaskTest, ColumnLabels) {
  ErrorMask m(3, 2);
  m.Set(0, 1);
  m.Set(2, 1);
  auto labels = m.ColumnLabels(1);
  EXPECT_EQ(labels, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(m.ColumnLabels(0), (std::vector<int>{0, 0, 0}));
}

TEST(ErrorMaskTest, ScoreConfusion) {
  ErrorMask truth(2, 2);
  truth.Set(0, 0);
  truth.Set(1, 1);
  ErrorMask pred(2, 2);
  pred.Set(0, 0);  // tp
  pred.Set(0, 1);  // fp
  auto s = truth.Score(pred);
  EXPECT_EQ(s.tp, 1u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.fn, 1u);
  EXPECT_EQ(s.tn, 1u);
  EXPECT_DOUBLE_EQ(s.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(s.Recall(), 0.5);
  EXPECT_DOUBLE_EQ(s.F1(), 0.5);
}

TEST(ErrorMaskTest, PerfectScore) {
  ErrorMask truth(4, 4);
  truth.Set(1, 2);
  auto s = truth.Score(truth);
  EXPECT_DOUBLE_EQ(s.F1(), 1.0);
}

TEST(ErrorMaskTest, MergeIsUnion) {
  ErrorMask a(2, 2);
  a.Set(0, 0);
  ErrorMask b(2, 2);
  b.Set(1, 1);
  a.Merge(b);
  EXPECT_TRUE(a.IsDirty(0, 0));
  EXPECT_TRUE(a.IsDirty(1, 1));
  EXPECT_EQ(a.DirtyCount(), 2u);
}

TEST(ErrorMaskTest, HeadRows) {
  ErrorMask m(4, 2);
  m.Set(0, 1);
  m.Set(3, 0);
  ErrorMask head = m.HeadRows(2);
  EXPECT_EQ(head.rows(), 2u);
  EXPECT_TRUE(head.IsDirty(0, 1));
  EXPECT_EQ(head.DirtyCount(), 1u);
}

TEST(ErrorMaskTest, RowHasError) {
  ErrorMask m(2, 3);
  m.Set(1, 2);
  EXPECT_FALSE(m.RowHasError(0));
  EXPECT_TRUE(m.RowHasError(1));
}

// --- Mask I/O ----------------------------------------------------------------

TEST(MaskIoTest, RoundTrip) {
  ErrorMask mask(3, 2);
  mask.Set(0, 1);
  mask.Set(2, 0);
  Table t = MaskToTable(mask, {"a", "b"});
  EXPECT_EQ(t.cell(0, 1), "1");
  EXPECT_EQ(t.cell(1, 0), "0");
  auto back = TableToMask(t);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == mask);
}

TEST(MaskIoTest, RejectsNonBinaryCells) {
  Table t("bad");
  ASSERT_TRUE(t.AddColumn(Column("a", {"1", "2"})).ok());
  EXPECT_FALSE(TableToMask(t).ok());
}

TEST(MaskIoTest, FileRoundTrip) {
  ErrorMask mask(4, 3);
  mask.Set(1, 2);
  std::string path = testing::TempDir() + "/saged_mask_io.csv";
  ASSERT_TRUE(WriteMaskCsv(mask, {"x", "y", "z"}, path).ok());
  auto back = ReadMaskCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == mask);
}

// --- CSV --------------------------------------------------------------------

TEST(CsvTest, ParseSimple) {
  auto t = ParseCsv("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->NumCols(), 2u);
  EXPECT_EQ(t->cell(1, 1), "y");
  EXPECT_EQ(t->column(0).name(), "a");
}

TEST(CsvTest, ParseQuotedFields) {
  auto t = ParseCsv("a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->cell(0, 0), "hello, world");
  EXPECT_EQ(t->cell(0, 1), "say \"hi\"");
}

TEST(CsvTest, ParseCrLf) {
  auto t = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 1u);
  EXPECT_EQ(t->cell(0, 1), "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, NoHeader) {
  CsvOptions opts;
  opts.has_header = false;
  auto t = ParseCsv("1,2\n3,4\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->column(0).name(), "col0");
}

TEST(CsvTest, RoundTrip) {
  Table t("rt");
  ASSERT_TRUE(t.AddColumn(Column("a", {"1", "two, three"})).ok());
  ASSERT_TRUE(t.AddColumn(Column("b\"q", {"x", ""})).ok());
  std::string text = FormatCsv(t);
  auto back = ParseCsv(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->cell(1, 0), "two, three");
  EXPECT_EQ(back->cell(0, 1), "x");
  EXPECT_EQ(back->column(1).name(), "b\"q");
}

TEST(CsvTest, FileRoundTrip) {
  Table t("file");
  ASSERT_TRUE(t.AddColumn(Column("v", {"alpha", "beta"})).ok());
  std::string path = testing::TempDir() + "/saged_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->cell(1, 0), "beta");
}

TEST(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsv("/nonexistent/path.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace saged
