// End-to-end integration scenarios crossing all modules: generated datasets
// -> knowledge extraction -> detection -> comparison against baselines ->
// repair -> downstream model. These mirror the paper's experimental flows at
// test-sized scales.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"
#include "pipeline/evaluation.h"

namespace saged {
namespace {

datagen::Dataset Gen(const std::string& name, size_t rows,
                     uint64_t seed = 7) {
  datagen::MakeOptions opts;
  opts.rows = rows;
  opts.seed = seed;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

core::SagedConfig FastConfig() {
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling_budget = 20;
  return config;
}

TEST(IntegrationTest, SagedBeatsPureOutlierDetectorsOnMixedErrors) {
  // Beers has missing values, rule violations, and typos: SD/IQR (numeric
  // outliers only) must lose to SAGED by a wide margin — the paper's core
  // qualitative claim.
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult", "movies"}, {.seed = 7, .rows = 300});
  ASSERT_TRUE(saged.ok());
  auto beers = Gen("beers", 300);
  auto saged_row = pipeline::RunSaged(*saged, beers);
  ASSERT_TRUE(saged_row.ok());
  for (const char* tool : {"sd", "iqr"}) {
    auto row = pipeline::RunBaseline(tool, beers, 20, 3);
    ASSERT_TRUE(row.ok());
    EXPECT_GT(saged_row->f1, row->f1 + 0.2) << tool;
  }
}

TEST(IntegrationTest, CrossDomainHistoryStillWorks) {
  // History from census-like (adult) data, detection on sensor (nasa) data:
  // the paper's cross-domain claim.
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult"}, {.seed = 9, .rows = 300});
  ASSERT_TRUE(saged.ok());
  auto nasa = Gen("nasa", 300, 9);
  auto row = pipeline::RunSaged(*saged, nasa);
  ASSERT_TRUE(row.ok());
  EXPECT_GT(row->f1, 0.3);
}

TEST(IntegrationTest, MoreHistoryNeverBreaksDetection) {
  // Figure-7 direction: growing the historical inventory keeps detection
  // functional and tends to help.
  auto one = pipeline::MakeSagedWithHistory(FastConfig(), {"adult"},
                                            {.seed = 11, .rows = 250});
  auto three = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult", "movies", "hospital"}, {.seed = 11, .rows = 250});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  auto flights = Gen("flights", 250, 11);
  auto row1 = pipeline::RunSaged(*one, flights);
  auto row3 = pipeline::RunSaged(*three, flights);
  ASSERT_TRUE(row1.ok());
  ASSERT_TRUE(row3.ok());
  EXPECT_GT(row3->f1, 0.3);
  EXPECT_GT(row3->f1, row1->f1 - 0.15);  // no catastrophic regression
}

TEST(IntegrationTest, ScalabilityPathHeadFraction) {
  // Figure-15 mechanism: detection runs on growing fractions of one
  // dataset; masks stay aligned via HeadRows.
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult"}, {.seed = 13, .rows = 200});
  ASSERT_TRUE(saged.ok());
  auto soccer = Gen("soccer", 400, 13);
  for (double fraction : {0.25, 0.5, 1.0}) {
    Table part = soccer.dirty.HeadFraction(fraction);
    ErrorMask truth = soccer.mask.HeadRows(part.NumRows());
    auto result = saged->Detect(part, core::MaskOracle(truth));
    ASSERT_TRUE(result.ok()) << "fraction " << fraction;
    EXPECT_EQ(result->mask.rows(), part.NumRows());
    EXPECT_GT(truth.Score(result->mask).F1(), 0.3) << fraction;
  }
}

TEST(IntegrationTest, CsvRoundTripPreservesDetection) {
  // Export the dirty table to CSV, read it back, and detect: results must
  // be identical (the library's file-based entry point).
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult"}, {.seed = 17, .rows = 200});
  ASSERT_TRUE(saged.ok());
  auto beers = Gen("beers", 150, 17);
  std::string path = testing::TempDir() + "/saged_integration.csv";
  ASSERT_TRUE(WriteCsv(beers.dirty, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  auto direct = saged->Detect(beers.dirty, core::MaskOracle(beers.mask));
  auto via_csv = saged->Detect(*loaded, core::MaskOracle(beers.mask));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_csv.ok());
  EXPECT_TRUE(direct->mask == via_csv->mask);
}

TEST(IntegrationTest, ErrorRateRobustnessDirection) {
  // Figure-13 direction: SAGED keeps working as the error rate rises.
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult", "movies"}, {.seed = 19, .rows = 250});
  ASSERT_TRUE(saged.ok());
  for (double rate : {0.1, 0.3, 0.5}) {
    datagen::MakeOptions opts;
    opts.rows = 250;
    opts.seed = 19;
    opts.error_rate = rate;
    auto hospital = datagen::MakeDataset("hospital", opts);
    ASSERT_TRUE(hospital.ok());
    auto row = pipeline::RunSaged(*saged, *hospital);
    ASSERT_TRUE(row.ok());
    EXPECT_GT(row->f1, 0.35) << "rate " << rate;
  }
}

TEST(IntegrationTest, FullComparisonSmoke) {
  // Miniature Table 2: SAGED + all baselines on one dataset; everything
  // must run and produce sane rows.
  auto saged = pipeline::MakeSagedWithHistory(
      FastConfig(), {"adult", "movies"}, {.seed = 23, .rows = 200});
  ASSERT_TRUE(saged.ok());
  auto rayyan = Gen("rayyan", 200, 23);
  auto saged_row = pipeline::RunSaged(*saged, rayyan);
  ASSERT_TRUE(saged_row.ok());
  EXPECT_GT(saged_row->f1, 0.3);
  for (const auto& name : baselines::AllBaselineNames()) {
    auto row = pipeline::RunBaseline(name, rayyan, 20, 23);
    ASSERT_TRUE(row.ok()) << name;
    EXPECT_GE(row->f1, 0.0);
    EXPECT_LE(row->f1, 1.0);
  }
}

}  // namespace
}  // namespace saged
