// Tests for the sharded knowledge-base store: the ShardLruCache eviction
// policy in isolation, v2 <-> v3 migration golden-tested both directions,
// lazy shard hydration with its kb.* counters, capacity-bounded residency,
// and the end-to-end wall — detection masks through a lazily-hydrated,
// index-matched store equal the monolithic cosine-scan masks byte for byte.

#include "kb/shard_store.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "core/detector.h"
#include "core/serialization.h"
#include "datagen/datasets.h"
#include "kb/kb_builder.h"
#include "kb/model_cache.h"

namespace saged::kb {
namespace {

// --- ShardLruCache (pure policy, no I/O) ------------------------------------

TEST(ShardLruCacheTest, TracksResidencyAndPins) {
  ShardLruCache cache(4, 0);
  EXPECT_EQ(cache.ResidentCount(), 0u);
  cache.MarkResident(2);
  EXPECT_TRUE(cache.IsResident(2));
  EXPECT_EQ(cache.ResidentCount(), 1u);
  cache.Pin(2);
  EXPECT_EQ(cache.PinCount(2), 1u);
  cache.Unpin(2);
  EXPECT_EQ(cache.PinCount(2), 0u);
  cache.MarkEvicted(2);
  EXPECT_FALSE(cache.IsResident(2));
}

TEST(ShardLruCacheTest, UnboundedNeverEvicts) {
  ShardLruCache cache(3, 0);
  for (size_t s = 0; s < 3; ++s) cache.MarkResident(s);
  EXPECT_TRUE(cache.EvictionVictims().empty());
}

TEST(ShardLruCacheTest, EvictsLeastRecentlyUsedFirst) {
  ShardLruCache cache(3, 1);
  cache.MarkResident(0);
  cache.MarkResident(1);
  cache.MarkResident(2);
  cache.Touch(0);  // 1 is now the least recently used
  std::vector<size_t> victims = cache.EvictionVictims();
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 1u);
  EXPECT_EQ(victims[1], 2u);
}

TEST(ShardLruCacheTest, PinnedShardsAreNeverVictims) {
  ShardLruCache cache(3, 1);
  cache.MarkResident(0);
  cache.MarkResident(1);
  cache.MarkResident(2);
  cache.Pin(0);
  cache.Pin(1);
  std::vector<size_t> victims = cache.EvictionVictims();
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 2u);
  // Everything over capacity pinned: eviction waits for a release.
  cache.Pin(2);
  EXPECT_TRUE(cache.EvictionVictims().empty());
}

// --- Shared trained fixture --------------------------------------------------

/// One trained knowledge base, its monolithic v2 file, and its migrated v3
/// store, built once for the whole suite (training is the slow part).
struct StoreFixture {
  core::SagedConfig config;
  std::string v2_path;
  std::string store_dir;
};

const StoreFixture& Fixture() {
  static StoreFixture* fixture = [] {
    auto* f = new StoreFixture;
    f->config.w2v.epochs = 1;
    f->config.w2v.dim = 6;
    f->config.labeling_budget = 15;
    core::Saged saged(f->config);
    datagen::MakeOptions gen;
    gen.rows = 200;
    for (const char* name : {"adult", "beers"}) {
      auto ds = datagen::MakeDataset(name, gen);
      EXPECT_TRUE(ds.ok()) << ds.status().ToString();
      EXPECT_TRUE(saged.AddHistoricalDataset(ds->dirty, ds->mask).ok());
    }
    f->v2_path = testing::TempDir() + "/kb_store_test_v2.bin";
    f->store_dir = testing::TempDir() + "/kb_store_test_v3";
    EXPECT_TRUE(
        core::SaveKnowledgeBase(saged.knowledge_base(), f->v2_path).ok());
    auto migrated = MigrateV2ToV3(f->v2_path, f->store_dir, {});
    EXPECT_TRUE(migrated.ok()) << migrated.ToString();
    return f;
  }();
  return *fixture;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Enables counters from a clean slate (the kb.* counters under test).
class KbCounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::TelemetryRegistry::Get().Reset();
    telemetry::SetEnabled(true);
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    telemetry::TelemetryRegistry::Get().Reset();
  }
  static uint64_t Counter(const std::string& name) {
    return telemetry::TelemetryRegistry::Get().CounterValue(name);
  }
};

// --- Migration golden tests --------------------------------------------------

TEST(ShardStoreTest, MigrationRoundTripIsByteIdentical) {
  const StoreFixture& f = Fixture();
  std::string exported = testing::TempDir() + "/kb_store_test_v2_export.bin";
  auto status = ExportMonolithic(f.store_dir, exported);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ReadFileBytes(exported), ReadFileBytes(f.v2_path))
      << "v2 -> v3 -> v2 must reproduce the monolithic file byte-for-byte";
}

TEST(ShardStoreTest, LoadFullEqualsMonolithicLoad) {
  const StoreFixture& f = Fixture();
  auto mono = core::LoadKnowledgeBase(f.v2_path);
  ASSERT_TRUE(mono.ok());
  auto full = LoadFullKnowledgeBase(f.store_dir);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->size(), mono->size());
  for (size_t i = 0; i < full->size(); ++i) {
    EXPECT_EQ(full->entries()[i].dataset, mono->entries()[i].dataset);
    EXPECT_EQ(full->entries()[i].column, mono->entries()[i].column);
    EXPECT_EQ(full->entries()[i].signature, mono->entries()[i].signature);
    EXPECT_NE(full->entries()[i].model, nullptr);
  }
  EXPECT_EQ(full->extraction_hashes(), mono->extraction_hashes());
}

// --- Lazy open / hydration ---------------------------------------------------

TEST(ShardStoreTest, OpenReadsManifestOnly) {
  const StoreFixture& f = Fixture();
  auto store = ShardStore::Open(f.store_dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  StoreStats stats = (*store)->GetStats();
  EXPECT_EQ(stats.version, 3u);
  EXPECT_GT(stats.n_entries, 0u);
  EXPECT_GT(stats.n_shards, 0u);
  EXPECT_EQ(stats.n_buckets, stats.n_shards);
  EXPECT_EQ(stats.resident_shards, 0u);  // nothing hydrated yet
  ASSERT_NE((*store)->index(), nullptr);

  // The lazily built knowledge base carries metadata but no models.
  auto kb = (*store)->MakeKnowledgeBase();
  ASSERT_TRUE(kb.ok());
  auto mono = core::LoadKnowledgeBase(f.v2_path);
  ASSERT_TRUE(mono.ok());
  ASSERT_EQ(kb->size(), mono->size());
  for (size_t i = 0; i < kb->size(); ++i) {
    EXPECT_EQ(kb->entries()[i].dataset, mono->entries()[i].dataset);
    EXPECT_EQ(kb->entries()[i].signature, mono->entries()[i].signature);
    EXPECT_EQ(kb->entries()[i].model, nullptr);
  }
}

TEST_F(KbCounterTest, AcquireHydratesAndCountsLoadsAndHits) {
  const StoreFixture& f = Fixture();
  auto store = ShardStore::Open(f.store_dir, {});
  ASSERT_TRUE(store.ok());
  auto kb = (*store)->MakeKnowledgeBase();
  ASSERT_TRUE(kb.ok());

  {
    auto lease = kb->AcquireModels({0});
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_NE(kb->entries()[0].model, nullptr);
  }
  uint64_t loads = Counter("kb.shard_loads");
  EXPECT_GE(loads, 1u);

  // Same entry again: the shard is resident — a cache hit, no new load.
  {
    auto lease = kb->AcquireModels({0});
    ASSERT_TRUE(lease.ok());
  }
  EXPECT_EQ(Counter("kb.shard_loads"), loads);
  EXPECT_GE(Counter("kb.cache_hits"), 1u);
}

TEST_F(KbCounterTest, CapacityOneEvictsTheColdShard) {
  const StoreFixture& f = Fixture();
  ShardStore::OpenOptions options;
  options.cache_shards = 1;
  auto store = ShardStore::Open(f.store_dir, options);
  ASSERT_TRUE(store.ok());
  auto kb = (*store)->MakeKnowledgeBase();
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ((*store)->GetStats().cache_capacity, 1u);

  // Two entries in different shards.
  const auto& shard_of = (*store)->index()->assignments();
  size_t a = 0, b = 0;
  for (size_t i = 1; i < shard_of.size(); ++i) {
    if (shard_of[i] != shard_of[a]) {
      b = i;
      break;
    }
  }
  ASSERT_NE(shard_of[a], shard_of[b]) << "fixture needs >= 2 shards";

  { auto lease = kb->AcquireModels({a}); ASSERT_TRUE(lease.ok()); }
  { auto lease = kb->AcquireModels({b}); ASSERT_TRUE(lease.ok()); }

  EXPECT_GE(Counter("kb.evictions"), 1u);
  EXPECT_EQ(kb->entries()[a].model, nullptr);  // evicted to make room
  EXPECT_NE(kb->entries()[b].model, nullptr);
  EXPECT_LE((*store)->GetStats().resident_shards, 1u);
}

TEST(ShardStoreTest, AcquireAllPinsEverythingDespiteCapacity) {
  const StoreFixture& f = Fixture();
  ShardStore::OpenOptions options;
  options.cache_shards = 1;
  auto store = ShardStore::Open(f.store_dir, options);
  ASSERT_TRUE(store.ok());
  auto kb = (*store)->MakeKnowledgeBase();
  ASSERT_TRUE(kb.ok());
  {
    auto lease = (*store)->AcquireAll(&*kb);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    for (const auto& entry : kb->entries()) {
      EXPECT_NE(entry.model, nullptr);
    }
    EXPECT_EQ((*store)->GetStats().resident_shards,
              (*store)->GetStats().n_shards);
  }
  // The lease released: residency falls back under the bound.
  EXPECT_LE((*store)->GetStats().resident_shards, 1u);
}

// --- v2 transparent open -----------------------------------------------------

TEST(ShardStoreTest, MonolithicV2OpensAsSingleShardStore) {
  const StoreFixture& f = Fixture();
  auto store = ShardStore::Open(f.v2_path, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  StoreStats stats = (*store)->GetStats();
  EXPECT_EQ(stats.version, 2u);
  EXPECT_EQ(stats.n_shards, 1u);
  auto kb = (*store)->MakeKnowledgeBase();
  ASSERT_TRUE(kb.ok());
  auto lease = kb->AcquireModels({0});
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_NE(kb->entries()[0].model, nullptr);
}

// --- Corrupt input -----------------------------------------------------------

TEST(ShardStoreTest, CorruptManifestRejected) {
  std::string dir = testing::TempDir() + "/kb_store_test_corrupt";
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest.sagk", std::ios::binary);
    out << "this is not a manifest";
  }
  EXPECT_FALSE(ShardStore::Open(dir, {}).ok());
  EXPECT_FALSE(ShardStore::Open("/nonexistent/store", {}).ok());
}

// --- End-to-end detection parity ---------------------------------------------

TEST(ShardStoreTest, DetectionMasksMatchMonolithicByteForByte) {
  const StoreFixture& f = Fixture();
  datagen::MakeOptions gen;
  gen.rows = 150;
  auto nasa = datagen::MakeDataset("nasa", gen);
  ASSERT_TRUE(nasa.ok());

  // Reference: monolithic load, exact cosine scan.
  core::Saged reference(f.config);
  {
    auto kb = core::LoadKnowledgeBase(f.v2_path);
    ASSERT_TRUE(kb.ok());
    reference.SetKnowledgeBase(std::move(kb).value());
  }
  auto want = reference.Detect(nasa->dirty, core::MaskOracle(nasa->mask));
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // Store-backed, lazily hydrated, index-matched at probe=all — and again
  // with a one-shard cache so hydration churns mid-run. Both must agree
  // with the reference mask byte for byte.
  for (size_t cache_shards : {size_t{0}, size_t{1}}) {
    ShardStore::OpenOptions options;
    options.cache_shards = cache_shards;
    auto store = ShardStore::Open(f.store_dir, options);
    ASSERT_TRUE(store.ok());
    auto kb = (*store)->MakeKnowledgeBase();
    ASSERT_TRUE(kb.ok());
    core::SagedConfig config = f.config;
    config.similarity = core::SimilarityMethod::kIndexed;
    config.index_probes = 1'000'000;  // probe=all: exact-parity degenerate
    core::Saged lazy(config);
    lazy.SetKnowledgeBase(std::move(kb).value());
    auto got = lazy.Detect(nasa->dirty, core::MaskOracle(nasa->mask));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->mask == want->mask) << "cache_shards=" << cache_shards;
  }
}

}  // namespace
}  // namespace saged::kb
